(* Fault-spec flag parsers, shared between the cmdliner converters and the
   argv pre-scan in threev_sim's main. The pre-scan exists for scripting
   ergonomics: cmdliner's own converter failure prints a four-line usage
   block and exits 124, which reads as a timeout to most CI harnesses. The
   pre-scan runs the same parsers first and turns a malformed spec into
   one self-contained line on stderr and exit code 2 (the conventional
   usage-error status). Each parser therefore returns, on failure, a
   single-line message that already embeds the expected syntax. *)

type partition_spec =
  | P_link of int * int * float * float  (* legacy SRC:DST:FROM:UNTIL *)
  | P_set of int list * float * float * bool  (* SET@FROM:UNTIL[:oneway] *)

let partition_usage = "--partition SRC:DST:FROM:UNTIL | SET@FROM:UNTIL[:oneway]"
let crash_usage = "--crash NODE@TIME:RESTART"
let coord_crash_usage = "--coord-crash TIME:RESTART"
let data_crash_usage = "--data-crash GROUP@TIME:RESTART"
let hb_loss_usage = "--hb-loss NODE@FROM:UNTIL[:PROB]"

let bad ~what ~usage s =
  Error (Printf.sprintf "bad %s spec %S; usage: %s" what s usage)

let parse_partition s =
  match
    Scanf.sscanf_opt s "%d:%d:%f:%f%!" (fun a b c d -> P_link (a, b, c, d))
  with
  | Some v -> Ok v
  | None -> (
      let err () = bad ~what:"partition" ~usage:partition_usage s in
      match String.index_opt s '@' with
      | None -> err ()
      | Some i -> (
          try
            let set =
              String.sub s 0 i |> String.split_on_char ','
              |> List.map (fun x -> int_of_string (String.trim x))
            in
            let rest =
              String.sub s (i + 1) (String.length s - i - 1)
              |> String.split_on_char ':'
            in
            match rest with
            | [ f; u ] ->
                Ok (P_set (set, float_of_string f, float_of_string u, false))
            | [ f; u; "oneway" ] ->
                Ok (P_set (set, float_of_string f, float_of_string u, true))
            | _ -> err ()
          with Failure _ -> err ()))

let parse_crash s =
  match Scanf.sscanf_opt s "%d@%f:%f%!" (fun n a r -> (n, a, r)) with
  | Some v -> Ok v
  | None -> bad ~what:"crash" ~usage:crash_usage s

let parse_coord_crash s =
  match Scanf.sscanf_opt s "%f:%f%!" (fun a r -> (a, r)) with
  | Some v -> Ok v
  | None -> bad ~what:"coord-crash" ~usage:coord_crash_usage s

let parse_data_crash s =
  match Scanf.sscanf_opt s "%d@%f:%f%!" (fun g a r -> (g, a, r)) with
  | Some v -> Ok v
  | None -> bad ~what:"data-crash" ~usage:data_crash_usage s

let parse_hb_loss s =
  match Scanf.sscanf_opt s "%d@%f:%f:%f%!" (fun n f u p -> (n, f, u, p)) with
  | Some v -> Ok v
  | None -> (
      match Scanf.sscanf_opt s "%d@%f:%f%!" (fun n f u -> (n, f, u, 1.)) with
      | Some v -> Ok v
      | None -> bad ~what:"hb-loss" ~usage:hb_loss_usage s)

(* The pre-scan table: flag name -> validate-only parser. *)
let validators =
  [
    ("--partition", fun s -> Result.map ignore (parse_partition s));
    ("--crash", fun s -> Result.map ignore (parse_crash s));
    ("--coord-crash", fun s -> Result.map ignore (parse_coord_crash s));
    ("--data-crash", fun s -> Result.map ignore (parse_data_crash s));
    ("--hb-loss", fun s -> Result.map ignore (parse_hb_loss s));
  ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* [prevalidate argv] scans for the fault-spec flags (both [--flag V] and
   [--flag=V] forms) and returns the first malformed spec's one-line
   message, or [None] when every occurrence parses. Unknown flags and
   everything else are left to cmdliner. *)
let prevalidate argv =
  let n = Array.length argv in
  let result = ref None in
  for i = 1 to n - 1 do
    if !result = None then
      List.iter
        (fun (flag, validate) ->
          if !result = None then
            let value =
              if argv.(i) = flag && i + 1 < n then Some argv.(i + 1)
              else
                let pfx = flag ^ "=" in
                if starts_with ~prefix:pfx argv.(i) then
                  Some
                    (String.sub argv.(i) (String.length pfx)
                       (String.length argv.(i) - String.length pfx))
                else None
            in
            match value with
            | Some v -> (
                match validate v with
                | Ok () -> ()
                | Error msg -> result := Some msg)
            | None -> ())
        validators
  done;
  !result
