(* Command-line driver for the 3V reproduction.

   threev_sim list                         list the experiments
   threev_sim experiment e1 [--quick]      run one experiment (or "all")
   threev_sim table1                       replay the paper's Table 1
   threev_sim run --engine 3v --workload hospital --nodes 4 ...
                                           free-form simulation run *)

module Sim = Simul.Sim
module Latency = Netsim.Latency
module Engine = Threev.Engine
module Policy = Threev.Policy
module Histogram = Stats.Histogram
open Cmdliner

(* ------------------------------------------------------------ list *)

let list_cmd =
  let doc = "List the experiments reproduced from the paper." in
  let run () =
    List.iter
      (fun (e : Harness.Experiments.t) ->
        Printf.printf "%-4s %-45s [%s]\n" e.id e.title e.paper_ref)
      Harness.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ------------------------------------------------------ experiment *)

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Shrink sweeps and durations.")

let experiment_cmd =
  let doc =
    "Run one experiment by id (t1, f1, f2, e1..e15, a1..a4), or $(b,all)."
  in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let run id quick =
    let run_one (e : Harness.Experiments.t) =
      Printf.printf "== %s: %s (%s) ==\n%!" e.id e.title e.paper_ref;
      print_string (e.run ~quick);
      print_newline ()
    in
    match String.lowercase_ascii id with
    | "all" ->
        List.iter run_one Harness.Experiments.all;
        `Ok ()
    | id -> (
        match Harness.Experiments.find id with
        | Some e ->
            run_one e;
            `Ok ()
        | None ->
            `Error
              (false, Printf.sprintf "unknown experiment %S (try `list`)" id))
  in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(ret (const run $ id_arg $ quick_flag))

(* --------------------------------------------------------- table1 *)

let table1_cmd =
  let doc = "Replay the paper's Table 1 execution and print the trace." in
  let run () =
    let replay = Harness.Table1.run () in
    print_string (Harness.Table1.render_trace replay);
    print_newline ();
    print_string (Harness.Table1.render_snapshots replay)
  in
  Cmd.v (Cmd.info "table1" ~doc) Term.(const run $ const ())

(* ---------------------------------------------------------- trace *)

let trace_cmd =
  let doc =
    "Run a small 3V workload with protocol tracing and print the events — \
     watch versions being assigned, dual writes, notices, counters and \
     advancement phases live."
  in
  let events_arg =
    Arg.(value & opt int 80 & info [ "events" ] ~doc:"Events to print.")
  in
  let seed_arg = Arg.(value & opt int 3 & info [ "seed" ] ~doc:"RNG seed.") in
  let cap_arg =
    Arg.(
      value
      & opt int Threev.Trace.default_capacity
      & info [ "trace-cap" ]
          ~doc:
            "Ring-buffer capacity: at most this many events are retained \
             (oldest evicted first).")
  in
  let run events seed cap =
    let sim = Sim.create ~seed () in
    let trace = Threev.Trace.create ~capacity:cap () in
    let cfg =
      {
        (Engine.default_config ~nodes:3) with
        Engine.latency = Latency.Exponential 0.01;
        think_time = 0.002;
        policy = Policy.Periodic 0.2;
      }
    in
    let engine = Engine.create sim cfg ~trace () in
    let gen =
      Workload.Hospital.generator
        {
          (Workload.Hospital.default ~nodes:3) with
          Workload.Hospital.arrival_rate = 60.;
          patients = 5;
        }
    in
    let rng = Random.State.make [| seed |] in
    Sim.spawn sim ~name:"trace-client" (fun () ->
        for i = 1 to 12 do
          ignore (Engine.submit engine (gen.Workload.Generator.make rng ~id:i));
          Sim.sleep sim 0.04
        done);
    ignore (Sim.run sim ~until:1.0 ());
    let shown = ref 0 in
    List.iter
      (fun (e : Threev.Trace.event) ->
        if !shown < events then begin
          incr shown;
          Printf.printf "%8.4f  %-6s %s\n" e.Threev.Trace.time
            e.Threev.Trace.site e.Threev.Trace.what
        end)
      (Threev.Trace.events trace);
    Printf.printf
      "... (%d events emitted, %d retained; --events N to see more, \
       --trace-cap N to retain more)\n"
      (Threev.Trace.total trace) (Threev.Trace.length trace)
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ events_arg $ seed_arg $ cap_arg)

(* ------------------------------------------------------------ run *)

type engine_choice = E_3v | E_2pc | E_nocoord | E_manual

let engine_conv =
  Arg.enum
    [ ("3v", E_3v); ("2pc", E_2pc); ("nocoord", E_nocoord); ("manual", E_manual) ]

type workload_choice = W_hospital | W_calls | W_pos | W_synthetic

let workload_conv =
  Arg.enum
    [
      ("hospital", W_hospital); ("calls", W_calls); ("pos", W_pos);
      ("synthetic", W_synthetic);
    ]

(* Fault-injection flags, shared syntax with lib/fault's plan builders:
   --partition takes either the legacy directed link SRC:DST:FROM:UNTIL or
   the set form SET@FROM:UNTIL[:oneway] (SET comma-separated node ids cut
   off from the rest of the cluster, [:oneway] silences only the set's
   outbound direction); --crash NODE@TIME:RESTART fail-stops a node. The
   grammars live in {!Cli_specs}, shared with the argv pre-scan in main
   (one-line usage + exit 2 on malformed specs) and the test suite. *)
type partition_spec = Cli_specs.partition_spec =
  | P_link of int * int * float * float  (** legacy SRC:DST:FROM:UNTIL *)
  | P_set of int list * float * float * bool  (** SET@FROM:UNTIL[:oneway] *)

let conv_of_spec parse print =
  Arg.conv ((fun s -> Result.map_error (fun m -> `Msg m) (parse s)), print)

let partition_conv =
  conv_of_spec Cli_specs.parse_partition (fun ppf -> function
    | P_link (a, b, c, d) -> Format.fprintf ppf "%d:%d:%g:%g" a b c d
    | P_set (set, f, u, oneway) ->
        Format.fprintf ppf "%s@%g:%g%s"
          (String.concat "," (List.map string_of_int set))
          f u
          (if oneway then ":oneway" else ""))

(* --hb-loss NODE@FROM:UNTIL[:PROB] drops NODE's outgoing heartbeats during
   a window — the false-suspicion provocation: protocol traffic is
   untouched, only the detector's evidence stream is cut. *)
let hb_loss_conv =
  conv_of_spec Cli_specs.parse_hb_loss (fun ppf (n, f, u, p) ->
      if p >= 1. then Format.fprintf ppf "%d@%g:%g" n f u
      else Format.fprintf ppf "%d@%g:%g:%g" n f u p)

let crash_conv =
  conv_of_spec Cli_specs.parse_crash (fun ppf (n, a, r) ->
      Format.fprintf ppf "%d@%g:%g" n a r)

let coord_crash_conv =
  conv_of_spec Cli_specs.parse_coord_crash (fun ppf (a, r) ->
      Format.fprintf ppf "%g:%g" a r)

let data_crash_conv =
  conv_of_spec Cli_specs.parse_data_crash (fun ppf (g, a, r) ->
      Format.fprintf ppf "%d@%g:%g" g a r)

let run_cmd =
  let doc = "Run a single engine × workload simulation and print a report." in
  let engine_arg =
    Arg.(
      value & opt engine_conv E_3v
      & info [ "engine" ] ~docv:"ENGINE" ~doc:"3v, 2pc, nocoord or manual.")
  in
  let workload_arg =
    Arg.(
      value & opt workload_conv W_hospital
      & info [ "workload" ] ~docv:"W" ~doc:"hospital, calls, pos or synthetic.")
  in
  let nodes_arg =
    Arg.(value & opt int 4 & info [ "nodes" ] ~doc:"Number of database nodes.")
  in
  let replicas_arg =
    Arg.(
      value & opt int 1
      & info [ "replicas" ]
          ~doc:
            "Replication factor k: nodes are partitioned into groups of k \
             consecutive replicas; commuting updates mirror to every group \
             member, reads fail over inside the group, and advancement \
             tolerates k-1 crashed replicas per group. 3v engine only; \
             requires --nc-ratio 0.")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ]
          ~doc:
            "Shard count S: nodes are partitioned into S contiguous blocks, \
             each with its own advancement coordinator, write-ahead log and \
             version frontier; update transactions stay within one shard, \
             cross-shard reads get a consistent per-shard read vector. S \
             must divide --nodes evenly and each block must be a multiple \
             of --replicas. 3v engine only; > 1 requires --workload \
             synthetic (the shard-aware generator) and --nc-ratio 0.")
  in
  let rate_arg =
    Arg.(
      value & opt float 400.
      & info [ "rate" ] ~doc:"Transaction arrival rate per virtual second.")
  in
  let duration_arg =
    Arg.(
      value & opt float 2.0
      & info [ "duration" ] ~doc:"Submission window in virtual seconds.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  let period_arg =
    Arg.(
      value & opt float 0.2
      & info [ "advancement-period" ]
          ~doc:"3V advancement / manual versioning period (virtual seconds).")
  in
  let nc_arg =
    Arg.(
      value & opt float 0.
      & info [ "nc-ratio" ]
          ~doc:"Fraction of non-commuting updates (pos/synthetic workloads).")
  in
  let read_arg =
    Arg.(
      value & opt float 0.25 & info [ "read-ratio" ] ~doc:"Read-only fraction.")
  in
  let drop_arg =
    Arg.(
      value & opt float 0.
      & info [ "drop-prob" ]
          ~doc:"Drop each remote message with this probability.")
  in
  let dup_arg =
    Arg.(
      value & opt float 0.
      & info [ "dup-prob" ]
          ~doc:"Duplicate each remote message with this probability.")
  in
  let partition_arg =
    Arg.(
      value
      & opt_all partition_conv []
      & info [ "partition" ] ~docv:"SPEC"
          ~doc:
            "Either SRC:DST:FROM:UNTIL — drop every message on one directed \
             link during [FROM, UNTIL) virtual seconds — or \
             SET\\@FROM:UNTIL[:oneway] — cut the comma-separated node set \
             SET off from the rest of the cluster for the window, both \
             directions by default, only the set's outbound links with \
             :oneway (an asymmetric partition: the set still hears the \
             cluster but is never heard). Repeatable.")
  in
  let hb_period_arg =
    Arg.(
      value & opt float 0.
      & info [ "hb-period" ]
          ~doc:
            "Heartbeat period in virtual seconds: every node beats to the \
             coordinator's failure detector and all liveness decisions \
             (read failover, quorum participation, watchdog excusal) come \
             from heartbeat suspicion instead of ground truth. 0 (default) \
             disables the detector. 3v engine only.")
  in
  let hb_timeout_arg =
    Arg.(
      value & opt float 0.1
      & info [ "hb-timeout" ]
          ~doc:
            "Base suspicion horizon (virtual seconds): a node whose \
             heartbeat is this overdue — adaptively stretched by observed \
             inter-arrival times — becomes suspected. Must exceed \
             --hb-period; used only when --hb-period > 0.")
  in
  let hb_loss_arg =
    Arg.(
      value
      & opt_all hb_loss_conv []
      & info [ "hb-loss" ] ~docv:"NODE\\@FROM:UNTIL[:PROB]"
          ~doc:
            "Drop NODE's outgoing heartbeats during [FROM, UNTIL) with \
             probability PROB (default 1) — provokes false suspicion of a \
             live node without touching protocol traffic. Repeatable; \
             requires --hb-period > 0.")
  in
  let crash_arg =
    Arg.(
      value
      & opt_all crash_conv []
      & info [ "crash" ] ~docv:"NODE\\@TIME:RESTART"
          ~doc:
            "Fail-stop NODE at TIME and restart it at RESTART: volatile \
             state is lost, the durable store and counters survive. \
             Repeatable; 3v engine only.")
  in
  let coord_crash_arg =
    Arg.(
      value
      & opt_all coord_crash_conv []
      & info [ "coord-crash" ] ~docv:"TIME:RESTART"
          ~doc:
            "Fail-stop the advancement coordinator at TIME and restart it \
             at RESTART: volatile phase progress is lost, the write-ahead \
             log survives and the in-flight advancement is re-driven from \
             its last logged phase. Repeatable; 3v engine only.")
  in
  let data_crash_arg =
    Arg.(
      value
      & opt_all data_crash_conv []
      & info [ "data-crash" ] ~docv:"GROUP\\@TIME:RESTART"
          ~doc:
            "Fail-stop all but one replica of replica group GROUP at TIME \
             and restart them at RESTART — the E14 fault shape: quorum \
             advancement and read failover carry the group on its last \
             live replica. Repeatable; requires --replicas > 1.")
  in
  let phase_deadline_arg =
    Arg.(
      value & opt float infinity
      & info [ "phase-deadline" ]
          ~doc:
            "Stall watchdog deadline (virtual seconds) per advancement \
             phase: past it the coordinator records a stall and re-sends \
             the phase message with bounded backoff. Default infinity \
             (watchdog off). 3v engine only.")
  in
  let fault_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "fault-seed" ]
          ~doc:
            "Seed of the dedicated fault RNG — fault decisions never \
             perturb the workload or latency RNG streams.")
  in
  let run engine workload nodes replicas shards rate duration seed period
      nc_ratio read_ratio drop_prob dup_prob partitions crashes coord_crashes
      data_crashes phase_deadline fault_seed hb_period hb_timeout hb_losses =
    (* Shard flags gate before generator construction: the shard-aware
       generator itself validates divisibility with a raw exception. *)
    if shards < 1 then `Error (false, "--shards must be at least 1")
    else if shards > nodes || nodes mod shards <> 0 then
      `Error (false, "--shards must divide --nodes evenly")
    else if shards > 1 && engine <> E_3v then
      `Error (false, "--shards supports only --engine 3v")
    else if shards > 1 && workload <> W_synthetic then
      `Error
        ( false,
          "--shards > 1 requires --workload synthetic (the shard-aware \
           generator; other workloads emit cross-shard update trees the \
           engine rejects)" )
    else if shards > 1 && nc_ratio > 0. then
      `Error (false, "--shards > 1 requires --nc-ratio 0")
    else if shards > 1 && nodes / shards mod replicas <> 0 then
      `Error
        ( false,
          "--shards: each shard block (nodes/shards) must be a multiple of \
           --replicas" )
    else
    let gen =
      match workload with
      | W_hospital ->
          Workload.Hospital.generator
            {
              (Workload.Hospital.default ~nodes) with
              Workload.Hospital.arrival_rate = rate;
              read_ratio;
            }
      | W_calls ->
          Workload.Call_recording.generator
            {
              (Workload.Call_recording.default ~nodes) with
              Workload.Call_recording.arrival_rate = rate;
              read_ratio;
            }
      | W_pos ->
          Workload.Point_of_sale.generator
            {
              (Workload.Point_of_sale.default ~nodes) with
              Workload.Point_of_sale.arrival_rate = rate;
              read_ratio;
              nc_ratio;
            }
      | W_synthetic ->
          Workload.Synthetic.generator
            {
              (Workload.Synthetic.default ~nodes) with
              Workload.Synthetic.arrival_rate = rate;
              shards;
              read_ratio;
              nc_ratio;
            }
    in
    let setup =
      { Harness.Runner.default_setup with Harness.Runner.seed; duration; settle = 5.0 }
    in
    let has_faults =
      drop_prob > 0. || dup_prob > 0. || partitions <> [] || crashes <> []
      || coord_crashes <> [] || data_crashes <> [] || hb_losses <> []
    in
    match
      if has_faults && (engine = E_nocoord || engine = E_manual) then
        Error "fault-injection flags support only --engine 3v or 2pc"
      else if coord_crashes <> [] && engine <> E_3v then
        Error "--coord-crash supports only --engine 3v"
      else if replicas <> 1 && engine <> E_3v then
        Error "--replicas supports only --engine 3v"
      else if replicas < 1 || replicas > nodes then
        Error "--replicas must be in 1..nodes"
      else if replicas > 1 && nc_ratio > 0. then
        Error "--replicas > 1 requires --nc-ratio 0 (commuting core only)"
      else if data_crashes <> [] && replicas <= 1 then
        Error "--data-crash requires --replicas > 1"
      else if phase_deadline <> infinity && phase_deadline <= 0. then
        Error "--phase-deadline must be positive"
      else if hb_period < 0. then Error "--hb-period must be non-negative"
      else if hb_period > 0. && engine <> E_3v then
        Error "--hb-period supports only --engine 3v"
      else if hb_period > 0. && hb_timeout <= hb_period then
        Error "--hb-timeout must exceed --hb-period"
      else if hb_losses <> [] && hb_period <= 0. then
        Error "--hb-loss requires --hb-period > 0"
      else if not has_faults then Ok None
      else
        try
          let rules =
            (if drop_prob > 0. || dup_prob > 0. then
               Fault.Plan.uniform_loss ~dup:dup_prob ~drop:drop_prob ()
             else [])
            @ List.concat_map
                (function
                  | P_link (src, dst, from_, until_) ->
                      [ Fault.Plan.partition ~src ~dst ~from_ ~until_ ]
                  | P_set (set, from_, until_, oneway) ->
                      (* The engine's endpoint space is nodes + one
                         coordinator per shard at ids [nodes..nodes+S-1]
                         (S = 1 when unsharded). *)
                      Fault.Plan.partition_set ~universe:(nodes + shards) ~set
                        ~oneway ~from_ ~until_ ())
                partitions
            @ List.concat_map
                (fun (node, from_, until_, prob) ->
                  Fault.Plan.heartbeat_loss ~src:node ~prob ~from_ ~until_ ())
                hb_losses
          in
          let placement = Repl.Placement.create ~nodes ~replicas in
          let crashes =
            List.map
              (fun (node, at, restart) -> Fault.Plan.crash ~node ~at ~restart)
              crashes
            @ List.concat_map
                (fun (group, at, restart) ->
                  if group < 0 || group >= Repl.Placement.group_count placement
                  then
                    invalid_arg
                      (Printf.sprintf "--data-crash: group %d out of range"
                         group)
                  else
                    Fault.Plan.crash_replicas
                      ~members:(Repl.Placement.members placement group)
                      ~keep:1 ~at ~restart)
                data_crashes
          in
          let coord_crashes =
            List.map
              (fun (at, restart) -> Fault.Plan.coord_crash ~at ~restart)
              coord_crashes
          in
          Ok
            (Some
               (Fault.Plan.make ~seed:fault_seed ~rules ~crashes ~coord_crashes
                  ()))
        with Invalid_argument m -> Error m
    with
    | Error m -> `Error (false, m)
    | Ok plan ->
    let sim = Sim.create ~seed () in
    let faults = Option.map (Fault.Injector.create sim) plan in
    let packed, extras =
      match engine with
      | E_3v ->
          let cfg =
            {
              (Engine.default_config ~nodes) with
              Engine.latency = Latency.Exponential 0.003;
              policy = Policy.Periodic period;
              nc_mode = nc_ratio > 0.;
              think_time = 0.0005;
              (* Any fault plan can drop or duplicate messages, so the
                 reliable channel comes on with it. *)
              reliable_channel = plan <> None;
              retransmit_timeout = 0.02;
              phase_deadline;
              replicas;
              shards;
              hb_period;
              hb_timeout;
              (* Matches the fuzz harness's replicated configuration, so
                 rendered reproducer lines replay the same routing. *)
            }
          in
          let eng = Engine.create sim cfg ?faults () in
          ( Engine.packed eng,
            fun () ->
              Printf.printf "advancements: %d\nmax versions: %d\n"
                (Engine.advancements_completed eng)
                (Engine.max_versions_ever eng) )
      | E_2pc ->
          let cfg =
            {
              (Baselines.Global_2pc.default_config ~nodes) with
              Baselines.Global_2pc.latency = Latency.Exponential 0.003;
              think_time = 0.0005;
              deadlock_timeout = 0.05;
            }
          in
          (Baselines.Global_2pc.packed
             (Baselines.Global_2pc.create ?faults sim cfg),
           fun () -> ())
      | E_nocoord ->
          let cfg =
            {
              (Baselines.No_coord.default_config ~nodes) with
              Baselines.No_coord.latency = Latency.Exponential 0.003;
              think_time = 0.0005;
            }
          in
          (Baselines.No_coord.packed (Baselines.No_coord.create sim cfg),
           fun () -> ())
      | E_manual ->
          let cfg =
            {
              (Baselines.Manual_versioning.default_config ~nodes) with
              Baselines.Manual_versioning.latency = Latency.Exponential 0.003;
              think_time = 0.0005;
              period;
            }
          in
          ( Baselines.Manual_versioning.packed
              (Baselines.Manual_versioning.create sim cfg),
            fun () -> () )
    in
    let outcome = Harness.Runner.drive sim packed gen setup in
    let atom = Harness.Runner.atomicity outcome in
    let stale = Harness.Runner.staleness outcome in
    let srz =
      (* Per-shard version numbers are incomparable across shards; tell the
         certifier which shard owns each writer so it only orders
         same-shard versions. *)
      let shard_of_node =
        if shards > 1 then Some (fun n -> n / (nodes / shards)) else None
      in
      Checker.Serializability.certify ?shard_of_node
        outcome.Harness.Runner.history
    in
    Printf.printf "engine: %s  workload: %s  nodes: %d  rate: %g/s\n"
      outcome.Harness.Runner.engine_name
      (Workload.Generator.name gen)
      nodes rate;
    Printf.printf
      "submitted: %d  committed: %d  aborted: %d  unfinished: %d  \
       throughput: %.0f/s\n"
      outcome.Harness.Runner.submitted outcome.Harness.Runner.committed outcome.Harness.Runner.aborted
      outcome.Harness.Runner.unfinished outcome.Harness.Runner.throughput;
    Format.printf "read latency:   %a@." Histogram.pp outcome.Harness.Runner.read_latency;
    Format.printf "update latency: %a@." Histogram.pp
      outcome.Harness.Runner.update_latency;
    Format.printf "atomicity: %a@." Checker.Atomicity.pp atom;
    Format.printf "staleness: %a@." Checker.Staleness.pp stale;
    Format.printf "serializability: %a@." Checker.Serializability.pp srz;
    extras ();
    Format.printf "engine counters: %a@." Stats.Counter_set.pp
      outcome.Harness.Runner.stats;
    `Ok ()
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run $ engine_arg $ workload_arg $ nodes_arg $ replicas_arg
       $ shards_arg $ rate_arg $ duration_arg $ seed_arg $ period_arg $ nc_arg $ read_arg
       $ drop_arg $ dup_arg $ partition_arg $ crash_arg $ coord_crash_arg
       $ data_crash_arg $ phase_deadline_arg $ fault_seed_arg $ hb_period_arg
       $ hb_timeout_arg $ hb_loss_arg))

(* ------------------------------------------------------------ fuzz *)

let fuzz_cmd =
  let doc =
    "Deterministic schedule fuzzing: sweep seeds × workloads × fault plans \
     × engines, certify every outcome with all offline checkers \
     (serializability, atomicity, version reads, replay), shrink failing \
     fault plans and print exact reproducer command lines. Strict engines \
     (3v, 3v-nc, 3v-repl, 2pc) must certify clean; the no-coordination and \
     manual baselines are expected to be flagged — that is the certifier's \
     positive control."
  in
  let runs_arg =
    Arg.(value & opt int 50 & info [ "runs" ] ~doc:"Number of cases to run.")
  in
  let fuzz_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "fuzz-seed" ]
          ~doc:
            "Master seed: case I of a sweep is a pure function of \
             (fuzz-seed, I), so any case replays exactly with --only.")
  in
  let only_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "only" ] ~docv:"INDEX"
          ~doc:"Run exactly one case index (an exact reproducer).")
  in
  let fuzz_quick_flag =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Shrink case durations for a sub-second CI smoke.")
  in
  let run runs fuzz_seed only quick =
    let summary =
      Harness.Fuzz.sweep ~runs ~fuzz_seed ?only ~quick ~log:print_endline ()
    in
    Format.printf "%a@." Harness.Fuzz.pp_summary summary;
    if Harness.Fuzz.ok summary then `Ok () else `Error (false, "fuzz failures")
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      ret (const run $ runs_arg $ fuzz_seed_arg $ only_arg $ fuzz_quick_flag))

(* ----------------------------------------------------------- lint *)

let lint_cmd =
  let doc =
    "Run the protocol-conformance & determinism static analyzer (rules \
     R1-R10) over lib/, bin/ and bench/. Exits non-zero on any non-waived \
     finding — or, with --baseline, on any finding not already in the \
     baseline report (the ratchet); the same gate runs inside `dune \
     runtest`."
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the machine-readable lint/v2 report.")
  in
  let rule_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rule" ] ~docv:"ID"
          ~doc:"Restrict the report to one rule id (R1..R10).")
  in
  let root_arg =
    Arg.(
      value & opt string "."
      & info [ "root" ] ~docv:"DIR"
          ~doc:"Repository root to scan (default: the current directory).")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Ratchet mode: fail only on findings absent from this committed \
             lint report (matched per occurrence on file/rule/message, so \
             pure line drift never fires). Old findings still print.")
  in
  let stale_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "check-stale" ] ~docv:"FILE"
          ~doc:
            "Fail when this committed report differs structurally from a \
             fresh run — the drift check that keeps the baseline honest.")
  in
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let read_report path =
    if not (Sys.file_exists path) then
      Error (Printf.sprintf "%s: no such file" path)
    else
      try Ok (Lint.Report.of_json (read_file path)) with
      | Lint.Report.Parse_error msg ->
          Error (Printf.sprintf "%s: not a lint report (%s)" path msg)
      | Sys_error msg -> Error msg
  in
  let run json rule root baseline stale =
    match rule with
    | Some r when not (List.mem_assoc r Lint.Rules.all) ->
        `Error
          ( false,
            Printf.sprintf "unknown rule %S (expected one of %s)" r
              (String.concat ", " (List.map fst Lint.Rules.all)) )
    | _ -> (
        let report = Lint.Driver.run ?rule ~root () in
        if json then print_endline (Lint.Report.to_json report)
        else Format.printf "%a" Lint.Report.render_human report;
        let stale_error =
          match stale with
          | None -> None
          | Some path -> (
              match read_report path with
              | Error e -> Some e
              | Ok committed ->
                  (* Structural comparison of the parsed documents: the
                     committed report must match a fresh full run (the
                     staleness leg ignores any --rule restriction). *)
                  let fresh =
                    if rule = None then report else Lint.Driver.run ~root ()
                  in
                  if
                    Lint.Report.json_of_string (Lint.Report.to_json fresh)
                    = Lint.Report.json_of_string (Lint.Report.to_json committed)
                  then None
                  else
                    Some
                      (Printf.sprintf
                         "%s is stale: it no longer matches a fresh run; \
                          refresh it with `threev_sim lint --json > %s`"
                         path path))
        in
        match stale_error with
        | Some e -> `Error (false, e)
        | None -> (
            match baseline with
            | None ->
                if Lint.Report.total report = 0 then `Ok ()
                else `Error (false, "lint findings")
            | Some path -> (
                match read_report path with
                | Error e -> `Error (false, e)
                | Ok base -> (
                    match
                      Lint.Report.diff
                        ~baseline:base.Lint.Report.findings
                        report.Lint.Report.findings
                    with
                    | [] -> `Ok ()
                    | fresh ->
                        if not json then begin
                          Format.printf
                            "lint: %d new finding%s not in baseline %s:@."
                            (List.length fresh)
                            (if List.length fresh = 1 then "" else "s")
                            path;
                          List.iter
                            (fun f ->
                              Format.printf "  %a@." Lint.Report.pp_finding f)
                            fresh
                        end;
                        `Error (false, "new lint findings")))))
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      ret (const run $ json_flag $ rule_arg $ root_arg $ baseline_arg
           $ stale_arg))

let () =
  let doc =
    "Reproduction of 'Scalable Versioning in Distributed Databases with \
     Commuting Updates' (ICDE 1997)."
  in
  let info = Cmd.info "threev_sim" ~version:"1.0.0" ~doc in
  (* Fault-spec flags fail fast, before cmdliner: one self-contained line
     on stderr and the conventional usage-error status 2 (cmdliner's own
     converter failure prints a four-line block and exits 124, which CI
     harnesses misread as a timeout). *)
  (match Cli_specs.prevalidate Sys.argv with
  | Some msg ->
      prerr_endline ("threev_sim: " ^ msg);
      exit 2
  | None -> ());
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; experiment_cmd; table1_cmd; trace_cmd; run_cmd; fuzz_cmd;
            lint_cmd;
          ]))
