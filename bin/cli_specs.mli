(** Fault-spec flag parsers for the [threev_sim] CLI, shared between the
    cmdliner converters and the argv pre-scan that turns a malformed spec
    into a one-line usage message and exit code 2 (instead of cmdliner's
    multi-line block and exit 124). Exposed as a library so the test
    suite can regression-test each flag's grammar directly. *)

(** A [--partition] spec: a directed link cut or a node-set cutoff. *)
type partition_spec =
  | P_link of int * int * float * float
      (** legacy [SRC:DST:FROM:UNTIL] directed link *)
  | P_set of int list * float * float * bool
      (** [SET@FROM:UNTIL[:oneway]] — node set cut off from the rest;
          [true] silences only the set's outbound direction *)

(** One-line usage string for [--partition]. *)
val partition_usage : string

(** One-line usage string for [--crash]. *)
val crash_usage : string

(** One-line usage string for [--coord-crash]. *)
val coord_crash_usage : string

(** One-line usage string for [--data-crash]. *)
val data_crash_usage : string

(** One-line usage string for [--hb-loss]. *)
val hb_loss_usage : string

(** [parse_partition s] parses [SRC:DST:FROM:UNTIL] or
    [SET@FROM:UNTIL[:oneway]]; the error is a single line embedding
    {!partition_usage}. *)
val parse_partition : string -> (partition_spec, string) result

(** [parse_crash s] parses [NODE@TIME:RESTART]. *)
val parse_crash : string -> (int * float * float, string) result

(** [parse_coord_crash s] parses [TIME:RESTART]. *)
val parse_coord_crash : string -> (float * float, string) result

(** [parse_data_crash s] parses [GROUP@TIME:RESTART]. *)
val parse_data_crash : string -> (int * float * float, string) result

(** [parse_hb_loss s] parses [NODE@FROM:UNTIL[:PROB]]; [PROB] defaults
    to 1 (drop everything in the window). *)
val parse_hb_loss : string -> (int * float * float * float, string) result

(** [prevalidate argv] scans [argv] for the fault-spec flags (both
    [--flag V] and [--flag=V] forms) and returns the first malformed
    occurrence's one-line message, [None] when all parse. Everything
    else is left to cmdliner. *)
val prevalidate : string array -> string option
