#!/usr/bin/env bash
# Formatting gate, wired into `dune runtest` via the root dune file.
#
# Gated on purpose: the gate runs `ocamlformat --check` over the source
# trees only when BOTH an ocamlformat binary is on PATH AND the project
# root carries an `.ocamlformat` profile. When either is missing (the CI
# container ships the compiler toolchain without ocamlformat) the gate
# skips cleanly with exit 0 so `dune runtest` stays green — it must never
# require installing anything.
#
# When a built threev_sim binary is available it also refreshes
# LINT_report.json (the machine-readable lint/v1 report committed alongside
# BENCH_scale.json); absent a build it skips that step gracefully.
set -eu

lint_exe=_build/default/bin/threev_sim.exe
if [ -x "$lint_exe" ]; then
  if "$lint_exe" lint --json >LINT_report.json.tmp 2>/dev/null; then
    mv LINT_report.json.tmp LINT_report.json
    echo "fmt gate: refreshed LINT_report.json"
  else
    rm -f LINT_report.json.tmp
    echo "fmt gate: lint reported findings; LINT_report.json not refreshed" >&2
    exit 1
  fi
else
  echo "fmt gate: no built threev_sim; skipping LINT_report.json refresh"
fi

if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "fmt gate: ocamlformat not on PATH; skipping (nothing to enforce)"
  exit 0
fi
if [ ! -f .ocamlformat ]; then
  echo "fmt gate: no .ocamlformat profile at the project root; skipping"
  exit 0
fi

status=0
checked=0
for f in $(find lib bin test bench -type f \( -name '*.ml' -o -name '*.mli' \) | sort); do
  checked=$((checked + 1))
  if ! ocamlformat --check "$f" >/dev/null 2>&1; then
    echo "fmt gate: $f is not formatted" >&2
    status=1
  fi
done
if [ "$status" -eq 0 ]; then
  echo "fmt gate: $checked files formatted"
fi
exit $status
