#!/usr/bin/env bash
# Formatting gate, wired into `dune runtest` via the root dune file.
#
# Gated on purpose: the gate runs `ocamlformat --check` over the source
# trees only when BOTH an ocamlformat binary is on PATH AND the project
# root carries an `.ocamlformat` profile. When either is missing (the CI
# container ships the compiler toolchain without ocamlformat) the gate
# skips cleanly with exit 0 so `dune runtest` stays green — it must never
# require installing anything.
#
# When a built threev_sim binary is available it also refreshes
# LINT_report.json (the machine-readable lint/v2 report committed alongside
# BENCH_scale.json); absent a build it skips that step gracefully. The
# refresh runs under the ratchet (--baseline): pre-existing baselined
# findings do not block it, only findings new since the committed report —
# so the baseline can be re-stamped without first driving the debt to
# zero. The enforcement twin of this refresh is the runtest lint gate
# (root dune file), which also fails when the committed report drifts
# from a fresh run (--check-stale).
set -eu

lint_exe=_build/default/bin/threev_sim.exe
if [ -x "$lint_exe" ]; then
  # Inside the dune sandbox the committed report may not be on disk; the
  # ratchet only applies when it is.
  baseline_args=""
  if [ -f LINT_report.json ]; then
    baseline_args="--baseline LINT_report.json"
  fi
  if "$lint_exe" lint --json $baseline_args \
       >LINT_report.json.tmp 2>/dev/null; then
    mv LINT_report.json.tmp LINT_report.json
    echo "fmt gate: refreshed LINT_report.json"
  else
    rm -f LINT_report.json.tmp
    echo "fmt gate: lint reported new findings; LINT_report.json not refreshed" >&2
    exit 1
  fi
else
  echo "fmt gate: no built threev_sim; skipping LINT_report.json refresh"
fi

if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "fmt gate: ocamlformat not on PATH; skipping (nothing to enforce)"
  exit 0
fi
if [ ! -f .ocamlformat ]; then
  echo "fmt gate: no .ocamlformat profile at the project root; skipping"
  exit 0
fi

status=0
checked=0
for f in $(find lib bin test bench -type f \( -name '*.ml' -o -name '*.mli' \) | sort); do
  checked=$((checked + 1))
  if ! ocamlformat --check "$f" >/dev/null 2>&1; then
    echo "fmt gate: $f is not formatted" >&2
    status=1
  fi
done
if [ "$status" -eq 0 ]; then
  echo "fmt gate: $checked files formatted"
fi
exit $status
