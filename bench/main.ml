(* Benchmark harness.

   Two layers:

   1. The experiment suite — every table/figure/claim reproduced from the
      paper (DESIGN.md §3): run with no arguments, or name experiment ids
      (e.g. `dune exec bench/main.exe -- e1 e4`). `--quick` shrinks sweeps.

   2. Bechamel micro-benchmarks — one Test.make per experiment family,
      measuring the wall-clock cost of the underlying machinery (engine
      steps, store writes, counter polls, checker passes) so regressions in
      the substrate show up independently of the simulated results. *)

module Sim = Simul.Sim
module Engine = Threev.Engine
module Mvstore = Store.Mvstore
module Spec = Txn.Spec
module Op = Txn.Op
module Value = Txn.Value
module Lockmgr = Txn.Lockmgr
open Bechamel
open Toolkit

(* ------------------------------------------------- micro-benchmarks *)

(* T1 family: a complete scripted protocol replay, advancement included. *)
let bench_table1 =
  Test.make ~name:"t1: table1 full replay"
    (Staged.stage (fun () -> ignore (Harness.Table1.run ())))

(* E1 family: a small end-to-end 3V run (4 nodes, 200 transactions). *)
let bench_small_run =
  Test.make ~name:"e1: 3v 4-node 200-txn run"
    (Staged.stage (fun () ->
         let sim = Sim.create ~seed:9 () in
         let engine =
           Engine.create sim
             {
               (Engine.default_config ~nodes:4) with
               Engine.policy = Threev.Policy.Periodic 0.1;
             }
             ()
         in
         let gen =
           Workload.Synthetic.generator
             {
               (Workload.Synthetic.default ~nodes:4) with
               Workload.Synthetic.arrival_rate = 400.;
             }
         in
         ignore
           (Harness.Runner.drive sim (Engine.packed engine) gen
              {
                Harness.Runner.seed = 9;
                duration = 0.5;
                settle = 2.0;
                max_txns = 200;
              })))

(* E2 family: versioned-store write path (copy-on-update + upward write). *)
let bench_store_write =
  let store = Mvstore.create () in
  let i = ref 0 in
  Test.make ~name:"e2: mvstore write_upward"
    (Staged.stage (fun () ->
         incr i;
         ignore
           (Mvstore.write_upward store
              ~key:(Printf.sprintf "k%d" (!i land 1023))
              ~version:1 ~init:Value.empty
              ~f:(Value.incr ~txn:!i ~delta:1.))))

(* E4 family: counter-table snapshot, the unit of a coordinator poll. *)
let bench_counter_poll =
  let cnt = Threev.Counters.create ~nodes:16 in
  let () =
    for v = 1 to 2 do
      for dst = 0 to 15 do
        Threev.Counters.incr_r cnt ~version:v ~dst
      done
    done
  in
  Test.make ~name:"e4: counter snapshot (16 nodes)"
    (Staged.stage (fun () ->
         ignore (Threev.Counters.snapshot_r cnt ~version:1);
         ignore (Threev.Counters.snapshot_c cnt ~version:1)))

(* E5 family: lock manager acquire/release round for commute locks. *)
let bench_lockmgr =
  let sim = Sim.create () in
  let locks = Lockmgr.create sim () in
  let i = ref 0 in
  Test.make ~name:"e5: commute lock acquire+release"
    (Staged.stage (fun () ->
         incr i;
         ignore
           (Lockmgr.acquire locks ~owner:!i ~key:"hot"
              ~mode:Lockmgr.Commute_update ());
         Lockmgr.release_all locks ~owner:!i))

(* Shared history for the checker benchmarks, generated once. *)
let checker_history =
  lazy
    (let sim = Sim.create ~seed:4 () in
     let engine =
       Engine.create sim
         {
           (Engine.default_config ~nodes:4) with
           Engine.policy = Threev.Policy.Periodic 0.2;
         }
         ()
     in
     let gen =
       Workload.Hospital.generator
         {
           (Workload.Hospital.default ~nodes:4) with
           Workload.Hospital.arrival_rate = 600.;
         }
     in
     (Harness.Runner.drive sim (Engine.packed engine) gen
        { Harness.Runner.seed = 4; duration = 1.0; settle = 3.0; max_txns = 1000 })
       .Harness.Runner.history)

(* F1 family: the atomic-visibility checker over a realistic history. *)
let bench_checker =
  Test.make ~name:"f1: atomicity check (1k txns)"
    (Staged.stage (fun () ->
         ignore (Checker.Atomicity.check (Lazy.force checker_history))))

(* E3/E8 family: staleness measurement over the same history. *)
let bench_staleness =
  Test.make ~name:"e3: staleness measure (1k txns)"
    (Staged.stage (fun () ->
         ignore (Checker.Staleness.measure (Lazy.force checker_history))))

(* E6/E7 family: the simulation kernel itself. *)
let bench_sim_kernel =
  Test.make ~name:"e7: sim kernel 5k events"
    (Staged.stage (fun () ->
         let sim = Sim.create () in
         for i = 1 to 100 do
           Sim.spawn sim ~name:(string_of_int i) (fun () ->
               for _ = 1 to 50 do
                 Sim.sleep sim 0.001
               done)
         done;
         ignore (Sim.run sim ())))

let micro_tests =
  [
    bench_table1; bench_small_run; bench_store_write; bench_counter_poll;
    bench_lockmgr; bench_checker; bench_staleness; bench_sim_kernel;
  ]

let run_micro () =
  print_endline "## Micro-benchmarks (Bechamel, monotonic clock)\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 10)
      ~stabilize:false ()
  in
  let table =
    Stats.Table.create ~title:"micro-benchmarks"
      ~columns:[ "benchmark"; "time/run"; "r^2" ]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      (* Rows sorted by benchmark name: bechamel hands results back in a
         hash table, and the report order must not depend on its layout. *)
      Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc)
        analyzed []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.iter (fun (name, ols_result) ->
             let time_ns =
               match Analyze.OLS.estimates ols_result with
               | Some (t :: _) -> t
               | Some [] | None -> Float.nan
             in
             let r2 =
               match Analyze.OLS.r_square ols_result with
               | Some r -> Printf.sprintf "%.4f" r
               | None -> "n/a"
             in
             let pretty =
               if time_ns >= 1e9 then Printf.sprintf "%.3f s" (time_ns /. 1e9)
               else if time_ns >= 1e6 then
                 Printf.sprintf "%.3f ms" (time_ns /. 1e6)
               else if time_ns >= 1e3 then
                 Printf.sprintf "%.3f us" (time_ns /. 1e3)
               else Printf.sprintf "%.1f ns" time_ns
             in
             Stats.Table.add_row table [ name; pretty; r2 ]))
    micro_tests;
  Stats.Table.print table

(* ------------------------------------------------------ scale suite *)

(* The BENCH trajectory: end-to-end 3V runs at 4/16/64/128 nodes with an
   arrival-rate sweep, recording simulated throughput against real machine
   cost (wall seconds, events/sec, peak heap) into BENCH_scale.json. Each
   run traces through a small bounded ring (capacity 4096) to demonstrate
   that trace memory stays O(capacity) while the run emits orders of
   magnitude more events — the row records both retained and total. *)

type scale_row = {
  sr_nodes : int;
  sr_rate : float;
  sr_shards : int;
  sr_sim_duration : float;
  sr_submitted : int;
  sr_committed : int;
  sr_events : int;
  sr_wall : float;
  sr_peak_heap_words : int;
  sr_trace_capacity : int;
  sr_trace_retained : int;
  sr_trace_total : int;
}

let scale_trace_capacity = 4096

let scale_run ?(shards = 1) ~nodes ~rate ~duration ~settle () =
  (* Pre-size the event heap and per-node inboxes from the configured
     arrival rate: the steady-state event population is roughly (in-flight
     messages + sleeping fibers) ~ rate × a few mean latencies, so sizing
     the backing arrays up front removes every doubling copy from the
     measured region. Capacity hints never affect the schedule. *)
  let queue_capacity = max 1024 (int_of_float (rate /. 4.)) in
  let sim = Sim.create ~seed:(1000 + nodes) ~queue_capacity () in
  let trace = Threev.Trace.create ~capacity:scale_trace_capacity () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.latency = Netsim.Latency.Exponential 0.002;
      think_time = 0.0001;
      (* Advancement cadence: the 512/1024-node rows tighten the period —
         the low-staleness regime (staleness ∝ period, e3) where
         advancement cost dominates the coordinator's wall time and the
         per-shard split pays. The period is a function of nodes only, so
         the sharded row and the single-coordinator row at the same
         (nodes, rate) run identical configurations apart from [shards] —
         the comparison stays apples-to-apples. 1024 nodes gets 0.1 rather
         than 0.05 because a single coordinator needs ~0.2 simulated
         seconds per 1024-node advancement: at 0.05 it is hopelessly
         saturated and the sharded side would be measured against a
         pathology rather than a busy-but-live baseline. *)
      policy =
        Threev.Policy.Periodic
          (if nodes >= 1024 then 0.1 else if nodes >= 512 then 0.05 else 0.25);
      shards;
      expected_inbox_depth =
        max 16 (int_of_float (rate *. 0.01 /. float_of_int nodes));
    }
  in
  let engine = Engine.create sim cfg ~trace () in
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes) with
        Workload.Synthetic.arrival_rate = rate;
        shards;
        read_ratio = 0.3;
        fanout = 2;
      }
  in
  let wall0 = Unix.gettimeofday () in
  let outcome =
    Harness.Runner.drive sim (Engine.packed engine) gen
      { Harness.Runner.seed = nodes; duration; settle; max_txns = 500_000 }
  in
  let wall = Unix.gettimeofday () -. wall0 in
  (if Sys.getenv_opt "SCALE_DEBUG_STATS" <> None then begin
     Stats.Counter_set.to_list outcome.Harness.Runner.stats
     |> List.sort (fun (_, a) (_, b) -> compare b a)
     |> List.iter (fun (k, v) -> Printf.printf "    stat %-40s %d\n%!" k v);
     let g = Gc.stat () in
     Printf.printf
       "    gc minor_cols=%d major_cols=%d minor_words=%.0fM promoted=%.0fM\n%!"
       g.Gc.minor_collections g.Gc.major_collections
       (g.Gc.minor_words /. 1e6) (g.Gc.promoted_words /. 1e6)
   end);
  {
    sr_nodes = nodes;
    sr_rate = rate;
    sr_shards = shards;
    sr_sim_duration = duration;
    sr_submitted = outcome.Harness.Runner.submitted;
    sr_committed = outcome.Harness.Runner.committed;
    sr_events = Sim.events_executed sim;
    sr_wall = wall;
    sr_peak_heap_words = (Gc.quick_stat ()).Gc.top_heap_words;
    sr_trace_capacity = scale_trace_capacity;
    sr_trace_retained = Threev.Trace.length trace;
    sr_trace_total = Threev.Trace.total trace;
  }

let scale_json rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"schema\": \"bench_scale/v1\",\n  \"rows\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"nodes\": %d, \"arrival_rate\": %.1f, \"shards\": %d, \
            \"sim_duration_s\": %.2f, \"submitted\": %d, \"committed\": %d, \
            \"txns_per_sec_wall\": %.1f, \"events\": %d, \
            \"events_per_sec_wall\": %.1f, \"wall_s\": %.3f, \
            \"peak_heap_words\": %d, \"trace_capacity\": %d, \
            \"trace_retained\": %d, \"trace_total\": %d }"
           r.sr_nodes r.sr_rate r.sr_shards r.sr_sim_duration r.sr_submitted
           r.sr_committed
           (float_of_int r.sr_committed /. r.sr_wall)
           r.sr_events
           (float_of_int r.sr_events /. r.sr_wall)
           r.sr_wall r.sr_peak_heap_words r.sr_trace_capacity
           r.sr_trace_retained r.sr_trace_total))
    rows;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

(* `main.exe scale [--quick]`: run the sweep and write BENCH_scale.json in
   the current directory (run from the repo root to refresh the recorded
   trajectory). The full sweep now tops out at 1024 nodes; its largest row
   runs several million simulator events, so expect tens of seconds of wall
   time. --quick shrinks to a sub-second sanity sweep and skips the file
   write. *)
let run_scale ~quick =
  (* (nodes, rate multiplier, shards). The 512/1024-node rows run at the
     tight advancement cadence (see the policy note in [scale_run]) both
     single-coordinator and sharded, holding the shard block constant at
     64 nodes (512 -> S=8, 1024 -> S=16): per-shard advancement cost then
     stays flat as the cluster grows, while the single coordinator's
     O(nodes)-wide polls and O(nodes²) matrices saturate — it cannot even
     sustain the cadence, and its wall time per advancement is where the
     sharded rows' ≥ 2x events/sec advantage comes from. The 512-node rows
     use lower arrival multipliers than the mid-size rows on purpose:
     per-event transaction cost is identical under both layouts, so a high
     arrival rate only dilutes the advancement-cost asymmetry the row
     exists to expose. *)
  let plan =
    if quick then [ (4, 1., 1); (16, 1., 1) ]
    else
      [ (4, 1., 1); (4, 2., 1); (16, 1., 1); (16, 2., 1); (64, 1., 1);
        (64, 2., 1); (128, 1., 1); (128, 2.5, 1); (512, 0.25, 1);
        (512, 0.5, 1); (1024, 0.5, 1); (1024, 1., 1); (512, 0.25, 8);
        (512, 0.5, 8); (1024, 0.5, 16); (1024, 1., 16) ]
  in
  let duration = if quick then 0.3 else 1.5 in
  let settle = if quick then 1.0 else 3.0 in
  let rows =
    List.map
      (fun (nodes, mult, shards) ->
        let rate = 150. *. float_of_int nodes *. mult in
        let r = scale_run ~shards ~nodes ~rate ~duration ~settle () in
        Printf.printf
          "scale: %4d nodes S=%d @ %8.0f txns/s sim -> %8d events, %6.3fs \
           wall, %5.2f Mev/s, trace %d/%d (cap %d)\n%!"
          r.sr_nodes r.sr_shards r.sr_rate r.sr_events r.sr_wall
          (float_of_int r.sr_events /. r.sr_wall /. 1e6)
          r.sr_trace_retained r.sr_trace_total r.sr_trace_capacity;
        r)
      plan
  in
  if not quick then begin
    let oc = open_out "BENCH_scale.json" in
    output_string oc (scale_json rows);
    close_out oc;
    print_endline "scale: wrote BENCH_scale.json"
  end

(* Scan [line] for [name]: and parse the float that follows. The BENCH
   files are written by [scale_json] above with one row per line, so a
   substring scan is an exact parser for our own output and avoids a JSON
   dependency. *)
let json_float_field line name =
  let needle = "\"" ^ name ^ "\": " in
  let nlen = String.length needle and llen = String.length line in
  let rec find i =
    if i + nlen > llen then None
    else if String.sub line i nlen = needle then
      let j = ref (i + nlen) in
      while
        !j < llen
        && (match line.[!j] with '0' .. '9' | '.' | '-' | 'e' -> true | _ -> false)
      do
        incr j
      done;
      float_of_string_opt (String.sub line (i + nlen) (!j - i - nlen))
    else find (i + 1)
  in
  find 0

(* The recorded (events/sec-wall, peak heap words) of the BENCH_scale.json
   row matching [(nodes, rate, shards)], if the trajectory file exists next
   to the cwd. Rows written before the shards field existed match
   [shards = 1]. The peak-heap component is [None] for rows written before
   the field existed. *)
let scale_baseline ?(shards = 1) ~nodes ~rate () =
  match open_in "BENCH_scale.json" with
  | exception Sys_error _ -> None
  | ic ->
      let target_n = Printf.sprintf "\"nodes\": %d," nodes in
      let contains line sub =
        let sl = String.length sub and ll = String.length line in
        let rec go i =
          i + sl <= ll && (String.sub line i sl = sub || go (i + 1))
        in
        go 0
      in
      let rec scan () =
        match input_line ic with
        | exception End_of_file ->
            close_in ic;
            None
        | line ->
            if
              contains line target_n
              && json_float_field line "arrival_rate" = Some rate
              && (match json_float_field line "shards" with
                 | Some s -> s = float_of_int shards
                 | None -> shards = 1)
            then begin
              close_in ic;
              match json_float_field line "events_per_sec_wall" with
              | None -> None
              | Some eps -> Some (eps, json_float_field line "peak_heap_words")
            end
            else scan ()
      in
      scan ()

(* `main.exe scale-smoke`: the sub-second CI gate. Fails (exit 1) on crash
   or on the unbounded-memory sentinel — a trace ring that exceeded its
   capacity. When BENCH_scale.json is present it additionally re-runs the
   16-node top row (shortened) best-of-three and fails on an events/sec
   regression worse than 15% against the recorded trajectory; absent the
   file, the throughput leg is skipped so fresh clones still gate on the
   memory sentinel alone. *)
let run_scale_smoke () =
  let cap = 64 in
  let sim = Sim.create ~seed:7 () in
  let trace = Threev.Trace.create ~capacity:cap () in
  let cfg =
    {
      (Engine.default_config ~nodes:8) with
      Engine.latency = Netsim.Latency.Exponential 0.002;
      think_time = 0.0001;
      policy = Threev.Policy.Periodic 0.25;
    }
  in
  let engine = Engine.create sim cfg ~trace () in
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes:8) with
        Workload.Synthetic.arrival_rate = 1200.;
        fanout = 2;
      }
  in
  let outcome =
    Harness.Runner.drive sim (Engine.packed engine) gen
      { Harness.Runner.seed = 7; duration = 0.3; settle = 1.5; max_txns = 5_000 }
  in
  let fail msg =
    prerr_endline ("scale-smoke: FAILED: " ^ msg);
    exit 1
  in
  if outcome.Harness.Runner.committed = 0 then fail "no transactions committed";
  if Threev.Trace.length trace > cap then
    fail
      (Printf.sprintf "trace ring exceeded capacity (%d > %d)"
         (Threev.Trace.length trace) cap);
  if Threev.Trace.length trace <> List.length (Threev.Trace.events trace) then
    fail "trace length disagrees with materialized events";
  if Threev.Trace.total trace <= cap then
    fail "run too small to exercise ring eviction";
  (* Throughput/memory ratchet, matched against the recorded trajectory by
     (nodes, arrival_rate, shards) so the 512/1024 and sharded rows ratchet
     too, not just the 16-node row. Each probe re-runs its row shortened;
     the big rows get a single shorter run and a looser floor (fixed
     engine-construction cost amortizes worse over a short window), which
     still catches the step-function regressions that matter at that
     scale. The memory leg only applies to the first (small) probe: peak
     heap is process-global and monotone, so rows probed after a 512-node
     run would inherit its footprint. *)
  let probe ~nodes ~rate ~shards ~runs ~duration ~floor_frac ~mem =
    match scale_baseline ~shards ~nodes ~rate () with
    | None ->
        Printf.printf
          "scale-smoke: no baseline row for %d nodes @ %.0f S=%d, probe \
           skipped\n"
          nodes rate shards
    | Some (baseline, baseline_peak) ->
        let best = ref 0. in
        let peak = ref max_int in
        for _ = 1 to runs do
          let r = scale_run ~shards ~nodes ~rate ~duration ~settle:1.0 () in
          let eps = float_of_int r.sr_events /. r.sr_wall in
          if eps > !best then best := eps;
          if r.sr_peak_heap_words < !peak then peak := r.sr_peak_heap_words
        done;
        let floor_ = floor_frac *. baseline in
        if !best < floor_ then
          fail
            (Printf.sprintf
               "throughput regression at %d nodes @ %.0f S=%d: best-of-%d \
                %.0f events/s vs recorded %.0f (floor %.0f); refresh with \
                `dune exec bench/main.exe -- scale` if intentional"
               nodes rate shards runs !best baseline floor_);
        Printf.printf
          "scale-smoke: throughput ok at %d nodes S=%d (best-of-%d %.2f \
           Mev/s vs recorded %.2f, floor %.0f%%)\n"
          nodes shards runs (!best /. 1e6) (baseline /. 1e6)
          (100. *. floor_frac);
        if mem then
          (* Memory gate: the smoke re-run is strictly smaller than the
             recorded row, so its peak heap must not exceed the recorded
             peak by more than 20% — a leak on the hot path shows up here
             long before the trace-ring sentinel trips. *)
          match baseline_peak with
          | None ->
              print_endline
                "scale-smoke: baseline row lacks peak_heap_words, memory \
                 leg skipped"
          | Some bp ->
              let ceiling = 1.2 *. bp in
              if float_of_int !peak > ceiling then
                fail
                  (Printf.sprintf
                     "peak heap regression: best-of-%d %d words vs recorded \
                      %.0f (ceiling %.0f); refresh with `dune exec \
                      bench/main.exe -- scale` if intentional"
                     runs !peak bp ceiling);
              Printf.printf
                "scale-smoke: peak heap ok (%d words vs recorded %.0f, \
                 ceiling +20%%)\n"
                !peak bp
  in
  probe ~nodes:16 ~rate:4800. ~shards:1 ~runs:3 ~duration:0.4 ~floor_frac:0.85
    ~mem:true;
  probe ~nodes:512 ~rate:38400. ~shards:1 ~runs:1 ~duration:0.1
    ~floor_frac:0.4 ~mem:false;
  probe ~nodes:512 ~rate:38400. ~shards:8 ~runs:1 ~duration:0.1
    ~floor_frac:0.4 ~mem:false;
  (* Duplicate-filter bound: a short lossy run over the reliable channel,
     retransmit-heavy by construction. Ack-floor pruning must keep the
     network's delivered_seen table at the in-flight window, not the run
     length — before pruning, this table grew one entry per distinct
     delivered (src, dst, seq) forever. *)
  let sim2 = Sim.create ~seed:11 () in
  let plan =
    Fault.Plan.make ~seed:11 ~rules:(Fault.Plan.uniform_loss ~drop:0.15 ()) ()
  in
  let faults = Fault.Injector.create sim2 plan in
  let cfg2 =
    {
      (Engine.default_config ~nodes:6) with
      Engine.latency = Netsim.Latency.Exponential 0.002;
      think_time = 0.0001;
      policy = Threev.Policy.Periodic 0.25;
      reliable_channel = true;
      retransmit_timeout = 0.02;
    }
  in
  let engine2 = Engine.create sim2 cfg2 ~faults () in
  let gen2 =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes:6) with
        Workload.Synthetic.arrival_rate = 600.;
        fanout = 2;
      }
  in
  let outcome2 =
    Harness.Runner.drive sim2 (Engine.packed engine2) gen2
      { Harness.Runner.seed = 11; duration = 0.5; settle = 2.0; max_txns = 5_000 }
  in
  let retrans =
    Stats.Counter_set.get outcome2.Harness.Runner.stats "net.retransmissions"
  in
  if retrans = 0 then fail "lossy channel run produced no retransmissions";
  let seen = Engine.delivered_seen_size engine2 in
  let msgs = Engine.messages_sent engine2 in
  (* In-flight bound with slack: entries survive only for messages whose
     acks are still outstanding. A tenth of all traffic ever sent is far
     above any honest in-flight window and far below the unpruned count. *)
  let bound = max 64 (msgs / 10) in
  if seen > bound then
    fail
      (Printf.sprintf
         "delivered_seen unbounded: %d entries after %d messages (bound %d)"
         seen msgs bound);
  Printf.printf
    "scale-smoke: delivered_seen bounded (%d entries, %d messages, %d \
     retransmissions)\n"
    seen msgs retrans;
  Printf.printf
    "scale-smoke: ok (%d committed, %d sim events, trace %d/%d, cap %d)\n"
    outcome.Harness.Runner.committed (Sim.events_executed sim)
    (Threev.Trace.length trace) (Threev.Trace.total trace) cap

(* ------------------------------------------------- replication suite *)

(* The BENCH repl trajectory: end-to-end runs at 64 nodes comparing k = 1
   (replication disabled, every group a singleton) against k = 3 (every
   commuting write mirrored to two extra replicas, reads failing over along
   the group order). Rows record the replication overhead — mirror count,
   message amplification, machine cost — into BENCH_repl.json. *)

type repl_row = {
  rr_nodes : int;
  rr_replicas : int;
  rr_rate : float;
  rr_sim_duration : float;
  rr_submitted : int;
  rr_committed : int;
  rr_advancements : int;
  rr_mirrors : int;
  rr_remote_msgs : int;
  rr_events : int;
  rr_wall : float;
}

let repl_run ~nodes ~replicas ~rate ~duration ~settle =
  let sim = Sim.create ~seed:(2000 + nodes + replicas) () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.replicas;
      latency = Netsim.Latency.Exponential 0.002;
      think_time = 0.0001;
      policy = Threev.Policy.Periodic 0.25;
    }
  in
  let engine = Engine.create sim cfg () in
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes) with
        Workload.Synthetic.arrival_rate = rate;
        read_ratio = 0.3;
        fanout = 2;
      }
  in
  let wall0 = Unix.gettimeofday () in
  let outcome =
    Harness.Runner.drive sim (Engine.packed engine) gen
      { Harness.Runner.seed = nodes; duration; settle; max_txns = 500_000 }
  in
  let wall = Unix.gettimeofday () -. wall0 in
  {
    rr_nodes = nodes;
    rr_replicas = replicas;
    rr_rate = rate;
    rr_sim_duration = duration;
    rr_submitted = outcome.Harness.Runner.submitted;
    rr_committed = outcome.Harness.Runner.committed;
    rr_advancements = Engine.advancements_completed engine;
    rr_mirrors =
      Stats.Counter_set.get outcome.Harness.Runner.stats "repl.mirrors";
    rr_remote_msgs = Engine.remote_messages_sent engine;
    rr_events = Sim.events_executed sim;
    rr_wall = wall;
  }

let repl_json rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"schema\": \"bench_repl/v1\",\n  \"rows\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"nodes\": %d, \"replicas\": %d, \"arrival_rate\": %.1f, \
            \"sim_duration_s\": %.2f, \"submitted\": %d, \"committed\": %d, \
            \"advancements\": %d, \"mirrors\": %d, \"remote_messages\": %d, \
            \"events\": %d, \"wall_s\": %.3f, \
            \"events_per_sec_wall\": %.1f }"
           r.rr_nodes r.rr_replicas r.rr_rate r.rr_sim_duration r.rr_submitted
           r.rr_committed r.rr_advancements r.rr_mirrors r.rr_remote_msgs
           r.rr_events r.rr_wall
           (float_of_int r.rr_events /. r.rr_wall)))
    rows;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

(* `main.exe repl [--quick]`: k = 1 vs k = 3 at 64 nodes; write
   BENCH_repl.json from the repo root. --quick shrinks to 16 nodes and
   skips the file write. *)
let run_repl ~quick =
  let nodes = if quick then 16 else 64 in
  let duration = if quick then 0.3 else 1.0 in
  let settle = if quick then 1.5 else 3.0 in
  let rate = 100. *. float_of_int nodes in
  let rows =
    List.map
      (fun replicas ->
        let r = repl_run ~nodes ~replicas ~rate ~duration ~settle in
        Printf.printf
          "repl: %3d nodes k=%d @ %7.0f txns/s sim -> %6d committed, %7d \
           mirrors, %8d events, %6.3fs wall\n%!"
          r.rr_nodes r.rr_replicas r.rr_rate r.rr_committed r.rr_mirrors
          r.rr_events r.rr_wall;
        r)
      [ 1; 3 ]
  in
  if not quick then begin
    let oc = open_out "BENCH_repl.json" in
    output_string oc (repl_json rows);
    close_out oc;
    print_endline "repl: wrote BENCH_repl.json"
  end

(* `main.exe repl-smoke`: the sub-second replication CI gate — a tiny k = 3
   run (6 nodes, two groups) that crashes one replica of group 0 across an
   advancement window. Fails (exit 1) on any checker anomaly or on stalled
   advancement — quorum polling must complete with the replica down — never
   on timing. *)
let run_repl_smoke () =
  let nodes = 6 in
  let sim = Sim.create ~seed:23 () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.replicas = 3;
      latency = Netsim.Latency.Exponential 0.003;
      think_time = 0.0005;
      policy = Threev.Policy.Periodic 0.2;
      reliable_channel = true;
      retransmit_timeout = 0.02;
    }
  in
  let faults =
    Fault.Injector.create sim
      (Fault.Plan.make ~seed:23
         ~crashes:[ Fault.Plan.crash ~node:0 ~at:0.25 ~restart:0.7 ] ())
  in
  let engine = Engine.create sim cfg ~faults () in
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes) with
        Workload.Synthetic.arrival_rate = 400.;
        read_ratio = 0.3;
        fanout = 2;
        keys_per_node = 15;
      }
  in
  let outcome =
    Harness.Runner.drive sim (Engine.packed engine) gen
      { Harness.Runner.seed = 23; duration = 0.9; settle = 4.0; max_txns = 5_000 }
  in
  let fail msg =
    prerr_endline ("repl-smoke: FAILED: " ^ msg);
    exit 1
  in
  if outcome.Harness.Runner.committed = 0 then fail "no transactions committed";
  if outcome.Harness.Runner.unfinished > 0 then
    fail
      (Printf.sprintf "%d transactions never settled"
         outcome.Harness.Runner.unfinished);
  if Engine.advancements_completed engine = 0 then
    fail "advancement stalled (quorum never reached with one replica down)";
  let srz = Checker.Serializability.certify outcome.Harness.Runner.history in
  if not (Checker.Serializability.serializable srz) then
    fail "history is not 1SR";
  if
    not
      (Checker.Atomicity.clean
         (Checker.Atomicity.check outcome.Harness.Runner.history))
  then fail "atomic-visibility anomaly";
  if
    not
      (Checker.Version_reads.clean
         (Checker.Version_reads.check outcome.Harness.Runner.history))
  then fail "version-read anomaly";
  Printf.printf
    "repl-smoke: ok (%d committed, %d advancements, %d failovers, %d \
     mirrors, %d recoveries)\n"
    outcome.Harness.Runner.committed
    (Engine.advancements_completed engine)
    (Stats.Counter_set.get outcome.Harness.Runner.stats "repl.failovers")
    (Stats.Counter_set.get outcome.Harness.Runner.stats "repl.mirrors")
    (Stats.Counter_set.get outcome.Harness.Runner.stats "repl.recoveries")

(* -------------------------------------------- failure-detector suite *)

(* The BENCH fd trajectory: 16-node k = 3 runs measuring what oracle-free
   liveness costs. Three rows into BENCH_fd.json: detector off (baseline),
   detector on (heartbeat overhead: side-network messages, extra simulator
   events, machine cost), and detector on under a false-suspicion storm
   (one node's outbound heartbeats dropped across the middle of the run —
   suspicion, failover and recovery traffic on top of the heartbeats). *)

type fd_row = {
  fr_label : string;
  fr_nodes : int;
  fr_rate : float;
  fr_sim_duration : float;
  fr_submitted : int;
  fr_committed : int;
  fr_advancements : int;
  fr_hb_sent : int;
  fr_hb_recv : int;
  fr_hb_dropped : int;
  fr_suspicions : int;
  fr_confirmed : int;
  fr_recoveries : int;
  fr_failovers : int;
  fr_events : int;
  fr_wall : float;
}

let fd_run ~label ~nodes ~rate ~duration ~settle ~fd ~storm =
  let sim = Sim.create ~seed:(3000 + nodes) () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.replicas = 3;
      latency = Netsim.Latency.Exponential 0.002;
      think_time = 0.0001;
      policy = Threev.Policy.Periodic 0.25;
      reliable_channel = true;
      retransmit_timeout = 0.02;
      hb_period = (if fd then 0.02 else 0.);
      hb_timeout = 0.08;
      phase_deadline = (if fd then 0.5 else infinity);
    }
  in
  let plan =
    if storm then
      Fault.Plan.make ~seed:(3000 + nodes)
        ~rules:
          (Fault.Plan.heartbeat_loss ~src:1 ~from_:(0.3 *. duration)
             ~until_:(0.7 *. duration) ())
        ()
    else Fault.Plan.none
  in
  let faults = Fault.Injector.create sim plan in
  let engine = Engine.create sim cfg ~faults () in
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes) with
        Workload.Synthetic.arrival_rate = rate;
        read_ratio = 0.3;
        fanout = 2;
      }
  in
  let wall0 = Unix.gettimeofday () in
  let outcome =
    Harness.Runner.drive sim (Engine.packed engine) gen
      { Harness.Runner.seed = nodes; duration; settle; max_txns = 500_000 }
  in
  let wall = Unix.gettimeofday () -. wall0 in
  let c name = Stats.Counter_set.get outcome.Harness.Runner.stats name in
  {
    fr_label = label;
    fr_nodes = nodes;
    fr_rate = rate;
    fr_sim_duration = duration;
    fr_submitted = outcome.Harness.Runner.submitted;
    fr_committed = outcome.Harness.Runner.committed;
    fr_advancements = Engine.advancements_completed engine;
    fr_hb_sent = c "fd.heartbeats_sent";
    fr_hb_recv = c "fd.heartbeats_received";
    fr_hb_dropped = c "fd.heartbeats_dropped";
    fr_suspicions = c "fd.suspicions";
    fr_confirmed = c "fd.confirmed";
    fr_recoveries = c "fd.recoveries";
    fr_failovers = c "repl.failovers";
    fr_events = Sim.events_executed sim;
    fr_wall = wall;
  }

(* Heartbeat-plane simulator events for one row, from measured counters:
   each beat costs one sender-timer event, each non-dropped beat one
   delivery event, and each consumed beat (at most) one monitor wake
   event. Raw events/sec counted this plane as throughput, which made a
   detector-on run look {e faster} than the same run with the detector
   off — more events, same wall time. [protocol_events_per_sec_wall]
   subtracts the plane; [txns_per_sec_wall] stays the primary metric. *)
let fd_hb_plane_events r =
  r.fr_hb_sent + (r.fr_hb_sent - r.fr_hb_dropped) + r.fr_hb_recv

let fd_json rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"schema\": \"bench_fd/v2\",\n  \"rows\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      let hb_plane = fd_hb_plane_events r in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"case\": \"%s\", \"nodes\": %d, \"arrival_rate\": %.1f, \
            \"sim_duration_s\": %.2f, \"submitted\": %d, \"committed\": %d, \
            \"advancements\": %d, \"heartbeats_sent\": %d, \
            \"heartbeats_received\": %d, \"heartbeats_dropped\": %d, \
            \"suspicions\": %d, \
            \"confirmed_down\": %d, \"recoveries\": %d, \"failovers\": %d, \
            \"events\": %d, \"hb_plane_events\": %d, \"wall_s\": %.3f, \
            \"txns_per_sec_wall\": %.1f, \
            \"protocol_events_per_sec_wall\": %.1f, \
            \"events_per_sec_wall\": %.1f }"
           r.fr_label r.fr_nodes r.fr_rate r.fr_sim_duration r.fr_submitted
           r.fr_committed r.fr_advancements r.fr_hb_sent r.fr_hb_recv
           r.fr_hb_dropped
           r.fr_suspicions r.fr_confirmed r.fr_recoveries r.fr_failovers
           r.fr_events hb_plane r.fr_wall
           (float_of_int r.fr_committed /. r.fr_wall)
           (float_of_int (r.fr_events - hb_plane) /. r.fr_wall)
           (float_of_int r.fr_events /. r.fr_wall)))
    rows;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

(* `main.exe fd [--quick]`: detector off / on / on-under-storm at 16 nodes;
   write BENCH_fd.json from the repo root. --quick shrinks to 8 nodes and
   skips the file write. *)
let run_fd ~quick =
  let nodes = if quick then 8 else 16 in
  let duration = if quick then 0.4 else 1.0 in
  let settle = if quick then 1.5 else 3.0 in
  let rate = 100. *. float_of_int nodes in
  let rows =
    List.map
      (fun (label, fd, storm) ->
        let r = fd_run ~label ~nodes ~rate ~duration ~settle ~fd ~storm in
        Printf.printf
          "fd: %-9s %3d nodes @ %6.0f txns/s sim -> %6d committed, %6d \
           heartbeats, %3d suspicions, %8d events, %6.3fs wall, %8.0f \
           txns/s wall, %5.2f proto Mev/s\n%!"
          r.fr_label r.fr_nodes r.fr_rate r.fr_committed r.fr_hb_sent
          r.fr_suspicions r.fr_events r.fr_wall
          (float_of_int r.fr_committed /. r.fr_wall)
          (float_of_int (r.fr_events - fd_hb_plane_events r)
          /. r.fr_wall /. 1e6);
        r)
      [ ("fd-off", false, false); ("fd-on", true, false);
        ("fd-storm", true, true) ]
  in
  if not quick then begin
    let oc = open_out "BENCH_fd.json" in
    output_string oc (fd_json rows);
    close_out oc;
    print_endline "fd: wrote BENCH_fd.json"
  end

(* `main.exe fd-smoke`: the sub-second liveness CI gate — a tiny k = 3 run
   with the failure detector on, a real replica crash across an advancement
   window AND a false-suspicion storm against a live node. Fails (exit 1)
   if the detector never suspected, the falsely-suspected node never
   re-earned trust, advancement stalled, any transaction failed to settle,
   or any checker flagged the history — never on timing. *)
let run_fd_smoke () =
  let nodes = 6 in
  let sim = Sim.create ~seed:29 () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.replicas = 3;
      latency = Netsim.Latency.Exponential 0.003;
      think_time = 0.0005;
      policy = Threev.Policy.Periodic 0.2;
      reliable_channel = true;
      retransmit_timeout = 0.02;
      hb_period = 0.02;
      hb_timeout = 0.08;
      phase_deadline = 0.5;
    }
  in
  let faults =
    Fault.Injector.create sim
      (Fault.Plan.make ~seed:29
         ~rules:(Fault.Plan.heartbeat_loss ~src:3 ~from_:0.2 ~until_:0.6 ())
         ~crashes:[ Fault.Plan.crash ~node:0 ~at:0.25 ~restart:0.7 ] ())
  in
  let engine = Engine.create sim cfg ~faults () in
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes) with
        Workload.Synthetic.arrival_rate = 400.;
        read_ratio = 0.3;
        fanout = 2;
        keys_per_node = 15;
      }
  in
  let outcome =
    Harness.Runner.drive sim (Engine.packed engine) gen
      { Harness.Runner.seed = 29; duration = 0.9; settle = 4.0; max_txns = 5_000 }
  in
  let fail msg =
    prerr_endline ("fd-smoke: FAILED: " ^ msg);
    exit 1
  in
  let c name = Stats.Counter_set.get outcome.Harness.Runner.stats name in
  if outcome.Harness.Runner.committed = 0 then fail "no transactions committed";
  if outcome.Harness.Runner.unfinished > 0 then
    fail
      (Printf.sprintf "%d transactions never settled"
         outcome.Harness.Runner.unfinished);
  if Engine.advancements_completed engine = 0 then
    fail "advancement stalled under suspicion";
  if c "fd.heartbeats_sent" = 0 then fail "no heartbeats sent";
  if c "fd.suspicions" = 0 then
    fail "crash + storm provoked no suspicion";
  if c "fd.recoveries" = 0 then
    fail "no suspected node ever re-earned trust";
  let srz = Checker.Serializability.certify outcome.Harness.Runner.history in
  if not (Checker.Serializability.serializable srz) then
    fail "history is not 1SR";
  if
    not
      (Checker.Atomicity.clean
         (Checker.Atomicity.check outcome.Harness.Runner.history))
  then fail "atomic-visibility anomaly";
  if
    not
      (Checker.Version_reads.clean
         (Checker.Version_reads.check outcome.Harness.Runner.history))
  then fail "version-read anomaly";
  Printf.printf
    "fd-smoke: ok (%d committed, %d advancements, %d heartbeats, %d \
     suspicions, %d confirmed, %d recoveries, %d failovers)\n"
    outcome.Harness.Runner.committed
    (Engine.advancements_completed engine)
    (c "fd.heartbeats_sent") (c "fd.suspicions") (c "fd.confirmed")
    (c "fd.recoveries") (c "repl.failovers")

(* `main.exe fuzz-smoke`: sub-second slice of the schedule-fuzz sweep —
   ten deterministic quick cases (two full engine rotations). Fails on any
   strict-engine 1SR violation, and requires the certifier to have flagged
   at least one seeded-anomaly baseline, proving the gate has teeth. *)
let run_fuzz_smoke () =
  let s = Harness.Fuzz.sweep ~runs:10 ~quick:true () in
  Format.printf "fuzz-smoke: %a@." Harness.Fuzz.pp_summary s;
  if not (Harness.Fuzz.ok s) then begin
    prerr_endline "fuzz-smoke: FAILED (strict-engine violation)";
    exit 1
  end;
  if s.Harness.Fuzz.anomalies_flagged = 0 then begin
    prerr_endline "fuzz-smoke: FAILED (no baseline anomaly flagged)";
    exit 1
  end

(* `main.exe shard-smoke`: the sub-second sharding CI gate. An 8-node
   S = 4, k = 2 run (each shard one replica group) with one replica
   crashed across an advancement window and a shard-respecting workload —
   updates confined to single shards, reads fanning out across them, so
   the cross-shard read-vector path is genuinely exercised. Fails (exit 1)
   on any checker anomaly, stalled advancement on any shard, an untouched
   vector path, or schedule drift (the run is digest-pinned and replayed;
   both the constant and the replay must match). *)
let shard_smoke_run () =
  let nodes = 8 in
  let sim = Sim.create ~seed:41 () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.shards = 4;
      replicas = 2;
      latency = Netsim.Latency.Exponential 0.003;
      think_time = 0.0005;
      policy = Threev.Policy.Periodic 0.2;
      reliable_channel = true;
      retransmit_timeout = 0.02;
    }
  in
  let faults =
    Fault.Injector.create sim
      (Fault.Plan.make ~seed:41
         ~crashes:[ Fault.Plan.crash ~node:2 ~at:0.25 ~restart:0.7 ] ())
  in
  let engine = Engine.create sim cfg ~faults () in
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes) with
        Workload.Synthetic.shards = 4;
        arrival_rate = 400.;
        read_ratio = 0.35;
        fanout = 3;
        keys_per_node = 15;
      }
  in
  let outcome =
    Harness.Runner.drive sim (Engine.packed engine) gen
      { Harness.Runner.seed = 41; duration = 0.9; settle = 4.0; max_txns = 5_000 }
  in
  (engine, outcome)

let shard_history_digest (outcome : Harness.Runner.outcome) =
  List.fold_left
    (fun acc ((spec : Spec.t), res) ->
      acc
      lxor Hashtbl.hash
             ( spec.Spec.id,
               Txn.Result.committed res,
               res.Txn.Result.submit_time,
               Txn.Result.latency res,
               Txn.Result.blocking_latency res ))
    0 outcome.Harness.Runner.history

let run_shard_smoke () =
  let engine, outcome = shard_smoke_run () in
  let fail msg =
    prerr_endline ("shard-smoke: FAILED: " ^ msg);
    exit 1
  in
  if outcome.Harness.Runner.committed = 0 then fail "no transactions committed";
  if outcome.Harness.Runner.unfinished > 0 then
    fail
      (Printf.sprintf "%d transactions never settled"
         outcome.Harness.Runner.unfinished);
  if Engine.advancements_completed engine < 4 then
    fail
      (Printf.sprintf
         "advancement stalled (%d completions across 4 shards; every shard \
          must advance)"
         (Engine.advancements_completed engine));
  let vectored =
    Stats.Counter_set.get outcome.Harness.Runner.stats "shard.vectored_reads"
  in
  if vectored = 0 then
    fail "no cross-shard read was ever assigned a vector (workload too tame)";
  let shard_of n = Engine.shard_of_node engine ~node:n in
  let srz =
    Checker.Serializability.certify ~shard_of_node:shard_of
      outcome.Harness.Runner.history
  in
  if not (Checker.Serializability.serializable srz) then
    fail "history is not 1SR";
  if
    not
      (Checker.Atomicity.clean
         (Checker.Atomicity.check outcome.Harness.Runner.history))
  then fail "atomic-visibility anomaly";
  if
    not
      (Checker.Version_reads.clean
         (Checker.Version_reads.check
            ~vector:(fun id -> Engine.assigned_vector engine ~txn:id)
            ~shard_of_node:shard_of outcome.Harness.Runner.history))
  then fail "version-read anomaly";
  let lookup key =
    let rec scan node =
      if node < 0 then None
      else
        match
          Mvstore.read_visible (Engine.store engine ~node) ~key
            ~version:max_int
        with
        | Some (_, v) -> Some v
        | None -> scan (node - 1)
    in
    scan (7)
  in
  if
    not
      (Checker.Replay.clean
         (Checker.Replay.check outcome.Harness.Runner.history ~lookup))
  then fail "replay divergence (settled stores disagree with the history)";
  (* Schedule pin: the digest is recorded; drift means a change reshaped
     multi-shard schedules (refresh deliberately if intended). The fresh
     second run must also reproduce it — determinism under sharding. *)
  let d = shard_history_digest outcome land 0xffffffff in
  let expected = 0x1148858e in
  if d <> expected then
    fail
      (Printf.sprintf
         "schedule digest drift: got 0x%08x, recorded 0x%08x (update the \
          constant if the change is intentional)"
         d expected);
  let _, outcome2 = shard_smoke_run () in
  if shard_history_digest outcome2 land 0xffffffff <> d then
    fail "replay diverged (same seeds, different multi-shard schedule)";
  Printf.printf
    "shard-smoke: ok (%d committed, %d advancements over 4 shards, %d \
     vectored reads, digest 0x%08x)\n"
    outcome.Harness.Runner.committed
    (Engine.advancements_completed engine)
    vectored d

(* --------------------------------------------------------------- main *)

(* `main.exe smoke`: the CI gate wired into `dune runtest` — Table 1 replay
   plus a tiny lossy-network E11, well under ten seconds. *)
let run_smoke () =
  let ok, report = Harness.Experiments.smoke () in
  print_string "## Smoke suite\n\n";
  print_string report;
  if ok then print_endline "smoke: all checks passed"
  else begin
    prerr_endline "smoke: FAILED";
    exit 1
  end

let () =
  (* Wall-clock harness tuning only: a large minor heap and a relaxed major
     space overhead keep the allocation-heavy simulator out of the GC on the
     measured path. Simulated results (digests, event counts, commit counts)
     are GC-independent; this affects wall times alone. *)
  Gc.set
    { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024; space_overhead = 200 };
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [ "smoke" ] then (run_smoke (); exit 0);
  if args = [ "scale-smoke" ] then (run_scale_smoke (); exit 0);
  if args = [ "fuzz-smoke" ] then (run_fuzz_smoke (); exit 0);
  if args = [ "repl-smoke" ] then (run_repl_smoke (); exit 0);
  if args = [ "fd-smoke" ] then (run_fd_smoke (); exit 0);
  if args = [ "shard-smoke" ] then (run_shard_smoke (); exit 0);
  let quick = List.mem "--quick" args in
  if List.mem "scale" args then (run_scale ~quick; exit 0);
  if List.mem "repl" args then (run_repl ~quick; exit 0);
  if List.mem "fd" args then (run_fd ~quick; exit 0);
  let no_micro = List.mem "--no-micro" args in
  let ids =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  let experiments =
    match ids with
    | [] -> Harness.Experiments.all
    | ids ->
        List.filter_map
          (fun id ->
            match Harness.Experiments.find id with
            | Some e -> Some e
            | None ->
                Printf.eprintf "unknown experiment id %S\n" id;
                None)
          ids
  in
  List.iter
    (fun (e : Harness.Experiments.t) ->
      Printf.printf "== %s: %s (%s) ==\n%!" e.id e.title e.paper_ref;
      print_string (e.run ~quick);
      print_newline ())
    experiments;
  if (not no_micro) && ids = [] then run_micro ()
