(* Tests for the experiment harness: the workload driver, the Table 1
   replay (the paper's own worked example is asserted here, row by row),
   and the experiment registry. *)

module Sim = Simul.Sim
module Spec = Txn.Spec
module Result = Txn.Result
module Engine = Threev.Engine
module Trace = Threev.Trace
module Runner = Harness.Runner
module Table1 = Harness.Table1
module Experiments = Harness.Experiments

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------ runner *)

let runner_drives_and_harvests () =
  let sim = Sim.create ~seed:2 () in
  let engine = Engine.create sim (Engine.default_config ~nodes:3) () in
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes:3) with
        Workload.Synthetic.arrival_rate = 200.;
      }
  in
  let outcome =
    Runner.drive sim (Engine.packed engine) gen
      { Runner.seed = 2; duration = 0.5; settle = 2.0; max_txns = 1000 }
  in
  checkb "some submitted" true (outcome.Runner.submitted > 50);
  checki "all harvested" outcome.Runner.submitted
    (List.length outcome.Runner.history);
  checki "nothing unfinished" 0 outcome.Runner.unfinished;
  checki "committed = history (no aborts here)" outcome.Runner.committed
    (List.length outcome.Runner.history);
  checkb "throughput positive" true (outcome.Runner.throughput > 0.);
  checkb "latencies recorded" true
    (Stats.Histogram.count outcome.Runner.read_latency > 0
    && Stats.Histogram.count outcome.Runner.update_latency > 0)

let runner_max_txns_cap () =
  let sim = Sim.create ~seed:2 () in
  let engine = Engine.create sim (Engine.default_config ~nodes:2) () in
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes:2) with
        Workload.Synthetic.arrival_rate = 10_000.;
      }
  in
  let outcome =
    Runner.drive sim (Engine.packed engine) gen
      { Runner.seed = 2; duration = 5.0; settle = 2.0; max_txns = 25 }
  in
  checki "capped" 25 outcome.Runner.submitted

(* ------------------------------------------------------------ table1 *)

let replay = lazy (Table1.run ())

let table1_protocol_outcomes () =
  let r = Lazy.force replay in
  checkb "advancement completed" true r.Table1.advancement_completed;
  checki "read version after" 1 r.Table1.read_version_after;
  checkb "i committed" true r.Table1.txn_i_committed;
  checkb "j committed" true r.Table1.txn_j_committed;
  checkb "reads saw version 0" true r.Table1.reads_saw_version0

let table1_final_counters_match_paper () =
  let r = Lazy.force replay in
  (* Exactly the paper's final counter state: each of the six
     subtransaction requests matched by a completion. *)
  checkb "counters" true
    (r.Table1.final_counters
    = [
        ("C1[p->p]", 1); ("C1[p->q]", 1); ("C1[p->s]", 1); ("C1[q->p]", 1);
        ("C2[q->p]", 1); ("C2[q->q]", 1); ("R1[p->p]", 1); ("R1[p->q]", 1);
        ("R1[p->s]", 1); ("R1[q->p]", 1); ("R2[q->p]", 1); ("R2[q->q]", 1);
      ])

let table1_event_order () =
  let r = Lazy.force replay in
  let events = Trace.events r.Table1.trace in
  let index pattern =
    let rec go i = function
      | [] -> Alcotest.failf "event %S not found in trace" pattern
      | (e : Trace.event) :: rest ->
          let contains =
            let n = String.length e.what and m = String.length pattern in
            let rec scan j =
              j + m <= n && (String.sub e.what j m = pattern || scan (j + 1))
            in
            m <= n && scan 0
          in
          if contains then i else go (i + 1) rest
    in
    go 0 events
  in
  (* The paper's Table 1 row order, as trace-pattern precedences. *)
  let order =
    [
      "update tx i arrives";
      "tx i updates A version 1";
      "tx i updates F version 1";
      "tx x reads A version 0";
      "version advancement begins";
      "update tx j arrives; version 2";
      "tx j updates D version 2";
      "tx i updates D versions 1,2" (* the dual write, paper time 14 *);
      "tx i updates E version 1" (* single write, paper time 15 *);
      "tx y reads D version 0";
      "implicit notification: advancing update version to 2" (* paper 19 *);
      "tx j updates A version 2";
      "tx j is complete";
      "tx i updates B version 1";
      "tx i is complete";
      "phase 1 complete";
      "phase 2 complete";
      "read version advanced to 1";
      "phase 4 complete";
    ]
  in
  let indices = List.map index order in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  checkb "paper row order preserved" true (increasing indices)

let table1_figure2_layouts () =
  let r = Lazy.force replay in
  let find_snap time =
    List.find (fun s -> Float.abs (s.Table1.snap_time -. time) < 0.5) r.Table1.snapshots
  in
  let versions snap site key =
    let _, _, _, keys =
      List.find (fun (s, _, _, _) -> s = site) snap.Table1.sites
    in
    List.sort compare (List.assoc key keys)
  in
  let t12 = find_snap 12. and t20 = find_snap 20. in
  let final = List.nth r.Table1.snapshots (List.length r.Table1.snapshots - 1) in
  (* After time 12 (Figure 2 second panel). *)
  checkb "t12: A in 0,1" true (versions t12 "p" "A" = [ 0; 1 ]);
  checkb "t12: D in 0,2" true (versions t12 "q" "D" = [ 0; 2 ]);
  checkb "t12: E only 0" true (versions t12 "q" "E" = [ 0 ]);
  (* After time 20 (third panel): the three-version maximum. *)
  checkb "t20: A in 0,1,2" true (versions t20 "p" "A" = [ 0; 1; 2 ]);
  checkb "t20: D in 0,1,2" true (versions t20 "q" "D" = [ 0; 1; 2 ]);
  checkb "t20: F in 0,1" true (versions t20 "s" "F" = [ 0; 1 ]);
  (* Eventually (fourth panel): GC dropped or relabelled version 0. *)
  checkb "final: A in 1,2" true (versions final "p" "A" = [ 1; 2 ]);
  checkb "final: B relabelled to 1" true (versions final "p" "B" = [ 1 ]);
  checkb "final: D in 1,2" true (versions final "q" "D" = [ 1; 2 ]);
  checkb "final: E in 1" true (versions final "q" "E" = [ 1 ]);
  checkb "final: F in 1" true (versions final "s" "F" = [ 1 ])

let table1_renderers () =
  let r = Lazy.force replay in
  checkb "trace renders" true (String.length (Table1.render_trace r) > 500);
  checkb "snapshots render" true (String.length (Table1.render_snapshots r) > 100)

(* -------------------------------------------------------- experiments *)

let registry_complete () =
  let ids = List.map (fun (e : Experiments.t) -> e.Experiments.id) Experiments.all in
  checkb "all present" true
    (ids
    = [
        "t1"; "f1"; "f2"; "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8";
        "e10"; "e11"; "e12"; "e13"; "e14"; "e15"; "e9"; "a1"; "a2"; "a3";
        "a4";
      ])

let registry_find () =
  checkb "find e4" true (Experiments.find "E4" <> None);
  checkb "unknown" true (Experiments.find "zz" = None)

let experiment_t1_runs () =
  match Experiments.find "t1" with
  | Some e ->
      let out = e.Experiments.run ~quick:true in
      checkb "mentions true checks" true
        (let contains s sub =
           let n = String.length s and m = String.length sub in
           let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
           scan 0
         in
         contains out "| true |" && not (contains out "| false |"))
  | None -> Alcotest.fail "t1 missing"

let experiment_e4_runs () =
  match Experiments.find "e4" with
  | Some e ->
      let out = e.Experiments.run ~quick:true in
      checkb "bound holds column is true" true
        (let contains s sub =
           let n = String.length s and m = String.length sub in
           let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
           scan 0
         in
         contains out "true" && not (contains out "false"))
  | None -> Alcotest.fail "e4 missing"

(* ------------------------------------------------- golden schedules *)

(* Byte-identical replay: these digests (and event counts) were recorded on
   the pre-optimization kernel (commit 165bd78). The heap/network/trace
   rework must reproduce them exactly — any drift means the optimizations
   changed a schedule, not just its cost. The digest folds every
   transaction's (id, committed, submit, latency, blocking latency). *)

let history_digest (outcome : Runner.outcome) =
  List.fold_left
    (fun acc ((spec : Spec.t), (res : Result.t)) ->
      acc
      lxor Hashtbl.hash
             ( spec.Spec.id,
               Result.committed res,
               res.Result.submit_time,
               Result.latency res,
               Result.blocking_latency res ))
    0 outcome.Runner.history

let golden_gen nodes =
  Workload.Synthetic.generator
    {
      (Workload.Synthetic.default ~nodes) with
      Workload.Synthetic.arrival_rate = 300.;
      read_ratio = 0.25;
      fanout = 2;
      keys_per_node = 15;
      zipf_s = 0.7;
    }

let check_golden name ~digest ~events (d, n) =
  checkb
    (Printf.sprintf "%s digest 0x%08x (got 0x%08x)" name digest
       (d land 0xffffffff))
    true
    (d land 0xffffffff = digest);
  checki (name ^ " event count") events n

(* E10-style: node pause fault, fault-free channel config otherwise. *)
let golden_e10_style () =
  let nodes = 4 in
  let sim = Sim.create ~seed:151 () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.latency = Netsim.Latency.Exponential 0.003;
      think_time = 0.0005;
      policy = Threev.Policy.Periodic 0.2;
    }
  in
  let engine = Engine.create sim cfg () in
  Engine.inject_pause engine ~node:(nodes - 1) ~at:0.5 ~duration:0.5;
  let outcome =
    Runner.drive sim (Engine.packed engine) (golden_gen nodes)
      { Runner.seed = 151; duration = 1.2; settle = 4.0; max_txns = 100_000 }
  in
  check_golden "e10-style" ~digest:0x2350a0b8 ~events:8040
    (history_digest outcome, Sim.events_executed sim)

(* E13-style: coordinator crash mid-advancement over the reliable channel. *)
let golden_e13_style () =
  let nodes = 4 in
  let sim = Sim.create ~seed:171 () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.latency = Netsim.Latency.Exponential 0.003;
      think_time = 0.0005;
      policy = Threev.Policy.Manual;
      reliable_channel = true;
      retransmit_timeout = 0.02;
    }
  in
  let faults =
    Fault.Injector.create sim
      (Fault.Plan.make ~seed:1713
         ~coord_crashes:[ Fault.Plan.coord_crash ~at:0.6 ~restart:0.9 ] ())
  in
  let engine = Engine.create sim cfg ~faults () in
  Sim.schedule sim ~delay:0.5 (fun () -> ignore (Engine.advance engine));
  let outcome =
    Runner.drive sim (Engine.packed engine) (golden_gen nodes)
      { Runner.seed = 171; duration = 1.2; settle = 5.0; max_txns = 100_000 }
  in
  check_golden "e13-style" ~digest:0x37b0dde9 ~events:9680
    (history_digest outcome, Sim.events_executed sim)

let golden_fault_free () =
  let nodes = 3 in
  let sim = Sim.create ~seed:99 () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.latency = Netsim.Latency.Exponential 0.003;
      think_time = 0.0005;
      policy = Threev.Policy.Periodic 0.15;
    }
  in
  let engine = Engine.create sim cfg () in
  let outcome =
    Runner.drive sim (Engine.packed engine) (golden_gen nodes)
      { Runner.seed = 99; duration = 1.0; settle = 4.0; max_txns = 100_000 }
  in
  check_golden "fault-free" ~digest:0x36746098 ~events:7474
    (history_digest outcome, Sim.events_executed sim)

let () =
  Alcotest.run "harness"
    [
      ( "runner",
        [
          Alcotest.test_case "drives and harvests" `Quick
            runner_drives_and_harvests;
          Alcotest.test_case "max_txns cap" `Quick runner_max_txns_cap;
        ] );
      ( "table1",
        [
          Alcotest.test_case "protocol outcomes" `Quick table1_protocol_outcomes;
          Alcotest.test_case "final counters match paper" `Quick
            table1_final_counters_match_paper;
          Alcotest.test_case "event order matches Table 1" `Quick
            table1_event_order;
          Alcotest.test_case "figure 2 layouts" `Quick table1_figure2_layouts;
          Alcotest.test_case "renderers" `Quick table1_renderers;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "registry complete" `Quick registry_complete;
          Alcotest.test_case "find" `Quick registry_find;
          Alcotest.test_case "t1 runs clean" `Slow experiment_t1_runs;
          Alcotest.test_case "e4 runs clean" `Slow experiment_e4_runs;
        ] );
      ( "golden-schedules",
        [
          Alcotest.test_case "e10-style replay byte-identical" `Quick
            golden_e10_style;
          Alcotest.test_case "e13-style replay byte-identical" `Quick
            golden_e13_style;
          Alcotest.test_case "fault-free replay byte-identical" `Quick
            golden_fault_free;
        ] );
    ]
