(* Tests for the metrics library. *)

module Summary = Stats.Summary
module Histogram = Stats.Histogram
module Counter_set = Stats.Counter_set
module Table = Stats.Table
module Series = Stats.Series

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg
let checkf_approx eps msg = Alcotest.(check (float eps)) msg

(* ---------------------------------------------------------- summary *)

let summary_empty () =
  let s = Summary.create () in
  checki "count" 0 (Summary.count s);
  checkf "mean" 0. (Summary.mean s);
  checkf "variance" 0. (Summary.variance s)

let summary_known_values () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  checki "count" 8 (Summary.count s);
  checkf "mean" 5. (Summary.mean s);
  (* Sample variance of that data set is 32/7. *)
  checkf_approx 1e-9 "variance" (32. /. 7.) (Summary.variance s);
  checkf "min" 2. (Summary.min s);
  checkf "max" 9. (Summary.max s);
  checkf "total" 40. (Summary.total s)

let summary_single () =
  let s = Summary.create () in
  Summary.add s 3.5;
  checkf "mean" 3.5 (Summary.mean s);
  checkf "variance of one" 0. (Summary.variance s)

let summary_merge_matches_combined =
  QCheck.Test.make ~name:"merge equals observing both streams" ~count:200
    QCheck.(
      pair (list (float_bound_exclusive 100.)) (list (float_bound_exclusive 100.)))
    (fun (xs, ys) ->
      let a = Summary.create () and b = Summary.create () in
      List.iter (Summary.add a) xs;
      List.iter (Summary.add b) ys;
      let merged = Summary.merge a b in
      let direct = Summary.create () in
      List.iter (Summary.add direct) (xs @ ys);
      Summary.count merged = Summary.count direct
      && Float.abs (Summary.mean merged -. Summary.mean direct) < 1e-6
      && Float.abs (Summary.variance merged -. Summary.variance direct) < 1e-6)

(* -------------------------------------------------------- histogram *)

let histogram_empty () =
  let h = Histogram.create () in
  checki "count" 0 (Histogram.count h);
  checkf "p50" 0. (Histogram.percentile h 50.)

let histogram_percentiles_bounded () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.add h (float_of_int i /. 1000.)
  done;
  let p50 = Histogram.percentile h 50. in
  let p99 = Histogram.percentile h 99. in
  (* Bucketed estimates overshoot by at most the growth factor. *)
  checkb "p50 in range" true (p50 >= 0.5 && p50 <= 0.5 *. 1.25);
  checkb "p99 in range" true (p99 >= 0.99 && p99 <= 0.99 *. 1.25);
  checkb "p100 is max" true (Histogram.percentile h 100. = Histogram.max h)

let histogram_zero_bucket () =
  let h = Histogram.create () in
  Histogram.add h 0.;
  Histogram.add h (-3.);
  Histogram.add h 5.;
  checki "count" 3 (Histogram.count h);
  checkb "p50 is zero bucket" true (Histogram.percentile h 50. = 0.)

let histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.add a) [ 1.; 2.; 3. ];
  List.iter (Histogram.add b) [ 4.; 5. ];
  let m = Histogram.merge a b in
  checki "count" 5 (Histogram.count m);
  checkf "max" 5. (Histogram.max m);
  checkf "min" 1. (Histogram.min m)

let histogram_merge_incompatible () =
  let a = Histogram.create ~growth:1.25 () in
  let b = Histogram.create ~growth:1.5 () in
  Alcotest.check_raises "layouts differ"
    (Invalid_argument "Histogram.merge: incompatible bucket layouts")
    (fun () -> ignore (Histogram.merge a b))

let histogram_invalid_args () =
  Alcotest.check_raises "least"
    (Invalid_argument "Histogram.create: least must be positive") (fun () ->
      ignore (Histogram.create ~least:0. ()));
  Alcotest.check_raises "growth"
    (Invalid_argument "Histogram.create: growth must exceed 1") (fun () ->
      ignore (Histogram.create ~growth:1. ()))

let histogram_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (float_bound_exclusive 1000.))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let ps = [ 0.; 10.; 25.; 50.; 75.; 90.; 99.; 100. ] in
      let vs = List.map (Histogram.percentile h) ps in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      nondecreasing vs)

let histogram_bucket_boundaries () =
  (* Exact bucket bounds are upper-inclusive: x = least * growth^k belongs
     to the bucket whose bound_of equals x, not the one above (the
     off-by-one inflated boundary percentiles). *)
  let h = Histogram.create ~least:1e-3 ~growth:1.25 () in
  checki "least lands in bucket 1" 1 (Histogram.bucket_of h 1e-3);
  for k = 1 to 40 do
    let x = 1e-3 *. (1.25 ** float_of_int k) in
    let b = Histogram.bucket_of h x in
    checki (Printf.sprintf "exact power k=%d" k) (k + 1) b;
    checkb "within documented range" true
      (x <= Histogram.bound_of h b && x > Histogram.bound_of h (b - 1) *. (1. -. 1e-12))
  done;
  (* Strictly interior values still land one bucket above their lower bound. *)
  checki "interior value" 3 (Histogram.bucket_of h (1e-3 *. 1.25 *. 1.1))

let histogram_boundary_percentile () =
  (* A histogram holding only the exact value least*growth must report a
     percentile of that bucket's bound, not the next bucket's. *)
  let h = Histogram.create ~least:1e-3 ~growth:1.25 () in
  let x = 1e-3 *. 1.25 in
  Histogram.add h x;
  Alcotest.(check (float 1e-12)) "p100 not inflated" x (Histogram.percentile h 100.);
  Alcotest.(check (float 1e-12)) "p50 not inflated" x (Histogram.percentile h 50.)

let histogram_bucket_bound_consistent =
  QCheck.Test.make ~name:"bucket_of respects bound_of ranges" ~count:500
    QCheck.(float_range 1e-9 1e4)
    (fun x ->
      let h = Histogram.create () in
      let b = Histogram.bucket_of h x in
      b >= 1
      && x <= Histogram.bound_of h b
      && (b = 1 || x > Histogram.bound_of h (b - 1) *. (1. -. 1e-12)))

let histogram_upper_bound_property =
  QCheck.Test.make ~name:"p100 bounds every observation" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 100) (float_bound_exclusive 50.))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let top = Histogram.percentile h 100. in
      List.for_all (fun x -> x <= top +. 1e-9) xs)

(* ------------------------------------------------------ counter set *)

let counter_set_basic () =
  let c = Counter_set.create () in
  checki "absent" 0 (Counter_set.get c "x");
  Counter_set.incr c "x" ();
  Counter_set.incr c "x" ~by:4 ();
  Counter_set.incr c "y" ~by:2 ();
  checki "x" 5 (Counter_set.get c "x");
  checkb "sorted list" true (Counter_set.to_list c = [ ("x", 5); ("y", 2) ])

let counter_set_merge () =
  let a = Counter_set.create () and b = Counter_set.create () in
  Counter_set.incr a "x" ~by:3 ();
  Counter_set.incr b "x" ~by:4 ();
  Counter_set.incr b "z" ();
  let m = Counter_set.merge a b in
  checki "x summed" 7 (Counter_set.get m "x");
  checki "z" 1 (Counter_set.get m "z");
  (* merge must not alias its inputs *)
  Counter_set.incr m "x" ();
  checki "a unchanged" 3 (Counter_set.get a "x")

let counter_set_reset () =
  let c = Counter_set.create () in
  Counter_set.incr c "x" ();
  Counter_set.reset c;
  checki "reset" 0 (Counter_set.get c "x")

(* Determinism regression (lint rule R2's origin story): [to_list] must be
   a pure function of the counter contents, independent of the order the
   names were first touched — its output feeds experiment tables. *)
let counter_set_order_independent =
  QCheck.Test.make ~name:"to_list independent of insertion order" ~count:200
    QCheck.(list (pair (oneofl [ "a"; "b"; "c"; "d"; "e" ]) small_nat))
    (fun incrs ->
      let populate incrs =
        let c = Counter_set.create () in
        List.iter (fun (k, by) -> Counter_set.incr c k ~by ()) incrs;
        c
      in
      let forward = populate incrs and backward = populate (List.rev incrs) in
      let l = Counter_set.to_list forward in
      l = Counter_set.to_list backward
      && List.sort (fun (a, _) (b, _) -> String.compare a b) l = l)

(* ------------------------------------------------------------ table *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  m = 0 || scan 0

let table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  checki "rows" 2 (Table.rows t);
  let s = Table.to_string t in
  checkb "has title" true (contains s "### demo");
  checkb "contains cell" true (contains s "333")

let table_arity () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.add_row \"demo\": expected 2 cells, got 1")
    (fun () -> Table.add_row t [ "only" ])

let table_csv () =
  let t = Table.create ~title:"demo" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "plain"; "1" ];
  Table.add_row t [ "with,comma"; "say \"hi\"" ];
  Alcotest.(check string) "csv"
    "name,value\nplain,1\n\"with,comma\",\"say \"\"hi\"\"\"\n" (Table.to_csv t)

let table_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_i 42);
  Alcotest.(check string) "float int" "3" (Table.cell_f 3.0);
  Alcotest.(check string) "pct" "25.0%" (Table.cell_pct 1 4);
  Alcotest.(check string) "pct zero" "n/a" (Table.cell_pct 1 0)

(* ----------------------------------------------------------- series *)

let series_basic () =
  let s = Series.create ~name:"tput" () in
  Series.add s ~x:0. ~y:10.;
  Series.add s ~x:1. ~y:20.;
  Series.add s ~x:2. ~y:30.;
  checki "length" 3 (Series.length s);
  checkf "mean" 20. (Series.mean_y s);
  checkf "max" 30. (Series.max_y s);
  checkb "last" true (Series.last s = Some (2., 30.))

let series_resample () =
  let s = Series.create () in
  for i = 0 to 99 do
    Series.add s ~x:(float_of_int i) ~y:(float_of_int i)
  done;
  let r = Series.resample s ~buckets:4 in
  checki "bucket count" 4 (List.length r);
  let ys = List.map snd r in
  checkb "bucket means increase" true (ys = List.sort compare ys)

let series_resample_single_point () =
  let s = Series.create () in
  Series.add s ~x:5. ~y:7.;
  checkb "single" true (Series.resample s ~buckets:3 = [ (5., 7.) ])

let series_sparkline () =
  let s = Series.create () in
  for i = 0 to 79 do
    (* Ramp: low for the first half, peak in the third quarter, back down. *)
    let y =
      if i < 40 then 1. else if i < 60 then float_of_int (i - 39) else 2.
    in
    Series.add s ~x:(float_of_int i) ~y
  done;
  let line = Series.sparkline s ~buckets:20 in
  (* 20 buckets, each one UTF-8 block glyph (3 bytes) or a space. *)
  checkb "nonempty" true (String.length line > 0);
  let glyph_count =
    (* count UTF-8 code points: bytes that are not continuation bytes *)
    let n = ref 0 in
    String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) line;
    !n
  in
  checki "one glyph per bucket" 20 glyph_count;
  checkb "contains a full block at the peak" true
    (let rec mem i =
       i + 3 <= String.length line && (String.sub line i 3 = "█" || mem (i + 1))
     in
     mem 0);
  checkb "empty series" true (Series.sparkline (Series.create ()) ~buckets:5 = "")

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      summary_merge_matches_combined; histogram_percentile_monotone;
      histogram_upper_bound_property; histogram_bucket_bound_consistent;
      counter_set_order_independent;
    ]

let () =
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "empty" `Quick summary_empty;
          Alcotest.test_case "known values" `Quick summary_known_values;
          Alcotest.test_case "single" `Quick summary_single;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick histogram_empty;
          Alcotest.test_case "percentiles bounded" `Quick
            histogram_percentiles_bounded;
          Alcotest.test_case "zero bucket" `Quick histogram_zero_bucket;
          Alcotest.test_case "merge" `Quick histogram_merge;
          Alcotest.test_case "merge incompatible" `Quick
            histogram_merge_incompatible;
          Alcotest.test_case "invalid args" `Quick histogram_invalid_args;
          Alcotest.test_case "bucket boundaries" `Quick
            histogram_bucket_boundaries;
          Alcotest.test_case "boundary percentile" `Quick
            histogram_boundary_percentile;
        ] );
      ( "counter-set",
        [
          Alcotest.test_case "basic" `Quick counter_set_basic;
          Alcotest.test_case "merge" `Quick counter_set_merge;
          Alcotest.test_case "reset" `Quick counter_set_reset;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick table_render;
          Alcotest.test_case "arity" `Quick table_arity;
          Alcotest.test_case "csv" `Quick table_csv;
          Alcotest.test_case "cells" `Quick table_cells;
        ] );
      ( "series",
        [
          Alcotest.test_case "basic" `Quick series_basic;
          Alcotest.test_case "resample" `Quick series_resample;
          Alcotest.test_case "resample single" `Quick
            series_resample_single_point;
          Alcotest.test_case "sparkline" `Quick series_sparkline;
        ] );
      ("properties", qsuite);
    ]
