(* Tests for the fault-injection subsystem (lib/fault) and the protocol
   hardening it exercises: the network delivery filter, plan validation,
   scripted and probabilistic faults, seed-replayable determinism,
   crash-restart recovery (node and coordinator), a bounded-exhaustive
   check that dropping any single coordinator-bound message never breaks
   the protocol, and a bounded-exhaustive sweep that fail-stops the
   coordinator inside each of the four advancement phases. *)

module Sim = Simul.Sim
module Ivar = Simul.Ivar
module Network = Netsim.Network
module Latency = Netsim.Latency
module Plan = Fault.Plan
module Injector = Fault.Injector
module Engine = Threev.Engine
module Policy = Threev.Policy
module Spec = Txn.Spec
module Op = Txn.Op
module Result = Txn.Result
module Counter_set = Stats.Counter_set
module Explorer = Mcheck.Explorer

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------ network filter *)

let filter_drops_message () =
  let sim = Sim.create () in
  let net = Network.create sim ~size:2 ~latency:(Latency.Constant 0.01) () in
  Network.set_filter net (fun ~src:_ ~dst:_ ~delay:_ -> []);
  let got = ref false in
  Sim.spawn sim ~daemon:true (fun () ->
      ignore (Network.recv net ~node:1);
      got := true);
  Network.send net ~src:0 ~dst:1 ();
  ignore (Sim.run sim ());
  checkb "never delivered" false !got;
  checki "dropped" 1 (Network.messages_dropped net);
  checki "delivered" 0 (Network.messages_delivered net)

let filter_duplicates_message () =
  let sim = Sim.create () in
  let net = Network.create sim ~size:2 ~latency:(Latency.Constant 0.01) () in
  Network.set_filter net (fun ~src:_ ~dst:_ ~delay -> [ delay; delay +. 0.02 ]);
  let copies = ref 0 in
  Sim.spawn sim ~daemon:true (fun () ->
      let rec loop () =
        ignore (Network.recv net ~node:1);
        incr copies;
        loop ()
      in
      loop ());
  Network.send net ~src:0 ~dst:1 "m";
  ignore (Sim.run sim ());
  checki "two copies arrive" 2 !copies;
  checki "one extra copy" 1 (Network.extra_copies net);
  checki "delivered counts copies" 2 (Network.messages_delivered net)

(* The network.mli contract: self-sends have zero base delay but still pass
   through the filter and the delivery accounting. *)
let self_send_passes_filter () =
  let sim = Sim.create () in
  let net = Network.create sim ~size:2 ~latency:(Latency.Constant 5.0) () in
  let seen_delay = ref (-1.) in
  Network.set_filter net (fun ~src:_ ~dst:_ ~delay ->
      seen_delay := delay;
      []);
  let got = ref false in
  Sim.spawn sim ~daemon:true (fun () ->
      ignore (Network.recv net ~node:0);
      got := true);
  Network.send net ~src:0 ~dst:0 ();
  ignore (Sim.run sim ());
  checkb "filter saw the self-send" true (!seen_delay = 0.);
  checkb "filter can drop it" false !got;
  checki "accounted as dropped" 1 (Network.messages_dropped net)

(* ------------------------------------------------ plan validation *)

let plan_validation () =
  let raises f = match f () with _ -> false | exception Invalid_argument _ -> true in
  checkb "prob > 1 rejected" true
    (raises (fun () -> Plan.make ~rules:[ Plan.rule ~prob:1.5 Plan.Drop ] ()));
  checkb "empty window rejected" true
    (raises (fun () ->
         Plan.make ~rules:[ Plan.rule ~from_:2.0 ~until_:1.0 Plan.Drop ] ()));
  checkb "nth = 0 rejected" true
    (raises (fun () -> Plan.make ~rules:[ Plan.rule ~nth:0 Plan.Drop ] ()));
  checkb "restart before crash rejected" true
    (raises (fun () ->
         Plan.make ~crashes:[ Plan.crash ~node:0 ~at:2.0 ~restart:1.0 ] ()));
  checkb "coord restart before crash rejected" true
    (raises (fun () ->
         Plan.make ~coord_crashes:[ Plan.coord_crash ~at:2.0 ~restart:1.0 ] ()));
  checkb "well-formed plan accepted" true
    (not
       (raises (fun () ->
            Plan.make ~seed:3
              ~rules:(Plan.uniform_loss ~dup:0.1 ~drop:0.05 ())
              ~pauses:[ Plan.pause ~node:0 ~at:1.0 ~duration:0.5 ]
              ~crashes:[ Plan.crash ~node:1 ~at:1.0 ~restart:2.0 ]
              ~coord_crashes:[ Plan.coord_crash ~at:1.0 ~restart:2.0 ] ())));
  checkb "none is none" true (Plan.is_none Plan.none);
  checkb "a coord crash makes a plan non-empty" true
    (not
       (Plan.is_none
          (Plan.make ~coord_crashes:[ Plan.coord_crash ~at:1.0 ~restart:2.0 ] ())))

(* ------------------------------------------------ scripted faults *)

let scripted_nth_drop () =
  let sim = Sim.create () in
  let net = Network.create sim ~size:2 ~latency:(Latency.Constant 0.01) () in
  let plan =
    Plan.make ~rules:[ Plan.rule ~src:0 ~dst:1 ~nth:2 Plan.Drop ] ()
  in
  let inj = Injector.create sim plan in
  Injector.install inj net;
  let log = ref [] in
  Sim.spawn sim ~daemon:true (fun () ->
      let rec loop () =
        log := Network.recv net ~node:1 :: !log;
        loop ()
      in
      loop ());
  List.iter (fun i -> Network.send net ~src:0 ~dst:1 i) [ 1; 2; 3 ];
  ignore (Sim.run sim ());
  Alcotest.(check (list int))
    "exactly the 2nd delivery dropped" [ 1; 3 ] (List.rev !log);
  checki "counted" 1 (Counter_set.get (Injector.stats inj) "fault.drops")

let partition_heals () =
  let sim = Sim.create () in
  let net = Network.create sim ~size:2 ~latency:(Latency.Constant 0.001) () in
  let plan =
    Plan.make
      ~rules:[ Plan.partition ~src:0 ~dst:1 ~from_:0.1 ~until_:0.2 ]
      ()
  in
  Injector.install (Injector.create sim plan) net;
  let log = ref [] in
  Sim.spawn sim ~daemon:true (fun () ->
      let rec loop () =
        log := Network.recv net ~node:1 :: !log;
        loop ()
      in
      loop ());
  Sim.spawn sim (fun () ->
      Network.send net ~src:0 ~dst:1 1;
      Sim.sleep sim 0.15;
      Network.send net ~src:0 ~dst:1 2;
      (* inside the window: lost *)
      Sim.sleep sim 0.15;
      Network.send net ~src:0 ~dst:1 3);
  ignore (Sim.run sim ());
  Alcotest.(check (list int))
    "window message lost, link heals" [ 1; 3 ] (List.rev !log)

(* ------------------------------------------------ determinism *)

let history_digest (outcome : Harness.Runner.outcome) =
  List.fold_left
    (fun acc ((spec : Spec.t), (res : Result.t)) ->
      acc
      lxor Hashtbl.hash
             ( spec.Spec.id,
               Result.committed res,
               res.Result.submit_time,
               Result.latency res ))
    0 outcome.Harness.Runner.history

let run_small ?plan ~reliable () =
  let nodes = 2 in
  let sim = Sim.create ~seed:5 () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.latency = Latency.Exponential 0.004;
      think_time = 0.0003;
      policy = Policy.Periodic 0.1;
      reliable_channel = reliable;
      retransmit_timeout = 0.01;
    }
  in
  let faults = Option.map (Injector.create sim) plan in
  let engine = Engine.create sim cfg ?faults () in
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes) with
        Workload.Synthetic.arrival_rate = 300.;
        fanout = 2;
      }
  in
  let outcome =
    Harness.Runner.drive sim (Engine.packed engine)
      gen
      {
        Harness.Runner.default_setup with
        Harness.Runner.seed = 5;
        duration = 0.3;
        settle = 3.0;
      }
  in
  (outcome, engine)

(* Same (simulation seed, plan) pair => byte-identical execution. *)
let same_seed_same_trace () =
  let plan =
    Plan.make ~seed:99 ~rules:(Plan.uniform_loss ~dup:0.02 ~drop:0.1 ()) ()
  in
  let o1, _ = run_small ~plan ~reliable:true () in
  let o2, _ = run_small ~plan ~reliable:true () in
  let d1 = Counter_set.get o1.Harness.Runner.stats "fault.drops" in
  checkb "faults actually fired" true (d1 > 0);
  checki "same drops" d1 (Counter_set.get o2.Harness.Runner.stats "fault.drops");
  checki "identical histories" (history_digest o1) (history_digest o2);
  checki "same unfinished" o1.Harness.Runner.unfinished
    o2.Harness.Runner.unfinished

(* Installing the empty plan is behaviorally identical to no injector at
   all: zero fault-RNG draws, so even the latency stream is untouched. *)
let empty_plan_is_noop () =
  let o1, _ = run_small ~reliable:false () in
  let o2, _ = run_small ~plan:Plan.none ~reliable:false () in
  checki "identical histories" (history_digest o1) (history_digest o2);
  checki "same committed" o1.Harness.Runner.committed
    o2.Harness.Runner.committed

(* ------------------------------------------------ crash-restart *)

let crash_restart_recovers () =
  let nodes = 2 in
  let sim = Sim.create ~seed:21 () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.latency = Latency.Constant 0.005;
      think_time = 0.001;
      reliable_channel = true;
      retransmit_timeout = 0.01;
    }
  in
  let engine = Engine.create sim cfg () in
  Engine.inject_crash engine ~node:1 ~at:0.05 ~restart:0.3;
  let results = ref [] in
  let adv = ref None in
  Sim.spawn sim ~name:"script" (fun () ->
      let submit id spec = results := (id, Engine.submit engine spec) :: !results in
      submit 1
        (Spec.make ~id:1
           (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Incr ("b", 1.) ] ] 0
              [ Op.Incr ("a", 1.) ]));
      Sim.sleep sim 0.04;
      (* triggered just before the crash: node 1 is down for most of it *)
      adv := Some (Engine.advance engine);
      Sim.sleep sim 0.5;
      submit 2
        (Spec.make ~id:2
           (Spec.subtxn ~children:[ Spec.subtxn 0 [ Op.Incr ("a", 2.) ] ] 1
              [ Op.Incr ("b", 2.) ])));
  ignore (Sim.run sim ~until:20.0 ());
  (match !adv with
  | Some iv when Ivar.is_full iv -> ()
  | _ -> Alcotest.fail "advancement did not survive the crash");
  List.iter
    (fun (id, iv) ->
      match Ivar.peek iv with
      | Some res -> checkb (Printf.sprintf "txn %d committed" id) true (Result.committed res)
      | None -> Alcotest.failf "txn %d unresolved" id)
    !results;
  checki "restarted node caught up (vu)"
    (Engine.update_version engine ~node:0)
    (Engine.update_version engine ~node:1);
  checki "restarted node caught up (vr)"
    (Engine.read_version engine ~node:0)
    (Engine.read_version engine ~node:1);
  checkb "crash was accounted" true
    (Counter_set.get (Injector.stats (Engine.injector engine)) "fault.restarts"
    = 1)

(* A node that crashes before the first advancement even triggers must
   recover to the true initial versions (vu = 1, vr = 0), not to zero —
   the restart-recovery seed is the protocol's initial state, never an
   empty fold. *)
let restart_before_any_advancement () =
  let nodes = 2 in
  let sim = Sim.create ~seed:7 () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.latency = Latency.Constant 0.005;
      think_time = 0.001;
      reliable_channel = true;
      retransmit_timeout = 0.01;
    }
  in
  let engine = Engine.create sim cfg () in
  Engine.inject_crash engine ~node:1 ~at:0.01 ~restart:0.1;
  let r = ref None in
  Sim.spawn sim ~name:"script" (fun () ->
      Sim.sleep sim 0.2;
      r :=
        Some
          (Engine.submit engine
             (Spec.make ~id:1
                (Spec.subtxn
                   ~children:[ Spec.subtxn 1 [ Op.Incr ("b", 1.) ] ]
                   0
                   [ Op.Incr ("a", 1.) ]))));
  ignore (Sim.run sim ~until:10.0 ());
  checki "recovered update version is the true initial" 1
    (Engine.update_version engine ~node:1);
  checki "recovered read version is the true initial" 0
    (Engine.read_version engine ~node:1);
  match !r with
  | Some iv -> (
      match Ivar.peek iv with
      | Some res ->
          checkb "txn committed on the recovered node" true
            (Result.committed res)
      | None -> Alcotest.fail "txn unresolved")
  | None -> Alcotest.fail "txn never submitted"

(* ------------------------------------------------ qcheck: random loss *)

(* Under any loss rate up to 10% (plus duplication), with the reliable
   channel on: advancement keeps completing, the history stays atomically
   visible, the 3-version bound holds, and nothing is left unfinished. *)
let qcheck_loss =
  QCheck.Test.make ~name:"advancement terminates under random <=10% loss"
    ~count:30
    QCheck.(pair (int_range 1 10_000) (int_range 0 10))
    (fun (plan_seed, drop_pct) ->
      let plan =
        Plan.make ~seed:plan_seed
          ~rules:
            (Plan.uniform_loss ~dup:0.02 ~drop:(float_of_int drop_pct /. 100.) ())
          ()
      in
      let outcome, engine = run_small ~plan ~reliable:true () in
      let atom = Harness.Runner.atomicity outcome in
      if Engine.advancements_completed engine < 1 then
        QCheck.Test.fail_report "advancement never completed";
      if not (Checker.Atomicity.clean atom) then
        QCheck.Test.fail_report "atomic visibility violated";
      if Engine.max_versions_ever engine > 3 then
        QCheck.Test.fail_report "3-version bound broken";
      if outcome.Harness.Runner.unfinished > 0 then
        QCheck.Test.fail_report "transactions left unfinished";
      true)

(* Add a coordinator fail-stop on top of random loss: the run must still
   terminate with at least one completed advancement, a clean history, and
   the 3-version bound — and re-running the same (sim seed, plan) pair must
   replay byte-identically, crash recovery included. *)
let qcheck_coord_crash =
  QCheck.Test.make
    ~name:"coordinator crash + <=10% loss terminates, deterministically"
    ~count:15
    QCheck.(
      triple (int_range 1 10_000) (int_range 0 10) (int_range 0 20))
    (fun (plan_seed, drop_pct, at_slot) ->
      let at = 0.05 +. (0.01 *. float_of_int at_slot) in
      let plan =
        Plan.make ~seed:plan_seed
          ~rules:
            (Plan.uniform_loss ~dup:0.02 ~drop:(float_of_int drop_pct /. 100.) ())
          ~coord_crashes:[ Plan.coord_crash ~at ~restart:(at +. 0.15) ]
          ()
      in
      let o1, engine = run_small ~plan ~reliable:true () in
      if Engine.advancements_completed engine < 1 then
        QCheck.Test.fail_report "advancement never completed";
      if not (Checker.Atomicity.clean (Harness.Runner.atomicity o1)) then
        QCheck.Test.fail_report "atomic visibility violated";
      if Engine.max_versions_ever engine > 3 then
        QCheck.Test.fail_report "3-version bound broken";
      if o1.Harness.Runner.unfinished > 0 then
        QCheck.Test.fail_report "transactions left unfinished";
      let o2, _ = run_small ~plan ~reliable:true () in
      if history_digest o1 <> history_digest o2 then
        QCheck.Test.fail_report "replay diverged across coordinator recovery";
      true)

(* ------------------------------------- mcheck: drop any one message *)

(* Bounded-exhaustive scenario: a Table-1-shaped run where exactly one
   scripted rule drops the k-th node->coordinator message (acks, adv-acks,
   poll replies — whatever the k-th happens to be) for every node and every
   k up to a budget. On each schedule the protocol must still terminate
   (retransmission repairs the loss), commit everything, stay atomic, and
   never fire the quiescence oracle early (debug_checks raises inside the
   engine if phase 2/4 ever declares quiescence unsoundly). *)
let drop_one_scenario ctl =
  let nodes = 2 in
  let src = Explorer.choose ctl nodes in
  let nth = 1 + Explorer.choose ctl 6 in
  let plan =
    Plan.make
      ~rules:[ Plan.rule ~src ~dst:nodes (* coordinator *) ~nth Plan.Drop ]
      ()
  in
  let sim = Sim.create ~seed:1 () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.think_time = 0.002;
      poll_interval = 0.02;
      debug_checks = true;
      reliable_channel = true;
      retransmit_timeout = 0.03;
    }
  in
  let faults = Injector.create sim plan in
  let engine = Engine.create sim cfg ~faults () in
  let submitted = ref [] in
  let submit spec = submitted := (spec, Engine.submit engine spec) :: !submitted in
  let adv = ref None in
  Sim.spawn sim ~name:"script" (fun () ->
      submit
        (Spec.make ~id:1 ~label:"i"
           (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Incr ("d", 3.) ] ] 0
              [ Op.Incr ("a", 1.) ]));
      Sim.sleep sim 0.01;
      adv := Some (Engine.advance engine);
      Sim.sleep sim 0.02;
      submit
        (Spec.make ~id:2 ~label:"j"
           (Spec.subtxn ~children:[ Spec.subtxn 0 [ Op.Incr ("a", 5.) ] ] 1
              [ Op.Incr ("d", 7.) ]));
      Sim.sleep sim 0.02;
      submit
        (Spec.make ~id:3 ~label:"y"
           (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Read "d" ] ] 0
              [ Op.Read "a" ])));
  (match Sim.run sim ~until:60.0 () with
  | Sim.Completed | Sim.Hit_limit -> ()
  | Sim.Stalled names -> failwith ("stalled: " ^ String.concat "," names));
  (match !adv with
  | Some iv when Ivar.is_full iv -> ()
  | _ -> failwith "advancement did not complete");
  let history =
    List.map
      (fun ((spec : Spec.t), iv) ->
        match Ivar.peek iv with
        | Some res ->
            if not (Result.committed res) then
              failwith (spec.Spec.label ^ " did not commit");
            (spec, res)
        | None -> failwith (spec.Spec.label ^ " unresolved"))
      !submitted
  in
  if not (Checker.Atomicity.clean (Checker.Atomicity.check history)) then
    failwith "atomic visibility violated";
  if Engine.max_versions_ever engine > 3 then failwith "version bound broken"

let drop_any_one_message () =
  let outcome = Explorer.explore drop_one_scenario in
  (match outcome.Explorer.failure with
  | Some (path, exn) ->
      Alcotest.failf "dropping message %s breaks the protocol: %s"
        (String.concat "," (List.map string_of_int path))
        (Printexc.to_string exn)
  | None -> ());
  checkb "tree exhausted" true outcome.Explorer.exhausted;
  checki "2 links x 6 positions" 12 outcome.Explorer.runs

(* --------------------- mcheck: coordinator crash inside each phase *)

(* Manual-policy run with the advancement triggered at a fixed time, so the
   coordinator's WAL phase-entry timestamps pin down when each phase is in
   flight. *)
let run_coord ?(plan = Plan.none) () =
  let nodes = 2 in
  let sim = Sim.create ~seed:31 () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.latency = Latency.Constant 0.004;
      think_time = 0.0003;
      policy = Policy.Manual;
      reliable_channel = true;
      retransmit_timeout = 0.01;
    }
  in
  let faults = Injector.create sim plan in
  let engine = Engine.create sim cfg ~faults () in
  let adv = ref None in
  Sim.schedule sim ~delay:0.1 (fun () -> adv := Some (Engine.advance engine));
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes) with
        Workload.Synthetic.arrival_rate = 300.;
        fanout = 2;
      }
  in
  let outcome =
    Harness.Runner.drive sim (Engine.packed engine) gen
      {
        Harness.Runner.default_setup with
        Harness.Runner.seed = 31;
        duration = 0.3;
        settle = 6.0;
      }
  in
  (outcome, engine, !adv)

(* Phase-entry times of the first advancement in a fault-free reference
   run. Runs are byte-identical up to the crash instant, so a crash placed
   strictly inside [entry k, entry k+1) provably lands in phase k. *)
let coord_phase_entries =
  lazy
    (let _, engine, adv = run_coord () in
     (match adv with
     | Some iv when Ivar.is_full iv -> ()
     | _ -> failwith "reference advancement did not complete");
     let times = Threev.Coord_log.phase_times (Engine.coord_log engine) in
     Array.init 4 (fun i ->
         match
           List.find_opt
             (fun (a, p, _) -> a = 1 && Threev.Coord_log.phase_number p = i + 1)
             times
         with
         | Some (_, _, t) -> t
         | None -> failwith (Printf.sprintf "phase %d never entered" (i + 1))))

(* Bounded-exhaustive sweep: fail-stop the coordinator inside each of the
   four phases of an in-flight advancement. Phases 1-3 crash at the
   midpoint of the phase's WAL-timestamped window; phase 4 has no successor
   entry, so it crashes just after the Retire_read record. Every schedule
   must recover from the WAL, finish the advancement, keep the history
   atomic, and hold the 3-version bound. *)
let coord_crash_scenario ctl =
  let entry = Lazy.force coord_phase_entries in
  let k = Explorer.choose ctl 4 in
  let at =
    if k < 3 then (entry.(k) +. entry.(k + 1)) /. 2. else entry.(3) +. 0.002
  in
  let plan =
    Plan.make ~seed:17
      ~coord_crashes:[ Plan.coord_crash ~at ~restart:(at +. 0.2) ]
      ()
  in
  let outcome, engine, adv = run_coord ~plan () in
  (match adv with
  | Some iv when Ivar.is_full iv -> ()
  | _ -> failwith "advancement did not survive the coordinator crash");
  if Engine.advancements_completed engine < 1 then
    failwith "advancement never completed";
  if Counter_set.get outcome.Harness.Runner.stats "proto.coord_recoveries" < 1
  then failwith "coordinator never recovered from its WAL";
  if not (Checker.Atomicity.clean (Harness.Runner.atomicity outcome)) then
    failwith "atomic visibility violated";
  if Engine.max_versions_ever engine > 3 then failwith "version bound broken";
  if outcome.Harness.Runner.unfinished > 0 then
    failwith "transactions left unfinished"

let coord_crash_each_phase () =
  let outcome = Explorer.explore coord_crash_scenario in
  (match outcome.Explorer.failure with
  | Some (path, exn) ->
      Alcotest.failf "coordinator crash in phase %s breaks the protocol: %s"
        (String.concat "," (List.map (fun k -> string_of_int (k + 1)) path))
        (Printexc.to_string exn)
  | None -> ());
  checkb "tree exhausted" true outcome.Explorer.exhausted;
  checki "one run per phase" 4 outcome.Explorer.runs

(* --------------------------------------------------------------- suite *)

let () =
  Alcotest.run "fault"
    [
      ( "filter",
        [
          Alcotest.test_case "drop" `Quick filter_drops_message;
          Alcotest.test_case "duplicate" `Quick filter_duplicates_message;
          Alcotest.test_case "self-send" `Quick self_send_passes_filter;
        ] );
      ( "plan",
        [
          Alcotest.test_case "validation" `Quick plan_validation;
          Alcotest.test_case "scripted nth drop" `Quick scripted_nth_drop;
          Alcotest.test_case "partition heals" `Quick partition_heals;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same trace" `Quick same_seed_same_trace;
          Alcotest.test_case "empty plan is a no-op" `Quick empty_plan_is_noop;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash-restart" `Quick crash_restart_recovers;
          Alcotest.test_case "restart before first advancement" `Quick
            restart_before_any_advancement;
        ] );
      ( "loss",
        [
          QCheck_alcotest.to_alcotest qcheck_loss;
          QCheck_alcotest.to_alcotest qcheck_coord_crash;
        ] );
      ( "mcheck",
        [
          Alcotest.test_case "drop any one message" `Quick drop_any_one_message;
          Alcotest.test_case "coordinator crash in each phase" `Quick
            coord_crash_each_phase;
        ] );
    ]
