(* Tests for workload generators: spec validity and distribution sanity. *)

module Spec = Txn.Spec
module Op = Txn.Op
module Generator = Workload.Generator
module Zipf = Workload.Zipf

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let rng () = Random.State.make [| 123 |]

(* -------------------------------------------------------------- zipf *)

let zipf_bounds () =
  let z = Zipf.create ~n:10 ~s:1.2 in
  let r = rng () in
  checki "support" 10 (Zipf.support z);
  for _ = 1 to 1000 do
    let x = Zipf.sample z r in
    if x < 0 || x >= 10 then Alcotest.fail "out of range"
  done

let zipf_uniform_when_s_zero () =
  let z = Zipf.create ~n:4 ~s:0. in
  let r = rng () in
  let counts = Array.make 4 0 in
  for _ = 1 to 40_000 do
    let x = Zipf.sample z r in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      checkb "roughly uniform" true (c > 9_000 && c < 11_000))
    counts

let zipf_skew () =
  let z = Zipf.create ~n:100 ~s:1.5 in
  let r = rng () in
  let first = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Zipf.sample z r = 0 then incr first
  done;
  (* With s=1.5 over 100 items, item 0 has ~38% of the mass. *)
  checkb "head heavy" true (!first > n / 4)

let zipf_invalid () =
  Alcotest.check_raises "n" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Zipf.create ~n:0 ~s:1.));
  Alcotest.check_raises "s" (Invalid_argument "Zipf.create: s must be nonnegative")
    (fun () -> ignore (Zipf.create ~n:1 ~s:(-1.)))

(* --------------------------------------------------------- generator *)

let pick_distinct_properties =
  QCheck.Test.make ~name:"pick_distinct yields distinct in-range values"
    ~count:300
    QCheck.(pair (int_range 1 10) (int_range 1 10))
    (fun (n, among) ->
      let r = Random.State.make [| n; among |] in
      let picked = Generator.pick_distinct r ~n ~among in
      List.length picked = min n among
      && List.sort_uniq compare picked = List.sort compare picked
      && List.for_all (fun x -> x >= 0 && x < among) picked)

let fanout_tree_structure () =
  let tree = Generator.fanout_tree ~ops_of:(fun n -> [ Op.Read (string_of_int n) ]) [ 3; 1; 4 ] in
  checki "root node" 3 tree.Spec.node;
  checki "children" 2 (List.length tree.Spec.children);
  Alcotest.check_raises "empty" (Invalid_argument "Generator.fanout_tree: empty node list")
    (fun () -> ignore (Generator.fanout_tree ~ops_of:(fun _ -> []) []))

let with_rate () =
  let g =
    Workload.Synthetic.generator (Workload.Synthetic.default ~nodes:2)
  in
  let g' = Generator.with_rate g 999. in
  Alcotest.(check (float 1e-9)) "rate" 999. (Generator.rate g');
  Alcotest.(check string) "name kept" (Generator.name g) (Generator.name g')

(* Validity: every generated spec only touches nodes within range and is
   classified as expected. *)
let spec_valid ~nodes (spec : Spec.t) =
  List.for_all (fun n -> n >= 0 && n < nodes) (Spec.nodes spec)
  && Spec.size spec >= 1

let generator_validity name gen ~nodes =
  let r = rng () in
  for i = 1 to 500 do
    let spec = gen.Generator.make r ~id:i in
    if not (spec_valid ~nodes spec) then
      Alcotest.failf "%s produced an invalid spec %d" name i
  done

let hospital_specs () =
  let nodes = 4 in
  let gen =
    Workload.Hospital.generator
      { (Workload.Hospital.default ~nodes) with Workload.Hospital.front_end = true }
  in
  generator_validity "hospital" gen ~nodes;
  (* Kinds: reads and commuting updates only. *)
  let r = rng () in
  for i = 1 to 200 do
    let spec = gen.Generator.make r ~id:i in
    if spec.Spec.kind = Spec.Non_commuting then
      Alcotest.fail "hospital must not produce non-commuting txns"
  done

let hospital_visit_shape () =
  let nodes = 4 in
  let gen =
    Workload.Hospital.generator
      {
        (Workload.Hospital.default ~nodes) with
        Workload.Hospital.read_ratio = 0. (* only visits *);
        visit_fanout = 3;
      }
  in
  let r = rng () in
  for i = 1 to 100 do
    let spec = gen.Generator.make r ~id:i in
    checki "visit touches 3 departments" 3 (List.length (Spec.nodes spec));
    checkb "is update" true (spec.Spec.kind = Spec.Commuting)
  done

let call_recording_specs () =
  let nodes = 3 in
  let gen = Workload.Call_recording.generator (Workload.Call_recording.default ~nodes) in
  generator_validity "call-recording" gen ~nodes

let pos_nc_ratio () =
  let nodes = 4 in
  let gen =
    Workload.Point_of_sale.generator
      {
        (Workload.Point_of_sale.default ~nodes) with
        Workload.Point_of_sale.nc_ratio = 0.5;
        read_ratio = 0.;
      }
  in
  generator_validity "pos" gen ~nodes;
  let r = rng () in
  let nc = ref 0 and total = 500 in
  for i = 1 to total do
    let spec = gen.Generator.make r ~id:i in
    if spec.Spec.kind = Spec.Non_commuting then incr nc
  done;
  checkb "roughly half non-commuting" true (!nc > 150 && !nc < 350)

let pos_no_nc_when_zero () =
  let gen =
    Workload.Point_of_sale.generator
      { (Workload.Point_of_sale.default ~nodes:3) with Workload.Point_of_sale.nc_ratio = 0. }
  in
  let r = rng () in
  for i = 1 to 300 do
    let spec = gen.Generator.make r ~id:i in
    if spec.Spec.kind = Spec.Non_commuting then
      Alcotest.fail "nc_ratio 0 must not produce NC transactions"
  done

let synthetic_read_ratio () =
  let gen =
    Workload.Synthetic.generator
      { (Workload.Synthetic.default ~nodes:4) with Workload.Synthetic.read_ratio = 0.5 }
  in
  let r = rng () in
  let reads = ref 0 and total = 1000 in
  for i = 1 to total do
    let spec = gen.Generator.make r ~id:i in
    if spec.Spec.kind = Spec.Read_only then incr reads
  done;
  checkb "about half reads" true (!reads > 400 && !reads < 600)

let synthetic_fanout () =
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes:8) with
        Workload.Synthetic.fanout = 3;
        read_ratio = 0.;
      }
  in
  let r = rng () in
  for i = 1 to 100 do
    let spec = gen.Generator.make r ~id:i in
    checki "fanout respected" 3 (List.length (Spec.nodes spec))
  done

let factory_specs () =
  let nodes = 3 in
  let gen =
    Workload.Factory.generator
      {
        (Workload.Factory.default ~nodes) with
        Workload.Factory.reset_ratio = 0.2;
      }
  in
  generator_validity "factory" gen ~nodes;
  let r = rng () in
  let seen_reset = ref false and seen_report = ref false in
  for i = 1 to 300 do
    let spec = gen.Generator.make r ~id:i in
    if spec.Spec.kind = Spec.Non_commuting then seen_reset := true;
    if spec.Spec.kind = Spec.Read_only then begin
      seen_report := true;
      (* Shift reports fan out to every line. *)
      checki "report covers all lines" nodes (List.length (Spec.nodes spec))
    end
  done;
  checkb "resets generated" true !seen_reset;
  checkb "reports generated" true !seen_report

let qsuite = List.map QCheck_alcotest.to_alcotest [ pick_distinct_properties ]

let () =
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "bounds" `Quick zipf_bounds;
          Alcotest.test_case "uniform when s=0" `Quick zipf_uniform_when_s_zero;
          Alcotest.test_case "skew" `Quick zipf_skew;
          Alcotest.test_case "invalid args" `Quick zipf_invalid;
        ] );
      ( "generator",
        [
          Alcotest.test_case "fanout tree" `Quick fanout_tree_structure;
          Alcotest.test_case "with_rate" `Quick with_rate;
        ]
        @ qsuite );
      ( "domains",
        [
          Alcotest.test_case "hospital validity" `Quick hospital_specs;
          Alcotest.test_case "hospital visit shape" `Quick hospital_visit_shape;
          Alcotest.test_case "call recording validity" `Quick
            call_recording_specs;
          Alcotest.test_case "pos nc ratio" `Quick pos_nc_ratio;
          Alcotest.test_case "pos nc zero" `Quick pos_no_nc_when_zero;
          Alcotest.test_case "synthetic read ratio" `Quick synthetic_read_ratio;
          Alcotest.test_case "synthetic fanout" `Quick synthetic_fanout;
          Alcotest.test_case "factory validity" `Quick factory_specs;
        ] );
    ]
