(* Tests for the multi-version store: the data-layer rules of paper §4.1
   step 3/4 and the §4.3 phase-4 garbage collection. *)

module Mvstore = Store.Mvstore

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let vlist = Alcotest.(check (list int))

(* A tiny value type: the store is polymorphic, ints suffice here. *)
let put store ~key ~version value =
  Mvstore.write_exact store ~key ~version ~init:0 ~f:(fun _ -> value)

let read_visible_rules () =
  let s = Mvstore.create () in
  ignore (put s ~key:"x" ~version:0 10);
  ignore (put s ~key:"x" ~version:2 30);
  (* Max existing version not exceeding the requested one. *)
  checkb "v0" true (Mvstore.read_visible s ~key:"x" ~version:0 = Some (0, 10));
  checkb "v1 falls back to v0" true
    (Mvstore.read_visible s ~key:"x" ~version:1 = Some (0, 10));
  checkb "v2" true (Mvstore.read_visible s ~key:"x" ~version:2 = Some (2, 30));
  checkb "v9 sees latest" true
    (Mvstore.read_visible s ~key:"x" ~version:9 = Some (2, 30));
  checkb "missing key" true (Mvstore.read_visible s ~key:"y" ~version:5 = None)

let read_exact_and_exists () =
  let s = Mvstore.create () in
  ignore (put s ~key:"x" ~version:1 11);
  checkb "exact hit" true (Mvstore.read_exact s ~key:"x" ~version:1 = Some 11);
  checkb "exact miss" true (Mvstore.read_exact s ~key:"x" ~version:0 = None);
  checkb "exists" true (Mvstore.exists s ~key:"x" ~version:1);
  checkb "not exists" false (Mvstore.exists s ~key:"x" ~version:2);
  checkb "above false" false (Mvstore.exists_above s ~key:"x" ~version:1);
  checkb "above true" true (Mvstore.exists_above s ~key:"x" ~version:0);
  checkb "above missing key" false (Mvstore.exists_above s ~key:"z" ~version:0)

let write_upward_copy_on_update () =
  let s = Mvstore.create () in
  ignore (put s ~key:"x" ~version:0 100);
  (* Writing version 1 copies version 0 first, then updates version 1. *)
  let info = Mvstore.write_upward s ~key:"x" ~version:1 ~init:0 ~f:(fun v -> v + 1) in
  checkb "copied" true info.Mvstore.created_copy;
  checkb "not new item" false info.Mvstore.created_item;
  checki "one version updated" 1 info.Mvstore.versions_updated;
  checkb "v0 untouched" true (Mvstore.read_exact s ~key:"x" ~version:0 = Some 100);
  checkb "v1 updated" true (Mvstore.read_exact s ~key:"x" ~version:1 = Some 101)

let write_upward_dual_write () =
  let s = Mvstore.create () in
  ignore (put s ~key:"x" ~version:0 0);
  (* A version-2 transaction creates x(2)... *)
  ignore (Mvstore.write_upward s ~key:"x" ~version:2 ~init:0 ~f:(fun v -> v + 100));
  (* ...then a version-1 straggler must update BOTH versions 1 and 2
     (paper §2.3, the iq-on-D case). *)
  let info = Mvstore.write_upward s ~key:"x" ~version:1 ~init:0 ~f:(fun v -> v + 1) in
  checki "dual write" 2 info.Mvstore.versions_updated;
  checkb "v1 = copy of v0 + 1" true
    (Mvstore.read_exact s ~key:"x" ~version:1 = Some 1);
  checkb "v2 reflects both" true
    (Mvstore.read_exact s ~key:"x" ~version:2 = Some 101);
  checki "dual-write counter" 1 (Mvstore.dual_writes s)

let write_upward_no_higher_copy () =
  let s = Mvstore.create () in
  ignore (put s ~key:"e" ~version:0 5);
  (* No version-2 copy exists: a version-1 write touches only version 1
     (the iq-on-E case — "E does not yet have a version 2 copy"). *)
  let info = Mvstore.write_upward s ~key:"e" ~version:1 ~init:0 ~f:(fun v -> v + 1) in
  checki "single" 1 info.Mvstore.versions_updated;
  vlist "versions" [ 1; 0 ] (Mvstore.versions_of s ~key:"e")

let write_upward_new_item () =
  let s = Mvstore.create () in
  let info = Mvstore.write_upward s ~key:"n" ~version:3 ~init:7 ~f:(fun v -> v * 2) in
  checkb "created item" true info.Mvstore.created_item;
  checkb "no copy counted for fresh items" false info.Mvstore.created_copy;
  checkb "value from init" true (Mvstore.read_exact s ~key:"n" ~version:3 = Some 14);
  checki "copies counter untouched" 0 (Mvstore.copies_created s)

let write_upward_only_higher_exists () =
  (* The item exists only in a higher version (created there): an
     older-version write materializes its own copy from [init] and still
     updates the higher copy — §4.1 step 4 taken literally. *)
  let s = Mvstore.create () in
  ignore (put s ~key:"x" ~version:5 50);
  let info = Mvstore.write_upward s ~key:"x" ~version:2 ~init:0 ~f:(fun v -> v + 1) in
  checkb "not a new item" false info.Mvstore.created_item;
  checki "both versions updated" 2 info.Mvstore.versions_updated;
  checkb "v2 from init" true (Mvstore.read_exact s ~key:"x" ~version:2 = Some 1);
  checkb "v5 updated too" true (Mvstore.read_exact s ~key:"x" ~version:5 = Some 51)

let write_exact_leaves_higher_alone () =
  let s = Mvstore.create () in
  ignore (put s ~key:"x" ~version:0 0);
  ignore (put s ~key:"x" ~version:2 20);
  ignore (Mvstore.write_exact s ~key:"x" ~version:1 ~init:0 ~f:(fun v -> v + 1));
  checkb "v1 created from v0 and updated" true
    (Mvstore.read_exact s ~key:"x" ~version:1 = Some 1);
  checkb "v2 untouched (NC rule)" true
    (Mvstore.read_exact s ~key:"x" ~version:2 = Some 20)

let gc_drop_when_new_version_exists () =
  let s = Mvstore.create () in
  ignore (put s ~key:"x" ~version:0 0);
  ignore (put s ~key:"x" ~version:1 1);
  ignore (put s ~key:"x" ~version:2 2);
  Mvstore.gc s ~new_read_version:1;
  vlist "kept 1 and 2" [ 2; 1 ] (Mvstore.versions_of s ~key:"x");
  checkb "v1 value intact" true (Mvstore.read_exact s ~key:"x" ~version:1 = Some 1)

let gc_relabel_when_missing () =
  let s = Mvstore.create () in
  ignore (put s ~key:"b" ~version:0 42);
  (* b was never written in version 1: its latest earlier version gets
     relabelled (paper §4.3 phase 4). *)
  Mvstore.gc s ~new_read_version:1;
  vlist "relabelled" [ 1 ] (Mvstore.versions_of s ~key:"b");
  checkb "value preserved" true (Mvstore.read_exact s ~key:"b" ~version:1 = Some 42)

let gc_idempotent () =
  let s = Mvstore.create () in
  ignore (put s ~key:"x" ~version:0 0);
  ignore (put s ~key:"x" ~version:2 2);
  Mvstore.gc s ~new_read_version:1;
  let before = Mvstore.versions_of s ~key:"x" in
  Mvstore.gc s ~new_read_version:1;
  vlist "stable" before (Mvstore.versions_of s ~key:"x")

let max_versions_tracking () =
  let s = Mvstore.create () in
  ignore (put s ~key:"x" ~version:0 0);
  checki "one" 1 (Mvstore.max_versions_ever s);
  ignore (put s ~key:"x" ~version:1 1);
  ignore (put s ~key:"x" ~version:2 2);
  checki "three" 3 (Mvstore.max_versions_ever s);
  Mvstore.gc s ~new_read_version:2;
  (* The high-water mark persists after GC. *)
  checki "still three" 3 (Mvstore.max_versions_ever s)

let keys_and_fold () =
  let s = Mvstore.create () in
  ignore (put s ~key:"b" ~version:0 1);
  ignore (put s ~key:"a" ~version:0 2);
  ignore (put s ~key:"a" ~version:1 3);
  Alcotest.(check (list string)) "sorted keys" [ "a"; "b" ] (Mvstore.keys s);
  let total = Mvstore.fold s ~init:0 ~f:(fun acc _ _ v -> acc + v) in
  checki "fold sums all versions" 6 total

(* Property: version lists are always strictly descending and duplicate
   free, under arbitrary write/gc sequences. *)
let versions_sorted_property =
  let op_gen =
    QCheck.Gen.(
      oneof
        [
          map2 (fun k v -> `Write (k, v)) (int_range 0 3) (int_range 0 4);
          map (fun v -> `Gc v) (int_range 0 4);
        ])
  in
  QCheck.Test.make ~name:"versions stay sorted and unique under write/gc"
    ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) op_gen))
    (fun ops ->
      let s = Mvstore.create () in
      List.iter
        (function
          | `Write (k, v) ->
              ignore
                (Mvstore.write_upward s ~key:(string_of_int k) ~version:v
                   ~init:0 ~f:succ)
          | `Gc v -> Mvstore.gc s ~new_read_version:v)
        ops;
      List.for_all
        (fun key ->
          let versions = Mvstore.versions_of s ~key in
          let rec strictly_desc = function
            | a :: (b :: _ as rest) -> a > b && strictly_desc rest
            | _ -> true
          in
          strictly_desc versions)
        (Mvstore.keys s))

(* Property: after any write sequence, read_visible returns the maximum
   version <= the requested one. *)
let read_visible_property =
  QCheck.Test.make ~name:"read_visible returns max version <= requested"
    ~count:300
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 0 5))
    (fun writes ->
      let s = Mvstore.create () in
      List.iter
        (fun v -> ignore (Mvstore.write_upward s ~key:"k" ~version:v ~init:0 ~f:succ))
        writes;
      let versions = Mvstore.versions_of s ~key:"k" in
      List.for_all
        (fun req ->
          let expect = List.find_opt (fun v -> v <= req) versions in
          match (Mvstore.read_visible s ~key:"k" ~version:req, expect) with
          | None, None -> true
          | Some (v, _), Some v' -> v = v'
          | _ -> false)
        [ 0; 1; 2; 3; 4; 5; 6 ])

(* Determinism regression: [keys] and [fold] enumerate in sorted key
   order regardless of insertion order — the store backs experiment
   reports and checker scans, so hash-layout order must never escape. *)
let enumeration_order_independent =
  QCheck.Test.make ~name:"keys/fold independent of insertion order" ~count:200
    QCheck.(list (pair (int_range 0 9) (int_range 0 3)))
    (fun writes ->
      let populate writes =
        let s = Mvstore.create () in
        List.iter
          (fun (k, v) ->
            ignore
              (Mvstore.write_upward s ~key:(string_of_int k) ~version:v
                 ~init:0 ~f:succ))
          writes;
        s
      in
      let forward = populate writes and backward = populate (List.rev writes) in
      let triples s =
        Mvstore.fold s ~init:[] ~f:(fun acc k v value -> (k, v, value) :: acc)
      in
      Mvstore.keys forward = Mvstore.keys backward
      && List.sort compare (Mvstore.keys forward) = Mvstore.keys forward
      && List.map (fun (k, v, _) -> (k, v)) (triples forward)
         = List.map (fun (k, v, _) -> (k, v)) (triples backward))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      versions_sorted_property; read_visible_property;
      enumeration_order_independent;
    ]

let () =
  Alcotest.run "store"
    [
      ( "reads",
        [
          Alcotest.test_case "read_visible rules" `Quick read_visible_rules;
          Alcotest.test_case "read_exact / exists" `Quick read_exact_and_exists;
        ] );
      ( "writes",
        [
          Alcotest.test_case "copy on update" `Quick write_upward_copy_on_update;
          Alcotest.test_case "dual write" `Quick write_upward_dual_write;
          Alcotest.test_case "no higher copy" `Quick write_upward_no_higher_copy;
          Alcotest.test_case "only higher exists" `Quick
            write_upward_only_higher_exists;
          Alcotest.test_case "new item" `Quick write_upward_new_item;
          Alcotest.test_case "write_exact NC rule" `Quick
            write_exact_leaves_higher_alone;
        ] );
      ( "gc",
        [
          Alcotest.test_case "drop" `Quick gc_drop_when_new_version_exists;
          Alcotest.test_case "relabel" `Quick gc_relabel_when_missing;
          Alcotest.test_case "idempotent" `Quick gc_idempotent;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "max versions" `Quick max_versions_tracking;
          Alcotest.test_case "keys and fold" `Quick keys_and_fold;
        ] );
      ("properties", qsuite);
    ]
