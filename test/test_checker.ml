(* Tests for the offline correctness checkers, on hand-built histories. *)

module Spec = Txn.Spec
module Op = Txn.Op
module Value = Txn.Value
module Result = Txn.Result
module Atomicity = Checker.Atomicity
module Staleness = Checker.Staleness
module Replay = Checker.Replay

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* History-building helpers. *)

let update_spec ~id keys =
  match keys with
  | [] -> invalid_arg "update_spec"
  | first :: rest ->
      Spec.make ~id
        (Spec.subtxn
           ~children:(List.mapi (fun i k -> Spec.subtxn (i + 1) [ Op.Incr (k, 1.) ]) rest)
           0
           [ Op.Incr (first, 1.) ])

let read_spec ~id keys =
  match keys with
  | [] -> invalid_arg "read_spec"
  | first :: rest ->
      Spec.make ~id
        (Spec.subtxn
           ~children:(List.mapi (fun i k -> Spec.subtxn (i + 1) [ Op.Read k ]) rest)
           0
           [ Op.Read first ])

let committed_result ~id ?(version = 1) ?(reads = []) ?(submit = 0.)
    ?(complete = 1.) () =
  {
    Result.txn_id = id;
    served_by = 0;
    outcome = Result.Committed;
    version;
    reads;
    submit_time = submit;
    root_commit_time = submit;
    complete_time = complete;
  }

(* A value as a read would observe it: tagged with the writers seen. *)
let value_with writers =
  List.fold_left (fun v txn -> Value.incr ~txn ~delta:1. v) Value.empty writers

(* -------------------------------------------------------- atomicity *)

let atomicity_clean_history () =
  let u = update_spec ~id:1 [ "a"; "b" ] in
  let r = read_spec ~id:2 [ "a"; "b" ] in
  let history =
    [
      (u, committed_result ~id:1 ());
      ( r,
        committed_result ~id:2
          ~reads:[ ("a", value_with [ 1 ]); ("b", value_with [ 1 ]) ]
          () );
    ]
  in
  let report = Atomicity.check history in
  checki "reads" 1 report.Atomicity.reads_checked;
  checki "pairs" 1 report.Atomicity.pairs_checked;
  checkb "clean" true (Atomicity.clean report)

let atomicity_all_or_nothing () =
  (* Seeing none of an update is fine too (stale but atomic). *)
  let u = update_spec ~id:1 [ "a"; "b" ] in
  let r = read_spec ~id:2 [ "a"; "b" ] in
  let history =
    [
      (u, committed_result ~id:1 ());
      ( r,
        committed_result ~id:2
          ~reads:[ ("a", Value.empty); ("b", Value.empty) ]
          () );
    ]
  in
  checkb "none observed is atomic" true (Atomicity.clean (Atomicity.check history))

let atomicity_detects_partial () =
  let u = update_spec ~id:1 [ "a"; "b" ] in
  let r = read_spec ~id:2 [ "a"; "b" ] in
  let history =
    [
      (u, committed_result ~id:1 ());
      ( r,
        committed_result ~id:2
          ~reads:[ ("a", value_with [ 1 ]); ("b", Value.empty) ]
          () );
    ]
  in
  let report = Atomicity.check history in
  checki "one partial read" 1 report.Atomicity.partial_reads;
  checkb "example recorded" true (report.Atomicity.examples = [ (2, 1) ])

let atomicity_single_key_overlap_ignored () =
  (* With only one overlapping key there is nothing to be partial about. *)
  let u = update_spec ~id:1 [ "a"; "b" ] in
  let r = read_spec ~id:2 [ "a"; "z" ] in
  let history =
    [
      (u, committed_result ~id:1 ());
      ( r,
        committed_result ~id:2
          ~reads:[ ("a", value_with [ 1 ]); ("z", Value.empty) ]
          () );
    ]
  in
  let report = Atomicity.check history in
  checki "no pairs" 0 report.Atomicity.pairs_checked;
  checkb "clean" true (Atomicity.clean report)

let atomicity_dirty_read () =
  let u = update_spec ~id:1 [ "a"; "b" ] in
  let r = read_spec ~id:2 [ "a"; "b" ] in
  let history =
    [
      ( u,
        {
          (committed_result ~id:1 ()) with
          Result.outcome = Result.Aborted "deadlock";
        } );
      ( r,
        committed_result ~id:2
          ~reads:[ ("a", value_with [ 1 ]); ("b", Value.empty) ]
          () );
    ]
  in
  let report = Atomicity.check history in
  checki "dirty read counted" 1 report.Atomicity.dirty_reads;
  checkb "not clean" false (Atomicity.clean report)

let atomicity_compensated_counts_as_effectful () =
  (* A compensated transaction's tags are visible; observing them on all
     overlapping keys is atomic, on a strict subset is a violation. *)
  let u = update_spec ~id:1 [ "a"; "b" ] in
  let r = read_spec ~id:2 [ "a"; "b" ] in
  let compensated =
    {
      (committed_result ~id:1 ()) with
      Result.outcome = Result.Aborted "compensated";
    }
  in
  let partial_history =
    [
      (u, compensated);
      ( r,
        committed_result ~id:2
          ~reads:[ ("a", value_with [ 1 ]); ("b", Value.empty) ]
          () );
    ]
  in
  let report = Atomicity.check partial_history in
  checki "partial observation of compensated txn flagged" 1
    report.Atomicity.partial_reads;
  checki "not a dirty read" 0 report.Atomicity.dirty_reads

let atomicity_aborted_reads_skipped () =
  let r = read_spec ~id:2 [ "a"; "b" ] in
  let history =
    [
      ( r,
        {
          (committed_result ~id:2 ~reads:[ ("a", value_with [ 1 ]) ] ()) with
          Result.outcome = Result.Aborted "timeout";
        } );
    ]
  in
  checki "aborted reads not checked" 0
    (Atomicity.check history).Atomicity.reads_checked

(* -------------------------------------------------------- staleness *)

let staleness_counts_missed () =
  let u1 = update_spec ~id:1 [ "a"; "b" ] in
  let u2 = update_spec ~id:2 [ "a"; "b" ] in
  let r = read_spec ~id:3 [ "a"; "b" ] in
  let history =
    [
      (u1, committed_result ~id:1 ~complete:1.0 ());
      (u2, committed_result ~id:2 ~complete:2.0 ());
      ( r,
        (* Submitted at t=5, saw u1 but missed u2. *)
        committed_result ~id:3 ~submit:5.
          ~reads:[ ("a", value_with [ 1 ]); ("b", value_with [ 1 ]) ]
          () );
    ]
  in
  let report = Staleness.measure history in
  checki "reads" 1 report.Staleness.reads;
  checki "missed" 1 report.Staleness.missed_total;
  Alcotest.(check (float 1e-9)) "lag is read.submit - u2.complete" 3.
    report.Staleness.max_lag

let staleness_future_updates_not_missed () =
  let u = update_spec ~id:1 [ "a"; "b" ] in
  let r = read_spec ~id:2 [ "a"; "b" ] in
  let history =
    [
      (u, committed_result ~id:1 ~complete:10.0 ());
      ( r,
        committed_result ~id:2 ~submit:5.
          ~reads:[ ("a", Value.empty); ("b", Value.empty) ]
          () );
    ]
  in
  let report = Staleness.measure history in
  checki "nothing applicable missed" 0 report.Staleness.missed_total

let staleness_fresh_reads () =
  let u = update_spec ~id:1 [ "a" ] in
  let r = read_spec ~id:2 [ "a" ] in
  let history =
    [
      (u, committed_result ~id:1 ~complete:1. ());
      (r, committed_result ~id:2 ~submit:2. ~reads:[ ("a", value_with [ 1 ]) ] ());
    ]
  in
  let report = Staleness.measure history in
  checki "no misses" 0 report.Staleness.reads_with_misses;
  Alcotest.(check (float 1e-9)) "zero lag" 0. report.Staleness.mean_lag

(* ----------------------------------------------------------- replay *)

let replay_detects_mismatch () =
  let u1 = update_spec ~id:1 [ "a"; "b" ] in
  let u2 = update_spec ~id:2 [ "a" ] in
  let history =
    [
      (u1, committed_result ~id:1 ());
      (u2, committed_result ~id:2 ());
    ]
  in
  (* Correct store: a = 2, b = 1. *)
  let good_lookup key =
    let amount = if key = "a" then 2. else 1. in
    Some { Value.empty with Value.amount }
  in
  checkb "clean on correct store" true
    (Replay.clean (Replay.check history ~lookup:good_lookup));
  (* Lossy store: a lost one increment. *)
  let bad_lookup key =
    Some { Value.empty with Value.amount = (if key = "a" then 1. else 1.) }
  in
  let report = Replay.check history ~lookup:bad_lookup in
  checki "one mismatch" 1 report.Replay.mismatch_count;
  (match report.Replay.mismatches with
  | [ m ] ->
      Alcotest.(check string) "key" "a" m.Replay.key;
      Alcotest.(check (float 1e-9)) "expected" 2. m.Replay.expected
  | _ -> Alcotest.fail "expected one mismatch")

let replay_skips_overwritten_keys () =
  let u1 = update_spec ~id:1 [ "a" ] in
  let nc =
    Spec.make ~id:2 (Spec.subtxn 0 [ Op.Overwrite ("a", 99.); Op.Incr ("c", 1.) ])
  in
  let history =
    [ (u1, committed_result ~id:1 ()); (nc, committed_result ~id:2 ()) ]
  in
  let report =
    Replay.check history ~lookup:(fun key ->
        if key = "c" then Some { Value.empty with Value.amount = 1. } else None)
  in
  checkb "a skipped, c checked, clean" true
    (report.Replay.keys_skipped = 1 && Replay.clean report)

let replay_uncommitted_excluded () =
  let u = update_spec ~id:1 [ "a" ] in
  let history =
    [ (u, { (committed_result ~id:1 ()) with Result.outcome = Result.Aborted "x" }) ]
  in
  let report = Replay.check history ~lookup:(fun _ -> None) in
  checkb "aborted txn contributes nothing" true (Replay.clean report)

let replay_missing_key_is_zero () =
  let u = update_spec ~id:1 [ "a" ] in
  let history = [ (u, committed_result ~id:1 ()) ] in
  let report = Replay.check history ~lookup:(fun _ -> None) in
  checki "missing key mismatches expected 1" 1 report.Replay.mismatch_count

(* ----------------------------------------------------- version reads *)

let vr_committed_at version ~id = committed_result ~id ~version ()

let version_reads_exact () =
  (* u1 at version 1, u2 at version 2; a read at version 1 must see u1 on
     every key and never u2. *)
  let u1 = update_spec ~id:1 [ "a"; "b" ] in
  let u2 = update_spec ~id:2 [ "a"; "b" ] in
  let r = read_spec ~id:3 [ "a"; "b" ] in
  let good =
    [
      (u1, vr_committed_at 1 ~id:1);
      (u2, vr_committed_at 2 ~id:2);
      ( r,
        {
          (vr_committed_at 1 ~id:3) with
          Result.reads = [ ("a", value_with [ 1 ]); ("b", value_with [ 1 ]) ];
        } );
    ]
  in
  checkb "exact set accepted" true
    (Checker.Version_reads.clean (Checker.Version_reads.check good))

let version_reads_missing () =
  let u1 = update_spec ~id:1 [ "a"; "b" ] in
  let r = read_spec ~id:2 [ "a"; "b" ] in
  let history =
    [
      (u1, vr_committed_at 1 ~id:1);
      ( r,
        {
          (vr_committed_at 1 ~id:2) with
          (* Missed u1 on b even though u1 has version <= the read's. *)
          Result.reads = [ ("a", value_with [ 1 ]); ("b", Value.empty) ];
        } );
    ]
  in
  let report = Checker.Version_reads.check history in
  checki "one violation" 1 report.Checker.Version_reads.violation_count;
  match report.Checker.Version_reads.violations with
  | [ v ] ->
      checkb "missing recorded" true
        (v.Checker.Version_reads.missing = [ 1 ]
        && v.Checker.Version_reads.key = "b")
  | _ -> Alcotest.fail "expected one violation"

let version_reads_leak () =
  let u2 = update_spec ~id:2 [ "a" ] in
  let r = read_spec ~id:3 [ "a" ] in
  let history =
    [
      (u2, vr_committed_at 2 ~id:2);
      ( r,
        {
          (vr_committed_at 1 ~id:3) with
          (* Saw a version-2 writer from a version-1 read: leak. *)
          Result.reads = [ ("a", value_with [ 2 ]) ];
        } );
    ]
  in
  let report = Checker.Version_reads.check history in
  checki "leak flagged" 1 report.Checker.Version_reads.violation_count;
  (match report.Checker.Version_reads.violations with
  | [ v ] ->
      checkb "future leak id" true
        (v.Checker.Version_reads.leaked_future = [ 2 ]);
      checkb "no unknown tags" true (v.Checker.Version_reads.unknown = [])
  | _ -> Alcotest.fail "expected one violation")

let version_reads_unknown_writer () =
  let u2 = update_spec ~id:2 [ "a" ] in
  let r = read_spec ~id:3 [ "a" ] in
  let history =
    [
      (* Txn 2 aborted without compensation, yet its tag was observed: a
         dirty read. No effect-ful update accounts for the tag, so it must
         surface as [unknown], not [leaked_future]. *)
      ( u2,
        { (vr_committed_at 2 ~id:2) with Result.outcome = Result.Aborted "x" }
      );
      ( r,
        {
          (vr_committed_at 1 ~id:3) with
          Result.reads = [ ("a", value_with [ 2 ]) ];
        } );
    ]
  in
  let report = Checker.Version_reads.check history in
  checki "dirty read flagged" 1 report.Checker.Version_reads.violation_count;
  match report.Checker.Version_reads.violations with
  | [ v ] ->
      checkb "unknown id" true (v.Checker.Version_reads.unknown = [ 2 ]);
      checkb "not a future leak" true
        (v.Checker.Version_reads.leaked_future = [])
  | _ -> Alcotest.fail "expected one violation"

let version_reads_aborted_excluded () =
  let u = update_spec ~id:1 [ "a" ] in
  let r = read_spec ~id:2 [ "a" ] in
  let history =
    [
      ( u,
        { (vr_committed_at 1 ~id:1) with Result.outcome = Result.Aborted "x" } );
      (r, { (vr_committed_at 1 ~id:2) with Result.reads = [ ("a", Value.empty) ] });
    ]
  in
  checkb "aborted update not expected" true
    (Checker.Version_reads.clean (Checker.Version_reads.check history))

(* -------------------------------------------------- serializability *)

module Srz = Checker.Serializability

(* A single-node spec with arbitrary ops (reads + writes mixed). *)
let rw_spec ~id ops = Spec.make ~id (Spec.subtxn 0 ops)

(* Every consecutive pair of witness edges must chain dst -> src, wrapping
   around — a genuine cycle, not just a bag of edges. *)
let well_formed_cycle = function
  | [] -> false
  | edges ->
      let arr = Array.of_list edges in
      let n = Array.length arr in
      let ok = ref true in
      Array.iteri
        (fun i e ->
          if e.Srz.dst <> arr.((i + 1) mod n).Srz.src then ok := false)
        arr;
      !ok

let flagged_with_witness history =
  let r = Srz.certify history in
  (not (Srz.serializable r))
  && (match r.Srz.cycle with Some c -> well_formed_cycle c | None -> false)

let srz_lost_update () =
  (* Both read the balance before either deposit landed, then both
     overwrite: whichever order they serialize in, the second must have
     seen the first. *)
  let t1 = rw_spec ~id:1 [ Op.Read "a"; Op.Overwrite ("a", 10.) ] in
  let t2 = rw_spec ~id:2 [ Op.Read "a"; Op.Overwrite ("a", 20.) ] in
  let history =
    [
      (t1, committed_result ~id:1 ~reads:[ ("a", Value.empty) ] ());
      (t2, committed_result ~id:2 ~reads:[ ("a", Value.empty) ] ());
    ]
  in
  checkb "lost update flagged" true (flagged_with_witness history);
  let r = Srz.certify history in
  checkb "two-edge witness" true
    (match r.Srz.cycle with Some c -> List.length c = 2 | None -> false)

let srz_write_skew () =
  (* t1 reads both and writes b; t2 reads both and writes a; neither sees
     the other. Atomic visibility holds — only the certifier catches it. *)
  let t1 =
    rw_spec ~id:1 [ Op.Read "a"; Op.Read "b"; Op.Overwrite ("b", 1.) ]
  in
  let t2 =
    rw_spec ~id:2 [ Op.Read "a"; Op.Read "b"; Op.Overwrite ("a", 1.) ]
  in
  let history =
    [
      ( t1,
        committed_result ~id:1
          ~reads:[ ("a", Value.empty); ("b", Value.empty) ]
          () );
      ( t2,
        committed_result ~id:2
          ~reads:[ ("a", Value.empty); ("b", Value.empty) ]
          () );
    ]
  in
  checkb "atomicity does not catch write skew" true
    (Atomicity.clean (Atomicity.check history));
  checkb "certifier flags write skew" true (flagged_with_witness history)

let srz_read_only_anomaly () =
  (* Two commuting writers of the same key; reader 3 sees only writer 1,
     reader 4 sees only writer 2 — each reader alone is consistent, but no
     serial order places both. *)
  let t1 = rw_spec ~id:1 [ Op.Incr ("a", 1.) ] in
  let t2 = rw_spec ~id:2 [ Op.Incr ("a", 1.) ] in
  let r1 = read_spec ~id:3 [ "a" ] in
  let r2 = read_spec ~id:4 [ "a" ] in
  let history =
    [
      (t1, committed_result ~id:1 ());
      (t2, committed_result ~id:2 ());
      (r1, committed_result ~id:3 ~reads:[ ("a", value_with [ 1 ]) ] ());
      (r2, committed_result ~id:4 ~reads:[ ("a", value_with [ 2 ]) ] ());
    ]
  in
  checkb "read-only anomaly flagged" true (flagged_with_witness history)

let srz_non_repeatable_read () =
  (* One transaction observes the same key with and without writer 1's
     tag: the writer lands both before and after the reader. *)
  let t1 = rw_spec ~id:1 [ Op.Incr ("a", 1.) ] in
  let r = read_spec ~id:2 [ "a"; "a" ] in
  let history =
    [
      (t1, committed_result ~id:1 ());
      ( r,
        committed_result ~id:2
          ~reads:[ ("a", value_with [ 1 ]); ("a", Value.empty) ]
          () );
    ]
  in
  checkb "non-repeatable read flagged" true (flagged_with_witness history)

let srz_version_order_cycle () =
  (* Writer 2 overwrote at version 2, after writer 1's version-1 overwrite.
     A reader that saw 2's tag but not 1's contradicts tag monotonicity
     under that version order. *)
  let t1 = rw_spec ~id:1 [ Op.Overwrite ("a", 1.) ] in
  let t2 = rw_spec ~id:2 [ Op.Overwrite ("a", 2.) ] in
  let r = read_spec ~id:3 [ "a" ] in
  let history =
    [
      (t1, committed_result ~id:1 ~version:1 ());
      (t2, committed_result ~id:2 ~version:2 ());
      (r, committed_result ~id:3 ~version:2 ~reads:[ ("a", value_with [ 2 ]) ] ());
    ]
  in
  let report = Srz.certify history in
  checki "ww edge present" 1 report.Srz.ww_edges;
  checkb "version-order cycle flagged" true (flagged_with_witness history)

let srz_commuting_writers_not_ordered () =
  (* Same shape but the writers commute (Incr): seeing the version-2
     increment without the version-1 one is serializable as t2, r, t1. A
     naive version-order edge between commuting writers would wrongly flag
     this. *)
  let t1 = rw_spec ~id:1 [ Op.Incr ("a", 1.) ] in
  let t2 = rw_spec ~id:2 [ Op.Incr ("a", 1.) ] in
  let r = read_spec ~id:3 [ "a" ] in
  let history =
    [
      (t1, committed_result ~id:1 ~version:1 ());
      (t2, committed_result ~id:2 ~version:2 ());
      (r, committed_result ~id:3 ~version:2 ~reads:[ ("a", value_with [ 2 ]) ] ());
    ]
  in
  let report = Srz.certify history in
  checki "no ww edges between commuting writers" 0 report.Srz.ww_edges;
  checkb "serializable" true (Srz.serializable report)

let srz_clean_history () =
  let t1 = rw_spec ~id:1 [ Op.Incr ("a", 1.); Op.Incr ("b", 1.) ] in
  let t2 = rw_spec ~id:2 [ Op.Incr ("a", 1.) ] in
  let r = read_spec ~id:3 [ "a"; "b" ] in
  let history =
    [
      (t1, committed_result ~id:1 ());
      (t2, committed_result ~id:2 ());
      ( r,
        committed_result ~id:3
          ~reads:[ ("a", value_with [ 1; 2 ]); ("b", value_with [ 1 ]) ]
          () );
    ]
  in
  let report = Srz.certify history in
  checkb "clean history certifies" true (Srz.serializable report);
  checki "nodes" 3 report.Srz.txns;
  checki "no unknown tags" 0 report.Srz.unknown_count

let srz_unknown_tag_reported () =
  (* A tag with no effect-ful writer behind it gets no edge but is
     surfaced. *)
  let r = read_spec ~id:2 [ "a" ] in
  let history =
    [ (r, committed_result ~id:2 ~reads:[ ("a", value_with [ 99 ]) ] ()) ]
  in
  let report = Srz.certify history in
  checkb "still serializable" true (Srz.serializable report);
  checki "unknown counted" 1 report.Srz.unknown_count;
  checkb "unknown listed" true (report.Srz.unknown_tags = [ (2, "a", 99) ])

(* qcheck: randomized instances of the three anomaly families are always
   flagged, with a well-formed cycle witness. *)
let srz_anomalies_flagged =
  let gen =
    QCheck.Gen.(
      pair (int_range 0 2) (pair (int_range 1 50) (int_range 0 4)))
  in
  QCheck.Test.make ~name:"serializability: anomaly families always flagged"
    ~count:150 (QCheck.make gen)
    (fun (shape, (id_base, key_idx)) ->
      let k = Printf.sprintf "k%d" key_idx in
      let k2 = Printf.sprintf "k%d'" key_idx in
      let i1 = id_base and i2 = id_base + 1 and i3 = id_base + 2
      and i4 = id_base + 3 in
      let history =
        match shape with
        | 0 ->
            (* lost update on k *)
            [
              ( rw_spec ~id:i1 [ Op.Read k; Op.Overwrite (k, 1.) ],
                committed_result ~id:i1 ~reads:[ (k, Value.empty) ] () );
              ( rw_spec ~id:i2 [ Op.Read k; Op.Overwrite (k, 2.) ],
                committed_result ~id:i2 ~reads:[ (k, Value.empty) ] () );
            ]
        | 1 ->
            (* write skew across k, k2 *)
            [
              ( rw_spec ~id:i1 [ Op.Read k; Op.Read k2; Op.Overwrite (k2, 1.) ],
                committed_result ~id:i1
                  ~reads:[ (k, Value.empty); (k2, Value.empty) ]
                  () );
              ( rw_spec ~id:i2 [ Op.Read k; Op.Read k2; Op.Overwrite (k, 1.) ],
                committed_result ~id:i2
                  ~reads:[ (k, Value.empty); (k2, Value.empty) ]
                  () );
            ]
        | _ ->
            (* read-only anomaly: opposing one-sided observations *)
            [
              (rw_spec ~id:i1 [ Op.Incr (k, 1.) ], committed_result ~id:i1 ());
              (rw_spec ~id:i2 [ Op.Incr (k, 1.) ], committed_result ~id:i2 ());
              ( read_spec ~id:i3 [ k ],
                committed_result ~id:i3 ~reads:[ (k, value_with [ i1 ]) ] () );
              ( read_spec ~id:i4 [ k ],
                committed_result ~id:i4 ~reads:[ (k, value_with [ i2 ]) ] () );
            ]
      in
      flagged_with_witness history)

let () =
  Alcotest.run "checker"
    [
      ( "atomicity",
        [
          Alcotest.test_case "clean history" `Quick atomicity_clean_history;
          Alcotest.test_case "all-or-nothing" `Quick atomicity_all_or_nothing;
          Alcotest.test_case "detects partial" `Quick atomicity_detects_partial;
          Alcotest.test_case "single-key overlap ignored" `Quick
            atomicity_single_key_overlap_ignored;
          Alcotest.test_case "dirty read" `Quick atomicity_dirty_read;
          Alcotest.test_case "compensated is effectful" `Quick
            atomicity_compensated_counts_as_effectful;
          Alcotest.test_case "aborted reads skipped" `Quick
            atomicity_aborted_reads_skipped;
        ] );
      ( "staleness",
        [
          Alcotest.test_case "counts missed" `Quick staleness_counts_missed;
          Alcotest.test_case "future updates excluded" `Quick
            staleness_future_updates_not_missed;
          Alcotest.test_case "fresh reads" `Quick staleness_fresh_reads;
        ] );
      ( "version-reads",
        [
          Alcotest.test_case "exact set accepted" `Quick version_reads_exact;
          Alcotest.test_case "missing detected" `Quick version_reads_missing;
          Alcotest.test_case "leak detected" `Quick version_reads_leak;
          Alcotest.test_case "unknown writer distinguished" `Quick
            version_reads_unknown_writer;
          Alcotest.test_case "aborted excluded" `Quick
            version_reads_aborted_excluded;
        ] );
      ( "replay",
        [
          Alcotest.test_case "detects mismatch" `Quick replay_detects_mismatch;
          Alcotest.test_case "skips overwritten keys" `Quick
            replay_skips_overwritten_keys;
          Alcotest.test_case "uncommitted excluded" `Quick
            replay_uncommitted_excluded;
          Alcotest.test_case "missing key is zero" `Quick
            replay_missing_key_is_zero;
        ] );
      ( "serializability",
        [
          Alcotest.test_case "lost update" `Quick srz_lost_update;
          Alcotest.test_case "write skew" `Quick srz_write_skew;
          Alcotest.test_case "read-only anomaly" `Quick srz_read_only_anomaly;
          Alcotest.test_case "non-repeatable read" `Quick
            srz_non_repeatable_read;
          Alcotest.test_case "version-order cycle" `Quick
            srz_version_order_cycle;
          Alcotest.test_case "commuting writers unordered" `Quick
            srz_commuting_writers_not_ordered;
          Alcotest.test_case "clean history" `Quick srz_clean_history;
          Alcotest.test_case "unknown tag reported" `Quick
            srz_unknown_tag_reported;
          QCheck_alcotest.to_alcotest srz_anomalies_flagged;
        ] );
    ]
