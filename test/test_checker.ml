(* Tests for the offline correctness checkers, on hand-built histories. *)

module Spec = Txn.Spec
module Op = Txn.Op
module Value = Txn.Value
module Result = Txn.Result
module Atomicity = Checker.Atomicity
module Staleness = Checker.Staleness
module Replay = Checker.Replay

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* History-building helpers. *)

let update_spec ~id keys =
  match keys with
  | [] -> invalid_arg "update_spec"
  | first :: rest ->
      Spec.make ~id
        (Spec.subtxn
           ~children:(List.mapi (fun i k -> Spec.subtxn (i + 1) [ Op.Incr (k, 1.) ]) rest)
           0
           [ Op.Incr (first, 1.) ])

let read_spec ~id keys =
  match keys with
  | [] -> invalid_arg "read_spec"
  | first :: rest ->
      Spec.make ~id
        (Spec.subtxn
           ~children:(List.mapi (fun i k -> Spec.subtxn (i + 1) [ Op.Read k ]) rest)
           0
           [ Op.Read first ])

let committed_result ~id ?(version = 1) ?(reads = []) ?(submit = 0.)
    ?(complete = 1.) () =
  {
    Result.txn_id = id;
    outcome = Result.Committed;
    version;
    reads;
    submit_time = submit;
    root_commit_time = submit;
    complete_time = complete;
  }

(* A value as a read would observe it: tagged with the writers seen. *)
let value_with writers =
  List.fold_left (fun v txn -> Value.incr ~txn ~delta:1. v) Value.empty writers

(* -------------------------------------------------------- atomicity *)

let atomicity_clean_history () =
  let u = update_spec ~id:1 [ "a"; "b" ] in
  let r = read_spec ~id:2 [ "a"; "b" ] in
  let history =
    [
      (u, committed_result ~id:1 ());
      ( r,
        committed_result ~id:2
          ~reads:[ ("a", value_with [ 1 ]); ("b", value_with [ 1 ]) ]
          () );
    ]
  in
  let report = Atomicity.check history in
  checki "reads" 1 report.Atomicity.reads_checked;
  checki "pairs" 1 report.Atomicity.pairs_checked;
  checkb "clean" true (Atomicity.clean report)

let atomicity_all_or_nothing () =
  (* Seeing none of an update is fine too (stale but atomic). *)
  let u = update_spec ~id:1 [ "a"; "b" ] in
  let r = read_spec ~id:2 [ "a"; "b" ] in
  let history =
    [
      (u, committed_result ~id:1 ());
      ( r,
        committed_result ~id:2
          ~reads:[ ("a", Value.empty); ("b", Value.empty) ]
          () );
    ]
  in
  checkb "none observed is atomic" true (Atomicity.clean (Atomicity.check history))

let atomicity_detects_partial () =
  let u = update_spec ~id:1 [ "a"; "b" ] in
  let r = read_spec ~id:2 [ "a"; "b" ] in
  let history =
    [
      (u, committed_result ~id:1 ());
      ( r,
        committed_result ~id:2
          ~reads:[ ("a", value_with [ 1 ]); ("b", Value.empty) ]
          () );
    ]
  in
  let report = Atomicity.check history in
  checki "one partial read" 1 report.Atomicity.partial_reads;
  checkb "example recorded" true (report.Atomicity.examples = [ (2, 1) ])

let atomicity_single_key_overlap_ignored () =
  (* With only one overlapping key there is nothing to be partial about. *)
  let u = update_spec ~id:1 [ "a"; "b" ] in
  let r = read_spec ~id:2 [ "a"; "z" ] in
  let history =
    [
      (u, committed_result ~id:1 ());
      ( r,
        committed_result ~id:2
          ~reads:[ ("a", value_with [ 1 ]); ("z", Value.empty) ]
          () );
    ]
  in
  let report = Atomicity.check history in
  checki "no pairs" 0 report.Atomicity.pairs_checked;
  checkb "clean" true (Atomicity.clean report)

let atomicity_dirty_read () =
  let u = update_spec ~id:1 [ "a"; "b" ] in
  let r = read_spec ~id:2 [ "a"; "b" ] in
  let history =
    [
      ( u,
        {
          (committed_result ~id:1 ()) with
          Result.outcome = Result.Aborted "deadlock";
        } );
      ( r,
        committed_result ~id:2
          ~reads:[ ("a", value_with [ 1 ]); ("b", Value.empty) ]
          () );
    ]
  in
  let report = Atomicity.check history in
  checki "dirty read counted" 1 report.Atomicity.dirty_reads;
  checkb "not clean" false (Atomicity.clean report)

let atomicity_compensated_counts_as_effectful () =
  (* A compensated transaction's tags are visible; observing them on all
     overlapping keys is atomic, on a strict subset is a violation. *)
  let u = update_spec ~id:1 [ "a"; "b" ] in
  let r = read_spec ~id:2 [ "a"; "b" ] in
  let compensated =
    {
      (committed_result ~id:1 ()) with
      Result.outcome = Result.Aborted "compensated";
    }
  in
  let partial_history =
    [
      (u, compensated);
      ( r,
        committed_result ~id:2
          ~reads:[ ("a", value_with [ 1 ]); ("b", Value.empty) ]
          () );
    ]
  in
  let report = Atomicity.check partial_history in
  checki "partial observation of compensated txn flagged" 1
    report.Atomicity.partial_reads;
  checki "not a dirty read" 0 report.Atomicity.dirty_reads

let atomicity_aborted_reads_skipped () =
  let r = read_spec ~id:2 [ "a"; "b" ] in
  let history =
    [
      ( r,
        {
          (committed_result ~id:2 ~reads:[ ("a", value_with [ 1 ]) ] ()) with
          Result.outcome = Result.Aborted "timeout";
        } );
    ]
  in
  checki "aborted reads not checked" 0
    (Atomicity.check history).Atomicity.reads_checked

(* -------------------------------------------------------- staleness *)

let staleness_counts_missed () =
  let u1 = update_spec ~id:1 [ "a"; "b" ] in
  let u2 = update_spec ~id:2 [ "a"; "b" ] in
  let r = read_spec ~id:3 [ "a"; "b" ] in
  let history =
    [
      (u1, committed_result ~id:1 ~complete:1.0 ());
      (u2, committed_result ~id:2 ~complete:2.0 ());
      ( r,
        (* Submitted at t=5, saw u1 but missed u2. *)
        committed_result ~id:3 ~submit:5.
          ~reads:[ ("a", value_with [ 1 ]); ("b", value_with [ 1 ]) ]
          () );
    ]
  in
  let report = Staleness.measure history in
  checki "reads" 1 report.Staleness.reads;
  checki "missed" 1 report.Staleness.missed_total;
  Alcotest.(check (float 1e-9)) "lag is read.submit - u2.complete" 3.
    report.Staleness.max_lag

let staleness_future_updates_not_missed () =
  let u = update_spec ~id:1 [ "a"; "b" ] in
  let r = read_spec ~id:2 [ "a"; "b" ] in
  let history =
    [
      (u, committed_result ~id:1 ~complete:10.0 ());
      ( r,
        committed_result ~id:2 ~submit:5.
          ~reads:[ ("a", Value.empty); ("b", Value.empty) ]
          () );
    ]
  in
  let report = Staleness.measure history in
  checki "nothing applicable missed" 0 report.Staleness.missed_total

let staleness_fresh_reads () =
  let u = update_spec ~id:1 [ "a" ] in
  let r = read_spec ~id:2 [ "a" ] in
  let history =
    [
      (u, committed_result ~id:1 ~complete:1. ());
      (r, committed_result ~id:2 ~submit:2. ~reads:[ ("a", value_with [ 1 ]) ] ());
    ]
  in
  let report = Staleness.measure history in
  checki "no misses" 0 report.Staleness.reads_with_misses;
  Alcotest.(check (float 1e-9)) "zero lag" 0. report.Staleness.mean_lag

(* ----------------------------------------------------------- replay *)

let replay_detects_mismatch () =
  let u1 = update_spec ~id:1 [ "a"; "b" ] in
  let u2 = update_spec ~id:2 [ "a" ] in
  let history =
    [
      (u1, committed_result ~id:1 ());
      (u2, committed_result ~id:2 ());
    ]
  in
  (* Correct store: a = 2, b = 1. *)
  let good_lookup key =
    let amount = if key = "a" then 2. else 1. in
    Some { Value.empty with Value.amount }
  in
  checkb "clean on correct store" true
    (Replay.clean (Replay.check history ~lookup:good_lookup));
  (* Lossy store: a lost one increment. *)
  let bad_lookup key =
    Some { Value.empty with Value.amount = (if key = "a" then 1. else 1.) }
  in
  let report = Replay.check history ~lookup:bad_lookup in
  checki "one mismatch" 1 report.Replay.mismatch_count;
  (match report.Replay.mismatches with
  | [ m ] ->
      Alcotest.(check string) "key" "a" m.Replay.key;
      Alcotest.(check (float 1e-9)) "expected" 2. m.Replay.expected
  | _ -> Alcotest.fail "expected one mismatch")

let replay_skips_overwritten_keys () =
  let u1 = update_spec ~id:1 [ "a" ] in
  let nc =
    Spec.make ~id:2 (Spec.subtxn 0 [ Op.Overwrite ("a", 99.); Op.Incr ("c", 1.) ])
  in
  let history =
    [ (u1, committed_result ~id:1 ()); (nc, committed_result ~id:2 ()) ]
  in
  let report =
    Replay.check history ~lookup:(fun key ->
        if key = "c" then Some { Value.empty with Value.amount = 1. } else None)
  in
  checkb "a skipped, c checked, clean" true
    (report.Replay.keys_skipped = 1 && Replay.clean report)

let replay_uncommitted_excluded () =
  let u = update_spec ~id:1 [ "a" ] in
  let history =
    [ (u, { (committed_result ~id:1 ()) with Result.outcome = Result.Aborted "x" }) ]
  in
  let report = Replay.check history ~lookup:(fun _ -> None) in
  checkb "aborted txn contributes nothing" true (Replay.clean report)

let replay_missing_key_is_zero () =
  let u = update_spec ~id:1 [ "a" ] in
  let history = [ (u, committed_result ~id:1 ()) ] in
  let report = Replay.check history ~lookup:(fun _ -> None) in
  checki "missing key mismatches expected 1" 1 report.Replay.mismatch_count

(* ----------------------------------------------------- version reads *)

let vr_committed_at version ~id = committed_result ~id ~version ()

let version_reads_exact () =
  (* u1 at version 1, u2 at version 2; a read at version 1 must see u1 on
     every key and never u2. *)
  let u1 = update_spec ~id:1 [ "a"; "b" ] in
  let u2 = update_spec ~id:2 [ "a"; "b" ] in
  let r = read_spec ~id:3 [ "a"; "b" ] in
  let good =
    [
      (u1, vr_committed_at 1 ~id:1);
      (u2, vr_committed_at 2 ~id:2);
      ( r,
        {
          (vr_committed_at 1 ~id:3) with
          Result.reads = [ ("a", value_with [ 1 ]); ("b", value_with [ 1 ]) ];
        } );
    ]
  in
  checkb "exact set accepted" true
    (Checker.Version_reads.clean (Checker.Version_reads.check good))

let version_reads_missing () =
  let u1 = update_spec ~id:1 [ "a"; "b" ] in
  let r = read_spec ~id:2 [ "a"; "b" ] in
  let history =
    [
      (u1, vr_committed_at 1 ~id:1);
      ( r,
        {
          (vr_committed_at 1 ~id:2) with
          (* Missed u1 on b even though u1 has version <= the read's. *)
          Result.reads = [ ("a", value_with [ 1 ]); ("b", Value.empty) ];
        } );
    ]
  in
  let report = Checker.Version_reads.check history in
  checki "one violation" 1 report.Checker.Version_reads.violation_count;
  match report.Checker.Version_reads.violations with
  | [ v ] ->
      checkb "missing recorded" true
        (v.Checker.Version_reads.missing = [ 1 ]
        && v.Checker.Version_reads.key = "b")
  | _ -> Alcotest.fail "expected one violation"

let version_reads_leak () =
  let u2 = update_spec ~id:2 [ "a" ] in
  let r = read_spec ~id:3 [ "a" ] in
  let history =
    [
      (u2, vr_committed_at 2 ~id:2);
      ( r,
        {
          (vr_committed_at 1 ~id:3) with
          (* Saw a version-2 writer from a version-1 read: leak. *)
          Result.reads = [ ("a", value_with [ 2 ]) ];
        } );
    ]
  in
  let report = Checker.Version_reads.check history in
  checki "leak flagged" 1 report.Checker.Version_reads.violation_count;
  (match report.Checker.Version_reads.violations with
  | [ v ] -> checkb "leaked id" true (v.Checker.Version_reads.leaked = [ 2 ])
  | _ -> Alcotest.fail "expected one violation")

let version_reads_aborted_excluded () =
  let u = update_spec ~id:1 [ "a" ] in
  let r = read_spec ~id:2 [ "a" ] in
  let history =
    [
      ( u,
        { (vr_committed_at 1 ~id:1) with Result.outcome = Result.Aborted "x" } );
      (r, { (vr_committed_at 1 ~id:2) with Result.reads = [ ("a", Value.empty) ] });
    ]
  in
  checkb "aborted update not expected" true
    (Checker.Version_reads.clean (Checker.Version_reads.check history))

let () =
  Alcotest.run "checker"
    [
      ( "atomicity",
        [
          Alcotest.test_case "clean history" `Quick atomicity_clean_history;
          Alcotest.test_case "all-or-nothing" `Quick atomicity_all_or_nothing;
          Alcotest.test_case "detects partial" `Quick atomicity_detects_partial;
          Alcotest.test_case "single-key overlap ignored" `Quick
            atomicity_single_key_overlap_ignored;
          Alcotest.test_case "dirty read" `Quick atomicity_dirty_read;
          Alcotest.test_case "compensated is effectful" `Quick
            atomicity_compensated_counts_as_effectful;
          Alcotest.test_case "aborted reads skipped" `Quick
            atomicity_aborted_reads_skipped;
        ] );
      ( "staleness",
        [
          Alcotest.test_case "counts missed" `Quick staleness_counts_missed;
          Alcotest.test_case "future updates excluded" `Quick
            staleness_future_updates_not_missed;
          Alcotest.test_case "fresh reads" `Quick staleness_fresh_reads;
        ] );
      ( "version-reads",
        [
          Alcotest.test_case "exact set accepted" `Quick version_reads_exact;
          Alcotest.test_case "missing detected" `Quick version_reads_missing;
          Alcotest.test_case "leak detected" `Quick version_reads_leak;
          Alcotest.test_case "aborted excluded" `Quick
            version_reads_aborted_excluded;
        ] );
      ( "replay",
        [
          Alcotest.test_case "detects mismatch" `Quick replay_detects_mismatch;
          Alcotest.test_case "skips overwritten keys" `Quick
            replay_skips_overwritten_keys;
          Alcotest.test_case "uncommitted excluded" `Quick
            replay_uncommitted_excluded;
          Alcotest.test_case "missing key is zero" `Quick
            replay_missing_key_is_zero;
        ] );
    ]
