(* Tests for the network substrate and latency models. *)

module Sim = Simul.Sim
module Network = Netsim.Network
module Latency = Netsim.Latency

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let delivery () =
  let sim = Sim.create () in
  let net = Network.create sim ~size:2 ~latency:(Latency.Constant 0.1) () in
  let got = ref None in
  Sim.spawn sim ~daemon:true (fun () -> got := Some (Network.recv net ~node:1));
  Network.send net ~src:0 ~dst:1 "hello";
  ignore (Sim.run sim ());
  checkb "received" true (!got = Some "hello")

let constant_latency_timing () =
  let sim = Sim.create () in
  let net = Network.create sim ~size:2 ~latency:(Latency.Constant 0.25) () in
  let at = ref 0. in
  Sim.spawn sim ~daemon:true (fun () ->
      ignore (Network.recv net ~node:1);
      at := Sim.now sim);
  Network.send net ~src:0 ~dst:1 ();
  ignore (Sim.run sim ());
  Alcotest.(check (float 1e-9)) "arrival time" 0.25 !at

let self_send_zero_delay () =
  let sim = Sim.create () in
  let net = Network.create sim ~size:2 ~latency:(Latency.Constant 5.0) () in
  let at = ref (-1.) in
  Sim.spawn sim ~daemon:true (fun () ->
      ignore (Network.recv net ~node:0);
      at := Sim.now sim);
  Network.send net ~src:0 ~dst:0 ();
  ignore (Sim.run sim ());
  Alcotest.(check (float 1e-9)) "no delay to self" 0. !at

let constant_preserves_fifo () =
  let sim = Sim.create () in
  let net = Network.create sim ~size:2 ~latency:(Latency.Constant 0.1) () in
  let log = ref [] in
  Sim.spawn sim ~daemon:true (fun () ->
      let rec loop () =
        log := Network.recv net ~node:1 :: !log;
        loop ()
      in
      loop ());
  for i = 1 to 5 do
    Network.send net ~src:0 ~dst:1 i
  done;
  ignore (Sim.run sim ());
  Alcotest.(check (list int)) "fifo under constant latency" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let link_latency_override () =
  let sim = Sim.create () in
  let override ~src ~dst =
    if src = 0 && dst = 1 then Some (Latency.Constant 1.0) else None
  in
  let net =
    Network.create sim ~size:3 ~latency:(Latency.Constant 0.1)
      ~link_latency:override ()
  in
  let t01 = ref 0. and t02 = ref 0. in
  Sim.spawn sim ~daemon:true (fun () ->
      ignore (Network.recv net ~node:1);
      t01 := Sim.now sim);
  Sim.spawn sim ~daemon:true (fun () ->
      ignore (Network.recv net ~node:2);
      t02 := Sim.now sim);
  Network.send net ~src:0 ~dst:1 ();
  Network.send net ~src:0 ~dst:2 ();
  ignore (Sim.run sim ());
  Alcotest.(check (float 1e-9)) "overridden link" 1.0 !t01;
  Alcotest.(check (float 1e-9)) "default link" 0.1 !t02

let message_accounting () =
  let sim = Sim.create () in
  let net = Network.create sim ~size:3 ~latency:(Latency.Constant 0.) () in
  for node = 0 to 2 do
    Sim.spawn sim ~daemon:true (fun () ->
        let rec loop () =
          ignore (Network.recv net ~node);
          loop ()
        in
        loop ())
  done;
  Network.send net ~src:0 ~dst:1 ();
  Network.send net ~src:0 ~dst:1 ();
  Network.send net ~src:1 ~dst:2 ();
  Network.send net ~src:2 ~dst:2 ();
  ignore (Sim.run sim ());
  checki "total" 4 (Network.messages_sent net);
  checki "remote" 3 (Network.remote_messages_sent net);
  checkb "link counts" true
    (Network.link_counts net
    = [ ((0, 1), 2); ((1, 2), 1); ((2, 2), 1) ])

(* [messages_delivered] counts copies landing in a mailbox, not send
   attempts: a message still in flight when the run's horizon hits must not
   be counted. Regression for the send-time increment bug. *)
let delivered_counts_at_delivery () =
  let sim = Sim.create () in
  let net = Network.create sim ~size:2 ~latency:(Latency.Constant 1.0) () in
  Sim.spawn sim ~daemon:true (fun () ->
      let rec loop () =
        ignore (Network.recv net ~node:1);
        loop ()
      in
      loop ());
  Network.send net ~src:0 ~dst:1 ();
  (* Stop before the 1.0s delivery: sent but in flight. *)
  ignore (Sim.run sim ~until:0.5 ());
  checki "sent immediately" 1 (Network.messages_sent net);
  checki "in flight, not delivered" 0 (Network.messages_delivered net);
  (* Let the delivery event run. *)
  ignore (Sim.run sim ());
  checki "delivered on arrival" 1 (Network.messages_delivered net)

(* Same-tick deliveries to one destination coalesce into a single drain
   event, but the observable schedule must be untouched: per-link FIFO
   order, per-copy event accounting (the drain tallies one executed event
   per coalesced copy), and delivery times all match the one-closure-per-
   copy behaviour this replaced. *)
let batching_preserves_fifo () =
  let sim = Sim.create () in
  let net = Network.create sim ~size:3 ~latency:(Latency.Constant 0.1) () in
  let log = ref [] in
  for node = 1 to 2 do
    Sim.spawn sim ~daemon:true (fun () ->
        let rec loop () =
          (* Bind before consing: [!log] must be read after the recv
             suspension, or a resumed fiber writes back a stale snapshot. *)
          let m = Network.recv net ~node in
          log := (node, m) :: !log;
          loop ()
        in
        loop ())
  done;
  (* Five same-tick sends to node 1 interleaved with one to node 2: the
     run to node 1 before the dst switch coalesces; the switch starts a
     fresh batch. *)
  for i = 1 to 3 do
    Network.send net ~src:0 ~dst:1 i
  done;
  Network.send net ~src:0 ~dst:2 99;
  for i = 4 to 5 do
    Network.send net ~src:0 ~dst:1 i
  done;
  ignore (Sim.run sim ());
  let to1 = List.rev_map snd (List.filter (fun (n, _) -> n = 1) !log) in
  Alcotest.(check (list int)) "fifo to node 1" [ 1; 2; 3; 4; 5 ] to1;
  checki "node 2 got its copy" 1
    (List.length (List.filter (fun (n, _) -> n = 2) !log));
  checkb "some deliveries coalesced" true (Network.coalesced_deliveries net > 0);
  (* Event accounting is per-copy, exactly as if nothing had coalesced. *)
  let sim2 = Sim.create () in
  let net2 = Network.create sim2 ~size:3 ~latency:(Latency.Constant 0.1) () in
  for node = 1 to 2 do
    Sim.spawn sim2 ~daemon:true (fun () ->
        let rec loop () =
          ignore (Network.recv net2 ~node);
          loop ()
        in
        loop ())
  done;
  (* Same traffic, but forced un-coalesced: a yield between sends moves
     each send to its own event, so every delivery schedules alone. *)
  Sim.spawn sim2 (fun () ->
      for i = 1 to 3 do
        Network.send net2 ~src:0 ~dst:1 i;
        Sim.yield sim2
      done;
      Network.send net2 ~src:0 ~dst:2 99;
      Sim.yield sim2;
      for i = 4 to 5 do
        Network.send net2 ~src:0 ~dst:1 i;
        Sim.yield sim2
      done);
  ignore (Sim.run sim2 ());
  checki "no coalescing without same-tick sends" 0
    (Network.coalesced_deliveries net2)

module Reliable = Netsim.Reliable

(* Regression: the delivered_seen dedup table used to keep one record per
   distinct delivered (src, seq, dst) forever — unbounded growth on any
   long-lived reliable channel. Ack-floor pruning must hold it at the
   in-flight window across a long, retransmit-heavy run, without breaking
   dedup (no duplicate deliveries surface) or reliability (every payload
   arrives). *)
let delivered_seen_stays_bounded () =
  let sim = Sim.create ~seed:5 () in
  let net = Network.create sim ~size:2 ~latency:(Latency.Constant 0.001) () in
  let rng = Random.State.make [| 99 |] in
  (* Drop 20% of copies: every loss forces a retransmission, and acks are
     packets too, so ack loss exercises the out-of-order ack path. *)
  Network.set_filter net (fun ~src:_ ~dst:_ ~delay ->
      if Random.State.float rng 1. < 0.2 then [] else [ delay ]);
  let ch =
    Reliable.create
      ~config:
        {
          Reliable.default_config with
          Reliable.acks = true;
          retransmit = true;
          timeout = 0.01;
        }
      net
  in
  let n = 2000 in
  let got = ref [] in
  let peak_seen = ref 0 in
  Sim.spawn sim ~daemon:true (fun () ->
      let rec loop () =
        let m = Reliable.recv ch ~node:1 in
        got := m :: !got;
        if Network.delivered_seen_size net > !peak_seen then
          peak_seen := Network.delivered_seen_size net;
        loop ()
      in
      loop ());
  (* The sender must drain its own endpoint: acks are packets, and only
     [Reliable.recv] consumes them and disarms retransmit timers. *)
  Sim.spawn sim ~daemon:true (fun () ->
      ignore (Reliable.recv ch ~node:0 : int));
  Sim.spawn sim (fun () ->
      for i = 1 to n do
        Reliable.send ch ~src:0 ~dst:1 i;
        Sim.sleep sim 0.002
      done);
  ignore (Sim.run sim ());
  checkb "retransmit-heavy" true (Reliable.retransmissions ch > 50);
  (* Reliability and dedup both intact: each payload exactly once. *)
  Alcotest.(check (list int))
    "every payload exactly once"
    (List.init n (fun i -> i + 1))
    (List.sort Int.compare !got);
  (* The ack floor marched with the traffic... *)
  checkb "ack floor advanced" true (Reliable.ack_floor ch ~src:0 ~dst:1 > n - 50);
  (* ...so the dedup table tracked the in-flight window, not the run.
     Lost acks stall the floor for a backoff-extended round trip, so the
     in-flight window peaks in the low hundreds here; without pruning the
     table ends the run holding all [n] records and never shrinks. *)
  checkb "seen table bounded at peak" true (!peak_seen < n / 4);
  checkb "seen table near-empty at quiescence" true
    (Network.delivered_seen_size net < 50)

let zero_size_rejected () =
  let sim = Sim.create () in
  Alcotest.check_raises "size 0"
    (Invalid_argument "Network.create: size must be positive") (fun () ->
      ignore
        (Network.create sim ~size:0 ~latency:(Latency.Constant 0.)
           () : unit Network.t))

let out_of_range_nodes () =
  let sim = Sim.create () in
  let net = Network.create sim ~size:2 ~latency:(Latency.Constant 0.) () in
  Alcotest.check_raises "bad dst"
    (Invalid_argument "Network.send: node 7 out of range") (fun () ->
      Network.send net ~src:0 ~dst:7 ())

let latency_means () =
  Alcotest.(check (float 1e-9)) "constant" 0.5 (Latency.mean (Latency.Constant 0.5));
  Alcotest.(check (float 1e-9)) "uniform" 0.3
    (Latency.mean (Latency.Uniform (0.1, 0.5)));
  Alcotest.(check (float 1e-9)) "exp" 0.2 (Latency.mean (Latency.Exponential 0.2))

let sample_nonnegative =
  QCheck.Test.make ~name:"latency samples are nonnegative" ~count:300
    QCheck.(triple (float_range (-1.) 1.) (float_range 0. 1.) (float_range 0. 1.))
    (fun (a, b, c) ->
      let rng = Random.State.make [| 11 |] in
      List.for_all
        (fun model -> Latency.sample model rng >= 0.)
        [ Latency.Constant a; Latency.Uniform (a, b); Latency.Exponential c ])

let uniform_within_bounds =
  QCheck.Test.make ~name:"uniform samples stay in [lo, hi]" ~count:200
    QCheck.(pair (float_range 0. 5.) (float_range 0. 5.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let rng = Random.State.make [| 7 |] in
      let model = Latency.Uniform (lo, hi) in
      List.for_all
        (fun _ ->
          let x = Latency.sample model rng in
          x >= lo -. 1e-12 && x <= hi +. 1e-12)
        (List.init 50 Fun.id))

let exponential_mean_sanity () =
  let rng = Random.State.make [| 3 |] in
  let model = Latency.Exponential 0.1 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Latency.sample model rng
  done;
  let mean = !sum /. float_of_int n in
  checkb "empirical mean near 0.1" true (mean > 0.09 && mean < 0.11)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ sample_nonnegative; uniform_within_bounds ]

let () =
  Alcotest.run "netsim"
    [
      ( "network",
        [
          Alcotest.test_case "delivery" `Quick delivery;
          Alcotest.test_case "constant latency timing" `Quick
            constant_latency_timing;
          Alcotest.test_case "self send zero delay" `Quick self_send_zero_delay;
          Alcotest.test_case "fifo under constant latency" `Quick
            constant_preserves_fifo;
          Alcotest.test_case "link latency override" `Quick
            link_latency_override;
          Alcotest.test_case "message accounting" `Quick message_accounting;
          Alcotest.test_case "batching preserves fifo" `Quick
            batching_preserves_fifo;
          Alcotest.test_case "delivered_seen stays bounded" `Quick
            delivered_seen_stays_bounded;
          Alcotest.test_case "delivered counts at delivery" `Quick
            delivered_counts_at_delivery;
          Alcotest.test_case "out of range" `Quick out_of_range_nodes;
          Alcotest.test_case "zero size rejected" `Quick zero_size_rejected;
        ] );
      ( "latency",
        [
          Alcotest.test_case "means" `Quick latency_means;
          Alcotest.test_case "exponential mean sanity" `Quick
            exponential_mean_sanity;
        ]
        @ qsuite );
    ]
