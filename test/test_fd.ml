(* Tests for the failure-detector subsystem (lib/fd) and its engine
   integration: the suspicion state machine's transitions, bounded
   back-off and adaptive horizon; a bounded-exhaustive sweep provoking
   false suspicion of each replica inside each advancement phase; a qcheck
   property that heartbeat loss alone never changes committed state or
   certifier verdicts vs the fault-free golden run (obligation a); and the
   degradation path for an outage the detector cannot see — the watchdog
   and the reliable channel carry the advancement (obligation b). *)

module Sim = Simul.Sim
module Ivar = Simul.Ivar
module Latency = Netsim.Latency
module Detector = Fd.Detector
module Plan = Fault.Plan
module Injector = Fault.Injector
module Engine = Threev.Engine
module Policy = Threev.Policy
module Runner = Harness.Runner
module Counter_set = Stats.Counter_set
module Explorer = Mcheck.Explorer

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ----------------------------------------------------- detector units *)

(* phi_factor 1 pins the fresh-peer horizon to [timeout] exactly, so the
   deadline arithmetic below is closed-form. *)
let unit_cfg =
  {
    Detector.period = 0.05;
    timeout = 0.15;
    phi_factor = 1.0;
    confirm_misses = 3;
    backoff = 2.0;
    max_horizon = 2.0;
  }

let detector_validation () =
  let rejected cfg =
    match Detector.create ~config:cfg ~nodes:2 ~now:0. () with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  checkb "timeout <= period rejected" true
    (rejected { unit_cfg with Detector.timeout = 0.05 });
  checkb "non-positive period rejected" true
    (rejected { unit_cfg with Detector.period = 0. });
  checkb "phi_factor < 1 rejected" true
    (rejected { unit_cfg with Detector.phi_factor = 0.5 });
  checkb "confirm_misses < 1 rejected" true
    (rejected { unit_cfg with Detector.confirm_misses = 0 });
  checkb "backoff < 1 rejected" true
    (rejected { unit_cfg with Detector.backoff = 0.9 });
  checkb "max_horizon < timeout rejected" true
    (rejected { unit_cfg with Detector.max_horizon = 0.1 });
  checkb "zero nodes rejected" true
    (match Detector.create ~nodes:0 ~now:0. () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* The full trusted → suspected → confirmed-down → recovered → trusted
   walk, with the deadline chain computed by hand: silence from t=0 under
   [unit_cfg] misses at 0.15 (suspected, horizon doubles to 0.3), at 0.45
   (horizon 0.6) and at 1.05 (third miss — confirmed down). *)
let detector_lifecycle () =
  let d = Detector.create ~config:unit_cfg ~nodes:2 ~now:0. () in
  (* A beating peer stays trusted. *)
  Detector.heartbeat d ~node:0 ~now:0.05;
  Detector.heartbeat d ~node:0 ~now:0.10;
  checkb "beating peer trusted" true
    (Detector.state d ~node:0 ~now:0.2 = Detector.Trusted);
  (* The silent peer walks the suspicion ladder. *)
  checkb "silent peer still trusted before the deadline" true
    (Detector.state d ~node:1 ~now:0.14 = Detector.Trusted);
  checkb "first expired deadline suspects" true
    (Detector.state d ~node:1 ~now:0.16 = Detector.Suspected);
  checkb "suspected before the second miss" true
    (Detector.state d ~node:1 ~now:0.44 = Detector.Suspected);
  checkb "third miss confirms down" true
    (Detector.state d ~node:1 ~now:1.06 = Detector.Confirmed_down);
  checkb "confirmed-down is suspected" true
    (Detector.suspected d ~node:1 ~now:1.1);
  checkb "confirmed_down predicate" true
    (Detector.confirmed_down d ~node:1 ~now:1.1);
  (* A heartbeat refutes the suspicion: one transitional beat, then trust. *)
  Detector.heartbeat d ~node:1 ~now:1.2;
  checkb "recovered after the refuting beat" true
    (Detector.state d ~node:1 ~now:1.21 = Detector.Recovered);
  checkb "recovered is not suspected" true
    (not (Detector.suspected d ~node:1 ~now:1.21));
  Detector.heartbeat d ~node:1 ~now:1.25;
  checkb "re-trusted by the next beat" true
    (Detector.state d ~node:1 ~now:1.26 = Detector.Trusted);
  checki "one suspicion" 1 (Detector.suspicions d);
  checki "one confirmation" 1 (Detector.confirmations d);
  checki "one recovery" 1 (Detector.recoveries d);
  checki "four heartbeats folded" 4 (Detector.heartbeats_seen d)

(* Back-off is bounded: with a small [max_horizon], a very long silence
   costs misses at a bounded cadence and a single beat still recovers. *)
let detector_bounded_backoff () =
  let cfg = { unit_cfg with Detector.max_horizon = 0.2 } in
  let d = Detector.create ~config:cfg ~nodes:1 ~now:0. () in
  checkb "long silence confirms down" true
    (Detector.state d ~node:0 ~now:50. = Detector.Confirmed_down);
  Detector.heartbeat d ~node:0 ~now:50.05;
  checkb "one beat recovers even after a 50s outage" true
    (Detector.state d ~node:0 ~now:50.06 = Detector.Recovered);
  checki "exactly one suspicion for the whole outage" 1
    (Detector.suspicions d)

(* The horizon adapts to the observed cadence (phi-accrual style): a peer
   beating steadily at twice the configured period earns a proportionally
   longer deadline instead of being endlessly re-suspected. *)
let detector_adaptive_horizon () =
  let cfg = { unit_cfg with Detector.phi_factor = 4.0 } in
  let d = Detector.create ~config:cfg ~nodes:1 ~now:0. () in
  let last = ref 0. in
  for i = 1 to 50 do
    last := 0.1 *. float_of_int i;
    Detector.heartbeat d ~node:0 ~now:!last
  done;
  checki "slow-but-steady peer never suspected" 0 (Detector.suspicions d);
  (* EWMA mean ~0.1 → horizon ~0.4: silence of 0.35 is tolerated... *)
  checkb "within the adapted horizon" true
    (Detector.state d ~node:0 ~now:(!last +. 0.35) = Detector.Trusted);
  (* ...but the configured-period horizon (4 x 0.05 = 0.2) would not be. *)
  checkb "adapted horizon exceeds the configured one" true
    (Detector.state d ~node:0 ~now:(!last +. 0.45) = Detector.Suspected)

(* Suspicion is a pure function of the arrival history: two detectors fed
   the same beats and queries agree on every state and counter. *)
let detector_deterministic () =
  let feed d =
    let states = ref [] in
    for i = 1 to 40 do
      let t = 0.07 *. float_of_int i in
      if i mod 7 <> 0 then Detector.heartbeat d ~node:(i mod 3) ~now:t;
      states :=
        Detector.state d ~node:(i mod 3) ~now:(t +. 0.01) :: !states
    done;
    (!states, Detector.suspicions d, Detector.recoveries d)
  in
  let a = feed (Detector.create ~config:unit_cfg ~nodes:3 ~now:0. ()) in
  let b = feed (Detector.create ~config:unit_cfg ~nodes:3 ~now:0. ()) in
  checkb "identical states and counters" true (a = b)

(* ------------------------------------------------- engine integration *)

let fd_cfg ~nodes ~replicas ~policy =
  {
    (Engine.default_config ~nodes) with
    Engine.replicas;
    latency = Latency.Constant 0.004;
    think_time = 0.0003;
    policy;
    reliable_channel = true;
    retransmit_timeout = 0.01;
    hb_period = 0.005;
    hb_timeout = 0.015;
    phase_deadline = 0.5;
  }

let small_gen nodes =
  Workload.Synthetic.generator
    {
      (Workload.Synthetic.default ~nodes) with
      Workload.Synthetic.arrival_rate = 300.;
      read_ratio = 0.25;
      fanout = 2;
      keys_per_node = 15;
      zipf_s = 0.7;
    }

let certify_clean name (outcome : Runner.outcome) =
  checki (name ^ " settled") 0 outcome.Runner.unfinished;
  checkb (name ^ " committed some") true (outcome.Runner.committed > 0);
  let srz = Checker.Serializability.certify outcome.Runner.history in
  checkb (name ^ " 1SR") true (Checker.Serializability.serializable srz);
  checkb (name ^ " atomic visibility") true
    (Checker.Atomicity.clean (Checker.Atomicity.check outcome.Runner.history));
  checkb (name ^ " exact version reads") true
    (Checker.Version_reads.clean
       (Checker.Version_reads.check outcome.Runner.history))

(* ------------------- mcheck: false suspicion inside each phase

   Mirror of test_repl's replica-crash sweep, with the lie instead of the
   crash: a fault-free reference run (heartbeats on) pins the WAL
   phase-entry times of the first advancement; the explorer then drops
   each replica's outgoing heartbeats starting strictly inside each of the
   four phases. The node stays alive — only the detector's evidence is
   cut — so every schedule must suspect it, finish the advancement on the
   unsuspected quorum, and certify clean (obligation a, per phase). *)

let run_fd_coord ?(plan = Plan.none) () =
  let nodes = 3 in
  let sim = Sim.create ~seed:83 () in
  let cfg = fd_cfg ~nodes ~replicas:3 ~policy:Policy.Manual in
  let faults = Injector.create sim plan in
  let engine = Engine.create sim cfg ~faults () in
  let adv = ref None in
  Sim.schedule sim ~delay:0.1 (fun () -> adv := Some (Engine.advance engine));
  let outcome =
    Runner.drive sim (Engine.packed engine) (small_gen nodes)
      {
        Runner.default_setup with
        Runner.seed = 83;
        duration = 0.3;
        settle = 6.0;
      }
  in
  (outcome, engine, !adv)

let fd_phase_entries =
  lazy
    (let _, engine, adv = run_fd_coord () in
     (match adv with
     | Some iv when Ivar.is_full iv -> ()
     | _ -> failwith "reference advancement did not complete");
     let times = Threev.Coord_log.phase_times (Engine.coord_log engine) in
     Array.init 4 (fun i ->
         match
           List.find_opt
             (fun (a, p, _) -> a = 1 && Threev.Coord_log.phase_number p = i + 1)
             times
         with
         | Some (_, _, t) -> t
         | None -> failwith (Printf.sprintf "phase %d never entered" (i + 1))))

let false_suspicion_scenario ctl =
  let entry = Lazy.force fd_phase_entries in
  let node = Explorer.choose ctl 3 in
  let k = Explorer.choose ctl 4 in
  let at =
    if k < 3 then (entry.(k) +. entry.(k + 1)) /. 2. else entry.(3) +. 0.002
  in
  let plan =
    Plan.make ~seed:83
      ~rules:(Plan.heartbeat_loss ~src:node ~from_:at ~until_:(at +. 0.25) ())
      ()
  in
  let outcome, engine, adv = run_fd_coord ~plan () in
  (match adv with
  | Some iv when Ivar.is_full iv -> ()
  | _ -> failwith "advancement did not survive the false suspicion");
  if Engine.advancements_completed engine < 1 then
    failwith "advancement never completed";
  if Counter_set.get outcome.Runner.stats "fd.suspicions" < 1 then
    failwith "the storm never provoked a suspicion";
  if Counter_set.get outcome.Runner.stats "fd.recoveries" < 1 then
    failwith "the live node never re-earned trust";
  if not (Checker.Atomicity.clean (Runner.atomicity outcome)) then
    failwith "atomic visibility violated";
  if outcome.Runner.unfinished > 0 then
    failwith "transactions left unfinished"

let false_suspicion_each_phase () =
  let outcome = Explorer.explore false_suspicion_scenario in
  (match outcome.Explorer.failure with
  | Some (path, exn) ->
      Alcotest.failf "false suspicion %s breaks quorum advancement: %s"
        (String.concat "," (List.map string_of_int path))
        (Printexc.to_string exn)
  | None -> ());
  checkb "tree exhausted" true outcome.Explorer.exhausted;
  checki "3 replicas x 4 phases" 12 outcome.Explorer.runs

(* ---------------- qcheck: heartbeat loss never changes the outcome

   Obligation (a) as a property: heartbeat loss alone — no real fault —
   must be invisible in the committed history. Commuting updates make the
   final state a pure function of the committed set, so it suffices that
   every transaction settles, the commit/abort split matches the
   fault-free golden run, and all four checkers (1SR, atomic visibility,
   exact version reads, final-store replay) stay clean: replay cleanliness
   on the same committed set pins the same final per-key values. *)

let qcheck_run ?(plan = Plan.none) () =
  let nodes = 4 in
  let sim = Sim.create ~seed:97 () in
  let cfg = fd_cfg ~nodes ~replicas:2 ~policy:(Policy.Periodic 0.15) in
  let faults = Injector.create sim plan in
  let engine = Engine.create sim cfg ~faults () in
  let outcome =
    Runner.drive sim (Engine.packed engine) (small_gen nodes)
      { Runner.seed = 97; duration = 0.4; settle = 6.0; max_txns = 10_000 }
  in
  (outcome, engine)

let qcheck_golden = lazy (qcheck_run ())

let clean_verdicts (outcome : Runner.outcome) engine ~nodes =
  let history = outcome.Runner.history in
  let lookup key =
    let rec scan node =
      if node < 0 then None
      else
        match
          Store.Mvstore.read_visible (Engine.store engine ~node) ~key
            ~version:max_int
        with
        | Some (_, v) -> Some v
        | None -> scan (node - 1)
    in
    scan (nodes - 1)
  in
  Checker.Serializability.serializable
    (Checker.Serializability.certify history)
  && Checker.Atomicity.clean (Checker.Atomicity.check history)
  && Checker.Version_reads.clean (Checker.Version_reads.check history)
  && Checker.Replay.clean (Checker.Replay.check history ~lookup)

let qcheck_hb_loss =
  QCheck.Test.make
    ~name:"heartbeat loss alone never perturbs the committed outcome"
    ~count:12
    QCheck.(
      quad (int_range 0 3) (int_range 0 120) (int_range 5 60) (int_range 5 10))
    (fun (node, from_c, len_c, prob_d) ->
      let golden, _ = Lazy.force qcheck_golden in
      let from_ = 0.005 *. float_of_int from_c in
      let plan =
        Plan.make ~seed:97
          ~rules:
            (Plan.heartbeat_loss ~src:node
               ~prob:(float_of_int prob_d /. 10.)
               ~from_
               ~until_:(from_ +. (0.01 *. float_of_int len_c))
               ())
          ()
      in
      let outcome, engine = qcheck_run ~plan () in
      if outcome.Runner.unfinished > 0 then
        QCheck.Test.fail_report "transactions left unfinished";
      if outcome.Runner.committed <> golden.Runner.committed then
        QCheck.Test.fail_reportf "committed %d vs golden %d"
          outcome.Runner.committed golden.Runner.committed;
      if outcome.Runner.aborted <> golden.Runner.aborted then
        QCheck.Test.fail_reportf "aborted %d vs golden %d"
          outcome.Runner.aborted golden.Runner.aborted;
      if not (clean_verdicts outcome engine ~nodes:4) then
        QCheck.Test.fail_report "a checker verdict changed under hb loss";
      true)

(* The golden run itself must be clean — otherwise the property above
   compares against garbage. *)
let qcheck_golden_clean () =
  let golden, engine = Lazy.force qcheck_golden in
  checki "golden settled" 0 golden.Runner.unfinished;
  checkb "golden clean" true (clean_verdicts golden engine ~nodes:4)

(* --------------------- obligation (b): the outage the detector misses

   A detector that is effectively blind (huge suspicion horizon) faces a
   real crash of k-1 replicas mid-run. Nothing ever gets suspected, so the
   quorum keeps requiring the dead nodes and the advancement must ride the
   watchdog's bounded resends plus the reliable channel's retransmissions
   until the replicas restart — degraded, but never wedged, and never
   consulting ground truth. *)
let undetected_outage_degrades () =
  let nodes = 6 in
  let sim = Sim.create ~seed:131 () in
  let cfg =
    {
      (fd_cfg ~nodes ~replicas:3 ~policy:Policy.Manual) with
      Engine.hb_period = 0.05;
      hb_timeout = 10.0;
      phase_deadline = 0.2;
    }
  in
  let members = Repl.Placement.members (Repl.Placement.create ~nodes ~replicas:3) 0 in
  let faults =
    Injector.create sim
      (Plan.make ~seed:131
         ~crashes:(Plan.crash_replicas ~members ~keep:1 ~at:0.15 ~restart:0.8)
         ())
  in
  let engine = Engine.create sim cfg ~faults () in
  let adv = ref None in
  Sim.schedule sim ~delay:0.3 (fun () -> adv := Some (Engine.advance engine));
  let outcome =
    Runner.drive sim (Engine.packed engine) (small_gen nodes)
      { Runner.seed = 131; duration = 0.5; settle = 8.0; max_txns = 10_000 }
  in
  (match !adv with
  | Some iv when Ivar.is_full iv -> ()
  | _ -> Alcotest.fail "advancement wedged on an undetected outage");
  checkb "advancement completed" true
    (Engine.advancements_completed engine >= 1);
  checki "the blind detector never suspected anyone" 0
    (Counter_set.get outcome.Runner.stats "fd.suspicions");
  checkb "the watchdog carried the wait" true
    (Counter_set.get outcome.Runner.stats "proto.phase_stalled" >= 1);
  certify_clean "undetected outage" outcome

(* --------------------------------------------------------------- suite *)

let () =
  Alcotest.run "fd"
    [
      ( "detector",
        [
          Alcotest.test_case "config validation" `Quick detector_validation;
          Alcotest.test_case "suspicion lifecycle" `Quick detector_lifecycle;
          Alcotest.test_case "bounded backoff" `Quick detector_bounded_backoff;
          Alcotest.test_case "adaptive horizon" `Quick
            detector_adaptive_horizon;
          Alcotest.test_case "deterministic" `Quick detector_deterministic;
        ] );
      ( "mcheck",
        [
          Alcotest.test_case "false suspicion in each phase" `Quick
            false_suspicion_each_phase;
        ] );
      ( "qcheck",
        [
          Alcotest.test_case "golden run clean" `Quick qcheck_golden_clean;
          QCheck_alcotest.to_alcotest qcheck_hb_loss;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "undetected outage rides the watchdog" `Quick
            undetected_outage_degrades;
        ] );
    ]
