(* Cross-engine integration tests: the same randomized workloads run on
   every engine, with the offline checkers as oracles.

   The strongest checks:
   - 3V is always atomically visible and its settled store replays exactly
     (no lost/duplicated/half-applied subtransaction), across seeds;
   - 3V's final state agrees with the no-coordination engine's on the same
     workload — both apply all commuting updates, so any divergence means
     a versioning bug (lost dual write, bad GC relabel);
   - the no-coordination baseline is NOT always atomically visible (the
     checkers have teeth);
   - all of this while version advancement churns (the quiescence oracle
     is armed, so an unsound advancement aborts the test run). *)

module Sim = Simul.Sim
module Ivar = Simul.Ivar
module Latency = Netsim.Latency
module Mvstore = Store.Mvstore
module Spec = Txn.Spec
module Result = Txn.Result
module Value = Txn.Value
module Engine = Threev.Engine
module Policy = Threev.Policy
module Runner = Harness.Runner

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let hospital_gen ~nodes ~rate =
  Workload.Hospital.generator
    {
      (Workload.Hospital.default ~nodes) with
      Workload.Hospital.arrival_rate = rate;
      read_ratio = 0.3;
      patients = 30;
      visit_fanout = 2;
      post_delay = 0.005;
    }

let setup ~seed = { Runner.seed; duration = 1.0; settle = 4.0; max_txns = 5000 }

let drive_3v ~seed ~nodes ~rate =
  let sim = Sim.create ~seed () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.latency = Latency.Exponential 0.005;
      policy = Policy.Periodic 0.1;
      think_time = 0.0002;
      debug_checks = true;
    }
  in
  let engine = Engine.create sim cfg () in
  let outcome =
    Runner.drive sim (Engine.packed engine) (hospital_gen ~nodes ~rate)
      (setup ~seed)
  in
  (* Two final advancements flush the last update version into the read
     version so the settled store is fully published. *)
  let a1 = Engine.advance engine in
  let a2 = Engine.advance engine in
  ignore (Sim.run sim ~until:(Sim.now sim +. 20.) ());
  checkb "final advancements done" true (Ivar.is_full a1 && Ivar.is_full a2);
  (outcome, engine)

let lookup_3v ~nodes engine key =
  (* Any node may own the key; read the freshest version anywhere. *)
  let rec scan node =
    if node < 0 then None
    else
      match
        Mvstore.read_visible (Engine.store engine ~node) ~key ~version:max_int
      with
      | Some (_, v) -> Some v
      | None -> scan (node - 1)
  in
  scan (nodes - 1)

let threev_atomic_and_replays () =
  List.iter
    (fun seed ->
      let outcome, engine = drive_3v ~seed ~nodes:4 ~rate:500. in
      checki "all transactions resolved" 0 outcome.Runner.unfinished;
      let atom = Runner.atomicity outcome in
      checkb
        (Format.asprintf "seed %d atomicity %a" seed Checker.Atomicity.pp atom)
        true
        (Checker.Atomicity.clean atom);
      let replay =
        Checker.Replay.check outcome.Runner.history ~lookup:(lookup_3v ~nodes:4 engine)
      in
      checkb
        (Format.asprintf "seed %d replay %a" seed Checker.Replay.pp replay)
        true
        (Checker.Replay.clean replay);
      (* The exact version-read oracle (Theorem 4.1): each read saw exactly
         the committed writers of versions up to its own. *)
      let exact = Checker.Version_reads.check outcome.Runner.history in
      checkb
        (Format.asprintf "seed %d version-reads %a" seed
           Checker.Version_reads.pp exact)
        true
        (Checker.Version_reads.clean exact);
      checkb "version bound" true (Engine.max_versions_ever engine <= 3))
    [ 101; 202; 303 ]

let threev_matches_nocoord_final_state () =
  let seed = 7 and nodes = 3 and rate = 400. in
  let outcome_3v, engine_3v = drive_3v ~seed ~nodes ~rate in
  let sim = Sim.create ~seed () in
  let nc =
    Baselines.No_coord.create sim
      {
        (Baselines.No_coord.default_config ~nodes) with
        Baselines.No_coord.latency = Latency.Exponential 0.005;
        think_time = 0.0002;
      }
  in
  let outcome_nc =
    Runner.drive sim (Baselines.No_coord.packed nc) (hospital_gen ~nodes ~rate)
      (setup ~seed)
  in
  (* Same seed, same generator stream: both engines saw identical specs. *)
  checki "same submissions" outcome_3v.Runner.submitted
    outcome_nc.Runner.submitted;
  (* Both final states must equal the commuting replay of the history. *)
  let expected = Checker.Replay.expected outcome_3v.Runner.history in
  let mismatches = ref 0 in
  Hashtbl.iter
    (fun key want ->
      let amount_3v =
        match lookup_3v ~nodes engine_3v key with
        | Some v -> v.Value.amount
        | None -> 0.
      in
      let amount_nc =
        let rec scan node =
          if node < 0 then 0.
          else
            match
              Mvstore.read_visible (Baselines.No_coord.store nc ~node) ~key
                ~version:max_int
            with
            | Some (_, v) -> v.Value.amount
            | None -> scan (node - 1)
        in
        scan (nodes - 1)
      in
      if Float.abs (amount_3v -. want) > 1e-6 then incr mismatches;
      if Float.abs (amount_nc -. amount_3v) > 1e-6 then incr mismatches)
    expected;
  checki "states agree" 0 !mismatches

let nocoord_not_atomic_under_stragglers () =
  (* The checker must have teeth: under late posting, no-coordination shows
     partial reads on at least one of these seeds. *)
  let anomalies =
    List.fold_left
      (fun acc seed ->
        let sim = Sim.create ~seed () in
        let nc =
          Baselines.No_coord.create sim
            {
              (Baselines.No_coord.default_config ~nodes:4) with
              Baselines.No_coord.latency = Latency.Exponential 0.01;
            }
        in
        let gen =
          Workload.Hospital.generator
            {
              (Workload.Hospital.default ~nodes:4) with
              Workload.Hospital.arrival_rate = 800.;
              read_ratio = 0.4;
              patients = 10;
              visit_fanout = 3;
              post_delay = 0.02;
            }
        in
        let outcome =
          Runner.drive sim (Baselines.No_coord.packed nc) gen (setup ~seed)
        in
        acc + (Runner.atomicity outcome).Checker.Atomicity.partial_reads)
      0 [ 1; 2; 3 ]
  in
  checkb "anomalies observed" true (anomalies > 0)

let twopc_atomic_but_slower_reads () =
  let seed = 9 and nodes = 4 and rate = 400. in
  let gen = hospital_gen ~nodes ~rate in
  let sim = Sim.create ~seed () in
  let eng2pc =
    Baselines.Global_2pc.create sim
      {
        (Baselines.Global_2pc.default_config ~nodes) with
        Baselines.Global_2pc.latency = Latency.Exponential 0.005;
        think_time = 0.0002;
        deadlock_timeout = 0.1;
      }
  in
  let outcome_2pc =
    Runner.drive sim (Baselines.Global_2pc.packed eng2pc) gen (setup ~seed)
  in
  let atom = Runner.atomicity outcome_2pc in
  checkb "2pc atomic" true (Checker.Atomicity.clean atom);
  let outcome_3v, _ = drive_3v ~seed ~nodes ~rate in
  let p99 o = Stats.Histogram.percentile o.Runner.read_latency 99. in
  checkb "3v read tail at or below 2pc's" true
    (p99 outcome_3v <= p99 outcome_2pc +. 1e-9)

let nc_mixed_workload_serializable () =
  (* POS with price changes: NC3V plus commuting plus reads, with
     advancement churn; atomic visibility must hold and NC aborts must
     leave no trace. *)
  List.iter
    (fun seed ->
      let nodes = 4 in
      let sim = Sim.create ~seed () in
      let cfg =
        {
          (Engine.default_config ~nodes) with
          Engine.latency = Latency.Exponential 0.004;
          policy = Policy.Periodic 0.15;
          nc_mode = true;
          deadlock_timeout = 0.05;
          think_time = 0.0002;
        }
      in
      let engine = Engine.create sim cfg () in
      let gen =
        Workload.Point_of_sale.generator
          {
            (Workload.Point_of_sale.default ~nodes) with
            Workload.Point_of_sale.nc_ratio = 0.2;
            arrival_rate = 400.;
            read_ratio = 0.25;
          }
      in
      let outcome = Runner.drive sim (Engine.packed engine) gen (setup ~seed) in
      checki "all resolved" 0 outcome.Runner.unfinished;
      let atom = Runner.atomicity outcome in
      checkb
        (Format.asprintf "seed %d: %a" seed Checker.Atomicity.pp atom)
        true
        (Checker.Atomicity.clean atom);
      let exact = Checker.Version_reads.check outcome.Runner.history in
      checkb
        (Format.asprintf "seed %d version-reads %a" seed
           Checker.Version_reads.pp exact)
        true
        (Checker.Version_reads.clean exact);
      (* Commuting transactions and reads never abort (§8 claims). *)
      List.iter
        (fun ((spec : Spec.t), res) ->
          match spec.Spec.kind with
          | Spec.Commuting | Spec.Read_only ->
              if not (Result.committed res) then
                Alcotest.failf "seed %d: %s aborted but is %s" seed
                  spec.Spec.label
                  (Format.asprintf "%a" Spec.pp_kind spec.Spec.kind)
          | Spec.Non_commuting -> ())
        outcome.Runner.history)
    [ 11; 22 ]

let compensation_under_churn_replays () =
  (* Inject compensation into 10% of commuting updates: net effect must be
     exactly the committed subset. *)
  let seed = 55 and nodes = 3 in
  let sim = Sim.create ~seed () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.latency = Latency.Exponential 0.005;
      policy = Policy.Periodic 0.1;
      abort_probability = 0.1;
      think_time = 0.0002;
    }
  in
  let engine = Engine.create sim cfg () in
  let outcome =
    Runner.drive sim (Engine.packed engine) (hospital_gen ~nodes ~rate:400.)
      (setup ~seed)
  in
  let a = Engine.advance engine in
  ignore (Sim.run sim ~until:(Sim.now sim +. 20.) ());
  checkb "advanced" true (Ivar.is_full a);
  let compensated =
    List.length
      (List.filter
         (fun (_, (res : Result.t)) -> res.Result.outcome = Result.Aborted "compensated")
         outcome.Runner.history)
  in
  checkb "some compensation happened" true (compensated > 0);
  let replay =
    Checker.Replay.check outcome.Runner.history ~lookup:(fun key ->
        let rec scan node =
          if node < 0 then None
          else
            match
              Mvstore.read_visible (Engine.store engine ~node) ~key
                ~version:max_int
            with
            | Some (_, v) -> Some v
            | None -> scan (node - 1)
        in
        scan (nodes - 1))
  in
  checkb
    (Format.asprintf "replay %a" Checker.Replay.pp replay)
    true
    (Checker.Replay.clean replay)

(* ------------------------------------------------------------ soak *)

(* Kitchen sink: NC transactions + compensation + advancement churn +
   node outages, all at once, with every oracle armed. *)
let soak_with_outages () =
  let nodes = 5 in
  let sim = Sim.create ~seed:77 () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.latency = Latency.Exponential 0.006;
      think_time = 0.0003;
      policy = Policy.Periodic 0.15;
      nc_mode = true;
      deadlock_timeout = 0.08;
      abort_probability = 0.05;
      debug_checks = true;
    }
  in
  let engine = Engine.create sim cfg () in
  (* Freeze a different node in each of three windows. *)
  Engine.inject_pause engine ~node:1 ~at:0.4 ~duration:0.3;
  Engine.inject_pause engine ~node:3 ~at:1.0 ~duration:0.5;
  Engine.inject_pause engine ~node:0 ~at:1.8 ~duration:0.2;
  let gen =
    Workload.Point_of_sale.generator
      {
        (Workload.Point_of_sale.default ~nodes) with
        Workload.Point_of_sale.nc_ratio = 0.1;
        arrival_rate = 500.;
        read_ratio = 0.25;
      }
  in
  let outcome =
    Runner.drive sim (Engine.packed engine) gen
      { Runner.seed = 77; duration = 2.5; settle = 6.0; max_txns = 5000 }
  in
  checki "all resolved despite outages" 0 outcome.Runner.unfinished;
  let atom = Runner.atomicity outcome in
  checkb
    (Format.asprintf "atomicity %a" Checker.Atomicity.pp atom)
    true
    (Checker.Atomicity.clean atom);
  let exact = Checker.Version_reads.check outcome.Runner.history in
  checkb
    (Format.asprintf "version reads %a" Checker.Version_reads.pp exact)
    true
    (Checker.Version_reads.clean exact);
  checkb "version bound" true (Engine.max_versions_ever engine <= 3);
  checkb "advancements kept flowing" true
    (Engine.advancements_completed engine >= 5);
  (* Commuting txns and reads never abort, outage or not. *)
  List.iter
    (fun ((spec : Spec.t), res) ->
      match (spec.Spec.kind, res.Result.outcome) with
      | Spec.Read_only, o when o <> Result.Committed ->
          Alcotest.failf "read %s aborted" spec.Spec.label
      | Spec.Commuting, Result.Aborted r when r <> "compensated" ->
          Alcotest.failf "commuting %s aborted: %s" spec.Spec.label r
      | _ -> ())
    outcome.Runner.history

(* ------------------------------------------------------------- fuzzing *)

(* Random transaction forests through the full oracle set: arbitrary tree
   shapes (depth ≤ 3, revisits allowed), random keys, random advancement
   points. Every run must resolve all transactions, stay atomically
   visible, satisfy the exact version-read property, and replay. *)

type fuzz_tree = {
  fnode : int;
  fops : (bool * int) list;  (* (is_read, key slot) *)
  fkids : fuzz_tree list;
}

let fuzz_tree_gen ~nodes =
  let open QCheck.Gen in
  let op_gen = pair bool (int_range 0 5) in
  let rec tree depth =
    let* fnode = int_range 0 (nodes - 1) in
    let* fops = list_size (int_range 1 2) op_gen in
    let* fkids =
      if depth = 0 then return []
      else list_size (int_range 0 2) (tree (depth - 1))
    in
    return { fnode; fops; fkids }
  in
  tree 2

let scenario_gen ~nodes =
  QCheck.Gen.(list_size (int_range 1 25) (pair (fuzz_tree_gen ~nodes) bool))

let spec_of_fuzz ~id tree =
  let key slot node = Printf.sprintf "fz%d@n%d" slot node in
  let rec build t =
    let ops =
      List.map
        (fun (is_read, slot) ->
          if is_read then Txn.Op.Read (key slot t.fnode)
          else Txn.Op.Incr (key slot t.fnode, 1.))
        t.fops
    in
    Spec.subtxn ~children:(List.map build t.fkids) t.fnode ops
  in
  Spec.make ~id (build tree)

let run_fuzz_scenario scenario =
  let nodes = 3 in
  let sim = Sim.create ~seed:17 () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.latency = Latency.Exponential 0.004;
      think_time = 0.0002;
      debug_checks = true;
    }
  in
  let engine = Engine.create sim cfg () in
  let results = ref [] in
  Sim.spawn sim (fun () ->
      List.iteri
        (fun i (tree, advance_after) ->
          let spec = spec_of_fuzz ~id:(i + 1) tree in
          results := (spec, Engine.submit engine spec) :: !results;
          if advance_after then ignore (Engine.advance engine);
          Sim.sleep sim 0.01)
        scenario);
  ignore (Sim.run sim ~until:60.0 ());
  let final = Engine.advance engine in
  ignore (Sim.run sim ~until:(Sim.now sim +. 30.) ());
  let history =
    List.filter_map
      (fun (spec, iv) ->
        match Ivar.peek iv with Some res -> Some (spec, res) | None -> None)
      !results
  in
  let all_resolved = List.length history = List.length !results in
  let lookup key =
    let rec scan node =
      if node < 0 then None
      else
        match
          Mvstore.read_visible (Engine.store engine ~node) ~key ~version:max_int
        with
        | Some (_, v) -> Some v
        | None -> scan (node - 1)
    in
    scan (nodes - 1)
  in
  all_resolved
  && Ivar.is_full final
  && Checker.Atomicity.clean (Checker.Atomicity.check history)
  && Checker.Version_reads.clean (Checker.Version_reads.check history)
  && Checker.Replay.clean (Checker.Replay.check history ~lookup)
  && Engine.max_versions_ever engine <= 3
  && List.length (Engine.version_window engine) <= 3

let fuzz_random_forests =
  QCheck.Test.make ~name:"random transaction forests satisfy all oracles"
    ~count:30
    (QCheck.make (scenario_gen ~nodes:3))
    run_fuzz_scenario

let fuzz_suite = List.map QCheck_alcotest.to_alcotest [ fuzz_random_forests ]

let () =
  Alcotest.run "integration"
    [
      ( "3v",
        [
          Alcotest.test_case "atomic + replays across seeds" `Slow
            threev_atomic_and_replays;
          Alcotest.test_case "matches no-coord final state" `Slow
            threev_matches_nocoord_final_state;
          Alcotest.test_case "compensation under churn replays" `Slow
            compensation_under_churn_replays;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "no-coord not atomic" `Slow
            nocoord_not_atomic_under_stragglers;
          Alcotest.test_case "2pc atomic but slower reads" `Slow
            twopc_atomic_but_slower_reads;
        ] );
      ( "nc3v",
        [
          Alcotest.test_case "mixed workload serializable" `Slow
            nc_mixed_workload_serializable;
        ] );
      ("fuzz", fuzz_suite);
      ( "soak",
        [ Alcotest.test_case "outages + nc + compensation" `Slow soak_with_outages ] );
    ]
