(* Tests for lib/shard (key/node → shard map, cross-shard read-vector
   service) and the sharded engine surface: Engine.create validation
   rejections, the shard-aware accessors, qcheck determinism/balance
   properties for the map, and the no-torn-vector property — any two
   vectors handed out by the read-vector service are componentwise
   comparable under arbitrary publish/assign interleavings. *)

module Sim = Simul.Sim
module Latency = Netsim.Latency
module Engine = Threev.Engine
module Map = Shard.Map
module Rvector = Shard.Rvector

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------- map basics *)

let map_basics () =
  let m = Map.create ~nodes:8 ~shards:4 in
  checki "nodes" 8 (Map.nodes m);
  checki "shards" 4 (Map.shards m);
  checki "per shard" 2 (Map.nodes_per_shard m);
  checki "node 0" 0 (Map.of_node m 0);
  checki "node 5" 2 (Map.of_node m 5);
  checki "node 7" 3 (Map.of_node m 7);
  Alcotest.(check (list int)) "members 1" [ 2; 3 ] (Map.members m 1);
  checki "first of 3" 6 (Map.first_node m 3);
  Alcotest.check_raises "node range"
    (Invalid_argument "Shard.Map.of_node: node 8 out of range") (fun () ->
      ignore (Map.of_node m 8))

(* ------------------------------- engine creation validation *)

let invalid cfg_f msg name =
  Alcotest.check_raises name (Invalid_argument msg) (fun () ->
      let sim = Sim.create ~seed:1 () in
      let cfg = cfg_f (Engine.default_config ~nodes:8) in
      ignore (Engine.create sim cfg ()))

let create_rejections () =
  invalid
    (fun c -> { c with Engine.shards = 0 })
    "Engine.create: shards must be at least 1" "shards zero";
  invalid
    (fun c -> { c with Engine.shards = 9 })
    "Engine.create: shards must not exceed nodes" "shards over nodes";
  invalid
    (fun c -> { c with Engine.shards = 3 })
    "Engine.create: shards must divide nodes evenly (contiguous equal shard \
     blocks)"
    "non-dividing shards";
  invalid
    (fun c -> { c with Engine.shards = 2; replicas = 3 })
    "Engine.create: nodes-per-shard must be a multiple of replicas (a \
     replica group must not straddle a shard boundary)"
    "group straddles boundary";
  invalid
    (fun c -> { c with Engine.replicas = 0 })
    "Engine.create: replicas must be at least 1" "replicas zero";
  invalid
    (fun c -> { c with Engine.replicas = 9 })
    "Engine.create: replicas must be in 1..nodes" "replicas over nodes";
  invalid
    (fun c -> { c with Engine.shards = 2; nc_mode = true })
    "Engine.create: sharding requires nc_mode off (2PC admission waits on a \
     single global frontier)"
    "sharded nc_mode";
  invalid
    (fun c -> { c with Engine.hb_period = 0.05; hb_timeout = 0.05 })
    "Engine.create: hb_timeout must exceed hb_period" "hb timeout le period"

let engine_shard_surface () =
  let sim = Sim.create ~seed:2 () in
  let cfg = { (Engine.default_config ~nodes:4) with Engine.shards = 2 } in
  let eng = Engine.create sim cfg () in
  checki "shard count" 2 (Engine.shard_count eng);
  Alcotest.(check (list int))
    "node shards" [ 0; 0; 1; 1 ]
    (List.map (fun n -> Engine.shard_of_node eng ~node:n) [ 0; 1; 2; 3 ]);
  checki "vector width" 2 (Array.length (Engine.read_vector eng));
  let sim1 = Sim.create ~seed:2 () in
  let eng1 = Engine.create sim1 (Engine.default_config ~nodes:4) () in
  checki "unsharded width" 1 (Array.length (Engine.read_vector eng1));
  checkb "no vector for unknown txn" true
    (Engine.assigned_vector eng ~txn:999 = None)

(* ------------------------------------------- rvector basics *)

let rvector_basics () =
  let rv = Rvector.create ~shards:3 ~init_vr:5 in
  checkb "initial" true (Rvector.vector rv = [| 5; 5; 5 |]);
  Rvector.publish rv ~shard:1 ~vr:7;
  Rvector.publish rv ~shard:1 ~vr:6 (* monotone: ignored *);
  checkb "published" true (Rvector.vector rv = [| 5; 7; 5 |]);
  let v = Rvector.assign rv ~entries:[| 1; 0; 2 |] in
  checkb "assigned snapshot" true (v = [| 5; 7; 5 |]);
  checki "assigned count" 1 (Rvector.assigned rv);
  checki "pending s0" 1 (Rvector.pending rv ~shard:0 ~version:5);
  checki "pending s1" 0 (Rvector.pending rv ~shard:1 ~version:7);
  checki "pending s2" 2 (Rvector.pending rv ~shard:2 ~version:5);
  Rvector.arrived rv ~shard:2 ~version:5;
  checki "one drained" 1 (Rvector.pending rv ~shard:2 ~version:5);
  Rvector.arrived rv ~shard:2 ~version:5;
  Rvector.arrived rv ~shard:0 ~version:5;
  checki "all drained" 0 (Rvector.pending rv ~shard:2 ~version:5);
  Alcotest.check_raises "over-drain is a bug"
    (Invalid_argument
       "Shard.Rvector.arrived: no pending assignment for shard 0 version 5")
    (fun () -> Rvector.arrived rv ~shard:0 ~version:5)

(* -------------------------------------------- map properties *)

let map_deterministic =
  QCheck.Test.make ~name:"shard map: key assignment is deterministic"
    ~count:200
    QCheck.(pair string (int_range 1 5))
    (fun (key, log_s) ->
      let shards = 1 lsl log_s in
      let m1 = Map.create ~nodes:(shards * 4) ~shards in
      let m2 = Map.create ~nodes:(shards * 4) ~shards in
      let s = Map.of_key m1 key in
      s = Map.of_key m2 key
      && s >= 0
      && s < shards
      && Map.of_node m1 (Map.node_of_key m1 key) = s)

let map_balanced =
  QCheck.Test.make ~name:"shard map: FNV key placement is balanced" ~count:20
    QCheck.(int_range 2 8)
    (fun shards ->
      let m = Map.create ~nodes:(shards * 8) ~shards in
      let n_keys = 2000 in
      let counts = Array.make shards 0 in
      for i = 0 to n_keys - 1 do
        let s = Map.of_key m (Printf.sprintf "node%d/key%d" (i mod 7) i) in
        counts.(s) <- counts.(s) + 1
      done;
      (* Loose bound: every shard gets between a quarter and four times
         its fair share — catches systematic skew, not sampling noise. *)
      Array.for_all
        (fun c -> c * shards >= n_keys / 4 && c * shards <= n_keys * 4)
        counts)

(* --------------------------------------- no-torn-vector qcheck *)

(* Random interleaving of publishes and assigns: every pair of assigned
   vectors must be componentwise comparable (one dominates the other),
   because components are monotone and assign snapshots atomically. *)
let comparable a b =
  let le x y = Array.for_all2 (fun u v -> u <= v) x y in
  le a b || le b a

let vectors_never_torn =
  let gen =
    QCheck.Gen.(
      pair (int_range 2 6)
        (list_size (int_range 1 60)
           (pair (int_range 0 5) (int_range 0 20))))
  in
  QCheck.Test.make ~name:"rvector: assigned vectors are never torn" ~count:300
    (QCheck.make gen) (fun (shards, ops) ->
      let rv = Rvector.create ~shards ~init_vr:0 in
      let assigned = ref [] in
      List.iteri
        (fun i (shard, vr) ->
          if i mod 3 = 2 then
            (* No in-flight accounting needed for the torn check. *)
            assigned :=
              Rvector.assign rv ~entries:(Array.make shards 0) :: !assigned
          else Rvector.publish rv ~shard:(shard mod shards) ~vr)
        ops;
      let vs = Array.of_list !assigned in
      let ok = ref true in
      Array.iteri
        (fun i a ->
          Array.iteri (fun j b -> if i < j && not (comparable a b) then ok := false) vs)
        vs;
      !ok
      &&
      (* and every assigned vector is bounded by the published frontier *)
      let front = Rvector.vector rv in
      Array.for_all (fun a -> Array.for_all2 ( >= ) front a) vs)

(* Engine-level: every vector the sharded engine hands to a cross-shard
   read is pairwise comparable with every other, and never exceeds the
   final published frontier. *)
let engine_vectors_comparable () =
  let sim = Sim.create ~seed:7 () in
  let cfg =
    {
      (Engine.default_config ~nodes:8) with
      Engine.shards = 4;
      replicas = 2;
      latency = Latency.Exponential 0.003;
      policy = Threev.Policy.Periodic 0.15;
      think_time = 0.0005;
    }
  in
  let engine = Engine.create sim cfg () in
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes:8) with
        Workload.Synthetic.shards = 4;
        arrival_rate = 300.;
        read_ratio = 0.4;
        fanout = 3;
      }
  in
  let setup =
    {
      Harness.Runner.default_setup with
      Harness.Runner.seed = 7;
      duration = 0.6;
      settle = 4.0;
    }
  in
  let outcome = Harness.Runner.drive sim (Engine.packed engine) gen setup in
  let vectors =
    List.filter_map
      (fun (_, (res : Txn.Result.t)) ->
        Engine.assigned_vector engine ~txn:res.Txn.Result.txn_id)
      outcome.Harness.Runner.history
  in
  checkb "some cross-shard reads ran" true (List.length vectors > 0);
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then checkb "pairwise comparable" true (comparable a b))
        vectors)
    vectors;
  let front = Engine.read_vector engine in
  List.iter
    (fun a ->
      checkb "bounded by frontier" true (Array.for_all2 ( >= ) front a))
    vectors

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ map_deterministic; map_balanced; vectors_never_torn ]

let () =
  Alcotest.run "shard"
    [
      ( "map",
        [ Alcotest.test_case "basics" `Quick map_basics ] );
      ( "engine",
        [
          Alcotest.test_case "create rejections" `Quick create_rejections;
          Alcotest.test_case "shard surface" `Quick engine_shard_surface;
          Alcotest.test_case "vectors comparable (sim)" `Quick
            engine_vectors_comparable;
        ] );
      ( "rvector",
        [ Alcotest.test_case "basics" `Quick rvector_basics ] );
      ("properties", qsuite);
    ]
