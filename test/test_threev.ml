(* Tests for the 3V protocol engine: §4.1/§4.2 execution, §4.3 advancement
   and garbage collection, §3.2 compensation, §5 NC3V, and the §4.4
   properties — including the quiescence-soundness oracle under randomized
   churn. *)

module Sim = Simul.Sim
module Ivar = Simul.Ivar
module Latency = Netsim.Latency
module Mvstore = Store.Mvstore
module Spec = Txn.Spec
module Op = Txn.Op
module Value = Txn.Value
module Result = Txn.Result
module Engine = Threev.Engine
module Policy = Threev.Policy
module Counters = Threev.Counters
module Trace = Threev.Trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* ---------------------------------------------------------- counters *)

let counters_basic () =
  let c = Counters.create ~nodes:3 in
  checki "zero" 0 (Counters.r c ~version:1 ~dst:2);
  Counters.incr_r c ~version:1 ~dst:2;
  Counters.incr_r c ~version:1 ~dst:2;
  Counters.incr_c c ~version:1 ~src:0;
  checki "r" 2 (Counters.r c ~version:1 ~dst:2);
  checki "c" 1 (Counters.c c ~version:1 ~src:0);
  checkb "snapshot r" true (Counters.snapshot_r c ~version:1 = [| 0; 0; 2 |]);
  checkb "snapshot c" true (Counters.snapshot_c c ~version:1 = [| 1; 0; 0 |]);
  checkb "snapshot of unknown version is zeros" true
    (Counters.snapshot_r c ~version:9 = [| 0; 0; 0 |])

let counters_gc () =
  let c = Counters.create ~nodes:2 in
  Counters.incr_r c ~version:1 ~dst:0;
  Counters.incr_r c ~version:2 ~dst:0;
  Counters.incr_r c ~version:3 ~dst:0;
  Alcotest.(check (list int)) "versions" [ 1; 2; 3 ] (Counters.versions c);
  Counters.gc_below c 3;
  Alcotest.(check (list int)) "after gc" [ 3 ] (Counters.versions c);
  checki "gc'd reads as zero" 0 (Counters.r c ~version:1 ~dst:0)

(* ------------------------------------------------------------ codec *)

let codec_basics () =
  let module C = Threev.Version_codec in
  checki "codes" 3 C.codes;
  checki "encode 0" 0 (C.encode 0);
  checki "encode 7" 1 (C.encode 7);
  checki "decode same" 5 (C.decode ~near:5 (C.encode 5));
  checki "decode lag" 4 (C.decode ~near:5 (C.encode 4));
  checki "decode lead" 6 (C.decode ~near:5 (C.encode 6));
  Alcotest.check_raises "negative version"
    (Invalid_argument "Version_codec.encode: negative version") (fun () ->
      ignore (C.encode (-1)));
  Alcotest.check_raises "bad code"
    (Invalid_argument "Version_codec.decode: code out of range") (fun () ->
      ignore (C.decode ~near:3 7))

let codec_roundtrip_property =
  QCheck.Test.make ~name:"codec roundtrips exactly within distance 1"
    ~count:500
    QCheck.(pair (int_range 0 1000) (int_range (-3) 3))
    (fun (near, delta) ->
      let module C = Threev.Version_codec in
      let v = near + delta in
      if v < 0 then true
      else if abs delta <= 1 then C.decode ~near (C.encode v) = v
      else
        (* Outside the window the decode must NOT silently return v. *)
        (try C.decode ~near (C.encode v) <> v with Invalid_argument _ -> true))

(* ------------------------------------------------------------- trace *)

let trace_basics () =
  let t = Trace.create () in
  Trace.emit t ~time:1. ~site:"p" "alpha happens";
  Trace.emit t ~time:2. ~site:"q" "beta happens";
  checki "length" 2 (Trace.length t);
  checki "find" 1 (List.length (Trace.find t "beta"));
  checkb "render mentions site header" true
    (String.length (Trace.render t ~sites:[ "p"; "q" ]) > 0)

let trace_ring_bounds () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.emit t ~time:(float_of_int i) ~site:"p" (Printf.sprintf "ev%d" i)
  done;
  checki "bounded" 4 (Trace.length t);
  checki "total counts everything" 10 (Trace.total t);
  checki "dropped = total - length" 6 (Trace.dropped t);
  (* Oldest-first, and only the newest [capacity] events retained. *)
  checkb "retains the tail" true
    (List.map (fun (e : Trace.event) -> e.Trace.what) (Trace.events t)
    = [ "ev7"; "ev8"; "ev9"; "ev10" ]);
  checkb "evicted events not found" true (Trace.find t "ev3" = []);
  checki "retained events found" 1 (List.length (Trace.find t "ev8"))

(* The documented invariant: [length] always agrees with the materialized
   list, below and above capacity, and after clear. *)
let trace_length_invariant () =
  let t = Trace.create ~capacity:8 () in
  for i = 1 to 20 do
    Trace.emit t ~time:(float_of_int i) ~site:"p" "x";
    checki "length = |events|"
      (List.length (Trace.events t))
      (Trace.length t);
    checkb "length <= capacity" true (Trace.length t <= Trace.capacity t)
  done;
  Trace.clear t;
  checki "cleared" 0 (Trace.length t);
  checki "cleared total" 0 (Trace.total t);
  checki "still capacity 8" 8 (Trace.capacity t)

let trace_sink_sees_evicted () =
  let seen = ref [] in
  let t =
    Trace.create ~capacity:2
      ~sink:(fun (e : Trace.event) -> seen := e.Trace.what :: !seen)
      ()
  in
  for i = 1 to 5 do
    Trace.emit t ~time:(float_of_int i) ~site:"p" (Printf.sprintf "ev%d" i)
  done;
  checki "ring keeps capacity" 2 (Trace.length t);
  checkb "sink saw the full firehose" true
    (List.rev !seen = [ "ev1"; "ev2"; "ev3"; "ev4"; "ev5" ])

let trace_bad_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Trace.create ~capacity:0 ()))

(* ----------------------------------------------------- basic engine *)

let make_engine ?(nodes = 3) ?(cfg_f = fun c -> c) ?seed () =
  let sim = Sim.create ?seed () in
  let cfg = cfg_f (Engine.default_config ~nodes) in
  (sim, Engine.create sim cfg ())

let update_then_read ~advance () =
  let sim, eng = make_engine () in
  let upd =
    Spec.make ~id:1
      (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Incr ("b", 2.) ] ] 0
         [ Op.Incr ("a", 1.) ])
  in
  let r1 = Engine.submit eng upd in
  ignore (Sim.run sim ~until:1.0 ());
  checkb "update committed" true
    (match Ivar.peek r1 with
    | Some res -> Result.committed res
    | None -> false);
  if advance then begin
    let adv = Engine.advance eng in
    ignore (Sim.run sim ~until:2.0 ());
    checkb "advancement done" true (Ivar.is_full adv)
  end;
  let rd =
    Spec.make ~id:2
      (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Read "b" ] ] 0 [ Op.Read "a" ])
  in
  let r2 = Engine.submit eng rd in
  ignore (Sim.run sim ~until:3.0 ());
  match Ivar.peek r2 with
  | Some res ->
      let amount key = (List.assoc key res.Result.reads).Value.amount in
      if advance then begin
        checkf "a visible" 1. (amount "a");
        checkf "b visible" 2. (amount "b")
      end
      else begin
        checkf "a hidden" 0. (amount "a");
        checkf "b hidden" 0. (amount "b")
      end
  | None -> Alcotest.fail "read did not finish"

let reads_use_old_version () = update_then_read ~advance:false ()
let advancement_publishes () = update_then_read ~advance:true ()

let update_does_not_block_on_children () =
  (* The submitter-visible (blocking) latency of an update is the root's
     local work only — children run asynchronously behind slow links. *)
  let sim, eng =
    make_engine
      ~cfg_f:(fun c -> { c with Engine.latency = Latency.Constant 10.0 })
      ()
  in
  let upd =
    Spec.make ~id:1
      (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Incr ("b", 1.) ] ] 0
         [ Op.Incr ("a", 1.) ])
  in
  let r = Engine.submit eng upd in
  ignore (Sim.run sim ~until:100.0 ());
  match Ivar.peek r with
  | Some res ->
      checkb "root commit fast despite 10s links" true
        (Result.blocking_latency res < 0.1);
      checkb "settlement waits for the tree" true (Result.latency res > 10.)
  | None -> Alcotest.fail "did not finish"

let versions_advance_globally () =
  let sim, eng = make_engine () in
  checki "vu init" 1 (Engine.update_version eng ~node:0);
  checki "vr init" 0 (Engine.read_version eng ~node:0);
  let adv = Engine.advance eng in
  ignore (Sim.run sim ~until:5.0 ());
  checkb "done" true (Ivar.is_full adv);
  for n = 0 to 2 do
    checki "vu" 2 (Engine.update_version eng ~node:n);
    checki "vr" 1 (Engine.read_version eng ~node:n)
  done;
  checki "advancements" 1 (Engine.advancements_completed eng)

let multiple_advancements () =
  let sim, eng = make_engine () in
  for i = 1 to 3 do
    let upd =
      Spec.make ~id:i
        (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Incr ("b", 1.) ] ] 0
           [ Op.Incr ("a", 1.) ])
    in
    ignore (Engine.submit eng upd);
    let adv = Engine.advance eng in
    ignore (Sim.run sim ~until:(float_of_int i *. 10.) ());
    checkb "advancement completes" true (Ivar.is_full adv)
  done;
  checki "three rounds" 3 (Engine.advancements_completed eng);
  (* After three advancements with all txns settled, each item holds a
     single version again (GC collapsed the rest). *)
  let store = Engine.store eng ~node:0 in
  checkb "a collapsed" true (List.length (Mvstore.versions_of store ~key:"a") <= 2)

let implicit_notification () =
  (* A child carrying a higher version reaches a node before the
     coordinator's notice: the node must advance its update version
     immediately (§2.3 / §4.1 step 2). *)
  let sim = Sim.create () in
  let slow_to_1 ~src ~dst =
    (* The coordinator (node index 2 is the coordinator in a 2-node system)
       is slow towards node 1; everything else fast. *)
    if src = 2 && dst = 1 then Some (Latency.Constant 5.0)
    else Some (Latency.Constant 0.01)
  in
  let cfg =
    { (Engine.default_config ~nodes:2) with Engine.think_time = 0.001 }
  in
  let eng = Engine.create sim cfg ~link_latency:slow_to_1 () in
  Sim.spawn sim (fun () ->
      ignore (Engine.advance eng);
      (* Give node 0 its notice, then submit an update there that spawns a
         child onto the still-unnotified node 1. *)
      Sim.sleep sim 0.1;
      checki "node 0 notified" 2 (Engine.update_version eng ~node:0);
      checki "node 1 not yet" 1 (Engine.update_version eng ~node:1);
      let upd =
        Spec.make ~id:1
          (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Incr ("y", 1.) ] ] 0
             [ Op.Incr ("x", 1.) ])
      in
      ignore (Engine.submit eng upd);
      Sim.sleep sim 0.2;
      (* The child arrived with version 2 — implicit notification. *)
      checki "node 1 advanced implicitly" 2 (Engine.update_version eng ~node:1));
  ignore (Sim.run sim ~until:20.0 ())

let dual_write_on_straggler () =
  (* Reproduce §2.3's iq-on-D situation end to end: a version-1 subtxn
     arrives at a node already on version 2 where the item has a version-2
     copy; the write must land in both. *)
  let sim = Sim.create () in
  let link ~src ~dst =
    if src = 0 && dst = 1 then Some (Latency.Constant 2.0)
    else Some (Latency.Constant 0.01)
  in
  let cfg = { (Engine.default_config ~nodes:2) with Engine.think_time = 0.001 } in
  let eng = Engine.create sim cfg ~link_latency:link () in
  (* Preload d at version 0 so copies have a base. *)
  ignore
    (Mvstore.write_exact (Engine.store eng ~node:1) ~key:"d" ~version:0
       ~init:Value.empty ~f:Fun.id);
  Sim.spawn sim (fun () ->
      (* Old-version update i spawns a slow child to node 1. *)
      let i_spec =
        Spec.make ~id:1
          (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Incr ("d", 1.) ] ] 0
             [ Op.Incr ("c", 1.) ])
      in
      ignore (Engine.submit eng i_spec);
      Sim.sleep sim 0.1;
      ignore (Engine.advance eng);
      Sim.sleep sim 0.3;
      (* Version-2 update j writes d at node 1, materializing d(2). *)
      let j_spec = Spec.make ~id:2 (Spec.subtxn 1 [ Op.Incr ("d", 10.) ]) in
      ignore (Engine.submit eng j_spec));
  ignore (Sim.run sim ~until:30.0 ());
  let store = Engine.store eng ~node:1 in
  (* Advancement completed long ago; i's straggler landed in both copies.
     After GC only versions >= 1 remain. *)
  let v1 = Mvstore.read_exact store ~key:"d" ~version:1 in
  let v2 = Mvstore.read_exact store ~key:"d" ~version:2 in
  (match (v1, v2) with
  | Some a, Some b ->
      checkf "v1 has i only" 1. a.Value.amount;
      checkf "v2 has i and j" 11. b.Value.amount
  | _ -> Alcotest.fail "expected two versions of d");
  checki "engine saw a dual write" 1 (Mvstore.dual_writes store)

let compensation_nets_to_zero () =
  let sim, eng =
    make_engine ~cfg_f:(fun c -> { c with Engine.abort_probability = 1.0 }) ()
  in
  (* Three-level tree revisiting node 0: the compensation wave must undo
     every level, including the grandchild's write back at the root node. *)
  let upd =
    Spec.make ~id:1
      (Spec.subtxn
         ~children:
           [
             Spec.subtxn
               ~children:[ Spec.subtxn 0 [ Op.Incr ("c", 7.) ] ]
               1
               [ Op.Incr ("b", 5.) ];
           ]
         0
         [ Op.Incr ("a", 3.) ])
  in
  let r = Engine.submit eng upd in
  ignore (Sim.run sim ~until:1.0 ());
  (match Ivar.peek r with
  | Some res -> checkb "reported compensated" true (res.Result.outcome = Result.Aborted "compensated")
  | None -> Alcotest.fail "not finished");
  (* Termination detection must still work with compensating subtxns in
     the tree (§4.3's point about compensation and counters). *)
  let adv = Engine.advance eng in
  ignore (Sim.run sim ~until:5.0 ());
  checkb "advancement completes despite compensation" true (Ivar.is_full adv);
  let amount node key =
    match Mvstore.read_visible (Engine.store eng ~node) ~key ~version:10 with
    | Some (_, v) -> v.Value.amount
    | None -> 0.
  in
  checkf "a netted" 0. (amount 0 "a");
  checkf "b netted" 0. (amount 1 "b");
  checkf "c netted" 0. (amount 0 "c")

let empty_root_front_end () =
  (* Figure 1: the front-end's root subtransaction has no operations. *)
  let sim, eng = make_engine () in
  let spec =
    Spec.make ~id:1
      (Spec.subtxn
         ~children:
           [ Spec.subtxn 1 [ Op.Incr ("x", 1.) ]; Spec.subtxn 2 [ Op.Incr ("y", 1.) ] ]
         0 [])
  in
  let r = Engine.submit eng spec in
  ignore (Sim.run sim ~until:2.0 ());
  checkb "committed through empty root" true
    (match Ivar.peek r with Some res -> Result.committed res | None -> false)

let revisiting_node () =
  (* A transaction tree that visits node 0 twice (root plus grandchild),
     like i -> iq -> iqp in Table 1. *)
  let sim, eng = make_engine () in
  let spec =
    Spec.make ~id:1
      (Spec.subtxn
         ~children:
           [
             Spec.subtxn
               ~children:[ Spec.subtxn 0 [ Op.Incr ("back", 1.) ] ]
               1
               [ Op.Incr ("mid", 1.) ];
           ]
         0
         [ Op.Incr ("front", 1.) ])
  in
  let r = Engine.submit eng spec in
  let adv = Engine.advance eng in
  ignore (Sim.run sim ~until:5.0 ());
  checkb "committed" true
    (match Ivar.peek r with Some res -> Result.committed res | None -> false);
  checkb "advancement completes" true (Ivar.is_full adv)

(* --------------------------------------------------------- policies *)

let periodic_policy_runs () =
  let sim, eng =
    make_engine ~cfg_f:(fun c -> { c with Engine.policy = Policy.Periodic 0.1 }) ()
  in
  ignore (Sim.run sim ~until:1.05 ());
  checkb "several advancements" true (Engine.advancements_completed eng >= 5)

let count_policy_runs () =
  let sim, eng =
    make_engine
      ~cfg_f:(fun c -> { c with Engine.policy = Policy.Every_n_updates 5 })
      ()
  in
  (* Two batches of 5, far enough apart that the triggers don't coalesce. *)
  for i = 1 to 5 do
    ignore (Engine.submit eng (Spec.make ~id:i (Spec.subtxn 0 [ Op.Incr ("k", 1.) ])))
  done;
  ignore (Sim.run sim ~until:5.0 ());
  checki "first batch triggered" 1 (Engine.advancements_completed eng);
  for i = 6 to 10 do
    ignore (Engine.submit eng (Spec.make ~id:i (Spec.subtxn 0 [ Op.Incr ("k", 1.) ])))
  done;
  ignore (Sim.run sim ~until:10.0 ());
  checki "second batch triggered" 2 (Engine.advancements_completed eng);
  (* Four more updates: below the threshold, no further advancement. *)
  for i = 11 to 14 do
    ignore (Engine.submit eng (Spec.make ~id:i (Spec.subtxn 0 [ Op.Incr ("k", 1.) ])))
  done;
  ignore (Sim.run sim ~until:15.0 ());
  checki "below threshold" 2 (Engine.advancements_completed eng)

let divergence_policy_runs () =
  let sim, eng =
    make_engine
      ~cfg_f:(fun c -> { c with Engine.policy = Policy.Divergence 100. })
      ()
  in
  (* 40 units of accumulated delta: below the threshold, no advancement. *)
  for i = 1 to 4 do
    ignore
      (Engine.submit eng (Spec.make ~id:i (Spec.subtxn 0 [ Op.Incr ("k", 10.) ])))
  done;
  ignore (Sim.run sim ~until:5.0 ());
  checki "below threshold" 0 (Engine.advancements_completed eng);
  (* One big recording pushes past it. *)
  ignore
    (Engine.submit eng (Spec.make ~id:5 (Spec.subtxn 0 [ Op.Incr ("k", 70.) ])));
  ignore (Sim.run sim ~until:10.0 ());
  checki "threshold crossed" 1 (Engine.advancements_completed eng);
  (* Reads and appends accumulate no divergence. *)
  for i = 6 to 20 do
    ignore
      (Engine.submit eng
         (Spec.make ~id:i (Spec.subtxn 0 [ Op.Read "k"; Op.Append ("k", "e") ])))
  done;
  ignore (Sim.run sim ~until:15.0 ());
  checki "no divergence from reads/appends" 1
    (Engine.advancements_completed eng)

let reads_do_not_trigger_count_policy () =
  let sim, eng =
    make_engine
      ~cfg_f:(fun c -> { c with Engine.policy = Policy.Every_n_updates 2 })
      ()
  in
  for i = 1 to 10 do
    ignore (Engine.submit eng (Spec.make ~id:i (Spec.subtxn 0 [ Op.Read "k" ])))
  done;
  ignore (Sim.run sim ~until:5.0 ());
  checki "reads don't count" 0 (Engine.advancements_completed eng)

(* ------------------------------------------------------------- NC3V *)

let nc_engine ?seed () =
  make_engine ?seed
    ~cfg_f:(fun c ->
      { c with Engine.nc_mode = true; deadlock_timeout = 0.2 })
    ()

let nc_commit_applies_writes () =
  let sim, eng = nc_engine () in
  let spec =
    Spec.make ~id:1
      (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Overwrite ("q1", 7.) ] ] 0
         [ Op.Overwrite ("p1", 5.) ])
  in
  checkb "classified NC" true (spec.Spec.kind = Spec.Non_commuting);
  let r = Engine.submit eng spec in
  ignore (Sim.run sim ~until:2.0 ());
  checkb "committed" true
    (match Ivar.peek r with Some res -> Result.committed res | None -> false);
  let amount node key =
    match Mvstore.read_visible (Engine.store eng ~node) ~key ~version:10 with
    | Some (_, v) -> v.Value.amount
    | None -> nan
  in
  checkf "p1 written" 5. (amount 0 "p1");
  checkf "q1 written" 7. (amount 1 "q1")

let nc_abort_discards_writes () =
  (* Two NC transactions colliding head-on: the deadlock victim's buffered
     writes must never surface. *)
  let sim, eng = nc_engine () in
  let mk id a b =
    Spec.make ~id
      (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Overwrite (b, float_of_int id) ] ]
         0
         [ Op.Overwrite (a, float_of_int id) ])
  in
  let r1 = Engine.submit eng (mk 1 "k1" "k2") in
  let r2 = Engine.submit eng (mk 2 "k2" "k1") in
  ignore (Sim.run sim ~until:5.0 ());
  let outcomes =
    List.map
      (fun r -> match Ivar.peek r with Some res -> Result.committed res | None -> false)
      [ r1; r2 ]
  in
  checkb "both resolved, not both aborted" true
    (List.length (List.filter Fun.id outcomes) >= 1);
  (* Whatever committed owns both keys with its own id as the value. *)
  let amount node key =
    match Mvstore.read_visible (Engine.store eng ~node) ~key ~version:10 with
    | Some (_, v) -> Some v.Value.amount
    | None -> None
  in
  (match (amount 0 "k1", amount 1 "k2") with
  | Some a, Some b ->
      checkb "consistent winner" true (a = b)
  | None, None -> checkb "both aborted is acceptable" true true
  | _ -> Alcotest.fail "half-applied NC transaction");
  (* Advancement still terminates with NC traffic accounted. *)
  let adv = Engine.advance eng in
  ignore (Sim.run sim ~until:10.0 ());
  checkb "advancement ok" true (Ivar.is_full adv)

let nc_version_overtake_abort () =
  (* §5 step 4: an NC transaction that finds its key already written in a
     higher version must abort. *)
  let sim, eng = nc_engine () in
  Sim.spawn sim (fun () ->
      (* Commit a commuting write of key z in version 1, then advance so a
         version-2 copy exists... *)
      ignore (Engine.submit eng (Spec.make ~id:1 (Spec.subtxn 0 [ Op.Incr ("z", 1.) ])));
      Sim.sleep sim 0.1;
      (* Write z in version 2 (new vu after phase 1) while an NC txn
         assigned version 1... we instead engineer directly: advance fully,
         then write z at version 3 via a commuting update after yet another
         phase-1, and submit an NC txn that was assigned the older vu. *)
      ignore (Engine.advance eng));
  ignore (Sim.run sim ~until:5.0 ());
  (* Now vu = 2 everywhere. Manually materialize a version-3 copy of z to
     simulate an in-flight higher-version write, then run an NC txn at
     vu = 2: it must abort with version-overtaken. *)
  ignore
    (Mvstore.write_exact (Engine.store eng ~node:0) ~key:"z" ~version:3
       ~init:Value.empty ~f:(Value.incr ~txn:99 ~delta:1.));
  let r = Engine.submit eng (Spec.make ~id:2 (Spec.subtxn 0 [ Op.Overwrite ("z", 5.) ])) in
  ignore (Sim.run sim ~until:10.0 ());
  match Ivar.peek r with
  | Some res ->
      checkb "aborted by overtake rule" true
        (res.Result.outcome = Result.Aborted "version-overtaken")
  | None -> Alcotest.fail "nc txn did not resolve"

let nc_waits_for_advancement () =
  (* §5 step 2: an NC root arriving mid-advancement (vu = vr + 2) waits
     until the read version catches up. *)
  let sim = Sim.create () in
  let slow_coord ~src ~dst =
    ignore dst;
    (* Coordinator index is 2 for a 2-node engine; make everything it sends
       slow so the advancement window is wide. *)
    if src = 2 then Some (Latency.Constant 1.0) else Some (Latency.Constant 0.01)
  in
  let cfg =
    {
      (Engine.default_config ~nodes:2) with
      Engine.nc_mode = true;
      think_time = 0.001;
    }
  in
  let eng = Engine.create sim cfg ~link_latency:slow_coord () in
  let r = ref None in
  Sim.spawn sim (fun () ->
      ignore (Engine.advance eng);
      (* Wait until node 0 has switched vu (phase 1 notice arrives at 1.0)
         but vr has not advanced yet. *)
      Sim.sleep sim 1.5;
      checki "mid-advancement vu" 2 (Engine.update_version eng ~node:0);
      checki "mid-advancement vr" 0 (Engine.read_version eng ~node:0);
      let spec = Spec.make ~id:1 (Spec.subtxn 0 [ Op.Overwrite ("w", 1.) ]) in
      r := Some (Engine.submit eng spec));
  ignore (Sim.run sim ~until:30.0 ());
  match !r with
  | Some ivar -> (
      match Ivar.peek ivar with
      | Some res ->
          checkb "committed after waiting" true (Result.committed res);
          (* It executed in version 2 and can only have proceeded once
             vr reached 1. *)
          checki "version" 2 res.Result.version
      | None -> Alcotest.fail "nc root never proceeded")
  | None -> Alcotest.fail "nc root never submitted"

(* ------------------------------------- §4.4 properties under churn *)

let run_churn ~seed ~nodes ~abort_p ~nc =
  let sim = Sim.create ~seed () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.latency = Latency.Exponential 0.008;
      policy = Policy.Periodic 0.15;
      nc_mode = nc;
      abort_probability = abort_p;
      deadlock_timeout = 0.05;
      debug_checks = true (* the quiescence oracle is armed *);
    }
  in
  let eng = Engine.create sim cfg () in
  let rng = Random.State.make [| seed; 17 |] in
  let results = ref [] in
  Sim.spawn sim (fun () ->
      for i = 1 to 400 do
        let n1 = Random.State.int rng nodes and n2 = Random.State.int rng nodes in
        let key n = Printf.sprintf "k%d@%d" (Random.State.int rng 10) n in
        let spec =
          let u = Random.State.float rng 1. in
          if u < 0.25 then
            Spec.make ~id:i
              (Spec.subtxn ~children:[ Spec.subtxn n2 [ Op.Read (key n2) ] ] n1
                 [ Op.Read (key n1) ])
          else if nc && u < 0.35 then
            Spec.make ~id:i
              (Spec.subtxn ~children:[ Spec.subtxn n2 [ Op.Overwrite (key n2, 1.) ] ]
                 n1
                 [ Op.Overwrite (key n1, 1.) ])
          else
            Spec.make ~id:i
              (Spec.subtxn ~children:[ Spec.subtxn n2 [ Op.Incr (key n2, 1.) ] ] n1
                 [ Op.Incr (key n1, 1.) ])
        in
        results := (spec, Engine.submit eng spec) :: !results;
        Sim.sleep sim 0.004
      done);
  ignore (Sim.run sim ~until:30.0 ());
  (eng, !results)

let churn_all_txns_resolve () =
  let _eng, results = run_churn ~seed:1 ~nodes:4 ~abort_p:0.05 ~nc:false in
  checkb "all 400 resolved" true
    (List.for_all (fun (_, iv) -> Ivar.is_full iv) results)

let churn_version_bound () =
  List.iter
    (fun seed ->
      let eng, _ = run_churn ~seed ~nodes:4 ~abort_p:0. ~nc:false in
      checkb "at most 3 versions" true (Engine.max_versions_ever eng <= 3);
      (* Paper §4: three distinct version numbers suffice (mod-3 reuse). *)
      checkb "version window ≤ 3" true
        (List.length (Engine.version_window eng) <= 3);
      checkb "many advancements happened" true
        (Engine.advancements_completed eng > 3))
    [ 2; 3; 4 ]

let churn_quiescence_oracle () =
  (* debug_checks = true: if the coordinator ever declared quiescence while
     subtransactions were live, the run raises. Completing without raising
     is the assertion. *)
  List.iter
    (fun seed ->
      let eng, results = run_churn ~seed ~nodes:5 ~abort_p:0.1 ~nc:true in
      ignore eng;
      checkb "resolved under nc+compensation churn" true
        (List.for_all (fun (_, iv) -> Ivar.is_full iv) results))
    [ 11; 12 ]

let churn_atomic_visibility () =
  List.iter
    (fun seed ->
      let _eng, results = run_churn ~seed ~nodes:4 ~abort_p:0.05 ~nc:true in
      let history =
        List.filter_map
          (fun (spec, iv) ->
            match Ivar.peek iv with Some res -> Some (spec, res) | None -> None)
          results
      in
      let report = Checker.Atomicity.check history in
      checkb
        (Printf.sprintf "seed %d clean: %s" seed
           (Format.asprintf "%a" Checker.Atomicity.pp report))
        true
        (Checker.Atomicity.clean report))
    [ 21; 22; 23 ]

(* ------------------------------------------------- ablation switches *)

let ablation_no_gc_acks_breaks_bound () =
  (* The same churn that keeps the bound at 3 with acks (churn_version_bound)
     must break it without them — the switch really is load-bearing. *)
  let sim = Sim.create ~seed:3 () in
  let cfg =
    {
      (Engine.default_config ~nodes:4) with
      Engine.latency = Latency.Exponential 0.01;
      policy = Policy.Periodic 0.02;
      poll_interval = 0.005;
      await_gc_acks = false;
      debug_checks = false (* the invariant checks would rightly fire *);
    }
  in
  let eng = Engine.create sim cfg () in
  let rng = Random.State.make [| 31 |] in
  Sim.spawn sim (fun () ->
      for i = 1 to 600 do
        let n1 = Random.State.int rng 4 and n2 = Random.State.int rng 4 in
        let key n = Printf.sprintf "k%d@%d" (Random.State.int rng 8) n in
        ignore
          (Engine.submit eng
             (Spec.make ~id:i
                (Spec.subtxn ~children:[ Spec.subtxn n2 [ Op.Incr (key n2, 1.) ] ]
                   n1
                   [ Op.Incr (key n1, 1.) ])));
        Sim.sleep sim 0.002
      done);
  ignore (Sim.run sim ~until:10.0 ());
  checkb "bound exceeded without acks" true (Engine.max_versions_ever eng > 3)

let ablation_single_poll_still_detects_activity () =
  (* Even in single-poll mode the coordinator must not declare while a
     straggler is visibly outstanding: quiescence requires R = C, and a
     slow child leaves R > C until it lands. *)
  let sim = Sim.create () in
  let link ~src ~dst =
    if src = 0 && dst = 1 then Some (Latency.Constant 3.0)
    else Some (Latency.Constant 0.01)
  in
  let cfg =
    {
      (Engine.default_config ~nodes:2) with
      Engine.think_time = 0.001;
      two_wave_quiescence = false;
    }
  in
  let eng = Engine.create sim cfg ~link_latency:link () in
  let done_at = ref 0. in
  Sim.spawn sim (fun () ->
      ignore
        (Engine.submit eng
           (Spec.make ~id:1
              (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Incr ("y", 1.) ] ] 0
                 [ Op.Incr ("x", 1.) ])));
      Sim.sleep sim 0.05;
      let adv = Engine.advance eng in
      Simul.Ivar.read sim adv;
      done_at := Sim.now sim);
  ignore (Sim.run sim ~until:30.0 ());
  (* The child only lands at t >= 3; phase 2 cannot have finished before. *)
  checkb "advancement waited for the straggler" true (!done_at > 3.0)

let pause_isolates_outage () =
  let sim, eng = make_engine ~nodes:3 () in
  (* Freeze node 2 from t=0 for 2 seconds; also start an advancement that
     will stall on its acks. *)
  Engine.inject_pause eng ~node:2 ~at:0.0 ~duration:2.0;
  let adv = Engine.advance eng in
  (* A local transaction at node 0 and a cross-node one between 0 and 1
     must be completely unaffected. *)
  let fast =
    Engine.submit eng
      (Spec.make ~id:1
         (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Incr ("w", 1.) ] ] 0
            [ Op.Incr ("v", 1.) ]))
  in
  (* One transaction that does touch the frozen node. *)
  let slow =
    Engine.submit eng
      (Spec.make ~id:2
         (Spec.subtxn ~children:[ Spec.subtxn 2 [ Op.Incr ("z", 1.) ] ] 0
            [ Op.Incr ("y", 1.) ]))
  in
  ignore (Sim.run sim ~until:1.0 ());
  (match Ivar.peek fast with
  | Some res ->
      checkb "bystander settled quickly despite frozen peer" true
        (Result.latency res < 0.1)
  | None -> Alcotest.fail "bystander unresolved");
  checkb "outage-touching txn still pending" true (Ivar.peek slow = None);
  checkb "advancement stalled behind frozen node" false (Ivar.is_full adv);
  (* After the pause everything drains, including the advancement. *)
  ignore (Sim.run sim ~until:10.0 ());
  checkb "slow txn settled after resume" true (Ivar.is_full slow);
  checkb "advancement completed after resume" true (Ivar.is_full adv)

let submit_validates_nodes () =
  let _sim, eng = make_engine ~nodes:2 () in
  let bad =
    Spec.make ~id:1 ~label:"bad"
      (Spec.subtxn ~children:[ Spec.subtxn 7 [ Op.Incr ("x", 1.) ] ] 0
         [ Op.Incr ("w", 1.) ])
  in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Engine.submit: bad targets node 7 outside 0..1")
    (fun () -> ignore (Engine.submit eng bad))

let reads_take_no_locks_even_in_nc_mode () =
  (* §8: reads "do not need to obtain any locks". An NC transaction holding
     a non-commute lock across a slow 2PC must not delay a read of the same
     key — the read uses the frozen older version. *)
  let sim = Sim.create () in
  let link ~src ~dst =
    (* Make node 1 slow to respond, stretching the NC transaction's 2PC. *)
    if src = 0 && dst = 1 then Some (Latency.Constant 1.0)
    else Some (Latency.Constant 0.01)
  in
  let cfg =
    {
      (Engine.default_config ~nodes:2) with
      Engine.nc_mode = true;
      think_time = 0.001;
      deadlock_timeout = 10.0;
    }
  in
  let eng = Engine.create sim cfg ~link_latency:link () in
  (* Seed the key so the read has something to see. *)
  ignore
    (Mvstore.write_exact (Engine.store eng ~node:0) ~key:"k" ~version:0
       ~init:Value.empty ~f:Fun.id);
  let nc =
    Engine.submit eng
      (Spec.make ~id:1
         (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Overwrite ("m", 1.) ] ] 0
            [ Op.Overwrite ("k", 9.) ]))
  in
  let read = ref None in
  Sim.schedule sim ~delay:0.1 (fun () ->
      read := Some (Engine.submit eng (Spec.make ~id:2 (Spec.subtxn 0 [ Op.Read "k" ]))));
  ignore (Sim.run sim ~until:0.5 ());
  (* The NC transaction is still mid-2PC (its child takes 1s)... *)
  checkb "nc still in flight" true (Ivar.peek nc = None);
  (* ...but the read finished immediately, seeing the version-0 value. *)
  (match !read with
  | Some iv -> (
      match Ivar.peek iv with
      | Some res ->
          checkb "read committed while NC lock held" true (Result.committed res);
          checkb "read latency tiny" true (Result.latency res < 0.05);
          checkf "read saw the old value" 0.
            (List.assoc "k" res.Result.reads).Value.amount
      | None -> Alcotest.fail "read delayed by an NC lock")
  | None -> Alcotest.fail "read not submitted");
  ignore (Sim.run sim ~until:10.0 ());
  checkb "nc eventually committed" true
    (match Ivar.peek nc with Some res -> Result.committed res | None -> false)

let nc_revisits_node () =
  (* An NC transaction whose tree visits node 0 twice: both pendings must
     resolve through the single decision, writes landing exactly once. *)
  let sim, eng = nc_engine () in
  let spec =
    Spec.make ~id:1
      (Spec.subtxn
         ~children:
           [
             Spec.subtxn
               ~children:[ Spec.subtxn 0 [ Op.Overwrite ("back", 2.) ] ]
               1
               [ Op.Overwrite ("mid", 3.) ];
           ]
         0
         [ Op.Overwrite ("front", 1.) ])
  in
  let r = Engine.submit eng spec in
  ignore (Sim.run sim ~until:5.0 ());
  (match Ivar.peek r with
  | Some res -> checkb "committed" true (Result.committed res)
  | None -> Alcotest.fail "unresolved");
  let amount key =
    match Mvstore.read_visible (Engine.store eng ~node:0) ~key ~version:10 with
    | Some (_, v) -> v.Value.amount
    | None -> nan
  in
  checkf "front" 1. (amount "front");
  checkf "back (revisit)" 2. (amount "back");
  (* Advancement still terminates (both pendings' C counters bumped). *)
  let adv = Engine.advance eng in
  ignore (Sim.run sim ~until:10.0 ());
  checkb "advancement ok" true (Ivar.is_full adv)

let stats_exposed () =
  let sim, eng = make_engine () in
  ignore (Engine.submit eng (Spec.make ~id:1 (Spec.subtxn 0 [ Op.Incr ("k", 1.) ])));
  ignore (Sim.run sim ~until:1.0 ());
  let stats = Engine.stats eng in
  checki "submitted" 1 (Stats.Counter_set.get stats "txn.submitted");
  checki "committed" 1 (Stats.Counter_set.get stats "txn.committed");
  checkb "messages counted" true (Stats.Counter_set.get stats "net.messages" > 0);
  Alcotest.(check string) "name" "3v" (Engine.name eng)

let () =
  Alcotest.run "threev"
    [
      ( "counters",
        [
          Alcotest.test_case "basic" `Quick counters_basic;
          Alcotest.test_case "gc" `Quick counters_gc;
        ] );
      ( "version-codec",
        Alcotest.test_case "basics" `Quick codec_basics
        :: List.map QCheck_alcotest.to_alcotest [ codec_roundtrip_property ] );
      ( "trace",
        [
          Alcotest.test_case "basics" `Quick trace_basics;
          Alcotest.test_case "ring bounds retention" `Quick trace_ring_bounds;
          Alcotest.test_case "length invariant" `Quick trace_length_invariant;
          Alcotest.test_case "sink sees evicted events" `Quick
            trace_sink_sees_evicted;
          Alcotest.test_case "bad capacity rejected" `Quick trace_bad_capacity;
        ] );
      ( "execution",
        [
          Alcotest.test_case "reads use old version" `Quick
            reads_use_old_version;
          Alcotest.test_case "advancement publishes" `Quick
            advancement_publishes;
          Alcotest.test_case "updates don't block on children" `Quick
            update_does_not_block_on_children;
          Alcotest.test_case "empty-root front-end" `Quick empty_root_front_end;
          Alcotest.test_case "revisiting node" `Quick revisiting_node;
        ] );
      ( "advancement",
        [
          Alcotest.test_case "versions advance globally" `Quick
            versions_advance_globally;
          Alcotest.test_case "multiple advancements" `Quick
            multiple_advancements;
          Alcotest.test_case "implicit notification" `Quick
            implicit_notification;
          Alcotest.test_case "dual write on straggler" `Quick
            dual_write_on_straggler;
          Alcotest.test_case "compensation nets to zero" `Quick
            compensation_nets_to_zero;
        ] );
      ( "policies",
        [
          Alcotest.test_case "periodic" `Quick periodic_policy_runs;
          Alcotest.test_case "count-based" `Quick count_policy_runs;
          Alcotest.test_case "divergence-based" `Quick divergence_policy_runs;
          Alcotest.test_case "reads don't count" `Quick
            reads_do_not_trigger_count_policy;
        ] );
      ( "nc3v",
        [
          Alcotest.test_case "commit applies writes" `Quick
            nc_commit_applies_writes;
          Alcotest.test_case "abort discards writes" `Quick
            nc_abort_discards_writes;
          Alcotest.test_case "version overtake abort" `Quick
            nc_version_overtake_abort;
          Alcotest.test_case "waits during advancement" `Quick
            nc_waits_for_advancement;
          Alcotest.test_case "revisits node" `Quick nc_revisits_node;
          Alcotest.test_case "reads take no locks" `Quick
            reads_take_no_locks_even_in_nc_mode;
        ] );
      ( "churn",
        [
          Alcotest.test_case "all txns resolve" `Slow churn_all_txns_resolve;
          Alcotest.test_case "version bound holds" `Slow churn_version_bound;
          Alcotest.test_case "quiescence oracle" `Slow churn_quiescence_oracle;
          Alcotest.test_case "atomic visibility" `Slow churn_atomic_visibility;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "no GC acks breaks bound" `Slow
            ablation_no_gc_acks_breaks_bound;
          Alcotest.test_case "single poll still waits for stragglers" `Quick
            ablation_single_poll_still_detects_activity;
        ] );
      ( "fault-injection",
        [ Alcotest.test_case "pause isolates outage" `Quick pause_isolates_outage ] );
      ( "api",
        [
          Alcotest.test_case "stats exposed" `Quick stats_exposed;
          Alcotest.test_case "submit validates nodes" `Quick
            submit_validates_nodes;
        ] );
    ]
