(* Regression tests for the fault-spec flag grammars in bin/cli_specs —
   the parsers shared between the cmdliner converters and the argv
   pre-scan that turns a malformed spec into a one-line usage message
   and exit 2. One accept + one reject case per flag, plus the pre-scan
   itself (both --flag V and --flag=V forms). *)

module C = Cli_specs

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let is_ok = function Ok _ -> true | Error _ -> false

let expect_usage what usage = function
  | Ok _ -> Alcotest.failf "%s: malformed spec accepted" what
  | Error msg ->
      checkb
        (Printf.sprintf "%s error embeds usage" what)
        true
        (String.length msg >= String.length usage
        &&
        let rec find i =
          i + String.length usage <= String.length msg
          && (String.sub msg i (String.length usage) = usage || find (i + 1))
        in
        find 0)

(* ------------------------------------------------------ partition *)

let partition_grammar () =
  (match C.parse_partition "0:1:0.2:0.5" with
  | Ok (C.P_link (0, 1, 0.2, 0.5)) -> ()
  | _ -> Alcotest.fail "legacy link form");
  (match C.parse_partition "0,1,2@0.1:0.4" with
  | Ok (C.P_set ([ 0; 1; 2 ], 0.1, 0.4, false)) -> ()
  | _ -> Alcotest.fail "set form");
  (match C.parse_partition "3@0.1:0.4:oneway" with
  | Ok (C.P_set ([ 3 ], 0.1, 0.4, true)) -> ()
  | _ -> Alcotest.fail "oneway form");
  expect_usage "partition" C.partition_usage (C.parse_partition "bad@x");
  expect_usage "partition" C.partition_usage (C.parse_partition "1:2:3");
  expect_usage "partition" C.partition_usage
    (C.parse_partition "0@0.1:0.4:sideways")

(* ---------------------------------------------------------- crash *)

let crash_grammar () =
  (match C.parse_crash "2@0.25:0.7" with
  | Ok (2, 0.25, 0.7) -> ()
  | _ -> Alcotest.fail "crash form");
  expect_usage "crash" C.crash_usage (C.parse_crash "oops");
  expect_usage "crash" C.crash_usage (C.parse_crash "2@0.25")

let coord_crash_grammar () =
  (match C.parse_coord_crash "0.3:0.8" with
  | Ok (0.3, 0.8) -> ()
  | _ -> Alcotest.fail "coord-crash form");
  expect_usage "coord-crash" C.coord_crash_usage (C.parse_coord_crash "nah");
  expect_usage "coord-crash" C.coord_crash_usage (C.parse_coord_crash "0.3")

let data_crash_grammar () =
  (match C.parse_data_crash "1@0.25:0.7" with
  | Ok (1, 0.25, 0.7) -> ()
  | _ -> Alcotest.fail "data-crash form");
  expect_usage "data-crash" C.data_crash_usage (C.parse_data_crash "bogus");
  expect_usage "data-crash" C.data_crash_usage (C.parse_data_crash "1@0.25")

let hb_loss_grammar () =
  (match C.parse_hb_loss "3@0.1:0.6" with
  | Ok (3, 0.1, 0.6, 1.) -> ()
  | _ -> Alcotest.fail "hb-loss default prob");
  (match C.parse_hb_loss "3@0.1:0.6:0.5" with
  | Ok (3, 0.1, 0.6, 0.5) -> ()
  | _ -> Alcotest.fail "hb-loss explicit prob");
  expect_usage "hb-loss" C.hb_loss_usage (C.parse_hb_loss "nope");
  expect_usage "hb-loss" C.hb_loss_usage (C.parse_hb_loss "3@0.1")

(* ------------------------------------------------------- prescan *)

let prevalidate_catches_first () =
  let argv =
    [| "threev_sim"; "run"; "--crash"; "2@0.25:0.7"; "--partition"; "bad@x" |]
  in
  (match C.prevalidate argv with
  | Some msg -> expect_usage "prescan" C.partition_usage (Error msg)
  | None -> Alcotest.fail "malformed --partition not caught");
  match C.prevalidate [| "threev_sim"; "run"; "--hb-loss=zap" |] with
  | Some msg -> expect_usage "prescan=" C.hb_loss_usage (Error msg)
  | None -> Alcotest.fail "malformed --hb-loss=V not caught"

let prevalidate_clean () =
  checkb "all well-formed" true
    (C.prevalidate
       [|
         "threev_sim";
         "run";
         "--crash";
         "2@0.25:0.7";
         "--partition=0,1@0.1:0.4:oneway";
         "--data-crash";
         "1@0.3:0.9";
         "--coord-crash";
         "0.3:0.8";
         "--hb-loss";
         "3@0.1:0.6:0.5";
       |]
    = None);
  (* Unknown flags and non-spec values are cmdliner's business. *)
  checkb "unrelated argv ignored" true
    (C.prevalidate [| "threev_sim"; "run"; "--nodes"; "bananas" |] = None)

let error_is_one_line () =
  match C.parse_data_crash "bogus" with
  | Ok _ -> Alcotest.fail "accepted"
  | Error msg ->
      checkb "single line" false (String.contains msg '\n');
      checks "exact message"
        "bad data-crash spec \"bogus\"; usage: --data-crash GROUP@TIME:RESTART"
        msg

let () =
  ignore is_ok;
  Alcotest.run "cli_specs"
    [
      ( "grammar",
        [
          Alcotest.test_case "partition" `Quick partition_grammar;
          Alcotest.test_case "crash" `Quick crash_grammar;
          Alcotest.test_case "coord-crash" `Quick coord_crash_grammar;
          Alcotest.test_case "data-crash" `Quick data_crash_grammar;
          Alcotest.test_case "hb-loss" `Quick hb_loss_grammar;
        ] );
      ( "prescan",
        [
          Alcotest.test_case "catches malformed" `Quick
            prevalidate_catches_first;
          Alcotest.test_case "clean argv passes" `Quick prevalidate_clean;
          Alcotest.test_case "one-line message" `Quick error_is_one_line;
        ] );
    ]
