(* Tests for the three §1 baseline engines. *)

module Sim = Simul.Sim
module Ivar = Simul.Ivar
module Latency = Netsim.Latency
module Mvstore = Store.Mvstore
module Spec = Txn.Spec
module Op = Txn.Op
module Value = Txn.Value
module Result = Txn.Result
module Global_2pc = Baselines.Global_2pc
module No_coord = Baselines.No_coord
module Manual = Baselines.Manual_versioning

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

let cross_update ~id a b =
  Spec.make ~id
    (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Incr (b, 1.) ] ] 0
       [ Op.Incr (a, 1.) ])

let cross_read ~id a b =
  Spec.make ~id
    (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Read b ] ] 0 [ Op.Read a ])

(* ------------------------------------------------------- global 2pc *)

let twopc_commit_and_apply () =
  let sim = Sim.create () in
  let eng = Global_2pc.create sim (Global_2pc.default_config ~nodes:2) in
  let r = Global_2pc.submit eng (cross_update ~id:1 "a" "b") in
  ignore (Sim.run sim ~until:2.0 ());
  checkb "committed" true
    (match Ivar.peek r with Some res -> Result.committed res | None -> false);
  let amt node key =
    match Mvstore.read_visible (Global_2pc.store eng ~node) ~key ~version:0 with
    | Some (_, v) -> v.Value.amount
    | None -> 0.
  in
  checkf "a applied" 1. (amt 0 "a");
  checkf "b applied" 1. (amt 1 "b")

let twopc_read_blocks_behind_writer () =
  (* A read arriving while an update holds X locks across a slow 2PC must
     wait — the §1 cost of global synchronization. *)
  let sim = Sim.create () in
  let cfg =
    {
      (Global_2pc.default_config ~nodes:2) with
      Global_2pc.latency = Latency.Constant 0.5 (* slow decision round *);
      deadlock_timeout = infinity;
    }
  in
  let eng = Global_2pc.create sim cfg in
  let ru = Global_2pc.submit eng (cross_update ~id:1 "a" "b") in
  Sim.schedule sim ~delay:0.1 (fun () ->
      ignore (Global_2pc.submit eng (cross_read ~id:2 "a" "b")));
  let rr = ref None in
  Sim.schedule sim ~delay:0.1 (fun () ->
      rr := Some (Global_2pc.submit eng (cross_read ~id:3 "b" "a")));
  ignore (Sim.run sim ~until:20.0 ());
  (match Ivar.peek ru with
  | Some res -> checkb "update committed" true (Result.committed res)
  | None -> Alcotest.fail "update unresolved");
  match !rr with
  | Some iv -> (
      match Ivar.peek iv with
      | Some res ->
          (* The read of b at node 1 had to wait for the update's decision
             to reach node 1 (root at 0 commits at ~1.0, decision reaches
             node 1 at ~1.5). *)
          checkb "read waited for the writer's 2PC" true
            (Result.latency res > 0.5)
      | None -> Alcotest.fail "read unresolved")
  | None -> Alcotest.fail "read not submitted"

let twopc_deadlock_resolved () =
  let sim = Sim.create () in
  let cfg =
    { (Global_2pc.default_config ~nodes:2) with Global_2pc.deadlock_timeout = 0.1 }
  in
  let eng = Global_2pc.create sim cfg in
  (* Symmetric cross-node updates in opposite key order force a distributed
     deadlock; the timeout must abort at least one and the system drains. *)
  let mk id root_node other_node k1 k2 =
    Spec.make ~id
      (Spec.subtxn
         ~children:[ Spec.subtxn other_node [ Op.Incr (k2, 1.) ] ]
         root_node
         [ Op.Incr (k1, 1.) ])
  in
  let r1 = Global_2pc.submit eng (mk 1 0 1 "x" "y") in
  let r2 = Global_2pc.submit eng (mk 2 1 0 "y" "x") in
  ignore (Sim.run sim ~until:10.0 ());
  checkb "both resolved" true (Ivar.is_full r1 && Ivar.is_full r2);
  let aborted =
    List.length
      (List.filter
         (fun iv ->
           match Ivar.peek iv with
           | Some res -> not (Result.committed res)
           | None -> false)
         [ r1; r2 ])
  in
  (* Symmetric timeouts may abort both; the essential property is that the
     deadlock broke and every lock was released (the run drained). *)
  checkb "at least one victim" true (aborted >= 1);
  let amt node key =
    match Mvstore.read_visible (Global_2pc.store eng ~node) ~key ~version:0 with
    | Some (_, v) -> v.Value.amount
    | None -> 0.
  in
  let committed = 2 - aborted in
  checkf "x consistent with commits" (float_of_int committed) (amt 0 "x");
  checkf "y consistent with commits" (float_of_int committed) (amt 1 "y")

let twopc_aborted_writes_invisible () =
  let sim = Sim.create () in
  let cfg =
    { (Global_2pc.default_config ~nodes:2) with Global_2pc.deadlock_timeout = 0.05 }
  in
  let eng = Global_2pc.create sim cfg in
  let r1 = Global_2pc.submit eng (cross_update ~id:1 "x" "y") in
  let r2 =
    Global_2pc.submit eng
      (Spec.make ~id:2
         (Spec.subtxn ~children:[ Spec.subtxn 0 [ Op.Incr ("x", 1.) ] ] 1
            [ Op.Incr ("y", 1.) ]))
  in
  ignore (Sim.run sim ~until:10.0 ());
  let committed =
    List.length
      (List.filter
         (fun iv ->
           match Ivar.peek iv with
           | Some res -> Result.committed res
           | None -> false)
         [ r1; r2 ])
  in
  let amt node key =
    match Mvstore.read_visible (Global_2pc.store eng ~node) ~key ~version:0 with
    | Some (_, v) -> v.Value.amount
    | None -> 0.
  in
  (* Each committed transaction adds exactly 1 to both keys; aborted ones
     add nothing. *)
  checkf "x total matches commits" (float_of_int committed) (amt 0 "x");
  checkf "y total matches commits" (float_of_int committed) (amt 1 "y")

(* ---------------------------------------------------- no coordination *)

let nocoord_commits_everything () =
  let sim = Sim.create () in
  let eng = No_coord.create sim (No_coord.default_config ~nodes:2) in
  let rs =
    List.init 10 (fun i -> No_coord.submit eng (cross_update ~id:(i + 1) "a" "b"))
  in
  ignore (Sim.run sim ~until:5.0 ());
  checkb "all committed" true
    (List.for_all
       (fun iv ->
         match Ivar.peek iv with Some res -> Result.committed res | None -> false)
       rs);
  let amt node key =
    match Mvstore.read_visible (No_coord.store eng ~node) ~key ~version:0 with
    | Some (_, v) -> v.Value.amount
    | None -> 0.
  in
  checkf "a" 10. (amt 0 "a");
  checkf "b" 10. (amt 1 "b")

let nocoord_partial_read_demonstrated () =
  (* Deterministic §1 anomaly: the update's child to node 1 is slow; a read
     fired right after the root write sees a at node 0 but not b at node 1. *)
  let sim = Sim.create () in
  let cfg =
    { (No_coord.default_config ~nodes:2) with No_coord.latency = Latency.Constant 1.0 }
  in
  let eng = No_coord.create sim cfg in
  let upd = cross_update ~id:1 "a" "b" in
  (* The read starts at node 1 (reading b before the update's child lands
     there) and then visits node 0 (reading a after the root write). *)
  let rd =
    Spec.make ~id:2
      (Spec.subtxn ~children:[ Spec.subtxn 0 [ Op.Read "a" ] ] 1 [ Op.Read "b" ])
  in
  ignore (No_coord.submit eng upd);
  let r = ref None in
  Sim.schedule sim ~delay:0.01 (fun () -> r := Some (No_coord.submit eng rd));
  ignore (Sim.run sim ~until:10.0 ());
  let res =
    match !r with
    | Some iv -> (
        match Ivar.peek iv with Some res -> res | None -> Alcotest.fail "read pending")
    | None -> Alcotest.fail "not submitted"
  in
  let history = [ (upd, { res with Result.txn_id = 1; outcome = Result.Committed }) ] in
  ignore history;
  let saw key =
    Value.Writers.mem 1 (List.assoc key res.Result.reads).Value.writers
  in
  checkb "saw the root write" true (saw "a");
  checkb "missed the remote write" false (saw "b")

(* -------------------------------------------------- manual versioning *)

let manual_version_arithmetic () =
  let sim = Sim.create () in
  let cfg =
    {
      (Manual.default_config ~nodes:2) with
      Manual.period = 1.0;
      safety_delay = 0.25;
    }
  in
  let eng = Manual.create sim cfg in
  (* Period 0 closes at t=1.0 and becomes readable at t=1.25. *)
  checki "before anything is readable" 0 (Manual.read_version_at eng ~now:0.5);
  checki "period closed but delay pending" 0 (Manual.read_version_at eng ~now:1.1);
  checki "readable" 1 (Manual.read_version_at eng ~now:1.3);
  checki "next period" 2 (Manual.read_version_at eng ~now:2.5)

let manual_reads_lag_a_period () =
  let sim = Sim.create () in
  let cfg =
    { (Manual.default_config ~nodes:2) with Manual.period = 1.0; safety_delay = 0.2 }
  in
  let eng = Manual.create sim cfg in
  (* Update in period 0. *)
  ignore (Manual.submit eng (cross_update ~id:1 "a" "b"));
  (* A read in period 0 sees nothing. *)
  let r_early = ref None in
  Sim.schedule sim ~delay:0.5 (fun () ->
      r_early := Some (Manual.submit eng (cross_read ~id:2 "a" "b")));
  (* A read after 1.2+ sees the period-0 update. *)
  let r_late = ref None in
  Sim.schedule sim ~delay:1.5 (fun () ->
      r_late := Some (Manual.submit eng (cross_read ~id:3 "a" "b")));
  ignore (Sim.run sim ~until:10.0 ());
  let amount r key =
    match !r with
    | Some iv -> (
        match Ivar.peek iv with
        | Some res -> (List.assoc key res.Result.reads).Value.amount
        | None -> Alcotest.fail "read pending")
    | None -> Alcotest.fail "not submitted"
  in
  checkf "early read blind" 0. (amount r_early "a");
  checkf "late read sees period 0" 1. (amount r_late "a");
  checkf "late read sees remote too" 1. (amount r_late "b")

let manual_straggler_partial_read () =
  (* With safety delay 0 and a slow child, a boundary read observes the
     §1 incorrectness; with a conservative delay it does not. *)
  let run_with ~safety_delay =
    let sim = Sim.create () in
    let cfg =
      {
        (Manual.default_config ~nodes:2) with
        Manual.period = 1.0;
        safety_delay;
        latency = Latency.Constant 0.4 (* child lands 0.4s into next period *);
      }
    in
    let eng = Manual.create sim cfg in
    let upd = cross_update ~id:1 "a" "b" in
    (* The read visits node 1 first so it reads b before the straggler's
       write lands, and node 0 second (after the root write). *)
    let rd =
      Spec.make ~id:2
        (Spec.subtxn ~children:[ Spec.subtxn 0 [ Op.Read "a" ] ] 1 [ Op.Read "b" ])
    in
    (* Update submitted just before the period-0 boundary. *)
    let r = ref None in
    Sim.schedule sim ~delay:0.9 (fun () -> ignore (Manual.submit eng upd));
    Sim.schedule sim ~delay:1.05 (fun () -> r := Some (Manual.submit eng rd));
    ignore (Sim.run sim ~until:10.0 ());
    let res =
      match !r with
      | Some iv -> (
          match Ivar.peek iv with Some res -> res | None -> Alcotest.fail "pending")
      | None -> Alcotest.fail "not submitted"
    in
    let saw key =
      Value.Writers.mem 1 (List.assoc key res.Result.reads).Value.writers
    in
    (saw "a", saw "b")
  in
  (* Reckless: the read uses version 1 at t=1.05 while b's write lands at
     ~1.3 — partial. *)
  checkb "delay 0 shows partial charge" true (run_with ~safety_delay:0. = (true, false));
  (* Conservative: reads stay on version 0 until 1.5; the same read sees
     nothing of the update — all-or-nothing restored. *)
  checkb "conservative delay is atomic" true
    (run_with ~safety_delay:0.5 = (false, false))

let engine_names () =
  let sim = Sim.create () in
  Alcotest.(check string) "2pc" "global-2pc"
    (Global_2pc.name (Global_2pc.create sim (Global_2pc.default_config ~nodes:1)));
  Alcotest.(check string) "nocoord" "no-coordination"
    (No_coord.name (No_coord.create sim (No_coord.default_config ~nodes:1)));
  Alcotest.(check string) "manual" "manual-versioning"
    (Manual.name (Manual.create sim (Manual.default_config ~nodes:1)))

let () =
  Alcotest.run "baselines"
    [
      ( "global-2pc",
        [
          Alcotest.test_case "commit applies" `Quick twopc_commit_and_apply;
          Alcotest.test_case "read blocks behind writer" `Quick
            twopc_read_blocks_behind_writer;
          Alcotest.test_case "deadlock resolved" `Quick twopc_deadlock_resolved;
          Alcotest.test_case "aborted writes invisible" `Quick
            twopc_aborted_writes_invisible;
        ] );
      ( "no-coordination",
        [
          Alcotest.test_case "commits everything" `Quick
            nocoord_commits_everything;
          Alcotest.test_case "partial read demonstrated" `Quick
            nocoord_partial_read_demonstrated;
        ] );
      ( "manual-versioning",
        [
          Alcotest.test_case "version arithmetic" `Quick
            manual_version_arithmetic;
          Alcotest.test_case "reads lag a period" `Quick manual_reads_lag_a_period;
          Alcotest.test_case "straggler partial read" `Quick
            manual_straggler_partial_read;
        ] );
      ("misc", [ Alcotest.test_case "engine names" `Quick engine_names ]);
    ]
