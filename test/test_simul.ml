(* Tests for the discrete-event simulation kernel. *)

module Sim = Simul.Sim
module Ivar = Simul.Ivar
module Mailbox = Simul.Mailbox
module Semaphore = Simul.Semaphore
module Heap = Simul.Heap

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------- heap *)

let heap_basic () =
  let h = Heap.create ~dummy:0 ~leq:( <= ) () in
  checkb "empty" true (Heap.is_empty h);
  List.iter (Heap.add h) [ 5; 3; 8; 1; 9; 2 ];
  checki "length" 6 (Heap.length h);
  checki "min" 1 (Heap.pop_min h);
  checki "next" 2 (Heap.pop_min h);
  Heap.add h 0;
  checki "new min" 0 (Heap.pop_min h)

let heap_empty_pop () =
  let h = Heap.create ~dummy:0 ~leq:( <= ) () in
  Alcotest.check_raises "pop empty" Not_found (fun () ->
      ignore (Heap.pop_min h))

let heap_peek_clear () =
  let h = Heap.create ~dummy:0 ~leq:( <= ) () in
  checkb "peek empty" true (Heap.peek_min h = None);
  Heap.add h 7;
  checkb "peek" true (Heap.peek_min h = Some 7);
  Heap.clear h;
  checkb "cleared" true (Heap.is_empty h)

(* Regression: pop_min must clear the slots it vacates. Before the fix the
   backing array kept a stale reference to every popped element, pinning it
   (and, in the simulator, the continuation its closure captured) for the
   life of the heap. *)
let heap_no_pin_after_pop () =
  let dummy = ref (-1) in
  let h = Heap.create ~dummy ~leq:(fun a b -> !a <= !b) () in
  let weak = Weak.create 3 in
  for i = 0 to 2 do
    let boxed = ref i in
    Weak.set weak i (Some boxed);
    Heap.add h boxed
  done;
  for i = 0 to 2 do
    checki "pop order" i !(Heap.pop_min h)
  done;
  Gc.full_major ();
  for i = 0 to 2 do
    checkb
      (Printf.sprintf "popped element %d collectable" i)
      false (Weak.check weak i)
  done

let heap_clear_releases () =
  let dummy = ref (-1) in
  let h = Heap.create ~dummy ~leq:(fun a b -> !a <= !b) () in
  let weak = Weak.create 1 in
  let boxed = ref 42 in
  Weak.set weak 0 (Some boxed);
  Heap.add h boxed;
  Heap.clear h;
  Gc.full_major ();
  checkb "cleared element collectable" false (Weak.check weak 0)

let heap_sort_property =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~dummy:0 ~leq:( <= ) () in
      List.iter (Heap.add h) xs;
      let rec drain acc =
        if Heap.is_empty h then List.rev acc else drain (Heap.pop_min h :: acc)
      in
      drain [] = List.sort compare xs)

(* Model check against a sorted list, using the simulator's real element
   shape: (time, seq) with the event-queue ordering. Equal-timestamp events
   must drain in seq (insertion) order — the tie-break the whole simulation's
   determinism rests on. *)
let heap_model_property =
  QCheck.Test.make ~name:"heap matches sorted-list model with seq tie-break"
    ~count:300
    QCheck.(list (int_bound 7))
    (fun times ->
      let leq (at1, seq1) (at2, seq2) =
        at1 < at2 || (at1 = at2 && seq1 <= seq2)
      in
      let h = Heap.create ~dummy:(0, 0) ~leq () in
      let events = List.mapi (fun seq at -> (at, seq)) times in
      List.iter (Heap.add h) events;
      let rec drain acc =
        if Heap.is_empty h then List.rev acc else drain (Heap.pop_min h :: acc)
      in
      (* [compare] on (at, seq) pairs is exactly the event order, and seqs
         are distinct, so the sort is the unique correct drain order. *)
      drain [] = List.sort compare events)

(* -------------------------------------------------------------- sim *)

let sim_schedule_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:2. (fun () -> log := 2 :: !log);
  Sim.schedule sim ~delay:1. (fun () -> log := 1 :: !log);
  Sim.schedule sim ~delay:3. (fun () -> log := 3 :: !log);
  checkb "completed" true (Sim.run sim () = Sim.Completed);
  check Alcotest.(list int) "time order" [ 1; 2; 3 ] (List.rev !log)

let sim_fifo_same_time () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.schedule sim (fun () -> log := i :: !log)
  done;
  ignore (Sim.run sim ());
  check Alcotest.(list int) "insertion order at equal time" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let sim_sleep_advances_clock () =
  let sim = Sim.create () in
  let seen = ref 0. in
  Sim.spawn sim (fun () ->
      Sim.sleep sim 1.5;
      Sim.sleep sim 0.25;
      seen := Sim.now sim);
  ignore (Sim.run sim ());
  check Alcotest.(float 1e-9) "clock" 1.75 !seen

let sim_determinism () =
  let trace seed =
    let sim = Sim.create ~seed () in
    let log = ref [] in
    for i = 1 to 20 do
      Sim.spawn sim (fun () ->
          Sim.sleep sim (Random.State.float (Sim.rng sim) 1.);
          log := (i, Sim.now sim) :: !log)
    done;
    ignore (Sim.run sim ());
    !log
  in
  checkb "same seed, same trace" true (trace 5 = trace 5);
  checkb "different seed, different trace" true (trace 5 <> trace 6)

let sim_stall_detection () =
  let sim = Sim.create () in
  Sim.spawn sim ~name:"stuck" (fun () ->
      ignore (Sim.suspend sim (fun _waker -> ())));
  match Sim.run sim () with
  | Sim.Stalled [ "stuck" ] -> ()
  | _ -> Alcotest.fail "expected stall with the blocked process named"

let sim_daemon_not_stalled () =
  let sim = Sim.create () in
  Sim.spawn sim ~daemon:true ~name:"server" (fun () ->
      ignore (Sim.suspend sim (fun _waker -> ())));
  checkb "daemons may block forever" true (Sim.run sim () = Sim.Completed)

let sim_until_limit () =
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.spawn sim ~daemon:true (fun () ->
      let rec tick () =
        Sim.sleep sim 1.;
        incr count;
        tick ()
      in
      tick ());
  checkb "hit limit" true (Sim.run sim ~until:10.5 () = Sim.Hit_limit);
  checki "ticks until horizon" 10 !count;
  (* The run can be continued. *)
  checkb "hit next limit" true (Sim.run sim ~until:20.5 () = Sim.Hit_limit);
  checki "more ticks" 20 !count

let sim_process_failure () =
  let sim = Sim.create () in
  Sim.spawn sim ~name:"bomb" (fun () -> failwith "boom");
  match Sim.run sim () with
  | exception Sim.Process_failure (name, Failure msg) ->
      checkb "name and message" true (name = "bomb" && msg = "boom")
  | _ -> Alcotest.fail "expected Process_failure"

let sim_waker_twice_rejected () =
  let sim = Sim.create () in
  let stash = ref None in
  Sim.spawn sim (fun () -> Sim.suspend sim (fun waker -> stash := Some waker));
  Sim.schedule sim ~delay:1. (fun () ->
      match !stash with
      | Some waker ->
          waker ();
          waker ()
      | None -> ());
  match Sim.run sim () with
  | exception Sim.Process_failure _ -> ()
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double wake must be rejected"

let sim_spawn_nested () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.spawn sim (fun () ->
      log := "outer" :: !log;
      Sim.spawn sim (fun () -> log := "inner" :: !log);
      Sim.sleep sim 1.;
      log := "outer-again" :: !log);
  ignore (Sim.run sim ());
  check
    Alcotest.(list string)
    "nesting" [ "outer"; "inner"; "outer-again" ] (List.rev !log)

let sim_yield_interleaves () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.spawn sim (fun () ->
      log := "a1" :: !log;
      Sim.yield sim;
      log := "a2" :: !log);
  Sim.spawn sim (fun () -> log := "b" :: !log);
  ignore (Sim.run sim ());
  check Alcotest.(list string) "yield lets b run" [ "a1"; "b"; "a2" ]
    (List.rev !log)

(* ------------------------------------------------------------- ivar *)

let ivar_basic () =
  let sim = Sim.create () in
  let iv = Ivar.create () in
  let got = ref 0 in
  Sim.spawn sim (fun () -> got := Ivar.read sim iv);
  Sim.schedule sim ~delay:1. (fun () -> Ivar.fill iv 42);
  ignore (Sim.run sim ());
  checki "read value" 42 !got;
  checkb "peek" true (Ivar.peek iv = Some 42)

let ivar_read_after_fill () =
  let sim = Sim.create () in
  let iv = Ivar.create () in
  Ivar.fill iv "x";
  let got = ref "" in
  Sim.spawn sim (fun () -> got := Ivar.read sim iv);
  ignore (Sim.run sim ());
  check Alcotest.string "immediate" "x" !got

let ivar_double_fill () =
  let iv = Ivar.create () in
  Ivar.fill iv 1;
  Alcotest.check_raises "double fill"
    (Invalid_argument "Ivar.fill: already full") (fun () -> Ivar.fill iv 2)

let ivar_multiple_readers () =
  let sim = Sim.create () in
  let iv = Ivar.create () in
  let sum = ref 0 in
  for _ = 1 to 3 do
    Sim.spawn sim (fun () -> sum := !sum + Ivar.read sim iv)
  done;
  Sim.schedule sim ~delay:1. (fun () -> Ivar.fill iv 10);
  ignore (Sim.run sim ());
  checki "all readers woken" 30 !sum

(* ---------------------------------------------------------- mailbox *)

let mailbox_fifo () =
  let sim = Sim.create () in
  let mb = Mailbox.create () in
  let log = ref [] in
  Sim.spawn sim (fun () ->
      for _ = 1 to 3 do
        log := Mailbox.recv sim mb :: !log
      done);
  Sim.schedule sim ~delay:1. (fun () ->
      Mailbox.send mb 1;
      Mailbox.send mb 2;
      Mailbox.send mb 3);
  ignore (Sim.run sim ());
  check Alcotest.(list int) "fifo" [ 1; 2; 3 ] (List.rev !log)

let mailbox_try_recv () =
  let mb = Mailbox.create () in
  checkb "empty" true (Mailbox.try_recv mb = None);
  Mailbox.send mb 9;
  checki "length" 1 (Mailbox.length mb);
  checkb "value" true (Mailbox.try_recv mb = Some 9);
  checkb "drained" true (Mailbox.try_recv mb = None)

let mailbox_blocked_receivers_fifo () =
  let sim = Sim.create () in
  let mb = Mailbox.create () in
  let log = ref [] in
  for i = 1 to 3 do
    Sim.spawn sim (fun () ->
        let v = Mailbox.recv sim mb in
        log := (i, v) :: !log)
  done;
  Sim.schedule sim ~delay:1. (fun () -> List.iter (Mailbox.send mb) [ 10; 20; 30 ]);
  ignore (Sim.run sim ());
  checkb "receivers served in arrival order" true
    (List.rev !log = [ (1, 10); (2, 20); (3, 30) ])

(* -------------------------------------------------------- semaphore *)

let semaphore_mutual_exclusion () =
  let sim = Sim.create () in
  let sem = Semaphore.create 1 in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 5 do
    Sim.spawn sim (fun () ->
        Semaphore.with_permit sim sem (fun () ->
            incr inside;
            if !inside > !max_inside then max_inside := !inside;
            Sim.sleep sim 0.1;
            decr inside))
  done;
  ignore (Sim.run sim ());
  checki "never two inside" 1 !max_inside

let semaphore_counting () =
  let sim = Sim.create () in
  let sem = Semaphore.create 2 in
  let max_inside = ref 0 and inside = ref 0 in
  for _ = 1 to 6 do
    Sim.spawn sim (fun () ->
        Semaphore.with_permit sim sem (fun () ->
            incr inside;
            if !inside > !max_inside then max_inside := !inside;
            Sim.sleep sim 0.1;
            decr inside))
  done;
  ignore (Sim.run sim ());
  checki "two permits" 2 !max_inside

let semaphore_release_on_exception () =
  let sim = Sim.create () in
  let sem = Semaphore.create 1 in
  let ok = ref false in
  Sim.spawn sim (fun () ->
      (try Semaphore.with_permit sim sem (fun () -> failwith "inner")
       with Failure _ -> ());
      Semaphore.with_permit sim sem (fun () -> ok := true));
  ignore (Sim.run sim ());
  checkb "permit released after raise" true !ok

let sim_event_in_past_rejected () =
  (* Schedule-into-the-past is a programming error the kernel refuses:
     hand a stale-captured schedule call a negative target time. *)
  let sim = Sim.create () in
  Sim.spawn sim (fun () ->
      Sim.sleep sim 1.0;
      (* A raw waker invoked with a callback that pushes behind the clock
         can't be constructed through the public API, so exercise the assert
         on negative delays instead. *)
      match Sim.schedule sim ~delay:(-1.) (fun () -> ()) with
      | () -> Alcotest.fail "negative delay accepted"
      | exception Assert_failure _ -> ());
  ignore (Sim.run sim ())

let sim_events_executed_counts () =
  let sim = Sim.create () in
  for _ = 1 to 5 do
    Sim.schedule sim (fun () -> ())
  done;
  ignore (Sim.run sim ());
  Alcotest.(check bool) "at least the scheduled events" true
    (Sim.events_executed sim >= 5)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ heap_sort_property; heap_model_property ]

let () =
  Alcotest.run "simul"
    [
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick heap_basic;
          Alcotest.test_case "empty pop" `Quick heap_empty_pop;
          Alcotest.test_case "peek/clear" `Quick heap_peek_clear;
          Alcotest.test_case "pop clears slots (no GC pin)" `Quick
            heap_no_pin_after_pop;
          Alcotest.test_case "clear releases elements" `Quick
            heap_clear_releases;
        ]
        @ qsuite );
      ( "sim",
        [
          Alcotest.test_case "schedule order" `Quick sim_schedule_order;
          Alcotest.test_case "fifo at same time" `Quick sim_fifo_same_time;
          Alcotest.test_case "sleep advances clock" `Quick
            sim_sleep_advances_clock;
          Alcotest.test_case "determinism" `Quick sim_determinism;
          Alcotest.test_case "stall detection" `Quick sim_stall_detection;
          Alcotest.test_case "daemon not stalled" `Quick sim_daemon_not_stalled;
          Alcotest.test_case "until limit resumable" `Quick sim_until_limit;
          Alcotest.test_case "process failure" `Quick sim_process_failure;
          Alcotest.test_case "waker twice rejected" `Quick
            sim_waker_twice_rejected;
          Alcotest.test_case "nested spawn" `Quick sim_spawn_nested;
          Alcotest.test_case "yield interleaves" `Quick sim_yield_interleaves;
          Alcotest.test_case "negative delay rejected" `Quick
            sim_event_in_past_rejected;
          Alcotest.test_case "events executed counts" `Quick
            sim_events_executed_counts;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "basic" `Quick ivar_basic;
          Alcotest.test_case "read after fill" `Quick ivar_read_after_fill;
          Alcotest.test_case "double fill" `Quick ivar_double_fill;
          Alcotest.test_case "multiple readers" `Quick ivar_multiple_readers;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick mailbox_fifo;
          Alcotest.test_case "try_recv" `Quick mailbox_try_recv;
          Alcotest.test_case "blocked receivers fifo" `Quick
            mailbox_blocked_receivers_fifo;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "mutual exclusion" `Quick
            semaphore_mutual_exclusion;
          Alcotest.test_case "counting" `Quick semaphore_counting;
          Alcotest.test_case "release on exception" `Quick
            semaphore_release_on_exception;
        ] );
    ]
