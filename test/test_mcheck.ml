(* Bounded exhaustive interleaving exploration of the 3V protocol.

   The explorer re-runs a fixed scenario under EVERY assignment of delivery
   delays (slow / medium / fast) to its first K messages — subtransactions,
   completion notices, and advancement traffic alike — and asserts the
   paper's guarantees on each schedule:

   - the run terminates (no stall, advancement completes),
   - every transaction commits,
   - reads are atomically visible and version-exact,
   - no item ever holds more than three versions,
   - the quiescence oracle never fires (debug_checks is armed inside the
     engine, so an unsound phase-2/4 declaration raises and surfaces as an
     explorer failure with the offending schedule). *)

module Sim = Simul.Sim
module Ivar = Simul.Ivar
module Latency = Netsim.Latency
module Spec = Txn.Spec
module Op = Txn.Op
module Result = Txn.Result
module Engine = Threev.Engine
module Explorer = Mcheck.Explorer

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------ explorer self-tests *)

let explorer_counts_static_tree () =
  let visits = ref 0 in
  let outcome =
    Explorer.explore (fun ctl ->
        incr visits;
        ignore (Explorer.choose ctl 2);
        ignore (Explorer.choose ctl 2);
        ignore (Explorer.choose ctl 2))
  in
  checki "2^3 runs" 8 outcome.Explorer.runs;
  checki "visits" 8 !visits;
  checkb "exhausted" true outcome.Explorer.exhausted

let explorer_dynamic_arity () =
  (* First choice binary; only branch 0 has a second, ternary choice. *)
  let leaves = ref [] in
  let outcome =
    Explorer.explore (fun ctl ->
        match Explorer.choose ctl 2 with
        | 0 -> leaves := (0, Explorer.choose ctl 3) :: !leaves
        | c -> leaves := (c, -1) :: !leaves)
  in
  checki "3 + 1 leaves" 4 outcome.Explorer.runs;
  checkb "all leaves distinct" true
    (List.sort_uniq compare !leaves = List.sort compare !leaves)

let explorer_reports_failure_path () =
  let outcome =
    Explorer.explore (fun ctl ->
        let a = Explorer.choose ctl 2 in
        let b = Explorer.choose ctl 2 in
        if a = 1 && b = 0 then failwith "boom")
  in
  (match outcome.Explorer.failure with
  | Some (path, Failure msg) ->
      checkb "path and message" true (path = [ 1; 0 ] && msg = "boom")
  | _ -> Alcotest.fail "expected failure at [1;0]");
  (* The failing path must replay to the same failure. *)
  match Explorer.replay (fun ctl ->
            let a = Explorer.choose ctl 2 in
            let b = Explorer.choose ctl 2 in
            if a = 1 && b = 0 then failwith "boom") [ 1; 0 ]
  with
  | () -> Alcotest.fail "replay should raise"
  | exception Failure msg -> checkb "replayed" true (msg = "boom")

let explorer_max_runs_cap () =
  let outcome =
    Explorer.explore ~max_runs:5 (fun ctl ->
        ignore (Explorer.choose ctl 2);
        ignore (Explorer.choose ctl 2);
        ignore (Explorer.choose ctl 2);
        ignore (Explorer.choose ctl 2))
  in
  checki "capped" 5 outcome.Explorer.runs;
  checkb "not exhausted" false outcome.Explorer.exhausted

(* ------------------------------------------------ protocol exploration *)

(* One self-contained 3V scenario: two nodes; update i spans both; an
   advancement races it; update j lands on the new version and spans both
   in the opposite direction; reads bracket everything. The first
   [choice_budget] messages each draw a delay from [delay_options]. *)
let threev_scenario ~choice_budget ctl =
  let delay_options = [ 0.001; 0.05; 0.9 ] in
  let choices_left = ref choice_budget in
  let link_latency ~src:_ ~dst:_ =
    if !choices_left > 0 then begin
      decr choices_left;
      Some (Latency.Constant (Explorer.choose_among ctl delay_options))
    end
    else Some (Latency.Constant 0.005)
  in
  let sim = Sim.create ~seed:1 () in
  let cfg =
    {
      (Engine.default_config ~nodes:2) with
      Engine.think_time = 0.002;
      poll_interval = 0.02;
      debug_checks = true;
    }
  in
  let engine = Engine.create sim cfg ~link_latency () in
  let submitted = ref [] in
  let submit spec = submitted := (spec, Engine.submit engine spec) :: !submitted in
  let adv = ref None in
  Sim.spawn sim ~name:"script" (fun () ->
      submit
        (Spec.make ~id:1 ~label:"i"
           (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Incr ("d", 3.) ] ] 0
              [ Op.Incr ("a", 1.) ]));
      Sim.sleep sim 0.01;
      submit (Spec.make ~id:2 ~label:"x" (Spec.subtxn 0 [ Op.Read "a" ]));
      Sim.sleep sim 0.01;
      adv := Some (Engine.advance engine);
      Sim.sleep sim 0.01;
      submit
        (Spec.make ~id:3 ~label:"j"
           (Spec.subtxn ~children:[ Spec.subtxn 0 [ Op.Incr ("a", 5.) ] ] 1
              [ Op.Incr ("d", 7.) ]));
      Sim.sleep sim 0.02;
      submit
        (Spec.make ~id:4 ~label:"y"
           (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Read "d" ] ] 0
              [ Op.Read "a" ])));
  (match Sim.run sim ~until:60.0 () with
  | Sim.Completed | Sim.Hit_limit -> ()
  | Sim.Stalled names ->
      failwith ("stalled: " ^ String.concat "," names));
  (* Terminate: advancement must have completed. *)
  (match !adv with
  | Some iv when Ivar.is_full iv -> ()
  | _ -> failwith "advancement did not complete");
  (* Every transaction must resolve and commit. *)
  let history =
    List.map
      (fun (spec, iv) ->
        match Ivar.peek iv with
        | Some res ->
            if not (Result.committed res) then
              failwith (spec.Spec.label ^ " did not commit");
            (spec, res)
        | None -> failwith (spec.Spec.label ^ " unresolved"))
      !submitted
  in
  if not (Checker.Atomicity.clean (Checker.Atomicity.check history)) then
    failwith "atomic visibility violated";
  if not (Checker.Version_reads.clean (Checker.Version_reads.check history))
  then failwith "version-exact reads violated";
  if Engine.max_versions_ever engine > 3 then failwith "version bound broken";
  if List.length (Engine.version_window engine) > 3 then
    failwith "version window broken"

let protocol_exploration () =
  let outcome =
    Explorer.explore ~max_runs:20_000 (threev_scenario ~choice_budget:8)
  in
  (match outcome.Explorer.failure with
  | Some (path, exn) ->
      Alcotest.failf "schedule %s violates the protocol: %s"
        (String.concat "," (List.map string_of_int path))
        (Printexc.to_string exn)
  | None -> ());
  checkb "tree exhausted" true outcome.Explorer.exhausted;
  checkb "thousands of schedules" true (outcome.Explorer.runs >= 6561)

(* Same exploration with an NC transaction in the mix. *)
let nc_scenario ~choice_budget ctl =
  let delay_options = [ 0.001; 0.3 ] in
  let choices_left = ref choice_budget in
  let link_latency ~src:_ ~dst:_ =
    if !choices_left > 0 then begin
      decr choices_left;
      Some (Latency.Constant (Explorer.choose_among ctl delay_options))
    end
    else Some (Latency.Constant 0.005)
  in
  let sim = Sim.create ~seed:1 () in
  let cfg =
    {
      (Engine.default_config ~nodes:2) with
      Engine.think_time = 0.002;
      poll_interval = 0.02;
      nc_mode = true;
      deadlock_timeout = 0.2;
    }
  in
  let engine = Engine.create sim cfg ~link_latency () in
  let submitted = ref [] in
  let submit spec = submitted := (spec, Engine.submit engine spec) :: !submitted in
  let adv = ref None in
  Sim.spawn sim ~name:"script" (fun () ->
      submit
        (Spec.make ~id:1 ~label:"sale"
           (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Incr ("inv", -1.) ] ] 0
              [ Op.Incr ("sold", 1.) ]));
      Sim.sleep sim 0.01;
      adv := Some (Engine.advance engine);
      Sim.sleep sim 0.01;
      submit
        (Spec.make ~id:2 ~label:"reprice"
           (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Overwrite ("price", 9.) ] ]
              0
              [ Op.Overwrite ("price0", 9.) ]));
      Sim.sleep sim 0.02;
      submit
        (Spec.make ~id:3 ~label:"report"
           (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Read "inv" ] ] 0
              [ Op.Read "sold" ])));
  (match Sim.run sim ~until:60.0 () with
  | Sim.Completed | Sim.Hit_limit -> ()
  | Sim.Stalled names -> failwith ("stalled: " ^ String.concat "," names));
  (match !adv with
  | Some iv when Ivar.is_full iv -> ()
  | _ -> failwith "advancement did not complete");
  let history =
    List.map
      (fun (spec, iv) ->
        match Ivar.peek iv with
        | Some res -> (spec, res)
        | None -> failwith (spec.Spec.label ^ " unresolved"))
      !submitted
  in
  (* Commuting transactions and reads must commit; the NC transaction may
     abort (version overtake) but must never leave partial effects. *)
  List.iter
    (fun ((spec : Spec.t), res) ->
      if spec.Spec.kind <> Spec.Non_commuting && not (Result.committed res)
      then failwith (spec.Spec.label ^ " did not commit"))
    history;
  if not (Checker.Atomicity.clean (Checker.Atomicity.check history)) then
    failwith "atomic visibility violated";
  if not (Checker.Version_reads.clean (Checker.Version_reads.check history))
  then failwith "version-exact reads violated"

let nc_exploration () =
  let outcome =
    Explorer.explore ~max_runs:20_000 (nc_scenario ~choice_budget:12)
  in
  (match outcome.Explorer.failure with
  | Some (path, exn) ->
      Alcotest.failf "schedule %s violates NC3V: %s"
        (String.concat "," (List.map string_of_int path))
        (Printexc.to_string exn)
  | None -> ());
  checkb "tree exhausted" true outcome.Explorer.exhausted

(* Compensation under all schedules: with abort_probability = 1 every
   commuting transaction compensates (§3.2); termination detection must
   still complete the racing advancement on every schedule, and the
   settled amounts must net to zero. *)
let compensation_scenario ~choice_budget ctl =
  let delay_options = [ 0.001; 0.4 ] in
  let choices_left = ref choice_budget in
  let link_latency ~src:_ ~dst:_ =
    if !choices_left > 0 then begin
      decr choices_left;
      Some (Latency.Constant (Explorer.choose_among ctl delay_options))
    end
    else Some (Latency.Constant 0.005)
  in
  let sim = Sim.create ~seed:1 () in
  let cfg =
    {
      (Engine.default_config ~nodes:2) with
      Engine.think_time = 0.002;
      poll_interval = 0.02;
      abort_probability = 1.0;
    }
  in
  let engine = Engine.create sim cfg ~link_latency () in
  let result = ref None and adv = ref None in
  Sim.spawn sim ~name:"script" (fun () ->
      result :=
        Some
          (Engine.submit engine
             (Spec.make ~id:1 ~label:"t"
                (Spec.subtxn
                   ~children:[ Spec.subtxn 1 [ Op.Incr ("b", 5.) ] ]
                   0
                   [ Op.Incr ("a", 3.) ])));
      Sim.sleep sim 0.01;
      adv := Some (Engine.advance engine));
  (match Sim.run sim ~until:60.0 () with
  | Sim.Completed | Sim.Hit_limit -> ()
  | Sim.Stalled names -> failwith ("stalled: " ^ String.concat "," names));
  (match !adv with
  | Some iv when Ivar.is_full iv -> ()
  | _ -> failwith "advancement did not terminate despite compensation");
  (match !result with
  | Some iv -> (
      match Ivar.peek iv with
      | Some res when res.Result.outcome = Result.Aborted "compensated" -> ()
      | Some _ -> failwith "transaction should have compensated"
      | None -> failwith "transaction unresolved")
  | None -> failwith "not submitted");
  let amount node key =
    match
      Store.Mvstore.read_visible (Engine.store engine ~node) ~key
        ~version:max_int
    with
    | Some (_, v) -> v.Txn.Value.amount
    | None -> 0.
  in
  if amount 0 "a" <> 0. || amount 1 "b" <> 0. then
    failwith "compensation did not net to zero"

let compensation_exploration () =
  let outcome =
    Explorer.explore ~max_runs:20_000 (compensation_scenario ~choice_budget:10)
  in
  (match outcome.Explorer.failure with
  | Some (path, exn) ->
      Alcotest.failf "schedule %s breaks compensation: %s"
        (String.concat "," (List.map string_of_int path))
        (Printexc.to_string exn)
  | None -> ());
  checkb "tree exhausted" true outcome.Explorer.exhausted

(* Full-engine determinism: the same seed must reproduce a run exactly —
   the property the whole replayable test suite rests on. *)
let engine_determinism () =
  let fingerprint seed =
    let sim = Sim.create ~seed () in
    let cfg =
      {
        (Engine.default_config ~nodes:3) with
        Engine.latency = Latency.Exponential 0.01;
        policy = Threev.Policy.Periodic 0.1;
        abort_probability = 0.2;
      }
    in
    let engine = Engine.create sim cfg () in
    let rng = Random.State.make [| seed |] in
    Sim.spawn sim (fun () ->
        for i = 1 to 100 do
          let n1 = Random.State.int rng 3 and n2 = Random.State.int rng 3 in
          ignore
            (Engine.submit engine
               (Spec.make ~id:i
                  (Spec.subtxn
                     ~children:
                       [ Spec.subtxn n2 [ Op.Incr (Printf.sprintf "k@%d" n2, 1.) ] ]
                     n1
                     [ Op.Incr (Printf.sprintf "k@%d" n1, 1.) ])));
          Sim.sleep sim 0.005
        done);
    ignore (Sim.run sim ~until:5.0 ());
    ( Sim.events_executed sim,
      Stats.Counter_set.to_list (Engine.stats engine),
      Engine.advancements_completed engine )
  in
  checkb "same seed, same run" true (fingerprint 5 = fingerprint 5);
  checkb "different seed, different run" true (fingerprint 5 <> fingerprint 6)

let () =
  Alcotest.run "mcheck"
    [
      ( "explorer",
        [
          Alcotest.test_case "static tree" `Quick explorer_counts_static_tree;
          Alcotest.test_case "dynamic arity" `Quick explorer_dynamic_arity;
          Alcotest.test_case "failure path" `Quick explorer_reports_failure_path;
          Alcotest.test_case "max runs cap" `Quick explorer_max_runs_cap;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "3v invariants over all schedules" `Slow
            protocol_exploration;
          Alcotest.test_case "nc3v invariants over all schedules" `Slow
            nc_exploration;
          Alcotest.test_case "compensation over all schedules" `Slow
            compensation_exploration;
          Alcotest.test_case "engine determinism" `Quick engine_determinism;
        ] );
    ]
