(* Tests for the determinism & protocol-hygiene static analyzer.

   Every rule gets a firing fixture, a passing fixture and a waived
   fixture, compiled from strings through [Lint.Driver.lint_string] — the
   same path the tree-wide gate uses, minus the filesystem walk. *)

module Driver = Lint.Driver
module Config = Lint.Config
module Report = Lint.Report

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let rules_of ?config ~filename source =
  List.map
    (fun (f : Report.finding) -> f.Report.rule)
    (Driver.lint_string ?config ~filename source)

(* [fires rule source] — linting [source] yields exactly the given rules. *)
let check_rules msg ?config ~filename source expect =
  Alcotest.(check (list string)) msg expect (rules_of ?config ~filename source)

(* ---------------------------------------------------------------- R1 *)

let r1_fires () =
  check_rules "global RNG" ~filename:"lib/x/a.ml"
    "let f () = Random.int 10" [ "R1" ];
  check_rules "wall clock" ~filename:"lib/x/a.ml"
    "let now () = Unix.gettimeofday ()" [ "R1" ];
  check_rules "layout hash" ~filename:"lib/x/a.ml"
    "let h x = Hashtbl.hash x" [ "R1" ];
  check_rules "exit" ~filename:"lib/x/a.ml" "let die () = exit 1" [ "R1" ]

let r1_passes () =
  check_rules "seeded state is sanctioned" ~filename:"lib/x/a.ml"
    "let f st = Random.State.int st 10" [];
  check_rules "virtual clock is fine" ~filename:"lib/x/a.ml"
    "let now sim = Sim.now sim" []

let r1_waived () =
  check_rules "inline waiver suppresses" ~filename:"lib/x/a.ml"
    "let f () = Random.int 10 (* lint: nondet-ok fixture *)" [];
  (* The waiver is accounted, not dropped. *)
  let _, waived, _ =
    Driver.lint_source ~filename:"lib/x/a.ml"
      "let f () = Random.int 10 (* lint: nondet-ok fixture *)"
  in
  checki "waived count" 1 waived

let r1_waiver_is_rule_scoped () =
  (* A waiver for another rule does not suppress R1. *)
  check_rules "wrong tag keeps firing" ~filename:"lib/x/a.ml"
    "let f () = Random.int 10 (* lint: hash-order-ok fixture *)" [ "R1" ]

(* ---------------------------------------------------------------- R2 *)

let r2_fires () =
  check_rules "unsorted iter" ~filename:"lib/x/a.ml"
    "let f h = Hashtbl.iter (fun k _ -> print_string k) h" [ "R2" ];
  check_rules "unsorted fold" ~filename:"lib/x/a.ml"
    "let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []" [ "R2" ]

let r2_passes () =
  check_rules "sort dominates in the same binding" ~filename:"lib/x/a.ml"
    "let f h =\n\
    \  Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []\n\
    \  |> List.sort compare"
    []

let r2_sort_elsewhere_does_not_excuse () =
  (* A sort in a *different* top-level binding must not excuse the fold. *)
  check_rules "per-item granularity" ~filename:"lib/x/a.ml"
    "let g l = List.sort compare l\n\
     let f h = Hashtbl.iter (fun k _ -> print_string k) h"
    [ "R2" ]

let r2_waived () =
  check_rules "hash-order-ok waiver" ~filename:"lib/x/a.ml"
    "(* lint: hash-order-ok fixture *)\n\
     let f h = Hashtbl.iter (fun k _ -> print_string k) h"
    []

(* The ISSUE's regression tripwire: re-introducing an unsorted fold in
   counter_set.ml-shaped code must fail the gate. *)
let r2_counter_set_tripwire () =
  check_rules "unsorted to_list would fail lint-smoke"
    ~filename:"lib/stats/counter_set.ml"
    "let to_list t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []"
    [ "R2" ]

(* ---------------------------------------------------------------- R3 *)

let deny_ivar = Config.parse "deny-type Ivar.t"

let r3_fires () =
  check_rules "compare at denied type" ~config:deny_ivar
    ~filename:"lib/x/a.ml" "let f a b = compare (a : Ivar.t) b" [ "R3" ];
  check_rules "equality at denied type" ~config:deny_ivar
    ~filename:"lib/x/a.ml" "let f a b = (a : Simul.Ivar.t) = b" [ "R3" ]

let r3_passes () =
  check_rules "other annotated type" ~config:deny_ivar ~filename:"lib/x/a.ml"
    "let f a b = compare (a : int) b" [];
  check_rules "no deny list, no finding" ~filename:"lib/x/a.ml"
    "let f a b = compare (a : Ivar.t) b" []

let r3_waived () =
  check_rules "compare-ok waiver" ~config:deny_ivar ~filename:"lib/x/a.ml"
    "let f a b = compare (a : Ivar.t) b (* lint: compare-ok fixture *)" []

(* ---------------------------------------------------------------- R4 *)

let r4_fires () =
  check_rules "unguarded Trace.emit in lib/core" ~filename:"lib/core/a.ml"
    "let f trace = Trace.emit trace \"x\"" [ "R4" ];
  check_rules "unguarded tr in lib/net" ~filename:"lib/net/a.ml"
    "let f t = tr t \"boom\"" [ "R4" ]

let r4_passes () =
  check_rules "guarded emission" ~filename:"lib/core/a.ml"
    "let f t trace = if tracing t then Trace.emit trace \"x\"" [];
  check_rules "out-of-scope path" ~filename:"lib/harness/a.ml"
    "let f trace = Trace.emit trace \"x\"" []

let r4_waived () =
  check_rules "trace-ok waiver" ~filename:"lib/core/a.ml"
    "let f trace = Trace.emit trace \"x\" (* lint: trace-ok fixture *)" []

(* ---------------------------------------------------------------- R5 *)

let r5_fires () =
  check_rules "undocumented export" ~filename:"lib/x/a.mli"
    "val f : int -> int" [ "R5" ]

let r5_passes () =
  check_rules "documented export" ~filename:"lib/x/a.mli"
    "(** Doubles. *)\nval f : int -> int" []

let r5_waived () =
  check_rules "doc-ok waiver" ~filename:"lib/x/a.mli"
    "val f : int -> int (* lint: doc-ok fixture *)" []

let engine_cfg = Config.parse "engine lib/eng.mli"

let r5_engine_fires () =
  check_rules "engine without Engine_intf include" ~config:engine_cfg
    ~filename:"lib/eng.mli" "(** Engine. *)\ntype t" [ "R5" ]

let r5_engine_passes () =
  check_rules "engine including Engine_intf.S" ~config:engine_cfg
    ~filename:"lib/eng.mli" "(** Engine. *)\ntype t\ninclude Engine_intf.S" []

(* ------------------------------------------------------------- syntax *)

let syntax_error_is_a_finding () =
  check_rules "unparseable input" ~filename:"lib/x/a.ml" "let = (" [ "syntax" ]

(* ----------------------------------------------------- config plumbing *)

let allowlist_suppresses_and_counts () =
  let config = Config.parse "allow R1 lib/x/** fixture" in
  let kept, _, allowlisted =
    Driver.lint_source ~config ~filename:"lib/x/a.ml"
      "let f () = Random.int 10"
  in
  checki "kept" 0 (List.length kept);
  checki "allowlisted" 1 allowlisted;
  (* The allow is path-scoped: other files keep firing. *)
  check_rules "other path still fires" ~config ~filename:"lib/y/a.ml"
    "let f () = Random.int 10" [ "R1" ]

let glob_semantics () =
  checkb "** spans segments" true (Config.glob_match "lib/**" "lib/a/b.ml");
  checkb "* stays in segment" true (Config.glob_match "lib/*.ml" "lib/a.ml");
  checkb "* does not cross /" false (Config.glob_match "lib/*.ml" "lib/a/b.ml");
  checkb "exact" true (Config.glob_match "bench/main.ml" "bench/main.ml")

let unknown_directive_rejected () =
  Alcotest.check_raises "unknown directive"
    (Invalid_argument "lint.config: unknown directive \"frobnicate\"")
    (fun () -> ignore (Config.parse "frobnicate x"))

(* The committed lint.config + the real tree: the gate is at zero. This is
   the in-process twin of the `threev_sim lint` runtest rule, so a
   regression is caught even when only unit tests run. *)
let tree_is_lint_clean () =
  (* Tests run from test/ inside _build; the repo root is two up when the
     source tree is present, but under dune the test cwd only has test/.
     Guard: skip silently when the tree is not visible. *)
  if Sys.file_exists "../lib" && Sys.file_exists "../lint.config" then begin
    (* [config_path] is resolved against [root] by the driver. *)
    let report = Driver.run ~config_path:"lint.config" ~root:".." () in
    checki "non-waived findings" 0 (Report.total report)
  end

(* ------------------------------------------------------------- qcheck *)

let finding_gen =
  QCheck.Gen.(
    let* file = oneofl [ "lib/a.ml"; "lib/b/c.ml"; "bench/d.ml" ] in
    let* line = 1 -- 999 in
    let* col = 0 -- 80 in
    let* rule = oneofl (Report.rule_ids @ [ "R9" ]) in
    let* msg = string_size ~gen:printable (0 -- 40) in
    return { Report.file; line; col; rule; msg })

let arbitrary_report =
  QCheck.make
    QCheck.Gen.(
      let* findings = list_size (0 -- 30) finding_gen in
      let* files_scanned = 0 -- 500 in
      let* waived = 0 -- 50 in
      let* allowlisted = 0 -- 50 in
      return (Report.make ~findings ~files_scanned ~waived ~allowlisted))

(* lint/v1 JSON round-trips: parsing [to_json] succeeds, re-serializing
   reproduces the bytes, and the embedded counts sum to the total. *)
let report_json_roundtrips =
  QCheck.Test.make ~name:"report JSON round-trips, counts sum to total"
    ~count:300 arbitrary_report (fun r ->
      let doc = Report.to_json r in
      let json = Report.json_of_string doc in
      let fields = match json with Report.Obj kvs -> kvs | _ -> [] in
      let int_field name =
        match List.assoc_opt name fields with
        | Some (Report.Int n) -> n
        | _ -> -1
      in
      let counts_sum =
        match List.assoc_opt "counts" fields with
        | Some (Report.Obj kvs) ->
            List.fold_left
              (fun acc (_, v) ->
                match v with Report.Int n -> acc + n | _ -> acc)
              0 kvs
        | _ -> -1
      in
      let findings_len =
        match List.assoc_opt "findings" fields with
        | Some (Report.List l) -> List.length l
        | _ -> -1
      in
      Report.json_to_string json = doc
      && int_field "total" = Report.total r
      && counts_sum = Report.total r
      && findings_len = Report.total r)

(* The counts invariant holds on the OCaml side too, including findings
   whose rule id is outside the catalog. *)
let counts_sum_to_total =
  QCheck.Test.make ~name:"Report.counts sums to Report.total" ~count:300
    arbitrary_report (fun r ->
      List.fold_left (fun acc (_, n) -> acc + n) 0 (Report.counts r)
      = Report.total r
      && List.for_all (fun id -> List.mem_assoc id (Report.counts r))
           Report.rule_ids)

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Report.Null;
        map (fun b -> Report.Bool b) bool;
        map (fun i -> Report.Int i) small_signed_int;
        map (fun s -> Report.String s) (string_size (0 -- 12));
      ]
  in
  sized_size (0 -- 3) (fun fuel ->
      fix
        (fun self fuel ->
          if fuel = 0 then scalar
          else
            oneof
              [
                scalar;
                map (fun l -> Report.List l)
                  (list_size (0 -- 4) (self (fuel - 1)));
                map
                  (fun kvs -> Report.Obj kvs)
                  (list_size (0 -- 4)
                     (pair (string_size (0 -- 6)) (self (fuel - 1))));
              ])
        fuel)

let json_value_roundtrips =
  QCheck.Test.make ~name:"json value print/parse round-trips" ~count:500
    (QCheck.make json_gen) (fun j ->
      Report.json_of_string (Report.json_to_string j) = j)

(* ---------------------------------------------------------------- run *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "lint"
    [
      ( "r1",
        [
          Alcotest.test_case "fires" `Quick r1_fires;
          Alcotest.test_case "passes" `Quick r1_passes;
          Alcotest.test_case "waived" `Quick r1_waived;
          Alcotest.test_case "waiver rule-scoped" `Quick
            r1_waiver_is_rule_scoped;
        ] );
      ( "r2",
        [
          Alcotest.test_case "fires" `Quick r2_fires;
          Alcotest.test_case "passes" `Quick r2_passes;
          Alcotest.test_case "per-item granularity" `Quick
            r2_sort_elsewhere_does_not_excuse;
          Alcotest.test_case "waived" `Quick r2_waived;
          Alcotest.test_case "counter_set tripwire" `Quick
            r2_counter_set_tripwire;
        ] );
      ( "r3",
        [
          Alcotest.test_case "fires" `Quick r3_fires;
          Alcotest.test_case "passes" `Quick r3_passes;
          Alcotest.test_case "waived" `Quick r3_waived;
        ] );
      ( "r4",
        [
          Alcotest.test_case "fires" `Quick r4_fires;
          Alcotest.test_case "passes" `Quick r4_passes;
          Alcotest.test_case "waived" `Quick r4_waived;
        ] );
      ( "r5",
        [
          Alcotest.test_case "fires" `Quick r5_fires;
          Alcotest.test_case "passes" `Quick r5_passes;
          Alcotest.test_case "waived" `Quick r5_waived;
          Alcotest.test_case "engine fires" `Quick r5_engine_fires;
          Alcotest.test_case "engine passes" `Quick r5_engine_passes;
        ] );
      ( "driver",
        [
          Alcotest.test_case "syntax error" `Quick syntax_error_is_a_finding;
          Alcotest.test_case "allowlist" `Quick allowlist_suppresses_and_counts;
          Alcotest.test_case "glob" `Quick glob_semantics;
          Alcotest.test_case "unknown directive" `Quick
            unknown_directive_rejected;
          Alcotest.test_case "tree clean" `Quick tree_is_lint_clean;
        ] );
      ( "report",
        [
          qc report_json_roundtrips;
          qc counts_sum_to_total;
          qc json_value_roundtrips;
        ] );
    ]
