(* Tests for the determinism & protocol-hygiene static analyzer.

   Every rule gets a firing fixture, a passing fixture and a waived
   fixture, compiled from strings through [Lint.Driver.lint_string] — the
   same path the tree-wide gate uses, minus the filesystem walk. *)

module Driver = Lint.Driver
module Config = Lint.Config
module Report = Lint.Report

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let rules_of ?config ~filename source =
  List.map
    (fun (f : Report.finding) -> f.Report.rule)
    (Driver.lint_string ?config ~filename source)

(* [fires rule source] — linting [source] yields exactly the given rules. *)
let check_rules msg ?config ~filename source expect =
  Alcotest.(check (list string)) msg expect (rules_of ?config ~filename source)

(* ---------------------------------------------------------------- R1 *)

let r1_fires () =
  check_rules "global RNG" ~filename:"lib/x/a.ml"
    "let f () = Random.int 10" [ "R1" ];
  check_rules "wall clock" ~filename:"lib/x/a.ml"
    "let now () = Unix.gettimeofday ()" [ "R1" ];
  check_rules "layout hash" ~filename:"lib/x/a.ml"
    "let h x = Hashtbl.hash x" [ "R1" ];
  check_rules "exit" ~filename:"lib/x/a.ml" "let die () = exit 1" [ "R1" ]

let r1_passes () =
  check_rules "seeded state is sanctioned" ~filename:"lib/x/a.ml"
    "let f st = Random.State.int st 10" [];
  check_rules "virtual clock is fine" ~filename:"lib/x/a.ml"
    "let now sim = Sim.now sim" []

let r1_waived () =
  check_rules "inline waiver suppresses" ~filename:"lib/x/a.ml"
    "let f () = Random.int 10 (* lint: nondet-ok fixture *)" [];
  (* The waiver is accounted, not dropped. *)
  let _, waived, _ =
    Driver.lint_source ~filename:"lib/x/a.ml"
      "let f () = Random.int 10 (* lint: nondet-ok fixture *)"
  in
  checki "waived count" 1 waived

let r1_waiver_is_rule_scoped () =
  (* A waiver for another rule does not suppress R1. *)
  check_rules "wrong tag keeps firing" ~filename:"lib/x/a.ml"
    "let f () = Random.int 10 (* lint: hash-order-ok fixture *)" [ "R1" ]

(* ---------------------------------------------------------------- R2 *)

let r2_fires () =
  check_rules "unsorted iter" ~filename:"lib/x/a.ml"
    "let f h = Hashtbl.iter (fun k _ -> print_string k) h" [ "R2" ];
  check_rules "unsorted fold" ~filename:"lib/x/a.ml"
    "let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []" [ "R2" ]

let r2_passes () =
  check_rules "sort dominates in the same binding" ~filename:"lib/x/a.ml"
    "let f h =\n\
    \  Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []\n\
    \  |> List.sort compare"
    []

let r2_sort_elsewhere_does_not_excuse () =
  (* A sort in a *different* top-level binding must not excuse the fold. *)
  check_rules "per-item granularity" ~filename:"lib/x/a.ml"
    "let g l = List.sort compare l\n\
     let f h = Hashtbl.iter (fun k _ -> print_string k) h"
    [ "R2" ]

let r2_waived () =
  check_rules "hash-order-ok waiver" ~filename:"lib/x/a.ml"
    "(* lint: hash-order-ok fixture *)\n\
     let f h = Hashtbl.iter (fun k _ -> print_string k) h"
    []

(* The ISSUE's regression tripwire: re-introducing an unsorted fold in
   counter_set.ml-shaped code must fail the gate. *)
let r2_counter_set_tripwire () =
  check_rules "unsorted to_list would fail lint-smoke"
    ~filename:"lib/stats/counter_set.ml"
    "let to_list t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []"
    [ "R2" ]

(* ---------------------------------------------------------------- R3 *)

let deny_ivar = Config.parse "deny-type Ivar.t"

let r3_fires () =
  check_rules "compare at denied type" ~config:deny_ivar
    ~filename:"lib/x/a.ml" "let f a b = compare (a : Ivar.t) b" [ "R3" ];
  check_rules "equality at denied type" ~config:deny_ivar
    ~filename:"lib/x/a.ml" "let f a b = (a : Simul.Ivar.t) = b" [ "R3" ]

let r3_passes () =
  check_rules "other annotated type" ~config:deny_ivar ~filename:"lib/x/a.ml"
    "let f a b = compare (a : int) b" [];
  check_rules "no deny list, no finding" ~filename:"lib/x/a.ml"
    "let f a b = compare (a : Ivar.t) b" []

let r3_waived () =
  check_rules "compare-ok waiver" ~config:deny_ivar ~filename:"lib/x/a.ml"
    "let f a b = compare (a : Ivar.t) b (* lint: compare-ok fixture *)" []

(* ---------------------------------------------------------------- R4 *)

let r4_fires () =
  check_rules "unguarded Trace.emit in lib/core" ~filename:"lib/core/a.ml"
    "let f trace = Trace.emit trace \"x\"" [ "R4" ];
  check_rules "unguarded tr in lib/net" ~filename:"lib/net/a.ml"
    "let f t = tr t \"boom\"" [ "R4" ]

let r4_passes () =
  check_rules "guarded emission" ~filename:"lib/core/a.ml"
    "let f t trace = if tracing t then Trace.emit trace \"x\"" [];
  check_rules "out-of-scope path" ~filename:"lib/harness/a.ml"
    "let f trace = Trace.emit trace \"x\"" []

let r4_waived () =
  check_rules "trace-ok waiver" ~filename:"lib/core/a.ml"
    "let f trace = Trace.emit trace \"x\" (* lint: trace-ok fixture *)" []

(* ---------------------------------------------------------------- R5 *)

let r5_fires () =
  check_rules "undocumented export" ~filename:"lib/x/a.mli"
    "val f : int -> int" [ "R5" ]

let r5_passes () =
  check_rules "documented export" ~filename:"lib/x/a.mli"
    "(** Doubles. *)\nval f : int -> int" []

let r5_waived () =
  check_rules "doc-ok waiver" ~filename:"lib/x/a.mli"
    "val f : int -> int (* lint: doc-ok fixture *)" []

let engine_cfg = Config.parse "engine lib/eng.mli"

let r5_engine_fires () =
  check_rules "engine without Engine_intf include" ~config:engine_cfg
    ~filename:"lib/eng.mli" "(** Engine. *)\ntype t" [ "R5" ]

let r5_engine_passes () =
  check_rules "engine including Engine_intf.S" ~config:engine_cfg
    ~filename:"lib/eng.mli" "(** Engine. *)\ntype t\ninclude Engine_intf.S" []

(* ---------------------------------------------------------------- R7 *)

(* R7 is the cross-file pass: facts are joined over a whole source set, so
   these fixtures go through [run_sources] with a three-file mini-tree —
   the protocol type's defining file, a sender and a handler. *)

let proto_cfg = Config.parse "protocol lib/core/proto.ml msg"
let proto_ml = "type msg = Ping of int | Pong | Halt"

let run_rules ?config sources =
  let r = Driver.run_sources ?config sources in
  List.map
    (fun (f : Report.finding) -> (f.Report.file, f.Report.rule))
    r.Report.findings

let r7_unhandled_send_fires () =
  (* [Halt] is sent but matched by no pattern in the scanned set. The
     handler lives outside lib/core so leg 2 stays quiet. *)
  let rules =
    run_rules ~config:proto_cfg
      [
        ("lib/core/proto.ml", proto_ml);
        ("lib/net/sender.ml", "let f net = send net Halt");
        ("lib/net/handler.ml",
         "let g m = match m with Ping n -> n | Pong -> 0");
      ]
  in
  Alcotest.(check (list (pair string string)))
    "attributed to the send site"
    [ ("lib/net/sender.ml", "R7") ]
    rules

let r7_handled_send_passes () =
  checki "handler branch anywhere suffices" 0
    (List.length
       (run_rules ~config:proto_cfg
          [
            ("lib/core/proto.ml", proto_ml);
            ("lib/net/sender.ml", "let f net = send net Halt");
            ("lib/net/handler.ml",
             "let g m = match m with Ping n -> n | Pong -> 0 | Halt -> 1");
          ]))

let r7_let_bound_send_resolves () =
  (* [let m = Halt in ... send ... m] resolves through the binding. *)
  Alcotest.(check (list (pair string string)))
    "bound message still counts as sent"
    [ ("lib/net/sender.ml", "R7") ]
    (run_rules ~config:proto_cfg
       [
         ("lib/core/proto.ml", proto_ml);
         ("lib/net/sender.ml", "let f net = let m = Halt in send net m");
       ])

let r7_no_protocol_config_is_silent () =
  checki "without a protocol line nothing is protocol" 0
    (List.length
       (run_rules
          [
            ("lib/core/proto.ml", proto_ml);
            ("lib/net/sender.ml", "let f net = send net Halt");
          ]))

let wildcard_dispatch =
  "let g m = match m with Ping n -> n | Pong -> 0 | _ -> 1"

let r7_wildcard_dispatch_fires () =
  (* Two constructors matched, [Halt] swallowed by the catch-all, in a
     dispatch-scoped path. Nobody sends [Halt], so only leg 2 fires. *)
  Alcotest.(check (list (pair string string)))
    "attributed to the catch-all"
    [ ("lib/core/dispatch.ml", "R7") ]
    (run_rules ~config:proto_cfg
       [
         ("lib/core/proto.ml", proto_ml);
         ("lib/core/dispatch.ml", wildcard_dispatch);
       ])

let r7_enumerated_dispatch_passes () =
  checki "full enumeration has no catch-all to flag" 0
    (List.length
       (run_rules ~config:proto_cfg
          [
            ("lib/core/proto.ml", proto_ml);
            ("lib/core/dispatch.ml",
             "let g m = match m with Ping n -> n | Pong -> 0 | Halt -> 1");
          ]))

let r7_dispatch_scope () =
  checki "wildcard dispatch outside lib/core and lib/repl is fine" 0
    (List.length
       (run_rules ~config:proto_cfg
          [
            ("lib/core/proto.ml", proto_ml);
            ("lib/net/dispatch.ml", wildcard_dispatch);
          ]))

let r7_single_ctor_filter_is_not_a_dispatch () =
  (* One constructor plus a catch-all is the idiomatic message filter. *)
  checki "filter idiom passes" 0
    (List.length
       (run_rules ~config:proto_cfg
          [
            ("lib/core/proto.ml", proto_ml);
            ("lib/core/filter.ml",
             "let f = function Ping n -> Some n | _ -> None");
          ]))

let r7_waived () =
  checki "flow-ok next to the catch-all waives" 0
    (List.length
       (run_rules ~config:proto_cfg
          [
            ("lib/core/proto.ml", proto_ml);
            ("lib/core/dispatch.ml",
             "let g m = match m with\n\
             \  | Ping n -> n\n\
             \  | Pong -> 0\n\
             \  (* lint: flow-ok fixture *)\n\
             \  | _ -> 1");
          ]))

(* ---------------------------------------------------------------- R8 *)

let phase_cfg = Config.parse "phase-msg Start_advancement"

let r8_fires () =
  check_rules "phase send with no append anywhere" ~config:phase_cfg
    ~filename:"lib/core/a.ml"
    "let f net = broadcast net (Start_advancement 1)" [ "R8" ]

let r8_passes () =
  check_rules "append sequenced before the send" ~config:phase_cfg
    ~filename:"lib/core/a.ml"
    "let f log net e =\n\
    \  Coord_log.append log e;\n\
    \  broadcast net (Start_advancement 1)"
    []

let r8_branch_miss_fires () =
  (* A dominator on only one arm of an [if] does not dominate the join. *)
  check_rules "append on one branch only" ~config:phase_cfg
    ~filename:"lib/core/a.ml"
    "let f log net e c =\n\
    \  (if c then Coord_log.append log e);\n\
    \  broadcast net (Start_advancement 1)"
    [ "R8" ]

let r8_both_branches_pass () =
  check_rules "append on every arm dominates" ~config:phase_cfg
    ~filename:"lib/core/a.ml"
    "let f log net a b c =\n\
    \  (if c then Coord_log.append log a else Coord_log.append log b);\n\
    \  broadcast net (Start_advancement 1)"
    []

let r8_closure_inherits_dominance () =
  (* The resend-closure idiom: a closure built after the append inherits
     the dominated state at its definition point. *)
  check_rules "resend closure after the append" ~config:phase_cfg
    ~filename:"lib/core/a.ml"
    "let f log net e =\n\
    \  Coord_log.append log e;\n\
    \  let resend () = broadcast net (Start_advancement 1) in\n\
    \  resend ()"
    []

let r8_local_fn_may_dominate () =
  (* The engine's [enter phase] helper: calling a let-bound function whose
     body contains an append counts as a (may-)dominator. *)
  check_rules "local helper containing the append" ~config:phase_cfg
    ~filename:"lib/core/a.ml"
    "let f log net e c =\n\
    \  let enter () = if c then Coord_log.append log e in\n\
    \  enter ();\n\
    \  broadcast net (Start_advancement 1)"
    []

let r8_needs_config () =
  check_rules "no phase-msg lines, no rule" ~filename:"lib/core/a.ml"
    "let f net = broadcast net (Start_advancement 1)" []

let r8_waived () =
  check_rules "order-ok waiver" ~config:phase_cfg ~filename:"lib/core/a.ml"
    "let f net = broadcast net (Start_advancement 1) (* lint: order-ok \
     fixture *)"
    []

(* ---------------------------------------------------------------- R9 *)

let r9_fires () =
  check_rules "bare Mvstore.gc" ~filename:"lib/core/a.ml"
    "let f s = Mvstore.gc s 3" [ "R9" ]

let r9_if_guard_passes () =
  check_rules "gc under a gc_floor comparison" ~filename:"lib/core/a.ml"
    "let f s keep = if Mvstore.gc_floor s < keep then Mvstore.gc s keep" []

let r9_when_guard_passes () =
  check_rules "gc under a gc_floor when-clause" ~filename:"lib/core/a.ml"
    "let f s keep =\n\
    \  match s with\n\
    \  | x when Mvstore.gc_floor x < keep -> Mvstore.gc x keep\n\
    \  | _ -> ()"
    []

let r9_scope () =
  check_rules "outside lib/ the rule is silent" ~filename:"bench/a.ml"
    "let f s = Mvstore.gc s 3" []

let r9_waived () =
  check_rules "guard-ok waiver" ~filename:"lib/core/a.ml"
    "let f s = Mvstore.gc s 3 (* lint: guard-ok fixture *)" []

(* R4 rides the same dominance engine; the guarded region extends into
   closures defined inside it. *)
let r4_closure_in_guard_passes () =
  check_rules "emission in a closure built under the guard"
    ~filename:"lib/core/a.ml"
    "let f t trace =\n\
    \  if tracing t then begin\n\
    \    let g () = Trace.emit trace \"x\" in\n\
    \    g ()\n\
    \  end"
    []

(* ---------------------------------------------------------------- R10 *)

let r10_fires () =
  check_rules "unsafe array read" ~filename:"lib/x/a.ml"
    "let f a i = Array.unsafe_get a i" [ "R10" ];
  check_rules "Obj.magic" ~filename:"lib/x/a.ml"
    "let f x = Obj.magic x" [ "R10" ]

let r10_passes () =
  check_rules "checked accessor" ~filename:"lib/x/a.ml"
    "let f a i = Array.get a i" []

let r10_allowlisted () =
  let config = Config.parse "allow R10 lib/core/counters.ml fixture" in
  let kept, _, allowlisted =
    Driver.lint_source ~config ~filename:"lib/core/counters.ml"
      "let f a i = Array.unsafe_get a i"
  in
  checki "kept" 0 (List.length kept);
  checki "allowlisted" 1 allowlisted;
  check_rules "other files keep firing" ~config ~filename:"lib/core/vclock.ml"
    "let f a i = Array.unsafe_get a i" [ "R10" ]

let r10_waived () =
  check_rules "unsafe-ok waiver" ~filename:"lib/x/a.ml"
    "let f a i = Array.unsafe_get a i (* lint: unsafe-ok fixture *)" []

(* ------------------------------------------------------------- syntax *)

let syntax_error_is_a_finding () =
  check_rules "unparseable input" ~filename:"lib/x/a.ml" "let = (" [ "syntax" ]

(* ----------------------------------------------------- config plumbing *)

let allowlist_suppresses_and_counts () =
  let config = Config.parse "allow R1 lib/x/** fixture" in
  let kept, _, allowlisted =
    Driver.lint_source ~config ~filename:"lib/x/a.ml"
      "let f () = Random.int 10"
  in
  checki "kept" 0 (List.length kept);
  checki "allowlisted" 1 allowlisted;
  (* The allow is path-scoped: other files keep firing. *)
  check_rules "other path still fires" ~config ~filename:"lib/y/a.ml"
    "let f () = Random.int 10" [ "R1" ]

let glob_semantics () =
  checkb "** spans segments" true (Config.glob_match "lib/**" "lib/a/b.ml");
  checkb "* stays in segment" true (Config.glob_match "lib/*.ml" "lib/a.ml");
  checkb "* does not cross /" false (Config.glob_match "lib/*.ml" "lib/a/b.ml");
  checkb "exact" true (Config.glob_match "bench/main.ml" "bench/main.ml")

let unknown_directive_rejected () =
  Alcotest.check_raises "unknown directive"
    (Invalid_argument "lint.config: unknown directive \"frobnicate\"")
    (fun () -> ignore (Config.parse "frobnicate x"))

(* ------------------------------------------------------- waiver lexing *)

(* The waiver scan is a lexer, not a substring search: markers arm only
   inside comments. A ["lint: <tag>"] in a string literal — a test fixture,
   a help text — must not suppress anything. *)
let waiver_in_string_literal_does_not_waive () =
  check_rules "marker inside a string literal" ~filename:"lib/x/a.ml"
    "let help = \"waive with (* lint: nondet-ok *)\"\n\
     let f () = Random.int 10"
    [ "R1" ];
  (* Same inside a comment: OCaml's lexer skips strings within comments,
     and so does the waiver scan. *)
  check_rules "marker inside a string inside a comment"
    ~filename:"lib/x/a.ml"
    "(* the tag is \"lint: nondet-ok\" *)\nlet f () = Random.int 10" [ "R1" ]

let waiver_window_spans_multiline_comment () =
  (* The window runs from the marker line through two lines past the
     comment's close, so a multi-line justification still covers the code
     beneath it. *)
  check_rules "justification on its own lines" ~filename:"lib/x/a.ml"
    "(* lint: nondet-ok — fixture with a\n\
    \   two-line justification *)\n\
     let f () = Random.int 10"
    []

let waiver_window_is_bounded () =
  (* Three blank lines past the close is out of the window: the finding
     comes back. *)
  check_rules "stale waiver does not reach" ~filename:"lib/x/a.ml"
    "(* lint: nondet-ok fixture *)\n\n\n\nlet f () = Random.int 10" [ "R1" ]

let waiver_tags_cover_catalog () =
  (* Every cataloged rule (not [syntax]) has exactly one waiver tag. *)
  let tagged = List.sort_uniq String.compare (List.map snd Driver.waiver_tags) in
  Alcotest.(check (list string))
    "one tag per rule"
    (List.sort String.compare (List.map fst Lint.Rules.all))
    tagged

(* The committed lint.config + the real tree: the gate is at zero. This is
   the in-process twin of the `threev_sim lint` runtest rule, so a
   regression is caught even when only unit tests run. *)
let tree_is_lint_clean () =
  (* Tests run from test/ inside _build; the repo root is two up when the
     source tree is present, but under dune the test cwd only has test/.
     Guard: skip silently when the tree is not visible. *)
  if Sys.file_exists "../lib" && Sys.file_exists "../lint.config" then begin
    (* [config_path] is resolved against [root] by the driver. *)
    let report = Driver.run ~config_path:"lint.config" ~root:".." () in
    checki "non-waived findings" 0 (Report.total report)
  end

(* ------------------------------------------------------------- qcheck *)

let finding_gen =
  QCheck.Gen.(
    let* file = oneofl [ "lib/a.ml"; "lib/b/c.ml"; "bench/d.ml" ] in
    let* line = 1 -- 999 in
    let* col = 0 -- 80 in
    let* rule = oneofl (Report.rule_ids @ [ "R99" ]) in
    let* msg = string_size ~gen:printable (0 -- 40) in
    return { Report.file; line; col; rule; msg })

let arbitrary_report =
  QCheck.make
    QCheck.Gen.(
      let* findings = list_size (0 -- 30) finding_gen in
      let* files_scanned = 0 -- 500 in
      let* waived = 0 -- 50 in
      let* allowlisted = 0 -- 50 in
      return (Report.make ~findings ~files_scanned ~waived ~allowlisted))

(* lint/v2 JSON round-trips: parsing [to_json] succeeds, re-serializing
   reproduces the bytes, and the embedded counts sum to the total. *)
let report_json_roundtrips =
  QCheck.Test.make ~name:"report JSON round-trips, counts sum to total"
    ~count:300 arbitrary_report (fun r ->
      let doc = Report.to_json r in
      let json = Report.json_of_string doc in
      let fields = match json with Report.Obj kvs -> kvs | _ -> [] in
      let int_field name =
        match List.assoc_opt name fields with
        | Some (Report.Int n) -> n
        | _ -> -1
      in
      let counts_sum =
        match List.assoc_opt "counts" fields with
        | Some (Report.Obj kvs) ->
            List.fold_left
              (fun acc (_, v) ->
                match v with Report.Int n -> acc + n | _ -> acc)
              0 kvs
        | _ -> -1
      in
      let findings_len =
        match List.assoc_opt "findings" fields with
        | Some (Report.List l) -> List.length l
        | _ -> -1
      in
      Report.json_to_string json = doc
      && int_field "total" = Report.total r
      && counts_sum = Report.total r
      && findings_len = Report.total r)

(* The counts invariant holds on the OCaml side too, including findings
   whose rule id is outside the catalog. *)
let counts_sum_to_total =
  QCheck.Test.make ~name:"Report.counts sums to Report.total" ~count:300
    arbitrary_report (fun r ->
      List.fold_left (fun acc (_, n) -> acc + n) 0 (Report.counts r)
      = Report.total r
      && List.for_all (fun id -> List.mem_assoc id (Report.counts r))
           Report.rule_ids)

let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Report.Null;
        map (fun b -> Report.Bool b) bool;
        map (fun i -> Report.Int i) small_signed_int;
        map (fun s -> Report.String s) (string_size (0 -- 12));
      ]
  in
  sized_size (0 -- 3) (fun fuel ->
      fix
        (fun self fuel ->
          if fuel = 0 then scalar
          else
            oneof
              [
                scalar;
                map (fun l -> Report.List l)
                  (list_size (0 -- 4) (self (fuel - 1)));
                map
                  (fun kvs -> Report.Obj kvs)
                  (list_size (0 -- 4)
                     (pair (string_size (0 -- 6)) (self (fuel - 1))));
              ])
        fuel)

let json_value_roundtrips =
  QCheck.Test.make ~name:"json value print/parse round-trips" ~count:500
    (QCheck.make json_gen) (fun j ->
      Report.json_of_string (Report.json_to_string j) = j)

(* The typed round-trip: [of_json] inverts [to_json] up to the derived
   fields it recomputes — i.e. exactly, since [make] canonicalizes both
   sides. *)
let report_of_json_roundtrips =
  QCheck.Test.make ~name:"Report.of_json inverts to_json" ~count:300
    arbitrary_report (fun r -> Report.of_json (Report.to_json r) = r)

let of_json_accepts_v1 () =
  (* The legacy schema tag parses; everything else about the layout is
     identical, and derived fields are recomputed rather than trusted. *)
  let doc =
    "{\"schema\":\"lint/v1\",\"files_scanned\":3,\"total\":99,\"waived\":1,\
     \"allowlisted\":2,\"counts\":{\"R1\":99},\"findings\":[{\"file\":\
     \"lib/a.ml\",\"line\":4,\"col\":2,\"rule\":\"R1\",\"msg\":\"boom\"}]}"
  in
  let r = Report.of_json doc in
  checki "files_scanned" 3 r.Report.files_scanned;
  checki "waived" 1 r.Report.waived;
  checki "total recomputed, not trusted" 1 (Report.total r)

let of_json_rejects_garbage () =
  let rejects doc =
    match Report.of_json doc with
    | _ -> Alcotest.failf "accepted %S" doc
    | exception Report.Parse_error _ -> ()
  in
  rejects "{\"schema\":\"lint/v3\",\"findings\":[]}";
  rejects "{\"findings\":[]}";
  rejects "[1,2,3]";
  rejects "not json at all"

(* ----------------------------------------------------------- baseline *)

let finding ?(line = 1) ?(col = 0) ~file ~rule msg =
  { Report.file; line; col; rule; msg }

let diff_matches_per_occurrence () =
  let old_f = finding ~file:"lib/a.ml" ~rule:"R1" "old" in
  let new_f = finding ~file:"lib/a.ml" ~rule:"R1" "new" in
  (* A baselined finding is consumed once per occurrence: two identical
     current findings against one baseline entry keep one. *)
  Alcotest.(check int)
    "second occurrence is new" 1
    (List.length
       (Report.diff ~baseline:[ old_f ]
          [ old_f; { old_f with Report.line = 7 }; new_f ]
        |> List.filter (fun f -> f.Report.msg = "old")));
  Alcotest.(check (list string))
    "new finding always kept" [ "new" ]
    (List.map
       (fun f -> f.Report.msg)
       (Report.diff ~baseline:[ old_f ] [ old_f; new_f ])
     |> List.filter (fun m -> m = "new"))

(* The ratchet property: line drift never resurrects a baselined finding,
   and findings absent from the baseline always survive the diff. Old and
   new finding populations are kept key-disjoint by construction (msg
   prefixes), since the match key is (file, rule, msg). *)
let baseline_diff_property =
  let prefixed p =
    QCheck.Gen.map (fun f -> { f with Report.msg = p ^ f.Report.msg }) finding_gen
  in
  QCheck.Test.make ~name:"diff suppresses drifted old, keeps new" ~count:200
    (QCheck.make
       QCheck.Gen.(
         let* olds = list_size (0 -- 15) (prefixed "OLD:") in
         let* news = list_size (0 -- 15) (prefixed "NEW:") in
         let* shift = 1 -- 50 in
         return (olds, news, shift)))
    (fun (olds, news, shift) ->
      let drifted =
        List.map (fun f -> { f with Report.line = f.Report.line + shift }) olds
      in
      Report.diff ~baseline:olds (drifted @ news) = news)

(* ---------------------------------------------------------------- run *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "lint"
    [
      ( "r1",
        [
          Alcotest.test_case "fires" `Quick r1_fires;
          Alcotest.test_case "passes" `Quick r1_passes;
          Alcotest.test_case "waived" `Quick r1_waived;
          Alcotest.test_case "waiver rule-scoped" `Quick
            r1_waiver_is_rule_scoped;
        ] );
      ( "r2",
        [
          Alcotest.test_case "fires" `Quick r2_fires;
          Alcotest.test_case "passes" `Quick r2_passes;
          Alcotest.test_case "per-item granularity" `Quick
            r2_sort_elsewhere_does_not_excuse;
          Alcotest.test_case "waived" `Quick r2_waived;
          Alcotest.test_case "counter_set tripwire" `Quick
            r2_counter_set_tripwire;
        ] );
      ( "r3",
        [
          Alcotest.test_case "fires" `Quick r3_fires;
          Alcotest.test_case "passes" `Quick r3_passes;
          Alcotest.test_case "waived" `Quick r3_waived;
        ] );
      ( "r4",
        [
          Alcotest.test_case "fires" `Quick r4_fires;
          Alcotest.test_case "passes" `Quick r4_passes;
          Alcotest.test_case "waived" `Quick r4_waived;
        ] );
      ( "r5",
        [
          Alcotest.test_case "fires" `Quick r5_fires;
          Alcotest.test_case "passes" `Quick r5_passes;
          Alcotest.test_case "waived" `Quick r5_waived;
          Alcotest.test_case "engine fires" `Quick r5_engine_fires;
          Alcotest.test_case "engine passes" `Quick r5_engine_passes;
        ] );
      ( "r7",
        [
          Alcotest.test_case "unhandled send fires" `Quick
            r7_unhandled_send_fires;
          Alcotest.test_case "handled send passes" `Quick
            r7_handled_send_passes;
          Alcotest.test_case "let-bound send resolves" `Quick
            r7_let_bound_send_resolves;
          Alcotest.test_case "needs protocol config" `Quick
            r7_no_protocol_config_is_silent;
          Alcotest.test_case "wildcard dispatch fires" `Quick
            r7_wildcard_dispatch_fires;
          Alcotest.test_case "enumerated dispatch passes" `Quick
            r7_enumerated_dispatch_passes;
          Alcotest.test_case "dispatch scope" `Quick r7_dispatch_scope;
          Alcotest.test_case "filter idiom passes" `Quick
            r7_single_ctor_filter_is_not_a_dispatch;
          Alcotest.test_case "waived" `Quick r7_waived;
        ] );
      ( "r8",
        [
          Alcotest.test_case "fires" `Quick r8_fires;
          Alcotest.test_case "passes" `Quick r8_passes;
          Alcotest.test_case "branch miss fires" `Quick r8_branch_miss_fires;
          Alcotest.test_case "both branches pass" `Quick r8_both_branches_pass;
          Alcotest.test_case "closure inherits" `Quick
            r8_closure_inherits_dominance;
          Alcotest.test_case "local fn may dominate" `Quick
            r8_local_fn_may_dominate;
          Alcotest.test_case "needs config" `Quick r8_needs_config;
          Alcotest.test_case "waived" `Quick r8_waived;
        ] );
      ( "r9",
        [
          Alcotest.test_case "fires" `Quick r9_fires;
          Alcotest.test_case "if guard passes" `Quick r9_if_guard_passes;
          Alcotest.test_case "when guard passes" `Quick r9_when_guard_passes;
          Alcotest.test_case "scope" `Quick r9_scope;
          Alcotest.test_case "waived" `Quick r9_waived;
          Alcotest.test_case "r4 closure in guard" `Quick
            r4_closure_in_guard_passes;
        ] );
      ( "r10",
        [
          Alcotest.test_case "fires" `Quick r10_fires;
          Alcotest.test_case "passes" `Quick r10_passes;
          Alcotest.test_case "allowlisted" `Quick r10_allowlisted;
          Alcotest.test_case "waived" `Quick r10_waived;
        ] );
      ( "driver",
        [
          Alcotest.test_case "syntax error" `Quick syntax_error_is_a_finding;
          Alcotest.test_case "allowlist" `Quick allowlist_suppresses_and_counts;
          Alcotest.test_case "glob" `Quick glob_semantics;
          Alcotest.test_case "unknown directive" `Quick
            unknown_directive_rejected;
          Alcotest.test_case "tree clean" `Quick tree_is_lint_clean;
        ] );
      ( "waivers",
        [
          Alcotest.test_case "string literal is inert" `Quick
            waiver_in_string_literal_does_not_waive;
          Alcotest.test_case "multiline comment window" `Quick
            waiver_window_spans_multiline_comment;
          Alcotest.test_case "window is bounded" `Quick
            waiver_window_is_bounded;
          Alcotest.test_case "tags cover catalog" `Quick
            waiver_tags_cover_catalog;
        ] );
      ( "report",
        [
          qc report_json_roundtrips;
          qc counts_sum_to_total;
          qc json_value_roundtrips;
          qc report_of_json_roundtrips;
          Alcotest.test_case "of_json accepts v1" `Quick of_json_accepts_v1;
          Alcotest.test_case "of_json rejects garbage" `Quick
            of_json_rejects_garbage;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "per-occurrence match" `Quick
            diff_matches_per_occurrence;
          qc baseline_diff_property;
        ] );
    ]
