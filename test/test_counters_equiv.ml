(* Equivalence harness for the windowed flat counter tables.

   [Threev.Counters] replaced a Hashtbl-of-rows representation with a dense
   sliding window of [Counters.window] slots plus a spill table for
   out-of-window versions. The two representations must be observationally
   identical under every interleaving of increments, reads, snapshots and
   GC — including increments landing below an advanced GC floor (a late
   completion resurrecting a collected version) and far above the window
   (a version opened before the floor caught up), and floors that adopt
   spill rows back into the window. [Ref_counters] below reimplements the
   old boxed representation as the oracle; qcheck drives both through
   random op sequences and compares every observable after each step.

   [Threev.Vwindow] (windowed int-per-version tallies, same windowing
   discipline) gets the same treatment against a plain Hashtbl oracle. *)

module Counters = Threev.Counters
module Vwindow = Threev.Vwindow

let checki = Alcotest.(check int)

(* ------------------------------------------------ reference oracle *)

module Ref_counters = struct
  type row = { req : int array; comp : int array }
  type t = { nodes : int; tbl : (int, row) Hashtbl.t }

  let create ~nodes = { nodes; tbl = Hashtbl.create 8 }

  let row t v =
    match Hashtbl.find_opt t.tbl v with
    | Some r -> r
    | None ->
        let r = { req = Array.make t.nodes 0; comp = Array.make t.nodes 0 } in
        Hashtbl.replace t.tbl v r;
        r

  let ensure_version t v = ignore (row t v)

  let incr_r t ~version ~dst =
    let r = row t version in
    r.req.(dst) <- r.req.(dst) + 1

  let incr_c t ~version ~src =
    let r = row t version in
    r.comp.(src) <- r.comp.(src) + 1

  let r t ~version ~dst =
    match Hashtbl.find_opt t.tbl version with
    | None -> 0
    | Some row -> row.req.(dst)

  let c t ~version ~src =
    match Hashtbl.find_opt t.tbl version with
    | None -> 0
    | Some row -> row.comp.(src)

  let snapshot_r t ~version =
    match Hashtbl.find_opt t.tbl version with
    | None -> Array.make t.nodes 0
    | Some row -> Array.copy row.req

  let snapshot_c t ~version =
    match Hashtbl.find_opt t.tbl version with
    | None -> Array.make t.nodes 0
    | Some row -> Array.copy row.comp

  let versions t =
    Hashtbl.fold (fun v _ acc -> v :: acc) t.tbl [] |> List.sort Int.compare

  let gc_below t v =
    let dead =
      Hashtbl.fold (fun w _ acc -> if w < v then w :: acc else acc) t.tbl []
    in
    List.iter (Hashtbl.remove t.tbl) dead
end

(* -------------------------------------------------- op sequences *)

type op =
  | Incr_r of int * int  (* version, dst *)
  | Incr_c of int * int  (* version, src *)
  | Ensure of int
  | Gc of int

let op_to_string = function
  | Incr_r (v, d) -> Printf.sprintf "Incr_r(%d,%d)" v d
  | Incr_c (v, s) -> Printf.sprintf "Incr_c(%d,%d)" v s
  | Ensure v -> Printf.sprintf "Ensure(%d)" v
  | Gc v -> Printf.sprintf "Gc(%d)" v

(* Versions range over several windows' worth of values, so a run visits
   in-window fast paths, above-window spills, below-floor resurrections
   (an [Incr_*] at a version an earlier [Gc] collected), and GC-edge
   adoption of spill rows. *)
let max_version = 6 * Counters.window

let op_gen nodes =
  QCheck.Gen.(
    frequency
      [
        ( 5,
          map2 (fun v d -> Incr_r (v, d)) (int_bound max_version)
            (int_bound (nodes - 1)) );
        ( 5,
          map2 (fun v s -> Incr_c (v, s)) (int_bound max_version)
            (int_bound (nodes - 1)) );
        (1, map (fun v -> Ensure v) (int_bound max_version));
        (2, map (fun v -> Gc v) (int_bound max_version));
      ])

let ops_arbitrary nodes =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_to_string ops))
    QCheck.Gen.(list_size (int_range 0 200) (op_gen nodes))

let apply_real cnt = function
  | Incr_r (version, dst) -> Counters.incr_r cnt ~version ~dst
  | Incr_c (version, src) -> Counters.incr_c cnt ~version ~src
  | Ensure version -> Counters.ensure_version cnt version
  | Gc version -> Counters.gc_below cnt version

let apply_ref oracle = function
  | Incr_r (version, dst) -> Ref_counters.incr_r oracle ~version ~dst
  | Incr_c (version, src) -> Ref_counters.incr_c oracle ~version ~src
  | Ensure version -> Ref_counters.ensure_version oracle version
  | Gc version -> Ref_counters.gc_below oracle version

(* Every observable the engine uses, compared over the full probe space.
   Snapshots are compared by content — the shared-zero-row optimisation
   must be invisible. [fold_versions] is probed with min/max, the
   commutative folds the engine runs on the poll path. *)
let observably_equal nodes cnt oracle =
  let ok = ref true in
  for v = 0 to max_version do
    for node = 0 to nodes - 1 do
      if Counters.r cnt ~version:v ~dst:node <> Ref_counters.r oracle ~version:v ~dst:node
      then ok := false;
      if Counters.c cnt ~version:v ~src:node <> Ref_counters.c oracle ~version:v ~src:node
      then ok := false
    done;
    if Counters.snapshot_r cnt ~version:v <> Ref_counters.snapshot_r oracle ~version:v
    then ok := false;
    if Counters.snapshot_c cnt ~version:v <> Ref_counters.snapshot_c oracle ~version:v
    then ok := false
  done;
  (* [versions] must agree exactly (sorted ascending on both sides)... *)
  if Counters.versions cnt <> Ref_counters.versions oracle then ok := false;
  (* ...and so must commutative folds over the version set. *)
  (match Ref_counters.versions oracle with
  | [] -> ()
  | first :: _ as vs ->
      let last = List.nth vs (List.length vs - 1) in
      if Counters.fold_versions cnt (fun v acc -> min v acc) max_int <> first
      then ok := false;
      if Counters.fold_versions cnt (fun v acc -> max v acc) min_int <> last
      then ok := false);
  !ok

let equivalence_property nodes =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "windowed counters == boxed oracle (%d nodes)" nodes)
    ~count:300 (ops_arbitrary nodes)
    (fun ops ->
      let cnt = Counters.create ~nodes in
      let oracle = Ref_counters.create ~nodes in
      List.for_all
        (fun op ->
          apply_real cnt op;
          apply_ref oracle op;
          observably_equal nodes cnt oracle)
        ops)

(* A directed GC-edge walk qcheck tends to under-sample: monotone floors
   sweeping across a long version run, with spills written ahead of the
   window and resurrected behind it at every step. *)
let gc_edge_walk () =
  let nodes = 3 in
  let cnt = Counters.create ~nodes in
  let oracle = Ref_counters.create ~nodes in
  let both op =
    apply_real cnt op;
    apply_ref oracle op
  in
  for v = 0 to 40 do
    both (Incr_r (v, v mod nodes));
    both (Incr_c (v + Counters.window, (v + 1) mod nodes));
    (* fill far ahead of the window *)
    both (Incr_r (v + (3 * Counters.window), v mod nodes));
    both (Gc v);
    (* resurrect behind the floor *)
    if v > 2 then both (Incr_c (v - 2, v mod nodes));
    Alcotest.(check bool)
      (Printf.sprintf "equal after step %d" v)
      true
      (observably_equal nodes cnt oracle)
  done

(* The shared zero row must read as all-zero and fresh snapshots must not
   alias live counter state. *)
let snapshot_isolation () =
  let cnt = Counters.create ~nodes:4 in
  let z = Counters.snapshot_r cnt ~version:9 in
  checki "zero row" 0 (Array.fold_left ( + ) 0 z);
  Counters.incr_r cnt ~version:2 ~dst:1;
  let s = Counters.snapshot_r cnt ~version:2 in
  Counters.incr_r cnt ~version:2 ~dst:1;
  checki "snapshot is a copy" 1 s.(1);
  checki "live row moved on" 2 (Counters.r cnt ~version:2 ~dst:1)

(* ------------------------------------------------------- vwindow *)

let vwindow_equivalence =
  QCheck.Test.make ~name:"vwindow == hashtbl oracle" ~count:300
    (QCheck.make
       ~print:(fun ops ->
         String.concat "; "
           (List.map
              (fun (k, v) ->
                if k = 0 then Printf.sprintf "Add(%d)" v
                else Printf.sprintf "Gc(%d)" v)
              ops))
       QCheck.Gen.(
         list_size (int_range 0 150)
           (pair (int_bound 4) (int_bound (6 * Vwindow.window)))))
    (fun ops ->
      let w = Vwindow.create () in
      let oracle = Hashtbl.create 8 in
      let max_v = 6 * Vwindow.window in
      List.for_all
        (fun (kind, v) ->
          if kind = 0 then begin
            Vwindow.add w v 1;
            Hashtbl.replace oracle v
              ((match Hashtbl.find_opt oracle v with Some n -> n | None -> 0)
              + 1)
          end
          else begin
            Vwindow.gc_below w v;
            Hashtbl.iter
              (fun k _ -> if k < v then Hashtbl.remove oracle k)
              (Hashtbl.copy oracle)
          end;
          let ok = ref true in
          for probe = 0 to max_v do
            let expect =
              match Hashtbl.find_opt oracle probe with Some n -> n | None -> 0
            in
            if Vwindow.get w probe <> expect then ok := false
          done;
          !ok)
        ops)

let () =
  Alcotest.run "counters-equiv"
    [
      ( "counters",
        Alcotest.test_case "gc edge walk" `Quick gc_edge_walk
        :: Alcotest.test_case "snapshot isolation" `Quick snapshot_isolation
        :: List.map QCheck_alcotest.to_alcotest
             [ equivalence_property 2; equivalence_property 5 ] );
      ("vwindow", List.map QCheck_alcotest.to_alcotest [ vwindow_equivalence ]);
    ]
