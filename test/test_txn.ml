(* Tests for the transaction model: values, operations, specs, and the
   commute-aware lock manager. *)

module Sim = Simul.Sim
module Value = Txn.Value
module Op = Txn.Op
module Spec = Txn.Spec
module Result = Txn.Result
module Lockmgr = Txn.Lockmgr

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------ value *)

let value_incr_append () =
  let v =
    Value.empty
    |> Value.incr ~txn:1 ~delta:5.
    |> Value.append ~txn:2 ~entry:"rec"
    |> Value.incr ~txn:1 ~delta:(-2.)
  in
  Alcotest.(check (float 1e-9)) "amount" 3. v.Value.amount;
  checki "entries" 1 (List.length v.Value.entries);
  checkb "writers" true
    (Value.Writers.elements v.Value.writers = [ 1; 2 ])

let value_overwrite () =
  let v = Value.empty |> Value.incr ~txn:1 ~delta:5. in
  let v = Value.overwrite ~txn:3 ~amount:99. v in
  Alcotest.(check (float 1e-9)) "amount replaced" 99. v.Value.amount;
  checkb "writer recorded" true (Value.Writers.mem 3 v.Value.writers)

(* The heart of the paper's assumption: commuting subtransaction bodies
   reach the same state in either order. *)
let value_commutation =
  let op_gen =
    QCheck.Gen.(
      oneof
        [
          map2 (fun t d -> `Incr (t, d)) (int_range 1 5)
            (float_range (-10.) 10.);
          map2 (fun t e -> `Append (t, "e" ^ string_of_int e)) (int_range 1 5)
            (int_range 0 9);
        ])
  in
  let apply v = function
    | `Incr (txn, delta) -> Value.incr ~txn ~delta v
    | `Append (txn, entry) -> Value.append ~txn ~entry v
  in
  QCheck.Test.make ~name:"commuting ops commute (multiset equality)" ~count:300
    (QCheck.make
       QCheck.Gen.(pair (list_size (int_range 0 10) op_gen)
                     (list_size (int_range 0 10) op_gen)))
    (fun (a, b) ->
      let run ops = List.fold_left apply Value.empty ops in
      Value.equal (run (a @ b)) (run (b @ a)))

(* --------------------------------------------------------------- op *)

let op_classification () =
  checkb "read not write" false (Op.is_write (Op.Read "k"));
  checkb "incr write" true (Op.is_write (Op.Incr ("k", 1.)));
  checkb "incr commutes" true (Op.commuting_write (Op.Incr ("k", 1.)));
  checkb "append commutes" true (Op.commuting_write (Op.Append ("k", "e")));
  checkb "overwrite does not" false (Op.commuting_write (Op.Overwrite ("k", 1.)));
  Alcotest.(check string) "key" "k" (Op.key (Op.Overwrite ("k", 1.)))

(* ------------------------------------------------------------- spec *)

let spec_classify () =
  let read = Spec.make ~id:1 (Spec.subtxn 0 [ Op.Read "a" ]) in
  checkb "read-only" true (read.Spec.kind = Spec.Read_only);
  let upd =
    Spec.make ~id:2
      (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Append ("b", "x") ] ] 0
         [ Op.Incr ("a", 1.); Op.Read "c" ])
  in
  checkb "commuting" true (upd.Spec.kind = Spec.Commuting);
  let nc =
    Spec.make ~id:3
      (Spec.subtxn ~children:[ Spec.subtxn 1 [ Op.Overwrite ("b", 2.) ] ] 0
         [ Op.Incr ("a", 1.) ])
  in
  checkb "one overwrite anywhere makes it non-commuting" true
    (nc.Spec.kind = Spec.Non_commuting)

let spec_accessors () =
  let tree =
    Spec.subtxn
      ~children:
        [
          Spec.subtxn 2 [ Op.Read "x" ];
          Spec.subtxn ~children:[ Spec.subtxn 0 [ Op.Incr ("z", 1.) ] ] 1
            [ Op.Incr ("y", 1.) ];
        ]
      0
      [ Op.Read "w"; Op.Incr ("x", 1.) ]
  in
  let spec = Spec.make ~id:7 ~label:"t" tree in
  Alcotest.(check (list int)) "nodes" [ 0; 1; 2 ] (Spec.nodes spec);
  Alcotest.(check (list string)) "read keys" [ "w"; "x" ] (Spec.keys_read spec);
  Alcotest.(check (list string)) "written keys" [ "x"; "y"; "z" ]
    (Spec.keys_written spec);
  checki "size" 4 (Spec.size spec)

let result_latencies () =
  let r =
    {
      Result.txn_id = 1;
      served_by = 0;
      outcome = Result.Committed;
      version = 1;
      reads = [];
      submit_time = 1.0;
      root_commit_time = 1.25;
      complete_time = 2.0;
    }
  in
  Alcotest.(check (float 1e-9)) "settle" 1.0 (Result.latency r);
  Alcotest.(check (float 1e-9)) "blocking" 0.25 (Result.blocking_latency r);
  checkb "committed" true (Result.committed r);
  checkb "aborted" false (Result.committed { r with outcome = Result.Aborted "x" })

(* ---------------------------------------------------------- lockmgr *)

let compat () =
  checkb "S/S" true (Lockmgr.compatible Lockmgr.Shared Lockmgr.Shared);
  checkb "S/X" false (Lockmgr.compatible Lockmgr.Shared Lockmgr.Exclusive);
  checkb "X/X" false (Lockmgr.compatible Lockmgr.Exclusive Lockmgr.Exclusive);
  checkb "CR/CU" true (Lockmgr.compatible Lockmgr.Commute_read Lockmgr.Commute_update);
  checkb "CU/CU" true (Lockmgr.compatible Lockmgr.Commute_update Lockmgr.Commute_update);
  checkb "NC/CU" false (Lockmgr.compatible Lockmgr.Non_commute Lockmgr.Commute_update);
  checkb "NC/NC" false (Lockmgr.compatible Lockmgr.Non_commute Lockmgr.Non_commute)

(* Run a body inside a simulation and return its result after the run. *)
let in_sim body =
  let sim = Sim.create () in
  let out = ref None in
  Sim.spawn sim (fun () -> out := Some (body sim));
  (match Sim.run sim () with
  | Sim.Completed -> ()
  | Sim.Stalled names ->
      Alcotest.failf "stalled: %s" (String.concat "," names)
  | Sim.Hit_limit -> ());
  match !out with Some v -> v | None -> Alcotest.fail "body did not finish"

let shared_locks_coexist () =
  let granted =
    in_sim (fun sim ->
        let lm = Lockmgr.create sim () in
        let a = Lockmgr.acquire lm ~owner:1 ~key:"k" ~mode:Lockmgr.Shared () in
        let b = Lockmgr.acquire lm ~owner:2 ~key:"k" ~mode:Lockmgr.Shared () in
        (a, b))
  in
  checkb "both granted" true (granted = (Lockmgr.Granted, Lockmgr.Granted))

let exclusive_blocks_until_release () =
  let order =
    in_sim (fun sim ->
        let lm = Lockmgr.create sim ~deadlock_timeout:infinity () in
        let log = ref [] in
        ignore (Lockmgr.acquire lm ~owner:1 ~key:"k" ~mode:Lockmgr.Exclusive ());
        Sim.spawn sim (fun () ->
            (match Lockmgr.acquire lm ~owner:2 ~key:"k" ~mode:Lockmgr.Exclusive () with
            | Lockmgr.Granted -> log := "granted" :: !log
            | _ -> log := "refused" :: !log));
        Sim.sleep sim 1.0;
        log := "releasing" :: !log;
        Lockmgr.release_all lm ~owner:1;
        Sim.sleep sim 0.1;
        List.rev !log)
  in
  checkb "waiter granted only after release" true
    (order = [ "releasing"; "granted" ])

let commute_locks_never_wait () =
  let all_granted =
    in_sim (fun sim ->
        let lm = Lockmgr.create sim () in
        List.for_all
          (fun owner ->
            Lockmgr.acquire lm ~owner ~key:"hot" ~mode:Lockmgr.Commute_update ()
            = Lockmgr.Granted)
          [ 1; 2; 3; 4; 5 ])
  in
  checkb "five concurrent commute-update locks" true all_granted

let nc_blocks_commute () =
  let result =
    in_sim (fun sim ->
        let lm = Lockmgr.create sim ~deadlock_timeout:infinity () in
        ignore (Lockmgr.acquire lm ~owner:1 ~key:"k" ~mode:Lockmgr.Non_commute ());
        let got = ref None in
        Sim.spawn sim (fun () ->
            got :=
              Some (Lockmgr.acquire lm ~owner:2 ~key:"k" ~mode:Lockmgr.Commute_update ()));
        Sim.sleep sim 0.5;
        let blocked = !got = None in
        Lockmgr.release_all lm ~owner:1;
        Sim.sleep sim 0.1;
        (blocked, !got))
  in
  checkb "blocked then granted" true (result = (true, Some Lockmgr.Granted))

let deadlock_detected () =
  let outcome =
    in_sim (fun sim ->
        let lm = Lockmgr.create sim ~deadlock_timeout:infinity () in
        ignore (Lockmgr.acquire lm ~owner:1 ~key:"a" ~mode:Lockmgr.Exclusive ());
        ignore (Lockmgr.acquire lm ~owner:2 ~key:"b" ~mode:Lockmgr.Exclusive ());
        let r1 = ref None in
        Sim.spawn sim (fun () ->
            r1 := Some (Lockmgr.acquire lm ~owner:1 ~key:"b" ~mode:Lockmgr.Exclusive ()));
        Sim.sleep sim 0.1;
        (* Owner 2 now closes the cycle: must be refused immediately. *)
        let r2 = Lockmgr.acquire lm ~owner:2 ~key:"a" ~mode:Lockmgr.Exclusive () in
        (* Let owner 2 abort, releasing b, which unblocks owner 1. *)
        Lockmgr.release_all lm ~owner:2;
        Sim.sleep sim 0.1;
        (r2, !r1))
  in
  checkb "cycle refused and victim's release unblocks waiter" true
    (outcome = (Lockmgr.Deadlock, Some Lockmgr.Granted))

let timeout_fires () =
  let result =
    in_sim (fun sim ->
        let lm = Lockmgr.create sim ~deadlock_timeout:0.2 () in
        ignore (Lockmgr.acquire lm ~owner:1 ~key:"k" ~mode:Lockmgr.Exclusive ());
        let t0 = Sim.now sim in
        let r = Lockmgr.acquire lm ~owner:2 ~key:"k" ~mode:Lockmgr.Exclusive () in
        (r, Sim.now sim -. t0))
  in
  checkb "timed out at the deadline" true
    (fst result = Lockmgr.Timeout && abs_float (snd result -. 0.2) < 1e-9)

let per_call_timeout_overrides () =
  let result =
    in_sim (fun sim ->
        let lm = Lockmgr.create sim ~deadlock_timeout:10.0 () in
        ignore (Lockmgr.acquire lm ~owner:1 ~key:"k" ~mode:Lockmgr.Exclusive ());
        Lockmgr.acquire lm ~timeout:0.05 ~owner:2 ~key:"k"
          ~mode:Lockmgr.Exclusive ())
  in
  checkb "per-call timeout" true (result = Lockmgr.Timeout)

let reentrant_acquire () =
  let result =
    in_sim (fun sim ->
        let lm = Lockmgr.create sim () in
        let a = Lockmgr.acquire lm ~owner:1 ~key:"k" ~mode:Lockmgr.Shared () in
        (* Even with an incompatible waiter queued, the holder's own new
           request must not deadlock behind it. *)
        Sim.spawn sim (fun () ->
            ignore (Lockmgr.acquire lm ~owner:2 ~key:"k" ~mode:Lockmgr.Exclusive ()));
        Sim.sleep sim 0.01;
        let b = Lockmgr.acquire lm ~owner:1 ~key:"k" ~mode:Lockmgr.Shared () in
        Lockmgr.release_all lm ~owner:1;
        Sim.sleep sim 0.01;
        Lockmgr.release_all lm ~owner:2;
        (a, b))
  in
  checkb "re-entrant" true (result = (Lockmgr.Granted, Lockmgr.Granted))

let fifo_no_overtaking () =
  let order =
    in_sim (fun sim ->
        let lm = Lockmgr.create sim ~deadlock_timeout:infinity () in
        ignore (Lockmgr.acquire lm ~owner:1 ~key:"k" ~mode:Lockmgr.Exclusive ());
        let log = ref [] in
        (* Owner 2 queues for X; owner 3's S request arrives later and must
           not overtake it. *)
        Sim.spawn sim (fun () ->
            ignore (Lockmgr.acquire lm ~owner:2 ~key:"k" ~mode:Lockmgr.Exclusive ());
            log := 2 :: !log;
            Sim.sleep sim 0.1;
            Lockmgr.release_all lm ~owner:2);
        Sim.sleep sim 0.01;
        Sim.spawn sim (fun () ->
            ignore (Lockmgr.acquire lm ~owner:3 ~key:"k" ~mode:Lockmgr.Shared ());
            log := 3 :: !log;
            Lockmgr.release_all lm ~owner:3);
        Sim.sleep sim 0.05;
        Lockmgr.release_all lm ~owner:1;
        Sim.sleep sim 1.0;
        List.rev !log)
  in
  checkb "fifo order" true (order = [ 2; 3 ])

let held_and_counts () =
  in_sim (fun sim ->
      let lm = Lockmgr.create sim () in
      ignore (Lockmgr.acquire lm ~owner:1 ~key:"a" ~mode:Lockmgr.Shared ());
      ignore (Lockmgr.acquire lm ~owner:1 ~key:"b" ~mode:Lockmgr.Exclusive ());
      checkb "held" true
        (Lockmgr.held lm ~owner:1
        = [ ("a", Lockmgr.Shared); ("b", Lockmgr.Exclusive) ]);
      checki "no waiters" 0 (Lockmgr.waiting lm);
      Lockmgr.release_all lm ~owner:1;
      checkb "released" true (Lockmgr.held lm ~owner:1 = []))

let release_wakes_multiple_shared () =
  let count =
    in_sim (fun sim ->
        let lm = Lockmgr.create sim ~deadlock_timeout:infinity () in
        ignore (Lockmgr.acquire lm ~owner:1 ~key:"k" ~mode:Lockmgr.Exclusive ());
        let granted = ref 0 in
        for owner = 2 to 4 do
          Sim.spawn sim (fun () ->
              match Lockmgr.acquire lm ~owner ~key:"k" ~mode:Lockmgr.Shared () with
              | Lockmgr.Granted -> incr granted
              | _ -> ())
        done;
        Sim.sleep sim 0.1;
        Lockmgr.release_all lm ~owner:1;
        Sim.sleep sim 0.1;
        !granted)
  in
  checki "all shared waiters granted together" 3 count

let reentrant_no_duplicate_holders () =
  in_sim (fun sim ->
      let lm = Lockmgr.create sim () in
      ignore (Lockmgr.acquire lm ~owner:1 ~key:"k" ~mode:Lockmgr.Shared ());
      ignore (Lockmgr.acquire lm ~owner:1 ~key:"k" ~mode:Lockmgr.Shared ());
      ignore (Lockmgr.acquire lm ~owner:1 ~key:"k" ~mode:Lockmgr.Shared ());
      checkb "re-granting an already-held mode adds no duplicate entry" true
        (Lockmgr.held lm ~owner:1 = [ ("k", Lockmgr.Shared) ]);
      (* A genuine upgrade still records the new mode alongside the old. *)
      ignore (Lockmgr.acquire lm ~owner:1 ~key:"k" ~mode:Lockmgr.Exclusive ());
      checkb "distinct modes are both recorded" true
        (Lockmgr.held lm ~owner:1
        = [ ("k", Lockmgr.Shared); ("k", Lockmgr.Exclusive) ]);
      Lockmgr.release_all lm ~owner:1)

let release_all_cancels_own_waiters () =
  let result =
    in_sim (fun sim ->
        let lm = Lockmgr.create sim ~deadlock_timeout:infinity () in
        ignore (Lockmgr.acquire lm ~owner:1 ~key:"k" ~mode:Lockmgr.Exclusive ());
        let got = ref None in
        Sim.spawn sim (fun () ->
            (* Owner 2 holds one lock and queues on another — the shape of a
               partially-locked transaction being torn down mid-acquire. *)
            ignore (Lockmgr.acquire lm ~owner:2 ~key:"other" ~mode:Lockmgr.Exclusive ());
            got := Some (Lockmgr.acquire lm ~owner:2 ~key:"k" ~mode:Lockmgr.Exclusive ()));
        Sim.sleep sim 0.1;
        (* Owner 2 aborts while still queued: its wait must end in
           [Cancelled], not [Timeout], and must not count as a conflict. *)
        let aborted_before = Lockmgr.conflicts_aborted lm in
        Lockmgr.release_all lm ~owner:2;
        Sim.sleep sim 0.1;
        (!got, Lockmgr.conflicts_aborted lm - aborted_before))
  in
  checkb "cancelled wake reason" true (fst result = Some Lockmgr.Cancelled);
  checki "cancellation is not a conflict abort" 0 (snd result)

(* Property: under random acquire/release schedules, the lock table never
   holds two incompatible owners on a key, and everything drains (granted
   or refused — no one left waiting forever once all owners release). *)
let lockmgr_random_schedules =
  let op_gen =
    QCheck.Gen.(
      oneof
        [
          map3
            (fun owner key mode -> `Acquire (owner, key, mode))
            (int_range 1 5) (int_range 0 2)
            (oneofl
               [ Lockmgr.Shared; Lockmgr.Exclusive; Lockmgr.Commute_read;
                 Lockmgr.Commute_update; Lockmgr.Non_commute ]);
          map (fun owner -> `Release owner) (int_range 1 5);
        ])
  in
  QCheck.Test.make ~name:"lockmgr: compatibility invariant + drain" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 30) op_gen))
    (fun ops ->
      let sim = Sim.create () in
      let lm = Lockmgr.create sim ~deadlock_timeout:0.5 () in
      let violation = ref false in
      (* Track current holders per key from grant results to check the
         compatibility matrix externally. *)
      let grants : (int * string * Lockmgr.mode) list ref = ref [] in
      let note_grant owner key mode =
        List.iter
          (fun (o, k, m) ->
            if k = key && o <> owner && not (Lockmgr.compatible mode m) then
              violation := true)
          !grants;
        grants := (owner, key, mode) :: !grants
      in
      let drop_owner owner =
        grants := List.filter (fun (o, _, _) -> o <> owner) !grants
      in
      List.iteri
        (fun i op ->
          match op with
          | `Acquire (owner, key, mode) ->
              Sim.spawn sim ~name:(Printf.sprintf "acq%d" i) (fun () ->
                  let key = string_of_int key in
                  match Lockmgr.acquire lm ~owner ~key ~mode () with
                  | Lockmgr.Granted -> note_grant owner key mode
                  | Lockmgr.Deadlock | Lockmgr.Timeout | Lockmgr.Cancelled -> ())
          | `Release owner ->
              Sim.spawn sim ~name:(Printf.sprintf "rel%d" i) (fun () ->
                  Sim.sleep sim (0.01 *. float_of_int i);
                  drop_owner owner;
                  Lockmgr.release_all lm ~owner))
        ops;
      (* Run; then release every owner so all waiters resolve. *)
      ignore (Sim.run sim ~until:10.0 ());
      for owner = 1 to 5 do
        drop_owner owner;
        Lockmgr.release_all lm ~owner
      done;
      let outcome = Sim.run sim ~until:20.0 () in
      (not !violation)
      && (match outcome with Sim.Stalled _ -> false | _ -> true)
      && Lockmgr.waiting lm = 0)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ value_commutation; lockmgr_random_schedules ]

let () =
  Alcotest.run "txn"
    [
      ( "value",
        [
          Alcotest.test_case "incr/append" `Quick value_incr_append;
          Alcotest.test_case "overwrite" `Quick value_overwrite;
        ]
        @ qsuite );
      ("op", [ Alcotest.test_case "classification" `Quick op_classification ]);
      ( "spec",
        [
          Alcotest.test_case "classify" `Quick spec_classify;
          Alcotest.test_case "accessors" `Quick spec_accessors;
          Alcotest.test_case "result latencies" `Quick result_latencies;
        ] );
      ( "lockmgr",
        [
          Alcotest.test_case "compatibility matrix" `Quick compat;
          Alcotest.test_case "shared coexist" `Quick shared_locks_coexist;
          Alcotest.test_case "exclusive blocks" `Quick
            exclusive_blocks_until_release;
          Alcotest.test_case "commute locks never wait" `Quick
            commute_locks_never_wait;
          Alcotest.test_case "nc blocks commute" `Quick nc_blocks_commute;
          Alcotest.test_case "deadlock detected" `Quick deadlock_detected;
          Alcotest.test_case "timeout fires" `Quick timeout_fires;
          Alcotest.test_case "per-call timeout" `Quick per_call_timeout_overrides;
          Alcotest.test_case "re-entrant" `Quick reentrant_acquire;
          Alcotest.test_case "re-entrant no duplicate holders" `Quick
            reentrant_no_duplicate_holders;
          Alcotest.test_case "release_all cancels own waiters" `Quick
            release_all_cancels_own_waiters;
          Alcotest.test_case "fifo no overtaking" `Quick fifo_no_overtaking;
          Alcotest.test_case "held and counts" `Quick held_and_counts;
          Alcotest.test_case "release wakes shared group" `Quick
            release_wakes_multiple_shared;
        ] );
    ]
