(* Tests for the schedule-fuzz harness: case derivation and sweeps must be
   bit-for-bit deterministic (the reproducer contract), small strict sweeps
   must come back 1SR-clean, and the e10/e13-style golden fault histories
   must certify clean under every offline checker. *)

module Sim = Simul.Sim
module Engine = Threev.Engine
module Runner = Harness.Runner
module Fuzz = Harness.Fuzz
module Srz = Checker.Serializability

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------------------------------------------------------- determinism *)

let case_of_index_deterministic () =
  for i = 0 to 24 do
    let a = Fuzz.case_of_index ~fuzz_seed:7 ~quick:true i in
    let b = Fuzz.case_of_index ~fuzz_seed:7 ~quick:true i in
    checkb (Printf.sprintf "case %d replays identically" i) true (a = b)
  done;
  (* Different fuzz seeds must actually vary the cases. *)
  let differs =
    List.exists
      (fun i ->
        Fuzz.case_of_index ~fuzz_seed:7 ~quick:true i
        <> Fuzz.case_of_index ~fuzz_seed:8 ~quick:true i)
      [ 0; 1; 2; 3; 4 ]
  in
  checkb "fuzz seed perturbs the cases" true differs

let engines_rotate () =
  let kinds =
    List.map
      (fun i -> (Fuzz.case_of_index ~fuzz_seed:1 ~quick:true i).Fuzz.engine)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  checkb "indices 0-7 cover the engine matrix" true
    (List.sort_uniq compare kinds
    = List.sort_uniq compare
        [
          Fuzz.E3v; Fuzz.E3v_nc; Fuzz.E3v_repl; Fuzz.E3v_fd; Fuzz.E3v_shard;
          Fuzz.E2pc; Fuzz.E_nocoord; Fuzz.E_manual;
        ]);
  (* Replicated cases always carry at least one data-node crash. *)
  let repl_case = Fuzz.case_of_index ~fuzz_seed:1 ~quick:true 5 in
  checkb "replicated case is k=3" true (repl_case.Fuzz.replicas = 3);
  checkb "replicated case crashes a replica" true
    (List.exists
       (function Fuzz.Crash _ -> true | _ -> false)
       repl_case.Fuzz.atoms);
  (* Failure-detector cases always carry a heartbeat-loss storm. *)
  let fd_case = Fuzz.case_of_index ~fuzz_seed:1 ~quick:true 6 in
  checkb "fd case is 3v-fd" true (fd_case.Fuzz.engine = Fuzz.E3v_fd);
  checkb "fd case is k=3" true (fd_case.Fuzz.replicas = 3);
  checkb "fd case storms heartbeats" true
    (List.exists
       (function Fuzz.Hb_loss _ -> true | _ -> false)
       fd_case.Fuzz.atoms);
  (* Sharded cases always crash a replica inside some shard block. *)
  let shard_case = Fuzz.case_of_index ~fuzz_seed:1 ~quick:true 7 in
  checkb "shard case is 3v-shard" true (shard_case.Fuzz.engine = Fuzz.E3v_shard);
  checkb "shard case is S=4 k=2" true
    (shard_case.Fuzz.shards = 4 && shard_case.Fuzz.replicas = 2);
  checkb "shard case crashes a replica" true
    (List.exists
       (function Fuzz.Crash _ -> true | _ -> false)
       shard_case.Fuzz.atoms)

let verdict_tag = function
  | Fuzz.Clean -> "clean"
  | Fuzz.Anomaly _ -> "anomaly"
  | Fuzz.Failure _ -> "failure"

let sweep_deterministic () =
  let run () = Fuzz.sweep ~runs:5 ~quick:true () in
  let a = run () and b = run () in
  checki "same total" a.Fuzz.total b.Fuzz.total;
  List.iter2
    (fun (ra : Fuzz.case_report) (rb : Fuzz.case_report) ->
      let i = ra.Fuzz.case.Fuzz.index in
      checkb
        (Printf.sprintf "case %d same case" i)
        true
        (ra.Fuzz.case = rb.Fuzz.case);
      checki (Printf.sprintf "case %d same commits" i) ra.Fuzz.committed
        rb.Fuzz.committed;
      Alcotest.(check string)
        (Printf.sprintf "case %d same verdict" i)
        (verdict_tag ra.Fuzz.verdict)
        (verdict_tag rb.Fuzz.verdict))
    a.Fuzz.reports b.Fuzz.reports

(* ------------------------------------------------------- strict sweeps *)

let strict engine =
  match engine with
  | Fuzz.E3v | Fuzz.E3v_nc | Fuzz.E3v_repl | Fuzz.E3v_fd | Fuzz.E3v_shard
  | Fuzz.E2pc ->
      true
  | Fuzz.E_nocoord | Fuzz.E_manual -> false

let small_sweep_strict_clean () =
  let s = Fuzz.sweep ~runs:10 ~quick:true () in
  checkb "no strict failures" true (Fuzz.ok s);
  checki "all cases ran" 10 s.Fuzz.total;
  List.iter
    (fun (r : Fuzz.case_report) ->
      if strict r.Fuzz.case.Fuzz.engine then
        checkb
          (Printf.sprintf "strict case %d clean" r.Fuzz.case.Fuzz.index)
          true
          (r.Fuzz.verdict = Fuzz.Clean))
    s.Fuzz.reports

let only_selects_one_case () =
  let s = Fuzz.sweep ~runs:50 ~only:3 ~quick:true () in
  checki "one report" 1 s.Fuzz.total;
  match s.Fuzz.reports with
  | [ r ] -> checki "the requested index" 3 r.Fuzz.case.Fuzz.index
  | _ -> Alcotest.fail "expected exactly one report"

(* ------------------------------------------- golden fault certification

   These mirror the e10/e13-style golden histories in test_harness.ml (node
   pause during load; coordinator crash mid-advancement on the reliable
   channel) and assert that every offline checker — including the MVSG
   certifier — certifies them clean. The digests over these same runs live
   in test_harness.ml; here we care about 1SR, not byte identity. *)

let golden_gen nodes =
  Workload.Synthetic.generator
    {
      (Workload.Synthetic.default ~nodes) with
      Workload.Synthetic.arrival_rate = 300.;
      read_ratio = 0.25;
      fanout = 2;
      keys_per_node = 15;
      zipf_s = 0.7;
    }

let certify_clean name (outcome : Runner.outcome) =
  checki (name ^ " settled") 0 outcome.Runner.unfinished;
  checkb (name ^ " committed some") true (outcome.Runner.committed > 0);
  let srz = Srz.certify outcome.Runner.history in
  checkb (name ^ " 1SR") true (Srz.serializable srz);
  checki (name ^ " no unknown tags") 0 srz.Srz.unknown_count;
  checkb (name ^ " atomic visibility") true
    (Checker.Atomicity.clean (Checker.Atomicity.check outcome.Runner.history));
  checkb (name ^ " exact version reads") true
    (Checker.Version_reads.clean
       (Checker.Version_reads.check outcome.Runner.history))

let golden_e10_certifies () =
  let nodes = 4 in
  let sim = Sim.create ~seed:151 () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.latency = Netsim.Latency.Exponential 0.003;
      think_time = 0.0005;
      policy = Threev.Policy.Periodic 0.2;
    }
  in
  let engine = Engine.create sim cfg () in
  Engine.inject_pause engine ~node:(nodes - 1) ~at:0.5 ~duration:0.5;
  let outcome =
    Runner.drive sim (Engine.packed engine) (golden_gen nodes)
      { Runner.seed = 151; duration = 1.2; settle = 4.0; max_txns = 100_000 }
  in
  certify_clean "e10-style" outcome

let golden_e13_certifies () =
  let nodes = 4 in
  let sim = Sim.create ~seed:171 () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.latency = Netsim.Latency.Exponential 0.003;
      think_time = 0.0005;
      policy = Threev.Policy.Manual;
      reliable_channel = true;
      retransmit_timeout = 0.02;
    }
  in
  let faults =
    Fault.Injector.create sim
      (Fault.Plan.make ~seed:1713
         ~coord_crashes:[ Fault.Plan.coord_crash ~at:0.6 ~restart:0.9 ] ())
  in
  let engine = Engine.create sim cfg ~faults () in
  Sim.schedule sim ~delay:0.5 (fun () -> ignore (Engine.advance engine));
  let outcome =
    Runner.drive sim (Engine.packed engine) (golden_gen nodes)
      { Runner.seed = 171; duration = 1.2; settle = 5.0; max_txns = 100_000 }
  in
  checkb "e13-style advanced past v0" true (Engine.max_versions_ever engine > 1);
  certify_clean "e13-style" outcome

(* Plain 3V runs across a few seeds certify clean — the cheap end of the
   acceptance sweep, kept in-tree so `dune runtest` exercises it. *)
let threev_seeds_certify_clean () =
  List.iter
    (fun seed ->
      let nodes = 3 in
      let sim = Sim.create ~seed () in
      let cfg =
        {
          (Engine.default_config ~nodes) with
          Engine.latency = Netsim.Latency.Exponential 0.003;
          think_time = 0.0005;
          policy = Threev.Policy.Periodic 0.15;
        }
      in
      let engine = Engine.create sim cfg () in
      let outcome =
        Runner.drive sim (Engine.packed engine) (golden_gen nodes)
          { Runner.seed = seed; duration = 0.6; settle = 4.0; max_txns = 10_000 }
      in
      certify_clean (Printf.sprintf "3v seed %d" seed) outcome)
    [ 5; 23; 42 ]

let () =
  Alcotest.run "fuzz"
    [
      ( "determinism",
        [
          Alcotest.test_case "case_of_index replays" `Quick
            case_of_index_deterministic;
          Alcotest.test_case "engines rotate over 8 indices" `Quick
            engines_rotate;
          Alcotest.test_case "sweep replays" `Quick sweep_deterministic;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "small sweep strict-clean" `Quick
            small_sweep_strict_clean;
          Alcotest.test_case "--only selects one case" `Quick
            only_selects_one_case;
        ] );
      ( "golden",
        [
          Alcotest.test_case "e10-style history certifies" `Quick
            golden_e10_certifies;
          Alcotest.test_case "e13-style history certifies" `Quick
            golden_e13_certifies;
          Alcotest.test_case "3v seeds certify clean" `Quick
            threev_seeds_certify_clean;
        ] );
    ]
