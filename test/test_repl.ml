(* Tests for the replication subsystem (lib/repl) and its engine
   integration: placement arithmetic, quorum poll rules, the
   readable-after-recovery gate, quorum advancement with k-1 replicas of a
   group down, deterministic read failover, the per-(seq,dst) delivery
   accounting regression, a k=1 golden digest proving replication-off runs
   stay byte-identical, and a bounded-exhaustive sweep crashing each
   replica of a group inside each advancement phase. *)

module Sim = Simul.Sim
module Ivar = Simul.Ivar
module Network = Netsim.Network
module Latency = Netsim.Latency
module Placement = Repl.Placement
module Quorum = Repl.Quorum
module Recovery = Repl.Recovery
module Plan = Fault.Plan
module Injector = Fault.Injector
module Engine = Threev.Engine
module Policy = Threev.Policy
module Runner = Harness.Runner
module Spec = Txn.Spec
module Result = Txn.Result
module Counter_set = Stats.Counter_set
module Explorer = Mcheck.Explorer

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --------------------------------------------------------- placement *)

let placement_groups () =
  let p = Placement.create ~nodes:6 ~replicas:3 in
  checki "6/3 -> 2 groups" 2 (Placement.group_count p);
  checkb "group 0 members" true (Placement.members p 0 = [ 0; 1; 2 ]);
  checkb "group 1 members" true (Placement.members p 1 = [ 3; 4; 5 ]);
  checki "node 4 in group 1" 1 (Placement.group_of_node p 4);
  checkb "peers of 1" true (Placement.peers p 1 = [ 0; 2 ]);
  (* Uneven split: the last group absorbs the remainder. *)
  let q = Placement.create ~nodes:7 ~replicas:3 in
  checki "7/3 -> 3 groups" 3 (Placement.group_count q);
  checkb "tail group is the remainder" true (Placement.members q 2 = [ 6 ]);
  (* k = 1 degenerates to singleton groups. *)
  let s = Placement.create ~nodes:4 ~replicas:1 in
  checki "singletons" 4 (Placement.group_count s);
  checkb "singleton member" true (Placement.members s 2 = [ 2 ]);
  checkb "no peers" true (Placement.peers s 2 = [])

let placement_validation () =
  let raises f =
    match f () with _ -> false | exception Invalid_argument _ -> true
  in
  checkb "replicas = 0 rejected" true
    (raises (fun () -> Placement.create ~nodes:3 ~replicas:0));
  checkb "replicas > nodes rejected" true
    (raises (fun () -> Placement.create ~nodes:3 ~replicas:4))

let placement_failover_order () =
  let p = Placement.create ~nodes:6 ~replicas:3 in
  checkb "order rotates to start at the home node" true
    (Placement.failover_order p 4 = [ 4; 5; 3 ]);
  checkb "primary first" true (Placement.failover_order p 0 = [ 0; 1; 2 ]);
  (* serving_replica walks the order, skipping dead nodes. *)
  let live = function 0 | 1 -> false | _ -> true in
  checkb "skips dead replicas" true
    (Placement.serving_replica p ~live 0 = Some 2);
  checkb "whole group down -> None" true
    (Placement.serving_replica p ~live:(fun _ -> false) 0 = None)

let placement_key_deterministic () =
  let p = Placement.create ~nodes:6 ~replicas:3 in
  List.iter
    (fun key ->
      checki
        (Printf.sprintf "key %S stable" key)
        (Placement.group_of_key p key)
        (Placement.group_of_key p key);
      let home = Placement.home_of_key p key in
      checkb "home is its group's first member" true
        (match Placement.members p (Placement.group_of_key p key) with
        | first :: _ -> first = home
        | [] -> false))
    [ "k0"; "k1"; "patient:42"; ""; "a-rather-long-key-name" ];
  (* The hash is a pure function of the bytes, not of any table state. *)
  checki "fnv hash stable" (Placement.key_hash "abc") (Placement.key_hash "abc");
  checkb "fnv hash spreads" true
    (Placement.key_hash "abc" <> Placement.key_hash "abd")

(* ------------------------------------------------------------ quorum *)

let quorum_rules () =
  let p = Placement.create ~nodes:6 ~replicas:3 in
  let live_except dead i = not (List.mem i dead) in
  checkb "all live -> met" true (Quorum.met p ~live:(live_except []));
  checkb "k-1 down -> still met" true
    (Quorum.met p ~live:(live_except [ 0; 1 ]));
  checkb "whole group down -> not met" true
    (not (Quorum.met p ~live:(live_except [ 0; 1; 2 ])));
  checkb "dead groups listed" true
    (Quorum.dead_groups p ~live:(live_except [ 0; 1; 2 ]) = [ 0 ]);
  checkb "no dead groups when met" true
    (Quorum.dead_groups p ~live:(live_except [ 0; 4 ]) = []);
  (* required = live nodes, plus every member of a fully-dead group. *)
  let req = Quorum.required p ~live:(live_except [ 0; 1 ]) in
  checkb "crashed minority not required" true
    (not req.(0) && not req.(1) && req.(2));
  let req_dead = Quorum.required p ~live:(live_except [ 3; 4; 5 ]) in
  checkb "fully-dead group still required" true
    (req_dead.(3) && req_dead.(4) && req_dead.(5))

let quorum_matrices_agree () =
  let a = [| [| 1; 2 |]; [| 3; 4 |] |] in
  let b = [| [| 1; 2 |]; [| 9; 4 |] |] in
  checkb "differ on a considered pair" true
    (not (Quorum.matrices_agree ~considered:[| true; true |] a b));
  checkb "difference at an excused row is ignored" true
    (Quorum.matrices_agree ~considered:[| true; false |] a b);
  checkb "equal matrices agree" true
    (Quorum.matrices_agree ~considered:[| true; true |] a a)

(* ---------------------------------------------------------- recovery *)

let recovery_gate () =
  let r = Recovery.create () in
  checkb "unmarked node is readable" true (Recovery.readable r ~node:0 ~vr:0);
  Recovery.mark r ~node:1 ~frontier:3;
  checkb "armed gate blocks a stale vr" true
    (not (Recovery.readable r ~node:1 ~vr:2));
  checkb "frontier recorded" true (Recovery.frontier r ~node:1 = Some 3);
  (* A re-crash keeps the highest frontier. *)
  Recovery.mark r ~node:1 ~frontier:2;
  checkb "repeated mark keeps the max" true
    (Recovery.frontier r ~node:1 = Some 3);
  checkb "gate opens at the frontier" true (Recovery.readable r ~node:1 ~vr:3);
  (* ... and auto-clears: a later stale vr probe is not re-blocked. *)
  checkb "gate auto-clears once satisfied" true
    (Recovery.readable r ~node:1 ~vr:0);
  checki "restarts counted" 2 (Recovery.recoveries r)

(* ------------------------------------- delivery-accounting regression

   The per-(src, seq, dst) dedup in Network's delivered counter: a
   retransmitted copy landing after the original must not count as a second
   delivery, while the same logical message reaching a different
   destination, or an unkeyed message, counts per copy. *)

let delivered_counts_once_per_seq_dst () =
  let sim = Sim.create () in
  let net = Network.create sim ~size:3 ~latency:(Latency.Constant 0.01) () in
  Network.set_delivery_key net (fun key -> key);
  List.iter
    (fun node ->
      Sim.spawn sim ~daemon:true (fun () ->
          let rec loop () =
            ignore (Network.recv net ~node);
            loop ()
          in
          loop ()))
    [ 1; 2 ];
  (* Original + logical retransmission of (src 0, seq 7) to node 1. *)
  Network.send net ~src:0 ~dst:1 (Some (0, 7));
  Network.send net ~src:0 ~dst:1 (Some (0, 7));
  (* The same logical message to a different destination counts again. *)
  Network.send net ~src:0 ~dst:2 (Some (0, 7));
  (* Unkeyed messages count once per copy. *)
  Network.send net ~src:0 ~dst:1 None;
  Network.send net ~src:0 ~dst:1 None;
  ignore (Sim.run sim ());
  checki "5 copies sent" 5 (Network.messages_sent net);
  checki "retransmit counted once per (seq,dst)" 4
    (Network.messages_delivered net)

(* ------------------------------------------------- engine integration *)

let repl_cfg ~nodes ~replicas ~policy =
  {
    (Engine.default_config ~nodes) with
    Engine.replicas;
    latency = Latency.Exponential 0.003;
    think_time = 0.0005;
    policy;
    reliable_channel = true;
    retransmit_timeout = 0.02;
  }

let gen nodes =
  Workload.Synthetic.generator
    {
      (Workload.Synthetic.default ~nodes) with
      Workload.Synthetic.arrival_rate = 300.;
      read_ratio = 0.25;
      fanout = 2;
      keys_per_node = 15;
      zipf_s = 0.7;
    }

let nc_mode_rejected () =
  let sim = Sim.create ~seed:1 () in
  let cfg = { (repl_cfg ~nodes:6 ~replicas:3 ~policy:Policy.Manual) with Engine.nc_mode = true } in
  checkb "replication + nc_mode rejected" true
    (match Engine.create sim cfg () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let certify_clean name (outcome : Runner.outcome) =
  checki (name ^ " settled") 0 outcome.Runner.unfinished;
  checkb (name ^ " committed some") true (outcome.Runner.committed > 0);
  let srz = Checker.Serializability.certify outcome.Runner.history in
  checkb (name ^ " 1SR") true (Checker.Serializability.serializable srz);
  checkb (name ^ " atomic visibility") true
    (Checker.Atomicity.clean (Checker.Atomicity.check outcome.Runner.history));
  checkb (name ^ " exact version reads") true
    (Checker.Version_reads.clean
       (Checker.Version_reads.check outcome.Runner.history))

(* Quorum advancement terminates with k-1 replicas of a group fail-stopped
   across the whole advancement window. *)
let advancement_with_k_minus_1_down () =
  let nodes = 6 in
  let sim = Sim.create ~seed:41 () in
  let cfg = repl_cfg ~nodes ~replicas:3 ~policy:Policy.Manual in
  let members = Placement.members (Placement.create ~nodes ~replicas:3) 0 in
  let faults =
    Injector.create sim
      (Plan.make ~seed:41
         ~crashes:(Plan.crash_replicas ~members ~keep:1 ~at:0.15 ~restart:0.9)
         ())
  in
  let engine = Engine.create sim cfg ~faults () in
  let adv = ref None in
  Sim.schedule sim ~delay:0.3 (fun () -> adv := Some (Engine.advance engine));
  let outcome =
    Runner.drive sim (Engine.packed engine) (gen nodes)
      { Runner.seed = 41; duration = 0.5; settle = 6.0; max_txns = 10_000 }
  in
  (match !adv with
  | Some iv when Ivar.is_full iv -> ()
  | _ -> Alcotest.fail "advancement did not complete with 2 of 3 replicas down");
  checkb "advancement completed" true (Engine.advancements_completed engine >= 1);
  certify_clean "k-1 down" outcome

(* Deterministic read failover plus the readable-after-recovery gate: with
   the primary of group 0 crashed across several advancements, reads fail
   over to its peers; just after restart the gate still holds the node out
   of the read path, and by quiescence it has reopened. *)
let failover_and_recovery_gate () =
  let nodes = 6 in
  let sim = Sim.create ~seed:61 () in
  let cfg = repl_cfg ~nodes ~replicas:3 ~policy:(Policy.Periodic 0.2) in
  let faults =
    Injector.create sim
      (Plan.make ~seed:61 ~crashes:[ Plan.crash ~node:0 ~at:0.25 ~restart:0.7 ] ())
  in
  let engine = Engine.create sim cfg ~faults () in
  let down_probe = ref false and post_restart_probe = ref true in
  (* The gate arms at restart, not at crash: mid-outage the node is still
     "readable" by the gate (routing excludes it via liveness instead). *)
  Sim.schedule sim ~delay:0.5 (fun () ->
      down_probe := Engine.node_readable engine ~node:0);
  Sim.schedule sim ~delay:0.72 (fun () ->
      post_restart_probe := Engine.node_readable engine ~node:0);
  let outcome =
    Runner.drive sim (Engine.packed engine) (gen nodes)
      { Runner.seed = 61; duration = 0.9; settle = 5.0; max_txns = 10_000 }
  in
  checkb "gate unarmed while down (liveness excludes the node)" true
    !down_probe;
  checkb "gate closed just after restart" true (not !post_restart_probe);
  checkb "gate reopens once caught up" true (Engine.node_readable engine ~node:0);
  checkb "reads failed over" true
    (Counter_set.get outcome.Runner.stats "repl.failovers" > 0);
  checkb "restart recorded" true
    (Counter_set.get outcome.Runner.stats "repl.recoveries" >= 1);
  checkb "mirrors flowed" true
    (Counter_set.get outcome.Runner.stats "repl.mirrors" > 0);
  certify_clean "failover" outcome

(* ------------------------------------------------- k = 1 golden digest

   restart_recover's version seeding became group-aware; with replicas = 1
   (every group a singleton) a node-crash schedule must replay
   byte-identically to the pre-replication engine. The digest and event
   count below were recorded with the group-size-1 path pinned to the
   historical behavior; any drift means replication leaked into k = 1. *)

let history_digest (outcome : Runner.outcome) =
  List.fold_left
    (fun acc ((spec : Spec.t), (res : Result.t)) ->
      acc
      lxor Hashtbl.hash
             ( spec.Spec.id,
               Result.committed res,
               res.Result.submit_time,
               Result.latency res,
               Result.blocking_latency res ))
    0 outcome.Runner.history

let golden_k1_crash_run () =
  let nodes = 4 in
  let sim = Sim.create ~seed:211 () in
  let cfg =
    {
      (Engine.default_config ~nodes) with
      Engine.latency = Latency.Exponential 0.003;
      think_time = 0.0005;
      policy = Policy.Periodic 0.2;
      reliable_channel = true;
      retransmit_timeout = 0.02;
    }
  in
  let faults =
    Injector.create sim
      (Plan.make ~seed:2111 ~crashes:[ Plan.crash ~node:2 ~at:0.4 ~restart:0.8 ] ())
  in
  let engine = Engine.create sim cfg ~faults () in
  let outcome =
    Runner.drive sim (Engine.packed engine) (gen nodes)
      { Runner.seed = 211; duration = 1.0; settle = 5.0; max_txns = 100_000 }
  in
  (outcome, Sim.events_executed sim)

let golden_k1_restart_digest () =
  let outcome, events = golden_k1_crash_run () in
  let d = history_digest outcome land 0xffffffff in
  checkb
    (Printf.sprintf "k=1 crash digest 0x%08x (got 0x%08x)" 0x2f6d0f2e d)
    true (d = 0x2f6d0f2e);
  checki "k=1 crash event count" 15422 events;
  (* Replaying the identical schedule must reproduce the digest — the
     reproducer contract under a node restart. *)
  let outcome2, events2 = golden_k1_crash_run () in
  checki "replay same digest" d (history_digest outcome2 land 0xffffffff);
  checki "replay same events" events events2

(* -------------------- mcheck: replica crash inside each phase

   Mirror of test_fault's coordinator sweep: a fault-free reference run
   pins the WAL phase-entry times of the first advancement; the explorer
   then fail-stops each replica of the (single) group strictly inside each
   of the four phases. Every schedule must finish the advancement on the
   surviving quorum and stay clean. *)

let run_repl_coord ?(plan = Plan.none) () =
  let nodes = 3 in
  let sim = Sim.create ~seed:71 () in
  let cfg =
    {
      (repl_cfg ~nodes ~replicas:3 ~policy:Policy.Manual) with
      Engine.latency = Latency.Constant 0.004;
      think_time = 0.0003;
      retransmit_timeout = 0.01;
    }
  in
  let faults = Injector.create sim plan in
  let engine = Engine.create sim cfg ~faults () in
  let adv = ref None in
  Sim.schedule sim ~delay:0.1 (fun () -> adv := Some (Engine.advance engine));
  let gen =
    Workload.Synthetic.generator
      {
        (Workload.Synthetic.default ~nodes) with
        Workload.Synthetic.arrival_rate = 300.;
        fanout = 2;
      }
  in
  let outcome =
    Runner.drive sim (Engine.packed engine) gen
      {
        Runner.default_setup with
        Runner.seed = 71;
        duration = 0.3;
        settle = 6.0;
      }
  in
  (outcome, engine, !adv)

let repl_phase_entries =
  lazy
    (let _, engine, adv = run_repl_coord () in
     (match adv with
     | Some iv when Ivar.is_full iv -> ()
     | _ -> failwith "reference advancement did not complete");
     let times = Threev.Coord_log.phase_times (Engine.coord_log engine) in
     Array.init 4 (fun i ->
         match
           List.find_opt
             (fun (a, p, _) -> a = 1 && Threev.Coord_log.phase_number p = i + 1)
             times
         with
         | Some (_, _, t) -> t
         | None -> failwith (Printf.sprintf "phase %d never entered" (i + 1))))

let replica_crash_scenario ctl =
  let entry = Lazy.force repl_phase_entries in
  let node = Explorer.choose ctl 3 in
  let k = Explorer.choose ctl 4 in
  let at =
    if k < 3 then (entry.(k) +. entry.(k + 1)) /. 2. else entry.(3) +. 0.002
  in
  let plan =
    Plan.make ~seed:71 ~crashes:[ Plan.crash ~node ~at ~restart:(at +. 0.2) ] ()
  in
  let outcome, engine, adv = run_repl_coord ~plan () in
  (match adv with
  | Some iv when Ivar.is_full iv -> ()
  | _ -> failwith "advancement did not survive the replica crash");
  if Engine.advancements_completed engine < 1 then
    failwith "advancement never completed";
  if not (Checker.Atomicity.clean (Runner.atomicity outcome)) then
    failwith "atomic visibility violated";
  if outcome.Runner.unfinished > 0 then
    failwith "transactions left unfinished"

let replica_crash_each_phase () =
  let outcome = Explorer.explore replica_crash_scenario in
  (match outcome.Explorer.failure with
  | Some (path, exn) ->
      Alcotest.failf "replica crash %s breaks quorum advancement: %s"
        (String.concat "," (List.map string_of_int path))
        (Printexc.to_string exn)
  | None -> ());
  checkb "tree exhausted" true outcome.Explorer.exhausted;
  checki "3 replicas x 4 phases" 12 outcome.Explorer.runs

(* --------------------------------------------------------------- suite *)

let () =
  Alcotest.run "repl"
    [
      ( "placement",
        [
          Alcotest.test_case "groups" `Quick placement_groups;
          Alcotest.test_case "validation" `Quick placement_validation;
          Alcotest.test_case "failover order" `Quick placement_failover_order;
          Alcotest.test_case "key determinism" `Quick
            placement_key_deterministic;
        ] );
      ( "quorum",
        [
          Alcotest.test_case "poll rules" `Quick quorum_rules;
          Alcotest.test_case "matrix agreement" `Quick quorum_matrices_agree;
        ] );
      ( "recovery",
        [ Alcotest.test_case "readable gate" `Quick recovery_gate ] );
      ( "network",
        [
          Alcotest.test_case "delivered once per (seq,dst)" `Quick
            delivered_counts_once_per_seq_dst;
        ] );
      ( "engine",
        [
          Alcotest.test_case "nc_mode rejected" `Quick nc_mode_rejected;
          Alcotest.test_case "advancement with k-1 down" `Quick
            advancement_with_k_minus_1_down;
          Alcotest.test_case "failover + recovery gate" `Quick
            failover_and_recovery_gate;
          Alcotest.test_case "k=1 crash golden digest" `Quick
            golden_k1_restart_digest;
        ] );
      ( "mcheck",
        [
          Alcotest.test_case "replica crash in each phase" `Quick
            replica_crash_each_phase;
        ] );
    ]
