(* Factory operations monitoring (paper §6, example (a)).

   Production lines stream sensor observations — append a reading,
   increment the machine's piece count and the line's shift total — while
   shift reports read every line's totals. Maintenance occasionally resets
   a machine counter: a blind overwrite that does NOT commute, handled by
   NC3V. Version advancement is driven by data volume (every 400
   observations), the "once a certain number of update transactions have
   accumulated" policy from §1.

   Run with:  dune exec examples/factory_monitoring.exe *)

module Sim = Simul.Sim
module Engine = Threev.Engine
module Spec = Txn.Spec
module Result = Txn.Result

let lines = 4

let () =
  let sim = Sim.create ~seed:21 () in
  let engine =
    Engine.create sim
      {
        (Engine.default_config ~nodes:lines) with
        Engine.nc_mode = true (* counter resets are non-commuting *);
        policy = Threev.Policy.Every_n_updates 400;
        latency = Netsim.Latency.Exponential 0.002;
        think_time = 0.0002;
        deadlock_timeout = 0.05;
      }
      ()
  in
  let workload =
    Workload.Factory.generator
      {
        (Workload.Factory.default ~nodes:lines) with
        Workload.Factory.arrival_rate = 1500.;
        reset_ratio = 0.02;
        read_ratio = 0.1;
      }
  in
  let setup =
    { Harness.Runner.default_setup with Harness.Runner.seed = 21; duration = 3.0; settle = 3.0 }
  in
  let outcome = Harness.Runner.drive sim (Engine.packed engine) workload setup in
  let count kind =
    List.length
      (List.filter
         (fun ((spec : Spec.t), _) -> spec.Spec.kind = kind)
         outcome.Harness.Runner.history)
  in
  Printf.printf
    "monitored %d transactions at %.0f committed/s across %d lines:\n\
    \  %d observations, %d shift reports, %d counter resets\n"
    outcome.Harness.Runner.committed outcome.Harness.Runner.throughput lines
    (count Spec.Commuting) (count Spec.Read_only) (count Spec.Non_commuting);
  let atom = Harness.Runner.atomicity outcome in
  let exact = Checker.Version_reads.check outcome.Harness.Runner.history in
  let stale = Harness.Runner.staleness outcome in
  Format.printf "atomic visibility:  %a@." Checker.Atomicity.pp atom;
  Format.printf "exact version reads: %a@." Checker.Version_reads.pp exact;
  Printf.printf "report staleness:   mean %.0f ms (data-volume advancement, %d rounds)\n"
    (1000. *. stale.Checker.Staleness.mean_lag)
    (Engine.advancements_completed engine);
  assert (Checker.Atomicity.clean atom);
  assert (Checker.Version_reads.clean exact);
  Printf.printf
    "every shift report summed a consistent cut of %d machines' streams.\n"
    (lines * 12)
