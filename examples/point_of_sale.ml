(* Point of sale with non-commuting price changes (paper §5, NC3V).

   Sales commute (inventory decrements, receipts, HQ summaries) and run
   coordination-free. Price changes are blind overwrites — they do NOT
   commute — so they take non-commute locks, respect the vu = vr + 1
   admission rule, and two-phase commit; some abort when overtaken by a
   newer version. The commuting majority keeps flowing, and every stock
   report stays atomic.

   Run with:  dune exec examples/point_of_sale.exe *)

module Sim = Simul.Sim
module Engine = Threev.Engine
module Spec = Txn.Spec
module Result = Txn.Result

let stores = 5

let () =
  let sim = Sim.create ~seed:12 () in
  let engine =
    Engine.create sim
      {
        (Engine.default_config ~nodes:stores) with
        Engine.nc_mode = true (* commute locks on, §5 *);
        policy = Threev.Policy.Periodic 0.25;
        latency = Netsim.Latency.Exponential 0.003;
        deadlock_timeout = 0.05;
      }
      ()
  in
  let workload =
    Workload.Point_of_sale.generator
      {
        (Workload.Point_of_sale.default ~nodes:stores) with
        Workload.Point_of_sale.nc_ratio = 0.15;
        price_fanout = 3;
        arrival_rate = 600.;
        read_ratio = 0.2;
      }
  in
  let setup =
    { Harness.Runner.default_setup with Harness.Runner.seed = 12; duration = 2.0; settle = 3.0 }
  in
  let outcome = Harness.Runner.drive sim (Engine.packed engine) workload setup in
  let by_kind kind pred =
    List.length
      (List.filter
         (fun ((spec : Spec.t), res) -> spec.Spec.kind = kind && pred res)
         outcome.Harness.Runner.history)
  in
  let committed = Result.committed and aborted r = not (Result.committed r) in
  Printf.printf "sales (commuting):      %4d committed, %d aborted\n"
    (by_kind Spec.Commuting committed)
    (by_kind Spec.Commuting aborted);
  Printf.printf "price changes (NC3V):   %4d committed, %d aborted\n"
    (by_kind Spec.Non_commuting committed)
    (by_kind Spec.Non_commuting aborted);
  Printf.printf "stock reports:          %4d committed, %d aborted\n"
    (by_kind Spec.Read_only committed)
    (by_kind Spec.Read_only aborted);
  let atom = Harness.Runner.atomicity outcome in
  Format.printf "atomic visibility: %a@." Checker.Atomicity.pp atom;
  (* Commuting transactions and reads never abort under 3V; only the
     non-commuting minority can (deadlock timeout or version overtake). *)
  assert (by_kind Spec.Commuting aborted = 0);
  assert (by_kind Spec.Read_only aborted = 0);
  assert (Checker.Atomicity.clean atom);
  Printf.printf
    "\nonly the non-commuting minority ever pays: %d lock failures recorded,\n\
     while sales and reports were never delayed by a remote node.\n"
    (Stats.Counter_set.get outcome.Harness.Runner.stats "txn.lock_failure")
