(* Call recording (paper §6): a data recording system at high rate.

   Calls append detail records and bump summaries in two regions; billing
   and audit queries read summaries. We drive a sustained load, advance
   versions with the count-based policy ("once a certain number of update
   transactions have accumulated" — §1), and report what recording systems
   care about: throughput, how stale audits run, and what the versioning
   machinery cost in copies and messages.

   Run with:  dune exec examples/call_recording.exe *)

module Sim = Simul.Sim
module Engine = Threev.Engine

let regions = 6

let () =
  let sim = Sim.create ~seed:3 () in
  let engine =
    Engine.create sim
      {
        (Engine.default_config ~nodes:regions) with
        Engine.policy = Threev.Policy.Every_n_updates 500;
        latency = Netsim.Latency.Exponential 0.004;
        think_time = 0.0003;
      }
      ()
  in
  let workload =
    Workload.Call_recording.generator
      {
        (Workload.Call_recording.default ~nodes:regions) with
        Workload.Call_recording.arrival_rate = 2000. (* busy hour *);
        read_ratio = 0.15;
        audit_ratio = 0.4;
        customers = 500;
      }
  in
  let setup =
    { Harness.Runner.default_setup with Harness.Runner.duration = 3.0; settle = 3.0 }
  in
  let outcome = Harness.Runner.drive sim (Engine.packed engine) workload setup in
  let atom = Harness.Runner.atomicity outcome in
  let stale = Harness.Runner.staleness outcome in
  let stats = outcome.Harness.Runner.stats in
  Printf.printf "recorded %d transactions at %.0f committed/s across %d regions\n"
    outcome.Harness.Runner.committed outcome.Harness.Runner.throughput regions;
  Format.printf "atomic visibility: %a@." Checker.Atomicity.pp atom;
  Printf.printf "audit staleness: mean %.0f ms, worst %.0f ms\n"
    (1000. *. stale.Checker.Staleness.mean_lag)
    (1000. *. stale.Checker.Staleness.max_lag);
  Printf.printf
    "versioning cost: %d advancements, %d copy-on-writes, %d dual writes,\n\
     %d protocol+data messages; max %d versions of any record\n"
    (Engine.advancements_completed engine)
    (Stats.Counter_set.get stats "store.copies_created")
    (Stats.Counter_set.get stats "store.dual_writes_total")
    (Stats.Counter_set.get stats "net.messages")
    (Engine.max_versions_ever engine);
  (* The whole point: all of the above happened without a single read or
     update transaction waiting on another node. *)
  assert (Checker.Atomicity.clean atom)
