(* Quickstart: the 3V algorithm in ~60 lines.

   Build a three-node distributed database, run one commuting update
   transaction that spans two nodes, observe that a concurrent read sees
   none of it (reads use the older version), advance the version, and watch
   the read version catch up — with the update then visible atomically.

   Run with:  dune exec examples/quickstart.exe *)

module Sim = Simul.Sim
module Ivar = Simul.Ivar
module Spec = Txn.Spec
module Op = Txn.Op
module Value = Txn.Value
module Engine = Threev.Engine

let () =
  (* The whole system is a deterministic simulation: a virtual clock plus
     green processes. Same seed, same run. *)
  let sim = Sim.create ~seed:42 () in
  let engine = Engine.create sim (Engine.default_config ~nodes:3) () in

  (* A "hospital visit": increment the patient's balance in radiology
     (node 0) and pediatrics (node 1). Increments commute, so this is a
     well-behaved update — no global coordination will happen. *)
  let visit =
    Spec.make ~id:1 ~label:"visit"
      (Spec.subtxn
         ~children:[ Spec.subtxn 1 [ Op.Incr ("patient7@pediatrics", 120.) ] ]
         0
         [ Op.Incr ("patient7@radiology", 80.) ])
  in
  let visit_result = Engine.submit engine visit in

  (* A concurrent balance inquiry, reading both departments. *)
  let inquiry keys id =
    Spec.make ~id ~label:(Printf.sprintf "inquiry%d" id)
      (Spec.subtxn
         ~children:[ Spec.subtxn 1 [ Op.Read (List.nth keys 1) ] ]
         0
         [ Op.Read (List.nth keys 0) ])
  in
  let keys = [ "patient7@radiology"; "patient7@pediatrics" ] in
  let early = Engine.submit engine (inquiry keys 2) in

  ignore (Sim.run sim ~until:1.0 ());
  let show label ivar =
    match Ivar.peek ivar with
    | Some res ->
        Printf.printf "%s (version %d):\n" label res.Txn.Result.version;
        List.iter
          (fun (key, (v : Value.t)) ->
            Printf.printf "  %-22s = %6.2f\n" key v.Value.amount)
          res.Txn.Result.reads
    | None -> Printf.printf "%s: still pending\n" label
  in
  assert (Ivar.is_full visit_result);
  show "inquiry before advancement" early;

  (* Advance the version: entirely asynchronous with user transactions —
     notify, wait for counter quiescence, switch reads, garbage-collect. *)
  let done_ = Engine.advance engine in
  ignore (Sim.run sim ~until:2.0 ());
  assert (Ivar.is_full done_);

  let late = Engine.submit engine (inquiry keys 3) in
  ignore (Sim.run sim ~until:3.0 ());
  show "inquiry after advancement" late;

  Printf.printf "read version is now %d; max simultaneous versions seen: %d\n"
    (Engine.read_version engine ~node:0)
    (Engine.max_versions_ever engine)
