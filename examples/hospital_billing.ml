(* Hospital billing (paper §1, Figure 1): why coordination-free execution
   gives wrong answers, and how 3V fixes it without global synchronization.

   We run the same front-end workload — visits charging several departments,
   inquiries reading a patient's full balance — against the
   no-coordination baseline and against 3V, then let the atomic-visibility
   checker count "partial charge" anomalies (a customer seeing only part of
   a visit's charges on their bill).

   Run with:  dune exec examples/hospital_billing.exe *)

module Sim = Simul.Sim

let departments = 4

let workload =
  Workload.Hospital.generator
    {
      (Workload.Hospital.default ~nodes:departments) with
      Workload.Hospital.front_end = true (* Figure 1's front-end fan-out *);
      visit_fanout = 3;
      read_ratio = 0.3;
      arrival_rate = 500.;
      patients = 40;
      post_delay = 0.01 (* charges are posted a little late, as in reality *);
    }

let setup =
  { Harness.Runner.default_setup with Harness.Runner.duration = 2.0; settle = 3.0 }

let report (outcome : Harness.Runner.outcome) =
  let atom = Harness.Runner.atomicity outcome in
  Printf.printf "%-16s committed=%-5d partial-charge anomalies=%-4d%s\n"
    outcome.Harness.Runner.engine_name outcome.Harness.Runner.committed
    atom.Checker.Atomicity.partial_reads
    (if Checker.Atomicity.clean atom then "  (every inquiry atomic)" else "");
  atom.Checker.Atomicity.partial_reads

let () =
  (* Baseline: no coordination — fast, but inquiries can catch a visit's
     charges half-applied across departments. *)
  let sim = Sim.create ~seed:7 () in
  let nocoord =
    Baselines.No_coord.create sim
      (Baselines.No_coord.default_config ~nodes:departments)
  in
  let bad =
    report
      (Harness.Runner.drive sim (Baselines.No_coord.packed nocoord) workload
         setup)
  in

  (* 3V: updates commute locally, reads use the previous version, a
     coordinator advances versions every 100 ms without ever blocking a
     user transaction. *)
  let sim = Sim.create ~seed:7 () in
  let engine =
    Threev.Engine.create sim
      {
        (Threev.Engine.default_config ~nodes:departments) with
        Threev.Engine.policy = Threev.Policy.Periodic 0.1;
        latency = Netsim.Latency.Exponential 0.003;
      }
      ()
  in
  let good =
    report
      (Harness.Runner.drive sim (Threev.Engine.packed engine) workload setup)
  in
  Printf.printf
    "\nno-coordination produced %d partial bills; 3V produced %d, after %d\n\
     version advancements that no user transaction ever waited for.\n"
    bad good
    (Threev.Engine.advancements_completed engine)
