(** Subtransaction operations and their commutativity classification.

    The paper requires {e subtransactions} (not individual operations) to
    commute. In these workloads, commuting subtransactions are built from
    [Incr]/[Append] (record a charge, insert a detail row — paper §6), while
    [Overwrite] marks a non-commuting update (NC3V territory, §5). *)

type t =
  | Read of string  (** read the value of a key *)
  | Incr of string * float  (** add to the summary amount — commutes *)
  | Append of string * string  (** insert a detail record — commutes *)
  | Overwrite of string * float  (** blind write — does NOT commute *)

(** The key the operation touches. *)
val key : t -> string

(** [is_write op] is true for every constructor except [Read]. *)
val is_write : t -> bool

(** [commuting_write op] is true for writes in the commuting class
    ([Incr], [Append]); false for [Overwrite]; false for [Read]. *)
val commuting_write : t -> bool

(** [apply op ~txn v] is the value after the write (identity for [Read]). *)
val apply : t -> txn:int -> Value.t -> Value.t

(** Prints the constructor, key and payload, e.g. "incr(k,2.5)". *)
val pp : Format.formatter -> t -> unit
