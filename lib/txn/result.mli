(** Outcome of a transaction as observed by its submitter. *)

type outcome =
  | Committed
  | Aborted of string  (** reason, e.g. "deadlock", "version-overtaken" *)

type t = {
  txn_id : int;
  outcome : outcome;
  version : int;
      (** version the transaction executed against (engine-specific meaning
          for baselines; -1 when not applicable) *)
  served_by : int;
      (** node that executed the root subtransaction — under replication the
          serving replica the router chose, which checkers use to resolve
          reads-from through the replica that actually answered; equals the
          spec's root node for unreplicated engines (-1 when unknown) *)
  reads : (string * Value.t) list;
      (** key, value-as-seen — in subtransaction execution order; the
          [writers] inside each value feed the atomic-visibility checker *)
  submit_time : float;
  root_commit_time : float;
      (** when the root subtransaction's local work committed — in 3V this is
          all an update transaction's submitter ever waits for *)
  complete_time : float;
      (** when the whole transaction tree settled (all subtransactions
          terminated, or the 2PC decision applied) *)
}

(** Settlement latency: [complete_time - submit_time]. *)
val latency : t -> float

(** User-blocking latency: [root_commit_time - submit_time]. *)
val blocking_latency : t -> float

(** [committed r] is true iff the outcome is [Committed]. *)
val committed : t -> bool

(** Prints "committed" or "aborted(reason)". *)
val pp_outcome : Format.formatter -> outcome -> unit

(** One-line result summary: txn id, outcome, version, timings. *)
val pp : Format.formatter -> t -> unit
