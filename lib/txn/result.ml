type outcome = Committed | Aborted of string

type t = {
  txn_id : int;
  outcome : outcome;
  version : int;
  served_by : int;
  reads : (string * Value.t) list;
  submit_time : float;
  root_commit_time : float;
  complete_time : float;
}

let latency t = t.complete_time -. t.submit_time
let blocking_latency t = t.root_commit_time -. t.submit_time
let committed t = t.outcome = Committed

let pp_outcome ppf = function
  | Committed -> Format.pp_print_string ppf "committed"
  | Aborted reason -> Format.fprintf ppf "aborted(%s)" reason

let pp ppf t =
  Format.fprintf ppf "txn#%d %a v=%d latency=%.6f reads=%d" t.txn_id pp_outcome
    t.outcome t.version (latency t) (List.length t.reads)
