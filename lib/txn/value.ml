module Writers = Set.Make (Int)

type t = { amount : float; entries : string list; writers : Writers.t }

let empty = { amount = 0.; entries = []; writers = Writers.empty }

let incr ~txn ~delta v =
  { v with amount = v.amount +. delta; writers = Writers.add txn v.writers }

let append ~txn ~entry v =
  {
    v with
    entries = entry :: v.entries;
    writers = Writers.add txn v.writers;
  }

let overwrite ~txn ~amount v =
  { v with amount; writers = Writers.add txn v.writers }

let equal a b =
  Float.abs (a.amount -. b.amount) <= 1e-9
  && List.sort String.compare a.entries = List.sort String.compare b.entries
  && Writers.equal a.writers b.writers

let pp ppf v =
  Format.fprintf ppf "{amount=%g; entries=%d; writers={%a}}" v.amount
    (List.length v.entries)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (Writers.elements v.writers)
