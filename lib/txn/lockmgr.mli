(** Per-node lock manager with a commute-aware mode lattice.

    Supports both worlds used in this repository:

    - [Shared]/[Exclusive] — classical 2PL, used by the Global-2PC baseline;
    - [Commute_read]/[Commute_update]/[Non_commute] — the NC3V modes of
      paper §5: commuting locks are compatible with each other but not with
      their non-commuting counterpart, so in the absence of non-well-behaved
      transactions a commute lock is always granted without waiting.

    Grants are FIFO: a request waits behind an earlier incompatible waiter.
    Local deadlocks are detected eagerly on the waits-for graph; distributed
    deadlocks (cycles spanning nodes, invisible locally) fall back to a
    timeout, as in production systems. *)

type mode = Shared | Exclusive | Commute_read | Commute_update | Non_commute

(** Compatibility matrix. Same-owner requests are always compatible with the
    owner's own holdings. *)
val compatible : mode -> mode -> bool

type grant =
  | Granted
  | Deadlock  (** a local waits-for cycle was found; caller should abort *)
  | Timeout  (** waited longer than the deadlock timeout; caller should abort *)
  | Cancelled
      (** the wait was torn down by the owner's own [release_all] (post-abort
          cleanup) — not a conflict outcome, so not counted in
          [conflicts_aborted] *)

type t

(** [create sim ?deadlock_timeout ()] — [deadlock_timeout] (virtual seconds,
    default 1.0) bounds waits to break distributed deadlocks. *)
val create : Simul.Sim.t -> ?deadlock_timeout:float -> unit -> t

(** [acquire t ?timeout ~owner ~key ~mode] blocks the calling process until
    the lock is granted or refused. [timeout] overrides the manager's
    deadlock timeout for this request ([infinity] waits forever — used by
    commuting transactions, whose waits are always resolved by a
    non-commuting transaction timing out). Re-entrant: an owner's own
    holdings never conflict with its new requests. *)
val acquire :
  t -> ?timeout:float -> owner:int -> key:string -> mode:mode -> unit -> grant

(** [release_all t ~owner] drops every lock held by [owner], cancels its
    waiting requests, and wakes newly grantable waiters. *)
val release_all : t -> owner:int -> unit

(** Locks currently held by [owner], as (key, mode) pairs, sorted by key. *)
val held : t -> owner:int -> (string * mode) list

(** Number of requests currently waiting across all keys. *)
val waiting : t -> int

(** Total lock waits that ended in [Deadlock] or [Timeout] since creation
    ([Cancelled] waits are not conflicts and are excluded). *)
val conflicts_aborted : t -> int

(** Prints a mode as "S", "X", "CR", "CU" or "NC". *)
val pp_mode : Format.formatter -> mode -> unit
