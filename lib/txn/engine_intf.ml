(** Common interface implemented by every concurrency-control engine.

    The 3V engine ([Threev.Engine]) and the three §1 baselines
    ([Baselines.Global_2pc], [Baselines.No_coord],
    [Baselines.Manual_versioning]) all satisfy {!S}, so workloads,
    checkers and experiments run unchanged against any of them. An engine
    receives fully-specified transactions ({!Spec.t}) and resolves each one
    to a {!Result.t} through an IVar — the submitting process may await the
    IVar or fire-and-forget. *)

module type S = sig
  type t

  (** Engine name for reports (e.g. "3v", "global-2pc"). *)
  val name : t -> string

  (** [submit t spec] starts the transaction; the returned IVar is filled
      when it commits or aborts. Never suspends the caller. *)
  val submit : t -> Spec.t -> Result.t Simul.Ivar.t

  (** Instrumentation counters (messages, dual writes, aborts, ...). *)
  val stats : t -> Stats.Counter_set.t
end

(** An engine packed with its module, for heterogeneous experiment tables. *)
type packed = Packed : (module S with type t = 'a) * 'a -> packed

let packed_name (Packed ((module E), e)) = E.name e
let packed_submit (Packed ((module E), e)) spec = E.submit e spec
let packed_stats (Packed ((module E), e)) = E.stats e
