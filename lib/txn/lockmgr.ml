module Sim = Simul.Sim

type mode = Shared | Exclusive | Commute_read | Commute_update | Non_commute

let compatible a b =
  match (a, b) with
  | Shared, Shared -> true
  | Commute_read, (Commute_read | Commute_update)
  | Commute_update, (Commute_read | Commute_update) ->
      true
  | _ -> false

type grant = Granted | Deadlock | Timeout | Cancelled

type request = {
  req_owner : int;
  req_mode : mode;
  mutable req_live : bool;  (** false once granted, cancelled or timed out *)
  req_wake : grant -> unit;
}

type lock = { mutable holders : (int * mode) list; queue : request Queue.t }

type t = {
  simulation : Sim.t;
  deadlock_timeout : float;
  locks : (string, lock) Hashtbl.t;
  owner_keys : (int, (string, unit) Hashtbl.t) Hashtbl.t;
  mutable waiting_count : int;
  mutable aborted : int;
}

let create simulation ?(deadlock_timeout = 1.0) () =
  {
    simulation;
    deadlock_timeout;
    locks = Hashtbl.create 64;
    owner_keys = Hashtbl.create 64;
    waiting_count = 0;
    aborted = 0;
  }

let get_lock t key =
  match Hashtbl.find_opt t.locks key with
  | Some l -> l
  | None ->
      let l = { holders = []; queue = Queue.create () } in
      Hashtbl.replace t.locks key l;
      l

let note_held t owner key =
  let keys =
    match Hashtbl.find_opt t.owner_keys owner with
    | Some ks -> ks
    | None ->
        let ks = Hashtbl.create 8 in
        Hashtbl.replace t.owner_keys owner ks;
        ks
  in
  Hashtbl.replace keys key ()

(* Can [owner]'s request in [mode] be granted against current holders?
   Own holdings never conflict (re-entrancy / upgrades past oneself). *)
let holders_allow lock ~owner ~mode =
  List.for_all
    (fun (h_owner, h_mode) -> h_owner = owner || compatible mode h_mode)
    lock.holders

let has_live_waiter lock =
  Queue.fold (fun acc r -> acc || r.req_live) false lock.queue

let incompatible_holders lock ~owner ~mode =
  List.filter_map
    (fun (h_owner, h_mode) ->
      if h_owner <> owner && not (compatible mode h_mode) then Some h_owner
      else None)
    lock.holders

(* Waits-for edges of a request joining at the back of [lock]'s queue: it
   waits for incompatible holders and (FIFO) every live waiter already
   queued ahead of it. *)
let blockers lock ~owner ~mode =
  let from_queue =
    Queue.fold
      (fun acc r ->
        if r.req_live && r.req_owner <> owner then r.req_owner :: acc else acc)
      [] lock.queue
  in
  incompatible_holders lock ~owner ~mode @ from_queue

(* Current waits-for edges for every already-waiting request; a waiter only
   waits for holders and for live waiters {e ahead} of it in the queue. *)
let waits_for_edges t =
  (* lint: hash-order-ok — the edge list only feeds the reachability test
     in [creates_cycle]; cycle existence is order-independent. *)
  Hashtbl.fold
    (fun _key lock acc ->
      let _, acc =
        Queue.fold
          (fun (ahead, acc) r ->
            if not r.req_live then (ahead, acc)
            else
              let hs = incompatible_holders lock ~owner:r.req_owner ~mode:r.req_mode in
              let qs = List.filter (fun o -> o <> r.req_owner) ahead in
              let acc =
                List.fold_left
                  (fun acc b -> (r.req_owner, b) :: acc)
                  acc (hs @ qs)
              in
              (r.req_owner :: ahead, acc))
          ([], acc) lock.queue
      in
      acc)
    t.locks []

(* Would adding edges [owner -> b, b in new_blockers] close a cycle through
   [owner]? DFS over existing edges from each blocker back to [owner]. *)
let creates_cycle t ~owner ~new_blockers =
  let edges = waits_for_edges t in
  let succs o = List.filter_map (fun (a, b) -> if a = o then Some b else None) edges in
  let visited = Hashtbl.create 16 in
  let rec reaches o =
    if o = owner then true
    else if Hashtbl.mem visited o then false
    else begin
      Hashtbl.replace visited o ();
      List.exists reaches (succs o)
    end
  in
  List.exists reaches new_blockers

(* Grant every compatible request from the front of the queue (FIFO, no
   overtaking past an incompatible head). *)
let drain_queue t lock key =
  let rec go () =
    match Queue.peek_opt lock.queue with
    | None -> ()
    | Some r when not r.req_live ->
        ignore (Queue.pop lock.queue);
        go ()
    | Some r ->
        if holders_allow lock ~owner:r.req_owner ~mode:r.req_mode then begin
          ignore (Queue.pop lock.queue);
          r.req_live <- false;
          t.waiting_count <- t.waiting_count - 1;
          lock.holders <- (r.req_owner, r.req_mode) :: lock.holders;
          note_held t r.req_owner key;
          r.req_wake Granted;
          go ()
        end
  in
  go ()

let acquire t ?timeout ~owner ~key ~mode () =
  let timeout =
    match timeout with Some d -> d | None -> t.deadlock_timeout
  in
  let lock = get_lock t key in
  let already_holder = List.exists (fun (h, _) -> h = owner) lock.holders in
  (* Re-entrant requests bypass FIFO fairness: queueing an owner behind a
     waiter that waits for that same owner would self-deadlock. *)
  if
    holders_allow lock ~owner ~mode
    && (already_holder || not (has_live_waiter lock))
  then begin
    (* Re-granting a mode the owner already holds must not push a duplicate
       entry: [held] would report it twice and the holder list would grow on
       every re-entrant acquire. *)
    if not (List.mem (owner, mode) lock.holders) then
      lock.holders <- (owner, mode) :: lock.holders;
    note_held t owner key;
    Granted
  end
  else begin
    let new_blockers = blockers lock ~owner ~mode in
    if creates_cycle t ~owner ~new_blockers then begin
      t.aborted <- t.aborted + 1;
      Deadlock
    end
    else
      Sim.suspend t.simulation (fun waker ->
          let req =
            { req_owner = owner; req_mode = mode; req_live = true; req_wake = waker }
          in
          Queue.add req lock.queue;
          t.waiting_count <- t.waiting_count + 1;
          if timeout < infinity then
            Sim.schedule t.simulation ~delay:timeout (fun () ->
                if req.req_live then begin
                  req.req_live <- false;
                  t.waiting_count <- t.waiting_count - 1;
                  t.aborted <- t.aborted + 1;
                  (* Head may now be unblocked if this was the head. *)
                  drain_queue t lock key;
                  waker Timeout
                end))
  end

let release_all t ~owner =
  match Hashtbl.find_opt t.owner_keys owner with
  | None -> ()
  | Some keys ->
      Hashtbl.remove t.owner_keys owner;
      (* lint: hash-order-ok — OCaml's unseeded Hashtbl iterates the same
         insertion sequence identically on every run, so the wake order is
         replay-deterministic; sorting here would only reshuffle the golden
         schedules. *)
      Hashtbl.iter
        (fun key () ->
          match Hashtbl.find_opt t.locks key with
          | None -> ()
          | Some lock ->
              lock.holders <-
                List.filter (fun (h, _) -> h <> owner) lock.holders;
              drain_queue t lock key)
        keys;
      (* Cancel any still-waiting requests of this owner (post-abort). The
         wake reason is [Cancelled], not [Timeout]: the owner is being torn
         down, it did not lose a deadlock-timeout race, and callers must not
         account it as one. *)
      (* lint: hash-order-ok — same argument as the wake loop above:
         unseeded Hashtbl order is replay-deterministic. *)
      Hashtbl.iter
        (fun key lock ->
          let cancelled = ref false in
          Queue.iter
            (fun r ->
              if r.req_live && r.req_owner = owner then begin
                r.req_live <- false;
                t.waiting_count <- t.waiting_count - 1;
                cancelled := true;
                r.req_wake Cancelled
              end)
            lock.queue;
          if !cancelled then drain_queue t lock key)
        t.locks

let held t ~owner =
  Hashtbl.fold
    (fun key lock acc ->
      List.fold_left
        (fun acc (h, m) -> if h = owner then (key, m) :: acc else acc)
        acc lock.holders)
    t.locks []
  |> List.sort compare

let waiting t = t.waiting_count
let conflicts_aborted t = t.aborted

let pp_mode ppf m =
  Format.pp_print_string ppf
    (match m with
    | Shared -> "S"
    | Exclusive -> "X"
    | Commute_read -> "CR"
    | Commute_update -> "CU"
    | Non_commute -> "NC")
