(** Transaction specifications: trees of subtransactions.

    Follows the paper's tree model of transactions [Mohan et al., R*]: a
    transaction is submitted to one node, whose {e root subtransaction} runs
    local operations and then sends child subtransactions to other nodes;
    children may recursively spawn further children, possibly revisiting
    nodes. The empty-root pattern of Figure 1 (a front-end that only fans
    out) is a root with no ops and several children. *)

type subtxn = {
  node : int;  (** node this subtransaction executes on *)
  ops : Op.t list;  (** local operations, executed in order *)
  children : subtxn list;  (** spawned after local execution *)
  think : float;
      (** delay before the operations execute, outside the node's local
          critical section — models application-level lateness such as a
          charge amount not being finalized yet (0 = execute immediately;
          engines add their own per-subtransaction CPU cost on top) *)
}

(** Transaction class, deciding which protocol path an engine uses. *)
type kind =
  | Read_only  (** queries — in 3V they run against the read version *)
  | Commuting  (** well-behaved updates (paper Def. 3.1) *)
  | Non_commuting  (** NC3V updates: 2PL + 2PC (§5) *)

type t = {
  id : int;  (** unique transaction id, also used as the writer tag *)
  label : string;  (** for traces and error messages *)
  root : subtxn;
  kind : kind;
}

(** [subtxn ?think ?children node ops] builds a subtransaction node. *)
val subtxn : ?think:float -> ?children:subtxn list -> int -> Op.t list -> subtxn

(** [make ~id ?label root] classifies the tree ({!classify}) and builds the
    spec. *)
val make : id:int -> ?label:string -> subtxn -> t

(** [classify root] is [Read_only] if no operation writes, [Non_commuting] if
    any write is outside the commuting class, and [Commuting] otherwise. *)
val classify : subtxn -> kind

(** All nodes mentioned anywhere in the tree, deduplicated, sorted. *)
val nodes : t -> int list

(** All distinct keys read anywhere in the tree. *)
val keys_read : t -> string list

(** All distinct keys written anywhere in the tree. *)
val keys_written : t -> string list

(** Total number of subtransactions in the tree (≥ 1). *)
val size : t -> int

(** Prints the kind as "RO", "C" or "NC". *)
val pp_kind : Format.formatter -> kind -> unit

(** One-line spec summary: id, label, kind, node set. *)
val pp : Format.formatter -> t -> unit
