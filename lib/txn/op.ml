type t =
  | Read of string
  | Incr of string * float
  | Append of string * string
  | Overwrite of string * float

let key = function
  | Read k | Incr (k, _) | Append (k, _) | Overwrite (k, _) -> k

let is_write = function
  | Read _ -> false
  | Incr _ | Append _ | Overwrite _ -> true

let commuting_write = function
  | Incr _ | Append _ -> true
  | Read _ | Overwrite _ -> false

let apply op ~txn v =
  match op with
  | Read _ -> v
  | Incr (_, delta) -> Value.incr ~txn ~delta v
  | Append (_, entry) -> Value.append ~txn ~entry v
  | Overwrite (_, amount) -> Value.overwrite ~txn ~amount v

let pp ppf = function
  | Read k -> Format.fprintf ppf "r(%s)" k
  | Incr (k, d) -> Format.fprintf ppf "incr(%s,%g)" k d
  | Append (k, e) -> Format.fprintf ppf "append(%s,%s)" k e
  | Overwrite (k, a) -> Format.fprintf ppf "w(%s,%g)" k a
