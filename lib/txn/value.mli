(** Database values for the data-recording workloads.

    A value is a recording-system "summary plus detail" cell (paper §6): a
    numeric [amount] (e.g. balance due, items sold), a list of appended
    detail [entries], and the set of transaction ids that have written it.
    The [writers] set exists purely for the offline correctness checker —
    it lets a read transaction report exactly which update transactions it
    observed on each key, from which atomic visibility is decided. *)

module Writers : Set.S with type elt = int

type t = { amount : float; entries : string list; writers : Writers.t }

(** The zero value: amount 0, no entries, no writers. *)
val empty : t

(** [incr ~txn ~delta v] adds [delta] to the amount and records the writer.
    Increments commute: applying two in either order yields the same value. *)
val incr : txn:int -> delta:float -> t -> t

(** [append ~txn ~entry v] prepends a detail record and records the writer.
    Appends commute up to entry order; equality treats entries as a multiset. *)
val append : txn:int -> entry:string -> t -> t

(** [overwrite ~txn ~amount v] replaces the amount (non-commuting). *)
val overwrite : txn:int -> amount:float -> t -> t

(** Structural equality with entries compared as multisets, so states reached
    by commuting updates in different orders compare equal. *)
val equal : t -> t -> bool

(** Pretty-printer for traces and failure reports. *)
val pp : Format.formatter -> t -> unit
