type subtxn = {
  node : int;
  ops : Op.t list;
  children : subtxn list;
  think : float;
}

type kind = Read_only | Commuting | Non_commuting

type t = { id : int; label : string; root : subtxn; kind : kind }

let subtxn ?(think = 0.) ?(children = []) node ops =
  { node; ops; children; think }

let rec fold_subtxns f acc st =
  let acc = f acc st in
  List.fold_left (fold_subtxns f) acc st.children

let classify root =
  let has_write, all_commute =
    fold_subtxns
      (fun (w, c) st ->
        List.fold_left
          (fun (w, c) op ->
            if Op.is_write op then (true, c && Op.commuting_write op)
            else (w, c))
          (w, c) st.ops)
      (false, true) root
  in
  if not has_write then Read_only
  else if all_commute then Commuting
  else Non_commuting

let make ~id ?label root =
  let kind = classify root in
  let label =
    match label with Some l -> l | None -> Printf.sprintf "txn-%d" id
  in
  { id; label; root; kind }

let nodes t =
  fold_subtxns (fun acc st -> st.node :: acc) [] t.root
  |> List.sort_uniq compare

let collect_keys pred t =
  fold_subtxns
    (fun acc st ->
      List.fold_left
        (fun acc op -> if pred op then Op.key op :: acc else acc)
        acc st.ops)
    [] t.root
  |> List.sort_uniq String.compare

let keys_read = collect_keys (fun op -> not (Op.is_write op))
let keys_written = collect_keys Op.is_write

let size t = fold_subtxns (fun acc _ -> acc + 1) 0 t.root

let pp_kind ppf = function
  | Read_only -> Format.pp_print_string ppf "read-only"
  | Commuting -> Format.pp_print_string ppf "commuting"
  | Non_commuting -> Format.pp_print_string ppf "non-commuting"

let pp ppf t =
  Format.fprintf ppf "%s#%d[%a, %d subtxns]" t.label t.id pp_kind t.kind
    (size t)
