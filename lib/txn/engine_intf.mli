(** Common interface implemented by every concurrency-control engine.

    The 3V engine ([Threev.Engine]) and the three §1 baselines
    ([Baselines.Global_2pc], [Baselines.No_coord],
    [Baselines.Manual_versioning]) all satisfy {!S}, so workloads,
    checkers and experiments run unchanged against any of them. An engine
    receives fully-specified transactions ({!Spec.t}) and resolves each one
    to a {!Result.t} through an IVar — the submitting process may await the
    IVar or fire-and-forget. *)

module type S = sig
  type t

  (** Engine name for reports (e.g. "3v", "global-2pc"). *)
  val name : t -> string

  (** [submit t spec] starts the transaction; the returned IVar is filled
      when it commits or aborts. Never suspends the caller. *)
  val submit : t -> Spec.t -> Result.t Simul.Ivar.t

  (** Instrumentation counters (messages, dual writes, aborts, ...). *)
  val stats : t -> Stats.Counter_set.t
end

(** An engine packed with its module, for heterogeneous experiment tables. *)
type packed = Packed : (module S with type t = 'a) * 'a -> packed

(** {!S.name} of a packed engine. *)
val packed_name : packed -> string

(** {!S.submit} through the pack: submits [spec] to the wrapped engine. *)
val packed_submit : packed -> Spec.t -> Result.t Simul.Ivar.t

(** {!S.stats} of a packed engine. *)
val packed_stats : packed -> Stats.Counter_set.t
