(** Deterministic heartbeat failure detector.

    Pure suspicion state machine: the owner feeds it heartbeat arrivals
    ([heartbeat]) and queries per-node suspicion ([suspected]) — both against
    a caller-supplied clock, so the detector never reads wall time or draws
    randomness. Suspicion is a deadline test with a phi-accrual-style
    adaptive horizon: each node's deadline sits a multiple of its observed
    heartbeat cadence (EWMA) past its last arrival, and every miss stretches
    the horizon with bounded back-off. States follow
    trusted → suspected → confirmed-down → recovered (PROTOCOL.md §11);
    suspicion can be {e wrong} in both directions, and the 3V engine is
    required to stay safe either way. *)

(** Per-node detector state. [Recovered] is the one-beat transitional state
    between a suspicion being refuted (a heartbeat arrived) and full trust
    being restored by the next on-time heartbeat. *)
type state = Trusted | Suspected | Confirmed_down | Recovered

type config = {
  period : float;  (** expected heartbeat send interval *)
  timeout : float;
      (** minimum silence before the first suspicion; must exceed [period] *)
  phi_factor : float;
      (** horizon multiple of the observed mean inter-arrival gap *)
  confirm_misses : int;
      (** consecutive expired deadlines that escalate [Suspected] to
          [Confirmed_down] *)
  backoff : float;  (** per-miss horizon multiplier (>= 1) *)
  max_horizon : float;  (** horizon bound; also caps gaps folded into the EWMA *)
}

(** Conservative defaults for a 50 ms heartbeat period. *)
val default_config : config

type t

(** [create ~nodes ~now ()] builds a detector trusting all [nodes] peers,
    with every deadline seeded from [now]. Raises [Invalid_argument] on a
    malformed configuration. *)
val create : ?config:config -> nodes:int -> now:float -> unit -> t

(** The configuration the detector was built with. *)
val config : t -> config

(** Number of monitored peers. *)
val nodes : t -> int

(** [heartbeat t ~node ~now] records a heartbeat arrival from [node] at
    [now]: refutes any standing suspicion, folds the inter-arrival gap into
    the adaptive horizon, and re-arms the deadline. *)
val heartbeat : t -> node:int -> now:float -> unit

(** [state t ~node ~now] rolls [node]'s deadline clock forward to [now] and
    returns its current state. *)
val state : t -> node:int -> now:float -> state

(** [suspected t ~node ~now] — [true] iff the state at [now] is [Suspected]
    or [Confirmed_down]. This is the liveness predicate protocol decisions
    consume. *)
val suspected : t -> node:int -> now:float -> bool

(** [confirmed_down t ~node ~now] — [true] iff the state at [now] is
    [Confirmed_down]. *)
val confirmed_down : t -> node:int -> now:float -> bool

(** Trusted/recovered → suspected transitions so far. *)
val suspicions : t -> int

(** Suspected → confirmed-down escalations so far. *)
val confirmations : t -> int

(** Suspicion refutations (a suspected or confirmed-down peer heartbeat
    again) so far. *)
val recoveries : t -> int

(** Heartbeat arrivals folded in so far. *)
val heartbeats_seen : t -> int

(** Formatter for {!state}. *)
val pp_state : Format.formatter -> state -> unit
