type state = Trusted | Suspected | Confirmed_down | Recovered

type config = {
  period : float;
  timeout : float;
  phi_factor : float;
  confirm_misses : int;
  backoff : float;
  max_horizon : float;
}

let default_config =
  {
    period = 0.05;
    timeout = 0.15;
    phi_factor = 4.0;
    confirm_misses = 3;
    backoff = 2.0;
    max_horizon = 2.0;
  }

type peer = {
  mutable last : float;  (** arrival time of the most recent heartbeat *)
  mutable mean : float;  (** EWMA of observed inter-arrival gaps *)
  mutable st : state;
  mutable misses : int;  (** consecutive expired deadlines since the last beat *)
  mutable horizon : float;  (** current deadline extension, bounded back-off *)
  mutable deadline : float;  (** next instant at which silence counts *)
}

type t = {
  cfg : config;
  peers : peer array;
  mutable suspicions : int;
  mutable confirmations : int;
  mutable recoveries : int;
  mutable heartbeats : int;
}

let check_config cfg =
  if cfg.period <= 0. then invalid_arg "Fd.Detector: period must be positive";
  if cfg.timeout <= cfg.period then
    invalid_arg "Fd.Detector: timeout must exceed the heartbeat period";
  if cfg.phi_factor < 1. then
    invalid_arg "Fd.Detector: phi_factor must be >= 1";
  if cfg.confirm_misses < 1 then
    invalid_arg "Fd.Detector: confirm_misses must be >= 1";
  if cfg.backoff < 1. then invalid_arg "Fd.Detector: backoff must be >= 1";
  if cfg.max_horizon < cfg.timeout then
    invalid_arg "Fd.Detector: max_horizon must be >= timeout"

(* The fresh-peer horizon: generous enough that a peer whose first beat is
   still in flight at boot is not suspected before it had a chance to send
   one ([timeout] already exceeds [period] by construction). *)
let base_horizon cfg mean = Float.max cfg.timeout (cfg.phi_factor *. mean)

let create ?(config = default_config) ~nodes ~now () =
  check_config config;
  if nodes <= 0 then invalid_arg "Fd.Detector: nodes must be positive";
  {
    cfg = config;
    peers =
      Array.init nodes (fun _ ->
          {
            last = now;
            mean = config.period;
            st = Trusted;
            misses = 0;
            horizon = base_horizon config config.period;
            deadline = now +. base_horizon config config.period;
          });
    suspicions = 0;
    confirmations = 0;
    recoveries = 0;
    heartbeats = 0;
  }

let config t = t.cfg
let nodes t = Array.length t.peers

(* Lazily roll a peer's deadline clock forward to [now]: every expired
   deadline is one "miss". The first miss moves a trusted (or freshly
   recovered) peer to [Suspected]; [confirm_misses] consecutive misses
   confirm it down. Each miss stretches the horizon by [backoff] (bounded by
   [max_horizon]), so a long outage costs O(log) state transitions and a
   recovering peer is re-trusted quickly. All arithmetic is on caller-supplied
   clock values — the detector itself never reads a clock, which is what
   makes suspicion a pure function of the heartbeat arrival history. *)
let refresh t p ~now =
  while now >= p.deadline do
    p.misses <- p.misses + 1;
    (match p.st with
    | Trusted | Recovered ->
        p.st <- Suspected;
        t.suspicions <- t.suspicions + 1
    | Suspected ->
        if p.misses >= t.cfg.confirm_misses then begin
          p.st <- Confirmed_down;
          t.confirmations <- t.confirmations + 1
        end
    | Confirmed_down -> ());
    p.horizon <- Float.min (p.horizon *. t.cfg.backoff) t.cfg.max_horizon;
    p.deadline <- p.deadline +. p.horizon
  done

let check_node t node ctx =
  if node < 0 || node >= Array.length t.peers then
    invalid_arg (Printf.sprintf "Fd.Detector.%s: node %d out of range" ctx node)

let heartbeat t ~node ~now =
  check_node t node "heartbeat";
  let p = t.peers.(node) in
  t.heartbeats <- t.heartbeats + 1;
  refresh t p ~now;
  (match p.st with
  | Suspected | Confirmed_down ->
      (* The peer was under suspicion and is demonstrably emitting: either
         the suspicion was false (loss, partition, overload) or the peer
         restarted. One transitional [Recovered] beat, then trust. *)
      p.st <- Recovered;
      t.recoveries <- t.recoveries + 1
  | Recovered -> p.st <- Trusted
  | Trusted -> ());
  let gap = now -. p.last in
  (* Fold the observed gap into the adaptive horizon (phi-accrual style:
     the deadline tracks a multiple of the observed cadence, so a slow but
     steady peer is not endlessly re-suspected). Outage-length gaps are
     excluded — they measure the fault, not the cadence. *)
  if gap > 0. && gap <= t.cfg.max_horizon then
    p.mean <- (0.875 *. p.mean) +. (0.125 *. gap);
  p.last <- now;
  p.misses <- 0;
  p.horizon <- base_horizon t.cfg p.mean;
  p.deadline <- now +. p.horizon

let state t ~node ~now =
  check_node t node "state";
  let p = t.peers.(node) in
  refresh t p ~now;
  p.st

let suspected t ~node ~now =
  match state t ~node ~now with
  | Suspected | Confirmed_down -> true
  | Trusted | Recovered -> false

let confirmed_down t ~node ~now = state t ~node ~now = Confirmed_down

let suspicions t = t.suspicions
let confirmations t = t.confirmations
let recoveries t = t.recoveries
let heartbeats_seen t = t.heartbeats

let pp_state ppf = function
  | Trusted -> Format.fprintf ppf "trusted"
  | Suspected -> Format.fprintf ppf "suspected"
  | Confirmed_down -> Format.fprintf ppf "confirmed-down"
  | Recovered -> Format.fprintf ppf "recovered"
