(** Structured event trace, used to replay the paper's Table 1.

    When an engine is created with a trace, it emits one event per
    protocol-relevant action (transaction arrival, data update with version,
    subtransaction issue/arrival, counter increments, advancement notices,
    completions). The Table 1 experiment renders these as the paper does:
    one row per event, columns TIME / SITE / description. *)

type event = {
  time : float;
  site : string;  (** node name, or "coord" for the coordinator *)
  what : string;
}

type t

val create : unit -> t

(** [emit t ~time ~site what] appends an event. *)
val emit : t -> time:float -> site:string -> string -> unit

(** Events in emission order. *)
val events : t -> event list

val length : t -> int

(** [render t ~sites] formats the trace as a Table 1-style grid with one
    column per site name in [sites] (events from other sites get their own
    trailing column). *)
val render : t -> sites:string list -> string

(** [find t pattern] is all events whose description contains [pattern]. *)
val find : t -> string -> event list
