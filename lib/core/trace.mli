(** Structured event trace, used to replay the paper's Table 1.

    When an engine is created with a trace, it emits one event per
    protocol-relevant action (transaction arrival, data update with version,
    subtransaction issue/arrival, counter increments, advancement notices,
    completions). The Table 1 experiment renders these as the paper does:
    one row per event, columns TIME / SITE / description.

    Storage is a {e bounded ring buffer}: append and [length] are O(1) and
    memory is O(capacity) regardless of run length, so tracing a 10^6-event
    run cannot exhaust the heap. Once [capacity] events are retained, each
    new event evicts the oldest; an optional [sink] observes {e every} event
    at emission time (before any eviction), for callers that want to stream
    the full firehose to a file or an aggregator. *)

type event = {
  time : float;
  site : string;  (** node name, or "coord" for the coordinator *)
  what : string;
}

type t

(** Default ring capacity: 65536 events. *)
val default_capacity : int

(** [create ?capacity ?sink ()] is an empty trace retaining at most
    [capacity] (default {!default_capacity}) events. [sink] is invoked on
    every emitted event, including those later evicted from the ring.
    @raise Invalid_argument if [capacity <= 0]. *)
val create : ?capacity:int -> ?sink:(event -> unit) -> unit -> t

(** The ring capacity the trace was created with. *)
val capacity : t -> int

(** [emit t ~time ~site what] appends an event, evicting the oldest if the
    ring is full. O(1). *)
val emit : t -> time:float -> site:string -> string -> unit

(** [emit_deferred t ~time ~site msg] appends an event whose message is
    rendered by [msg ()] only if the event is still retained when read —
    evicted events never pay the formatting cost, which is most of them on
    a traced bench run. [msg] must be pure: capture the values it formats
    at the call site (not mutable state), because it runs later, at most
    once, and only for retained events. With a [sink] attached the message
    is rendered immediately (the sink observes every event at emission),
    so deferral never changes what a sink sees. *)
val emit_deferred : t -> time:float -> site:string -> (unit -> string) -> unit

(** Retained events in emission order (oldest first). Allocates a fresh
    list; prefer {!iter} in loops. *)
val events : t -> event list

(** [iter t f] applies [f] to every retained event, oldest first, without
    allocating. *)
val iter : t -> (event -> unit) -> unit

(** Retained event count. Invariant: [length t = List.length (events t)],
    and [length t <= capacity t]. *)
val length : t -> int

(** Events emitted over the trace's lifetime, including evicted ones.
    [total t = length t + dropped t]. *)
val total : t -> int

(** Events evicted from the ring ([total] minus [length]). *)
val dropped : t -> int

(** Drop every retained event and reset the counters. Capacity (and the
    backing allocation) is kept. *)
val clear : t -> unit

(** [render t ~sites] formats the retained trace as a Table 1-style grid
    with one column per site name in [sites] (events from other sites get
    their own trailing column). *)
val render : t -> sites:string list -> string

(** [find t pattern] is all retained events whose description contains
    [pattern]. Single allocation-free scan of the ring. *)
val find : t -> string -> event list
