(** Version-advancement trigger policies (paper §1, "Desired Solution").

    The paper leaves {e when} to advance to the user: "every hour, or once a
    certain number of update transactions have accumulated, or after a
    particular update transaction commits". These policies drive the
    engine's coordinator accordingly; [Manual] leaves triggering entirely to
    explicit {!Engine.advance} calls. *)

type t =
  | Manual
  | Periodic of float  (** trigger every given number of virtual seconds *)
  | Every_n_updates of int
      (** trigger whenever this many update transactions have been submitted
          since the last trigger *)
  | Divergence of float
      (** trigger once the accumulated magnitude of committed write deltas
          since the last trigger exceeds this threshold — the paper's "when
          the difference in value of data items in different versions
          exceeds some threshold" *)

(** Prints the policy and its parameter, e.g. "periodic(0.5)". *)
val pp : Format.formatter -> t -> unit
