(** The 3V protocol engine (paper §4) with the NC3V extension (§5).

    One engine instance models the whole distributed system: [config.nodes]
    database nodes plus one coordinator endpoint, all communicating through
    an asynchronous {!Netsim.Network}. Each node keeps

    - its current update version [vu] and read version [vr],
    - a multi-version store ({!Store.Mvstore}),
    - request/completion counter tables ({!Counters}),
    - a lock manager (only exercised when [nc_mode] is on).

    {b Update transactions} (well-behaved, §4.1): the root subtransaction is
    assigned the node's current [vu] on arrival and bumps [R(vu)pp]; writes
    create missing versions by copy-on-update and update {e all} versions
    ≥ the transaction's version (the dual write of §2.3); children carry the
    version, late nodes treat an arriving higher-versioned subtransaction as
    the advancement notification. A subtransaction terminates — bumping its
    completion counter and notifying its parent — once its local work is
    done and all its children have terminated, exactly as in the paper's
    Table 1. Nothing in this path ever waits for a remote event.

    {b Read-only transactions} (§4.2): same machinery with version [vr];
    they take no locks and are never delayed or aborted.

    {b Version advancement} (§4.3) runs as a coordinator process: phase 1
    broadcasts the new update version and collects acks; phase 2 polls the
    counters asynchronously until two consecutive polls agree and show
    [R(v)pq = C(v)pq] everywhere; phase 3 advances the read version; phase 4
    waits for old readers the same way and triggers garbage collection.

    {b Coordinator crash tolerance}: every phase entry is recorded in a
    durable write-ahead log ({!Coord_log}) before its first message goes
    out, and every phase is idempotent on the node side, so a coordinator
    fail-stop crash (inject with {!inject_coord_crash} or a
    {!Fault.Plan.coord_crash} entry) loses only volatile progress: on
    restart the coordinator replays the log and re-drives the in-flight
    advancement from its last logged phase. Counter polls are namespaced by
    a restart epoch so pre-crash replies can never satisfy a post-restart
    poll. A finite [phase_deadline] additionally arms a stall watchdog that
    re-broadcasts a phase's message (to the nodes still owing a reply) with
    bounded exponential backoff, turning silent wedges into observable,
    self-healing retries ([proto.phase_stalled]).

    {b Non-commuting updates} (§5, enable with [nc_mode]): well-behaved
    transactions take commute locks released by an asynchronous clean-up;
    non-commuting transactions take non-commute locks, wait at the root for
    [vu = vr + 1], abort when overtaken by a higher version, and commit via
    two-phase commit.

    {b Compensation} (§3.2): with [abort_probability] > 0, that fraction of
    commuting update transactions "abort" after spawning their children by
    issuing compensating subtransactions through the ordinary counters,
    which exercises termination detection under in-flight compensation. *)

type config = {
  nodes : int;  (** number of database nodes (≥ 1) *)
  shards : int;
      (** number of keyspace shards [S] (1 ≤ S ≤ nodes, [S] dividing
          [nodes] evenly, and [nodes / S] a multiple of [replicas] so a
          replica group never straddles a shard). Nodes are partitioned
          into [S] contiguous blocks, each governed by {e its own}
          coordinator endpoint with a private write-ahead log, (vu, vr)
          frontier, counter-poll state and watchdog — so version
          advancement, the protocol's only global synchronization point,
          becomes [S] independent per-shard rounds over [nodes / S]
          members each. Update transactions must stay within one shard
          ({!submit} rejects cross-shard update trees); read-only
          transactions may span shards and are assigned a consistent
          {e read vector} of per-shard read versions at submission (see
          {!read_vector}). The default [1] reproduces the historical
          single-coordinator engine byte-for-byte. *)
  replicas : int;
      (** replication factor [k] (1 ≤ k ≤ nodes): nodes are partitioned
          into groups of [k] consecutive replicas ({!Repl.Placement});
          commuting writes are mirrored to every group member through the
          counter matrices, reads fail over along the group's deterministic
          failover order (skipping replicas whose readable-after-recovery
          gate is closed), and coordinator waits complete on a quorum of
          ≥ 1 live replica per group — so advancement tolerates up to
          [k - 1] crashed replicas of any group. Replication covers the
          commuting core of the protocol only: [nc_mode] must stay off (an
          overwrite needs inter-replica ordering, which commuting
          replication does not provide, so a failed-over read could miss a
          primary-pinned overwrite — {!create} rejects the combination). The
          default [1] makes every group a singleton and disables every
          replication code path, keeping historical schedules
          byte-identical. Crash tolerance additionally requires
          [reliable_channel] (mirrors owed to a down replica must
          retransmit until its restart). *)
  hb_period : float;
      (** heartbeat send cadence for the failure-detector subsystem. [0.]
          (the default) disables it entirely — no heartbeat network, no
          daemons, no messages, byte-identical historical schedules — and
          liveness decisions fall back to the fault injector's
          {e instantaneous} ground truth (a legacy/testing convenience: no
          deployable system has that oracle). When positive, every node
          sends a beacon to the coordinator this often over a dedicated
          side network ({!Netsim.Heartbeat}) and {e all} protocol liveness
          — read-failover routing, quorum poll participation, watchdog-time
          excusal — is derived from per-node {e suspicion} computed from
          heartbeat arrival deadlines ({!Fd.Detector}). Suspicion can be
          wrong in both directions and the protocol stays safe either way:
          a falsely-suspected live node's late replies fold in
          idempotently, and an unsuspected-but-dead node degrades to the
          watchdog/retransmit path (PROTOCOL.md §11). *)
  hb_timeout : float;
      (** minimum heartbeat silence before the detector first suspects a
          node; must exceed [hb_period] when the detector is on. Confirmation
          and back-off beyond the first suspicion follow
          {!Fd.Detector.default_config}. *)
  latency : Netsim.Latency.t;  (** inter-node message latency model *)
  think_time : float;  (** local processing time per subtransaction *)
  poll_interval : float;  (** spacing of the coordinator's counter polls *)
  phase_deadline : float;
      (** stall watchdog: after this long without progress in an advancement
          phase the coordinator records [proto.phase_stalled] and re-sends
          the phase message to the nodes that have not replied, with doubled
          (bounded) backoff. [infinity] (the default) disables the watchdog
          — its daemon is not spawned, leaving fault-free schedules
          untouched. Must be positive. *)
  policy : Policy.t;  (** when to trigger version advancement *)
  nc_mode : bool;
      (** take commute locks on well-behaved transactions so that
          non-commuting transactions can be admitted (§5) *)
  deadlock_timeout : float;  (** lock-wait bound for NC transactions *)
  abort_probability : float;
      (** fraction of commuting updates that compensate (§3.2) *)
  debug_checks : bool;
      (** assert the quiescence oracle when the coordinator declares a
          version consistent — catches unsound termination detection *)
  two_wave_quiescence : bool;
      (** ablation A1: [true] (sound) requires two consecutive identical
          matching polls; [false] declares on the first matching poll *)
  await_gc_acks : bool;
      (** ablation A2: [true] (sound) ends an advancement only after all
          nodes acknowledged garbage collection, which is what bounds items
          to three versions; [false] may transiently create a fourth *)
  dual_writes : bool;
      (** ablation A3: [true] (sound) makes straggler writes update every
          version ≥ theirs (§4.1 step 4); [false] silently loses those
          writes from the newer version *)
  reliable_channel : bool;
      (** route every message through {!Netsim.Reliable}: per-link sequence
          numbers, acks and receive-side dedup, making delivery
          at-least-once + idempotent. Required whenever the installed fault
          plan can drop or duplicate messages; default [false] so fault-free
          runs keep their exact historical schedules. *)
  retransmit : bool;
      (** ablation A4: [true] (sound) re-sends unacknowledged messages with
          exponential backoff; [false] under loss provably stalls
          advancement (a lost phase broadcast or ack is never repaired).
          Only meaningful with [reliable_channel]. *)
  retransmit_timeout : float;  (** first retransmission delay (virtual s) *)
  retransmit_backoff : float;  (** per-retry delay multiplier (≥ 1) *)
  expected_inbox_depth : int;
      (** pre-size for each node's network inbox ring (messages); derive
          from the configured arrival rate for steady-state benches. Purely
          a capacity hint — never affects schedules. *)
}

(** A sensible default: constant 5 ms links, 0.1 ms think time, 10 ms poll
    interval, manual policy, NC mode off, no compensation, checks on. *)
val default_config : nodes:int -> config

type t

(** [create sim config ?trace ?node_names ?link_latency ?faults ()] builds
    the system and starts its node server processes and coordinator (as
    daemon processes of [sim]). [node_names] labels nodes in traces
    (default "n0", "n1", ...). [faults] plugs a {!Fault.Injector} into the
    engine's network and node-event hooks; when omitted an internal
    injector with the empty plan is used (behaviorally a no-op), so
    {!inject_pause} and {!inject_crash} always work. *)
val create :
  Simul.Sim.t ->
  config ->
  ?trace:Trace.t ->
  ?node_names:string array ->
  ?link_latency:(src:int -> dst:int -> Netsim.Latency.t option) ->
  ?faults:Fault.Injector.t ->
  unit ->
  t

(** Engine-interface instance (name, submit, stats). *)
include Txn.Engine_intf.S with type t := t

(** [packed t] wraps the engine for heterogeneous experiment tables. *)
val packed : t -> Txn.Engine_intf.packed

(** [advance t] triggers one full version advancement (all four phases,
    including garbage collection); the IVar fills when it finishes. Safe to
    call regardless of policy; concurrent triggers queue. *)
val advance : t -> unit Simul.Ivar.t

(** Current update version at a node. *)
val update_version : t -> node:int -> int

(** Current read version at a node. *)
val read_version : t -> node:int -> int

(** A node's store, for inspection by tests and experiments. *)
val store : t -> node:int -> Txn.Value.t Store.Mvstore.t

(** A node's counter table. *)
val counters : t -> node:int -> Counters.t

(** Quiescence oracle: number of subtransactions of [version] that have been
    requested but have not yet terminated, across the whole system. *)
val live_subtxns : t -> version:int -> int

(** Number of fully completed version advancements. *)
val advancements_completed : t -> int

(** [inject_pause t ~node ~at ~duration] freezes message processing at
    [node] from virtual time [at] for [duration] seconds (fault injection:
    an overloaded or GC-stalled peer). Subtransactions already executing
    locally finish; everything else queues. Used to demonstrate the §8
    claim that no user transaction on a node is delayed by activity —
    or inactivity — on other nodes. A thin wrapper over
    {!Fault.Injector.pause} on the engine's injector. *)
val inject_pause : t -> node:int -> at:float -> duration:float -> unit

(** [inject_crash t ~node ~at ~restart] fail-stops [node] during
    [[at, restart)): all its traffic is dropped, and at [restart] it
    recovers its volatile version registers from durable state (store GC
    floor + counters) and catches up via the late-node rule. Use with
    [reliable_channel] on, or in-flight protocol messages are lost for
    good. Thin wrapper over {!Fault.Injector.crash}. *)
val inject_crash : t -> node:int -> at:float -> restart:float -> unit

(** [inject_coord_crash t ~at ~restart] fail-stops the {e coordinator}
    during [[at, restart)): its traffic is dropped and its volatile phase
    progress (ack tallies, poll round, armed watchdog) is lost. At
    [restart] it replays its write-ahead log, bumps its poll epoch, and
    re-drives the in-flight advancement from the last logged phase; nodes
    treat the re-driven messages idempotently. Thin wrapper over
    {!Fault.Injector.coord_crash}.
    @raise Invalid_argument if [restart <= at]. *)
val inject_coord_crash : t -> at:float -> restart:float -> unit

(** The coordinator's write-ahead log, for inspection by tests and
    experiments (e.g. to read phase-boundary times of a reference run).
    With [shards > 1] this is {e shard 0's} log — the injectable
    coordinator ({!inject_coord_crash} targets shard 0, the
    "coordinator-of-one-shard" failure case). *)
val coord_log : t -> Coord_log.t

(** Configured shard count [S]. *)
val shard_count : t -> int

(** [shard_of_node t ~node] is the shard owning [node] (nodes are split
    into [S] contiguous equal blocks). *)
val shard_of_node : t -> node:int -> int

(** Snapshot of the published per-shard read-version vector — component
    [s] is the newest read version shard [s]'s coordinator has made
    assignable to cross-shard reads (published at phase-3 completion,
    i.e. after every shard member acknowledged the switch). Singleton
    [[| vr |]] at [shards = 1]. Components are monotone and snapshots
    atomic, so any two vectors ever assigned are componentwise
    comparable — the no-torn-read-vector guarantee. *)
val read_vector : t -> int array

(** [assigned_vector t ~txn] is the read vector assigned to transaction
    [txn] at submission, if it was a cross-shard read ([None] for
    single-shard transactions and always at [shards = 1]). Retained for
    post-hoc certification: checkers fence each key by its shard's
    component rather than the root's version. *)
val assigned_vector : t -> txn:int -> int array option

(** The engine's fault injector (the one passed to {!create}, or the
    internal empty-plan injector), for accounting and ad-hoc fault
    scheduling. *)
val injector : t -> Fault.Injector.t

(** The engine's replica placement (group membership and failover order),
    derived from [config.replicas]. With [replicas = 1] every node is a
    singleton group. *)
val placement : t -> Repl.Placement.t

(** The failure detector's suspicion state machine, when the heartbeat
    subsystem is on ([config.hb_period > 0]); [None] otherwise. For
    inspection by tests and experiments (suspicion/recovery accounting also
    surfaces in {!stats} under ["fd.*"]). *)
val detector : t -> Fd.Detector.t option

(** [node_suspected t ~node] — is [node] currently under heartbeat
    suspicion? Always [false] when the detector is off. This is exactly the
    liveness signal routing and quorum polls consume (negated). *)
val node_suspected : t -> node:int -> bool

(** [node_readable t ~node] — the readable-after-recovery gate: [true] iff
    [node] may serve reads right now. A node that never crashed is always
    readable; a recovered replica becomes readable once its catch-up
    backlog has drained (no retransmissions still owed to it) {e and} its
    read version has reached the frontier recorded at restart, i.e. a full
    quiescence round has certified the suspect version with the replica
    participating. *)
val node_readable : t -> node:int -> bool

(** Total messages sent on the underlying network so far. *)
val messages_sent : t -> int

(** Remote (inter-node) messages only. *)
val remote_messages_sent : t -> int

(** Number of (src, dst, seq) records currently held by the protocol
    network's duplicate-delivery filter. Only the reliable channel feeds
    the filter; ack-floor pruning must keep it bounded by the in-flight
    window rather than by run length. Exposed so CI can assert that. *)
val delivered_seen_size : t -> int

(** Largest number of simultaneous versions of any item on any node so far
    (the paper bounds this by 3). *)
val max_versions_ever : t -> int

(** Distinct version numbers currently live anywhere in the system (with
    allocated counters), ascending. The paper notes that "a real
    implementation could re-use old version numbers, employing only three
    distinct numbers": this window never exceeds three entries, so a mod-3
    encoding of version ids would be sound. Checked on every advancement
    step when [debug_checks] is on. Under replication the invariant is
    enforced over {e live} replicas only: a crashed replica's durable
    counters freeze, so quorum advancements running ahead of an outage
    transiently keep the dead replica's stale versions in this engine-wide
    window until its restart adopts the group's GC floor. *)
val version_window : t -> int list
