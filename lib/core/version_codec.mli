(** Version-number reuse — the paper's §4 remark made concrete.

    "We assume for simplicity that version numbers increase monotonically
    with time. A real implementation could re-use old version numbers,
    employing only three distinct numbers."

    This module is that real implementation's codec. A version travels as
    its residue mod 3 and is decoded relative to an {e anchor} the receiver
    already holds: its current update version [vu] for update-path messages
    (subtransactions, update-phase counter queries) and its current read
    version [vr] for read-path messages (read subtransactions, read-phase
    queries, GC notices). The protocol guarantees every such message's
    version is within distance 1 of its anchor at arrival — a straggler
    update can lag the receiver's [vu] by one, an advancement notice can
    lead it by one, and never more, because phase 2 cannot finish while any
    older-version subtransaction is live or in flight. Within distance 1
    the three residues are distinct, so decoding is unambiguous.

    The engine keeps logical (unbounded) version ints internally for
    clarity; the test suite pairs this codec with a live engine check that
    every message satisfies the distance-1 precondition, proving the 2-bit
    wire encoding would be sound. *)

(** Number of distinct wire codes needed. *)
val codes : int

(** [encode v] is the wire representation, in [0 .. codes-1].
    @raise Invalid_argument on negative versions. *)
val encode : int -> int

(** [decode ~near code] recovers the unique version [v] with
    [encode v = code] and [|v - near| <= 1].
    @raise Invalid_argument if [code] is out of range or no nonnegative
    candidate within distance 1 exists (a protocol-invariant violation). *)
val decode : near:int -> int -> int

(** [roundtrips ~near v] is [decode ~near (encode v) = v]; holds exactly
    when [v >= 0] and [|v - near| <= 1]. *)
val roundtrips : near:int -> int -> bool
