module Sim = Simul.Sim
module Ivar = Simul.Ivar
module Mailbox = Simul.Mailbox
module Semaphore = Simul.Semaphore
module Network = Netsim.Network
module Latency = Netsim.Latency
module Reliable = Netsim.Reliable
module Heartbeat = Netsim.Heartbeat
module Detector = Fd.Detector
module Injector = Fault.Injector
module Mvstore = Store.Mvstore
module Spec = Txn.Spec
module Op = Txn.Op
module Value = Txn.Value
module Result = Txn.Result
module Lockmgr = Txn.Lockmgr
module Counter_set = Stats.Counter_set

type config = {
  nodes : int;
  shards : int;
      (** number of independent advancement domains [S]: nodes are
          partitioned into [S] contiguous blocks of [nodes / S] members,
          each with its own coordinator, write-ahead log and (vu, vr)
          frontier, so advancement cost is O(nodes-per-shard) per shard
          instead of O(all nodes) through one choke point. Shards are laid
          {e over} replica groups ([nodes / S] must be a multiple of
          [replicas]), so quorum polling stays per-shard. [1] — the
          default — collapses to the single global coordinator and keeps
          historical schedules byte-identical. Update transactions must
          stay within one shard; cross-shard reads are assigned a
          consistent per-shard read-version vector by {!Shard.Rvector} *)
  replicas : int;
      (** replication factor [k]: nodes are partitioned into groups of [k]
          consecutive replicas ({!Repl.Placement}); commuting updates are
          mirrored to every group member, reads fail over along the group,
          and counter polls complete on a quorum (≥ 1 live replica per
          group). [1] — the default — disables every replication code path,
          keeping historical schedules byte-identical *)
  hb_period : float;
      (** heartbeat send cadence; [0.] — the default — disables the failure
          detector entirely: no side network is created, no daemons are
          spawned, no messages are sent, and every liveness decision falls
          back to the injector's instantaneous ground truth, keeping
          historical schedules byte-identical. When positive, every node
          beats the coordinator this often over a dedicated side network
          and all protocol liveness (routing, quorum participation,
          watchdog excusal) is derived from heartbeat arrival deadlines
          ({!Fd.Detector}) — suspicion, not omniscience *)
  hb_timeout : float;
      (** minimum heartbeat silence before the detector first suspects a
          node; must exceed [hb_period] when the detector is on *)
  latency : Latency.t;
  think_time : float;
  poll_interval : float;
  phase_deadline : float;
      (** stall watchdog: if an advancement phase makes no progress for this
          long the coordinator records [proto.phase_stalled] and re-broadcasts
          the phase message to the nodes still owing a reply, escalating with
          doubled (bounded) backoff. [infinity] disables the watchdog
          entirely — the daemon is not even spawned, so fault-free schedules
          are untouched. *)
  policy : Policy.t;
  nc_mode : bool;
  deadlock_timeout : float;
  abort_probability : float;
  debug_checks : bool;
  (* Ablation switches — all default to the sound protocol; turning one off
     demonstrates why the corresponding mechanism exists (experiments
     A1-A3). *)
  two_wave_quiescence : bool;
      (** require two identical matching polls before declaring a version
          consistent; [false] trusts a single matching poll *)
  await_gc_acks : bool;
      (** finish an advancement only after every node acknowledged garbage
          collection; [false] lets the next advancement overlap in-flight
          GC notices *)
  dual_writes : bool;
      (** straggler writes update every version ≥ theirs (§4.1 step 4);
          [false] writes only the transaction's own version *)
  (* Message-layer hardening: required whenever a fault plan can lose or
     duplicate messages; off by default so fault-free runs keep their exact
     historical schedules (acks would consume extra latency samples). *)
  reliable_channel : bool;
      (** sequence numbers + acks + receive-side dedup on every message *)
  retransmit : bool;
      (** re-send unacknowledged messages (only meaningful with
          [reliable_channel]; ablation A4 turns it off) *)
  retransmit_timeout : float;  (** first retransmission delay *)
  retransmit_backoff : float;  (** per-retry delay multiplier *)
  expected_inbox_depth : int;
      (** pre-size for each node's network inbox ring (messages); derive
          from the configured arrival rate for steady-state benches. Purely
          a capacity hint — never affects schedules. *)
}

let default_config ~nodes =
  {
    nodes;
    shards = 1;
    replicas = 1;
    hb_period = 0.;
    hb_timeout = 0.1;
    latency = Latency.Constant 0.005;
    think_time = 0.0001;
    poll_interval = 0.01;
    phase_deadline = infinity;
    policy = Policy.Manual;
    nc_mode = false;
    deadlock_timeout = 1.0;
    abort_probability = 0.;
    debug_checks = true;
    two_wave_quiescence = true;
    await_gc_acks = true;
    dual_writes = true;
    reliable_channel = false;
    retransmit = true;
    retransmit_timeout = 0.05;
    retransmit_backoff = 2.0;
    expected_inbox_depth = 16;
  }

type vote = Vote_commit | Vote_abort of string

type root_submit = {
  rs_spec : Spec.t;
  rs_submit_time : float;
  rs_result : Result.t Ivar.t;
  mutable rs_root_commit : float;
  mutable rs_compensated : bool;
}

type msg =
  | Subtxn of {
      txn_id : int;
      label : string;
      kind : Spec.kind;
      version : int;  (** -1 on root messages; assigned on arrival *)
      source : int;
      parent : (int * int) option;  (** (parent node, parent pending id) *)
      tree : Spec.subtxn;
      root : root_submit option;
      compensating : bool;
      vector : int array option;
          (** cross-shard read transactions only: the per-shard read
              version vector {!Shard.Rvector} assigned at submission.
              [None] on every other path (always [None] at [shards = 1]) *)
    }
  | Completion of {
      pending_id : int;
      child_label : string;
      reads : (string * Value.t) list;
      vote : vote;
      nodes : int list;
    }
  | Cleanup of { txn_id : int }
  | Decision of { txn_id : int; commit : bool }
  | Start_advancement of { vu_new : int }
  | Adv_ack of { from_node : int; vu : int }
  | Advance_read of { vr_new : int }
  | Read_ack of { from_node : int; vr : int }
  | Counter_query of { version : int; round : int; epoch : int }
  | Counter_reply of {
      from_node : int;
      version : int;
      round : int;
      epoch : int;
          (** polls are namespaced by coordinator epoch: a restarted
              coordinator resets its round counter, so a pre-crash round-k
              reply must not satisfy the post-restart round k *)
      r_row : int array;
      c_col : int array;
    }
  | Mirror of { txn_id : int; version : int; source : int; op : Op.t }
      (** group-addressed replica mirror of one committed commuting write:
          the receiving replica applies [op] to its own store with the
          dual-write rule and balances the counter pair the source opened.
          Mirrors never spawn children and never reply — quiescence (R = C)
          is what tells the coordinator they all landed *)
  | Do_gc of { keep : int }
  | Gc_ack of { from_node : int; keep : int }
  | Coord_wake
      (** zero-payload self-send fired at coordinator restart: unblocks a
          coordinator parked in [recv] so it can observe the crash and
          re-drive the in-flight advancement from its WAL *)

type pending = {
  p_id : int;
  p_txn : int;
  p_label : string;
  p_kind : Spec.kind;
  p_version : int;
  p_source : int;
  p_parent : (int * int) option;
  p_compensating : bool;
  mutable p_outstanding : int;
  mutable p_local_done : bool;
  mutable p_reads : (string * Value.t) list;  (** accumulated, in order *)
  mutable p_vote : vote;
  mutable p_nodes : int list;
  mutable p_buffered : (string * Op.t) list;  (** NC write intentions, reversed *)
  p_root : root_submit option;
  p_vector : int array option;  (** see {!msg.Subtxn.vector} *)
}

type node = {
  id : int;
  shard : int;  (** owning shard ([id / (nodes / shards)]); 0 at [shards = 1] *)
  name : string;
  mutable vu : int;
  mutable vr : int;
  store : Value.t Mvstore.t;
  cnt : Counters.t;
  locks : Lockmgr.t;
  local_cc : Semaphore.t;
  pendings : (int, pending) Hashtbl.t;
  mutable next_pending : int;
  mutable vr_waiters : (unit -> unit) list;
  nc_awaiting : (int, int list ref) Hashtbl.t;
      (** txn id -> pending ids at this node awaiting a 2PC decision *)
  mutable paused_until : float;
      (** fault injection: the node processes no messages before this time *)
}

(* An armed stall watchdog: one per in-flight coordinator wait. The
   watchdog daemon re-invokes [w_resend] whenever the deadline passes
   without the wait completing, doubling the interval (bounded) each
   time. *)
type watch = {
  w_what : string;
  mutable w_deadline : float;
  mutable w_interval : float;
  w_resend : unit -> unit;
}

(* The failure-detector subsystem, present only when [hb_period > 0]: the
   heartbeat side network plus the suspicion state machine fed from it. *)
type fd_state = { hb : Heartbeat.t; det : Detector.t }

(* One shard's coordinator: the complete volatile + durable advancement
   state that used to live globally on [t]. Shard [s] owns the contiguous
   node block [cs_lo, cs_lo + cs_n) and the network endpoint
   [nodes + s]; at [shards = 1] there is exactly one of these and every
   field carries its historical meaning (endpoint [nodes], all nodes). *)
type coord = {
  cs_shard : int;
  cs_id : int;  (** network endpoint: [cfg.nodes + cs_shard] *)
  cs_lo : int;  (** first member node id *)
  cs_n : int;  (** member count ([cfg.nodes / cfg.shards]) *)
  cs_name : string;  (** trace site: ["coord"] at [shards = 1] *)
  cs_trigger : unit Ivar.t option Mailbox.t;
  cs_clog : Coord_log.t;  (** durable: survives coordinator crashes *)
  cs_live : Vwindow.t;  (** version -> requested-but-unterminated, this shard *)
  mutable cs_epoch : int;  (** bumped on each coordinator recovery *)
  mutable cs_crash_gen : int;
      (** incremented by the crash hook; compared against [cs_seen_gen]
          so the coordinator fiber notices a crash at its next check *)
  mutable cs_seen_gen : int;
  mutable cs_down_until : float;
  mutable cs_watch : watch option;
  mutable cs_vu : int;
  mutable cs_vr : int;
  mutable cs_poll_round : int;
  cs_poll_bufs : (int array array * int array array) array;
      (** two (r, c) matrix pairs, alternated by poll-round parity. The
          quiescence loop only ever compares a round against the previous
          one, so exactly two generations are live at once; reusing two
          pre-allocated pairs removes the 2·m² fresh-matrix allocation per
          poll round (megabytes of major-heap churn per round at 512+
          nodes). Sized per shard: m = members, and a reply's nodes-wide
          row/column is sliced to the shard's block (cross-shard counter
          pairs are structurally zero — update trees never leave their
          shard and read entries open self pairs on arrival). No zeroing
          between rounds: a reply folds in by fully rewriting its R row
          and C column, and [matrices_agree ~considered] reads only
          rows/columns of members that replied. *)
  mutable cs_advancements : int;
  mutable cs_updates_since_trigger : int;
  mutable cs_divergence_since_trigger : float;
      (** accumulated |write delta| since the last advancement trigger
          (drives the Divergence policy) *)
}

type t = {
  sim : Sim.t;
  cfg : config;
  net : msg Reliable.packet Network.t;
  ch : msg Reliable.t;
  faults : Injector.t;
  nodes : node array;
  per_shard : int;  (** [cfg.nodes / cfg.shards] *)
  cs : coord array;  (** one coordinator per shard; singleton at [shards = 1] *)
  rvec : Shard.Rvector.t option;
      (** cross-shard read-vector service; [None] at [shards = 1] so the
          single-coordinator configuration touches none of its code *)
  rvec_assigned : (int, int array) Hashtbl.t;
      (** txn id -> assigned read vector, retained for post-hoc
          certification (the version-read checker fences each key by its
          shard's component, not the root's). Only vectored cross-shard
          reads enter; empty at [shards = 1]. *)
  repl : Repl.Placement.t;
      (** replica-group placement; singleton groups when [replicas = 1] *)
  recovery : Repl.Recovery.t;  (** readable-after-recovery gates *)
  fd : fd_state option;  (** heartbeat failure detector; [None] when off *)
  trace : Trace.t option;
  counters_live : Counter_set.t;
}

(* -------------------------------------------------------------- tracing *)

(* [Printf.ksprintf] rather than [Format.kasprintf]: every [tr] format uses
   only %s/%d/%g, where the two render identically, and Printf skips the
   pretty-printing engine — measured ~3x cheaper per emission, which is the
   difference between tracing costing ~40%% of a traced bench run and ~15%%. *)
let tr t site fmt =
  match t.trace with
  | None -> Printf.ikfprintf (fun () -> ()) () fmt
  | Some trace ->
      Printf.ksprintf
        (* lint: trace-ok — [tr] is itself the guard: this branch only
           exists when a trace is attached. *)
        (fun what -> Trace.emit trace ~time:(Sim.now t.sim) ~site what)
        fmt

(* Deferred variant for the hottest emission sites: even on a traced run,
   the ring retains only the final [capacity] events, so rendering at
   emission time formats strings that are overwhelmingly evicted unread.
   [trl] hands {!Trace.emit_deferred} a thunk instead; only retained events
   ever pay the sprintf. The thunk must be pure — call sites let-bind any
   mutable reads (counter values, version fields) {e before} building the
   closure so the rendered text reflects emission-time state. *)
let trl t site msg =
  match t.trace with
  | None -> ()
  | Some trace ->
      (* lint: trace-ok — [trl] is itself the guard: this branch only
         exists when a trace is attached. *)
      Trace.emit_deferred trace ~time:(Sim.now t.sim) ~site msg

(* Hot-path guard: [tr] discards the format string without rendering it, but
   its {e arguments} are still evaluated at the call site. Per-operation and
   per-message traces below are wrapped in [if tracing t] so an untraced run
   pays nothing — not even the counter lookups feeding the format args.
   Tracing never affects scheduling, so guarded and unguarded runs produce
   identical event schedules. *)
let[@inline] tracing t = t.trace <> None

let node_name t i =
  if i >= t.cfg.nodes then t.cs.(i - t.cfg.nodes).cs_name else t.nodes.(i).name

(* The endpoint a node's protocol replies go to: its own shard's
   coordinator. [cfg.nodes] at [shards = 1] — the historical value. *)
let[@inline] coord_ep t node = t.cfg.nodes + node.shard

(* ------------------------------------------------- oracle & counters *)

(* Live-subtransaction tallies are per shard: each shard's version
   timeline is independent, and quiescence only ever asks about the
   asking shard's own versions. *)
let live_bump t node version delta = Vwindow.add t.cs.(node.shard).cs_live version delta

let live_subtxns t ~version =
  Array.fold_left (fun acc cs -> acc + Vwindow.get cs.cs_live version) 0 t.cs

(* Node counter rows are shard-local, [t.per_shard] entries wide: update
   confinement means a node only ever opens counter pairs with members of
   its own shard (cross-shard reads open {e self} pairs at the entry node),
   so the peer index into a row is the peer's offset inside the shard
   block. At [shards = 1] this is the identity and rows are nodes-wide —
   the historical layout. Keeping rows per-shard makes every counter
   snapshot a poll reply carries O(per) instead of O(nodes), which is
   where a sharded advancement's machine cost would otherwise hide. *)
let[@inline] cnt_ix t node peer = peer - (node.shard * t.per_shard)

(* R(v) node->dst : incremented before a request is issued. *)
let bump_r t node ~version ~dst =
  Counters.incr_r node.cnt ~version ~dst:(cnt_ix t node dst);
  live_bump t node version 1

(* C(v) src->node : incremented when a subtransaction terminates here. *)
let bump_c t node ~version ~src =
  Counters.incr_c node.cnt ~version ~src:(cnt_ix t node src);
  live_bump t node version (-1)

let cstat t name = Counter_set.incr t.counters_live name ()

(* Distinct version numbers with live counter state anywhere — the paper's
   "three distinct numbers suffice" observation (§4). *)
(* Dedup while folding: the union holds ≤ 4-ish versions, so linear
   membership beats building a 3n-element list and sort_uniq-ing it —
   this runs on every Start_advancement/Do_gc receipt under debug_checks,
   i.e. O(nodes) times per advancement. *)
let add_distinct v acc = if List.exists (fun w -> w = v) acc then acc else v :: acc

(* Fold [f] over the counter version sets of one shard's members —
   or of every node when [shard] is the full range (the [shards = 1]
   configuration and the public engine-wide probe). Each shard's version
   timeline is independent, so the paper's ≤ 3 bound is a per-shard
   statement; the global union is only meaningful at [shards = 1]. *)
let window_over t ~lo ~n f init =
  let acc = ref init in
  for i = lo to lo + n - 1 do
    acc := Counters.fold_versions t.nodes.(i).cnt f !acc
  done;
  !acc

let version_window_shard t ~lo ~n =
  window_over t ~lo ~n add_distinct [] |> List.sort Int.compare

let version_window t = version_window_shard t ~lo:0 ~n:t.cfg.nodes

(* Same, but only over replicas that are currently up. While a replica is
   crashed its durable counters freeze, so a quorum advancement running
   ahead of the outage transiently widens the engine-wide window with the
   dead replica's stale versions; restart adopts the group's GC floor
   ({!restart_recover}) and shrinks it back. The paper's three-version
   bound is a statement about live state. *)
let live_version_window_shard t ~lo ~n =
  let now = Sim.now t.sim in
  let acc = ref [] in
  for i = lo to lo + n - 1 do
    let node = t.nodes.(i) in
    (* lint: oracle-ok — a debug-check assertion about genuinely live
       state (the paper's three-version bound), not a protocol decision:
       ground truth is the point here. *)
    if not (Injector.down t.faults ~node:node.id ~at:now) then
      acc := Counters.fold_versions node.cnt add_distinct !acc
  done;
  List.sort Int.compare !acc

let check_version_window_shard t ~shard =
  if t.cfg.debug_checks then begin
    let lo = shard * t.per_shard and n = t.per_shard in
    let window =
      if t.cfg.replicas > 1 then live_version_window_shard t ~lo ~n
      else version_window_shard t ~lo ~n
    in
    if List.length window > 3 then
      failwith
        (Printf.sprintf
           "3V invariant violation: %d distinct versions live (%s) in shard \
            %d; version numbers could not be re-used mod 3"
           (List.length window)
           (String.concat "," (List.map string_of_int window))
           shard)
  end

(* ------------------------------------------------------------ helpers *)

let send t ~src ~dst msg = Reliable.send t.ch ~src ~dst msg

let combine_vote a b =
  match (a, b) with Vote_abort r, _ -> Vote_abort r | _, v -> v

let merge_nodes a b = List.sort_uniq Int.compare (a @ b)

(* ---------------------------------------------------------- replication *)

let[@inline] repl_on t = t.cfg.replicas > 1

(* Liveness as the protocol sees it. With the failure detector on, a node
   is "live" iff it is not under heartbeat suspicion — inferred state that
   can be wrong in both directions, which is exactly what a deployable
   system has to work with: a falsely-suspected node's late replies still
   fold in idempotently, and an unsuspected-but-dead node degrades to the
   watchdog/retransmit path. With the detector off (legacy configurations),
   liveness falls back to the injector's {e instantaneous} ground truth;
   the future-peek at [now +. margin] that earlier revisions used is gone —
   no deployable system can evaluate a fault plan at a future instant. *)
let node_live t i =
  match t.fd with
  | Some fd -> not (Detector.suspected fd.det ~node:i ~now:(Sim.now t.sim))
  | None ->
      (* lint: oracle-ok — legacy fallback for detector-less configs; the
         only remaining protocol-path ground-truth read, and it is
         instantaneous. *)
      not (Injector.down t.faults ~node:i ~at:(Sim.now t.sim))

(* Routing liveness is plain protocol liveness. *)
let route_live = node_live

(* Readable-after-recovery: a replica whose gate is armed serves reads only
   once (a) the reliable channel has drained every packet still owed to it —
   the retransmitted mirrors it slept through — and (b) its read version
   reached the recovery frontier, i.e. a full quiescence round certified the
   suspect update version with this replica participating. Order matters:
   the drain test runs first so the gate is not cleared while catch-up
   traffic is still in flight. *)
let replica_readable t m =
  match Repl.Recovery.frontier t.recovery ~node:m with
  | None -> true
  | Some _ ->
      Reliable.unacked_to t.ch ~dst:m = 0
      && Repl.Recovery.readable t.recovery ~node:m ~vr:t.nodes.(m).vr

(* Route a spec through the replica groups: each subtransaction's target is
   replaced by the first live replica in its group's failover order (reads
   additionally require the readable-after-recovery gate to be open). A
   fully-dead group keeps the original target — the transaction then waits
   for a restart, which is the correct availability statement once all k
   replicas are gone. Non-commuting transactions are pinned to their
   primaries: an overwrite needs inter-replica ordering, which is exactly
   what commuting replication does not buy (§10 of PROTOCOL.md). *)
let route_spec t (spec : Spec.t) =
  if not (repl_on t) then spec
  else
    match spec.Spec.kind with
    | Spec.Non_commuting -> spec
    | Spec.Read_only | Spec.Commuting ->
        let changed = ref false in
        let choose i =
          let ok m =
            route_live t m
            && (spec.Spec.kind <> Spec.Read_only || replica_readable t m)
          in
          match List.find_opt ok (Repl.Placement.failover_order t.repl i) with
          | Some m ->
              if m <> i then begin
                changed := true;
                cstat t "repl.failovers"
              end;
              m
          | None -> i
        in
        let rec map (st : Spec.subtxn) =
          let node = choose st.Spec.node in
          { st with Spec.node; Spec.children = List.map map st.Spec.children }
        in
        let root = map spec.Spec.root in
        if !changed then { spec with Spec.root = root } else spec

(* Inverse of a commuting subtransaction tree, for compensation (§3.2).
   Reads are dropped; Incr is negated; Append appends an undo marker. *)
let rec invert_tree (st : Spec.subtxn) : Spec.subtxn =
  let invert_op = function
    | Op.Read _ -> None
    | Op.Incr (k, d) -> Some (Op.Incr (k, -.d))
    | Op.Append (k, e) -> Some (Op.Append (k, "undo:" ^ e))
    | Op.Overwrite _ ->
        invalid_arg "Engine: cannot compensate a non-commuting write"
  in
  {
    st with
    Spec.ops = List.filter_map invert_op st.Spec.ops;
    Spec.children = List.map invert_tree st.Spec.children;
  }

let pp_int_list versions =
  String.concat "," (List.map string_of_int versions)

(* §1's value-divergence advancement policy: accumulate the magnitude of
   applied write deltas and trigger once it crosses the threshold. *)
let op_magnitude = function
  | Op.Read _ | Op.Append _ -> 0.
  | Op.Incr (_, d) -> Float.abs d
  | Op.Overwrite (_, a) -> Float.abs a

(* Divergence accumulates in the shard where the write landed: each
   shard's coordinator advances on its own data's staleness. *)
let note_divergence t node op =
  match t.cfg.policy with
  | Policy.Divergence threshold ->
      let cs = t.cs.(node.shard) in
      cs.cs_divergence_since_trigger <-
        cs.cs_divergence_since_trigger +. op_magnitude op;
      if cs.cs_divergence_since_trigger >= threshold then begin
        cs.cs_divergence_since_trigger <- 0.;
        Mailbox.send cs.cs_trigger None
      end
  | Policy.Manual | Policy.Periodic _ | Policy.Every_n_updates _ -> ()

(* ----------------------------------------------------- NC 2PC decision *)

(* Apply a 2PC decision for [txn_id] at [node]: materialize or discard the
   buffered writes of every awaiting subtransaction, bump their completion
   counters atomically with the outcome, and release the locks. *)
let apply_decision t node ~txn_id ~commit =
  match Hashtbl.find_opt node.nc_awaiting txn_id with
  | None -> ()
  | Some ids ->
      Hashtbl.remove node.nc_awaiting txn_id;
      List.iter
        (fun pid ->
          match Hashtbl.find_opt node.pendings pid with
          | None -> ()
          | Some p ->
              Hashtbl.remove node.pendings pid;
              if commit then
                List.iter
                  (fun (key, op) ->
                    ignore
                      (Mvstore.write_exact node.store ~key ~version:p.p_version
                         ~init:Value.empty ~f:(Op.apply op ~txn:p.p_txn));
                    note_divergence t node op)
                  (List.rev p.p_buffered);
              bump_c t node ~version:p.p_version ~src:p.p_source;
              if tracing t then begin
                let cv =
                  Counters.c node.cnt ~version:p.p_version
                    ~src:(cnt_ix t node p.p_source)
                in
                trl t node.name (fun () ->
                    Printf.sprintf "nc subtx %s %s; C%d[%s->%s]=%d" p.p_label
                      (if commit then "commits" else "aborts")
                      p.p_version (node_name t p.p_source) node.name cv)
              end)
        (List.rev !ids);
      Lockmgr.release_all node.locks ~owner:txn_id

(* ------------------------------------------------ subtxn execution *)

(* NC3V root admission (§5 step 2): wait until vu = vr + 1 locally, i.e.
   until no version advancement is in progress for the assigned version. *)
let rec wait_nc_admission t node version =
  if version = node.vr + 1 then ()
  else begin
    Sim.suspend t.sim (fun waker ->
        node.vr_waiters <- (fun () -> waker ()) :: node.vr_waiters);
    wait_nc_admission t node version
  end

let wake_vr_waiters node =
  let ws = List.rev node.vr_waiters in
  node.vr_waiters <- [];
  List.iter (fun w -> w ()) ws

(* Strongest lock mode needed per key by the given ops, for [kind]. *)
let lock_plan ~kind ops =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun op ->
      let key = Op.key op in
      let mode =
        match (kind, Op.is_write op) with
        | Spec.Non_commuting, _ -> Lockmgr.Non_commute
        | Spec.Commuting, true -> Lockmgr.Commute_update
        | Spec.Commuting, false -> Lockmgr.Commute_read
        | Spec.Read_only, _ -> Lockmgr.Commute_read
      in
      let stronger a b =
        match (a, b) with
        | Lockmgr.Non_commute, _ | _, Lockmgr.Non_commute -> Lockmgr.Non_commute
        | Lockmgr.Commute_update, _ | _, Lockmgr.Commute_update ->
            Lockmgr.Commute_update
        | _ -> Lockmgr.Commute_read
      in
      let cur = Hashtbl.find_opt tbl key in
      Hashtbl.replace tbl key
        (match cur with None -> mode | Some m -> stronger m mode))
    ops;
  Hashtbl.fold (fun k m acc -> (k, m) :: acc) tbl []
  |> List.sort compare

(* Mirror one applied commuting write to every peer replica of this node's
   group. Counters use the raw R/C pair — not [bump_r]/[bump_c] — so the
   live-subtransaction oracle keeps counting genuine subtransactions only:
   quiescence (R = C) is what makes the coordinator wait for mirrors, and a
   quorum poll may excuse mirrors still owed to a crashed replica. Down
   peers are mirrored anyway: the reliable channel retransmits until the
   peer restarts, which {e is} the recovery catch-up path. *)
let mirror_write t node p op =
  if repl_on t && p.p_kind = Spec.Commuting then
    List.iter
      (fun peer ->
        Counters.incr_r node.cnt ~version:p.p_version
          ~dst:(cnt_ix t node peer);
        cstat t "repl.mirrors";
        if tracing t then begin
          let rv =
            Counters.r node.cnt ~version:p.p_version ~dst:(cnt_ix t node peer)
          in
          trl t node.name (fun () ->
              Printf.sprintf "mirrors %s of tx %s to %s; R%d[%s->%s]=%d"
                (Op.key op) p.p_label (node_name t peer) p.p_version node.name
                (node_name t peer) rv)
        end;
        send t ~src:node.id ~dst:peer
          (Mirror
             { txn_id = p.p_txn; version = p.p_version; source = node.id; op }))
      (Repl.Placement.peers t.repl node.id)

(* Execute the local operations of a commuting / read-only subtransaction
   against the versioned store, collecting reads. *)
let run_ops_commuting t node p ops =
  List.iter
    (fun op ->
      match op with
      | Op.Read key ->
          let found = Mvstore.read_visible node.store ~key ~version:p.p_version in
          let version_seen, value =
            match found with
            | Some (v, value) -> (v, value)
            | None -> (-1, Value.empty)
          in
          if tracing t then
            trl t node.name (fun () ->
                Printf.sprintf "tx %s reads %s version %d" p.p_label key
                  version_seen);
          p.p_reads <- p.p_reads @ [ (key, value) ]
      | Op.Incr _ | Op.Append _ | Op.Overwrite _ ->
          let info =
            if t.cfg.dual_writes then
              Mvstore.write_upward node.store ~key:(Op.key op)
                ~version:p.p_version ~init:Value.empty
                ~f:(Op.apply op ~txn:p.p_txn)
            else
              Mvstore.write_exact node.store ~key:(Op.key op)
                ~version:p.p_version ~init:Value.empty
                ~f:(Op.apply op ~txn:p.p_txn)
          in
          if info.Mvstore.versions_updated >= 2 then cstat t "store.dual_write";
          note_divergence t node op;
          mirror_write t node p op;
          if tracing t then begin
            let versions =
              List.filter
                (fun v -> v >= p.p_version)
                (Mvstore.versions_of node.store ~key:(Op.key op))
            in
            trl t node.name (fun () ->
                Printf.sprintf "tx %s updates %s version%s %s" p.p_label
                  (Op.key op)
                  (if List.length versions > 1 then "s" else "")
                  (pp_int_list (List.sort compare versions)))
          end)
    ops

(* NC3V local operations: reads go through; writes check the overtake rule
   and are buffered until the 2PC decision. Returns [false] on abort. *)
let run_ops_nc t node p ops =
  let ok = ref true in
  List.iter
    (fun op ->
      if !ok then
        match op with
        | Op.Read key ->
            let value =
              match Mvstore.read_visible node.store ~key ~version:p.p_version with
              | Some (_, value) -> value
              | None -> Value.empty
            in
            p.p_reads <- p.p_reads @ [ (key, value) ]
        | Op.Incr _ | Op.Append _ | Op.Overwrite _ ->
            let key = Op.key op in
            if Mvstore.exists_above node.store ~key ~version:p.p_version then begin
              (* §5 step 4: a higher version exists — K must abort. *)
              p.p_vote <- Vote_abort "version-overtaken";
              if tracing t then
                tr t node.name "nc tx %s overtaken on %s; votes abort"
                  p.p_label key;
              ok := false
            end
            else p.p_buffered <- (key, op) :: p.p_buffered)
    ops;
  !ok

(* Spawn all child subtransactions of [p], bumping request counters before
   each send (§4.1 step 5). A vectored read child entering a {e different}
   shard gets that shard's vector component as its version and no R bump
   here: its parent's counter timeline is a different shard's, so the
   entry opens a self pair on arrival instead ({!handle_subtxn}) — R = C
   then balances entirely within the target shard's block. *)
let spawn_children t node p (children : Spec.subtxn list) ~compensating =
  List.iter
    (fun (child : Spec.subtxn) ->
      let child_shard = child.Spec.node / t.per_shard in
      let cross = child_shard <> node.shard in
      let child_version =
        match p.p_vector with
        | Some vec when cross -> vec.(child_shard)
        | _ -> p.p_version
      in
      if not cross then begin
        bump_r t node ~version:p.p_version ~dst:child.Spec.node;
        if tracing t then begin
          let rv =
            Counters.r node.cnt ~version:p.p_version
              ~dst:(cnt_ix t node child.Spec.node)
          in
          trl t node.name (fun () ->
              Printf.sprintf "subtx of %s issued to %s; R%d[%s->%s]=%d"
                p.p_label
                (node_name t child.Spec.node)
                p.p_version node.name
                (node_name t child.Spec.node)
                rv)
        end
      end
      else if tracing t then
        trl t node.name (fun () ->
            Printf.sprintf
              "subtx of %s crosses to shard %d at %s (vector version %d)"
              p.p_label child_shard
              (node_name t child.Spec.node)
              child_version);
      p.p_outstanding <- p.p_outstanding + 1;
      send t ~src:node.id ~dst:child.Spec.node
        (Subtxn
           {
             txn_id = p.p_txn;
             label = p.p_label;
             kind = p.p_kind;
             version = child_version;
             source = node.id;
             parent = Some (node.id, p.p_id);
             tree = child;
             root = None;
             compensating;
             vector = p.p_vector;
           }))
    children

(* Full execution of one subtransaction at [node], as a simulated process. *)
(* --------------------------------------------------------- completion *)

(* A subtransaction "terminates" (paper §4.1 step 6 / Table 1 semantics)
   once its local work is done and all its children have terminated. *)
let rec maybe_finish t node p =
  if p.p_local_done && p.p_outstanding = 0 then begin
    match (p.p_kind, p.p_root) with
    | Spec.Non_commuting, None ->
        (* Participant: send the vote up; await the root's decision. *)
        let ids =
          match Hashtbl.find_opt node.nc_awaiting p.p_txn with
          | Some ids -> ids
          | None ->
              let ids = ref [] in
              Hashtbl.replace node.nc_awaiting p.p_txn ids;
              ids
        in
        ids := p.p_id :: !ids;
        let parent_node, parent_pid =
          match p.p_parent with
          | Some pp -> pp
          | None -> assert false
        in
        send t ~src:node.id ~dst:parent_node
          (Completion
             {
               pending_id = parent_pid;
               child_label = p.p_label;
               reads = p.p_reads;
               vote = p.p_vote;
               nodes = p.p_nodes;
             })
    | Spec.Non_commuting, Some rs ->
        (* Root: decide, apply locally, broadcast the decision. *)
        Hashtbl.remove node.pendings p.p_id;
        let commit = p.p_vote = Vote_commit in
        let ids =
          match Hashtbl.find_opt node.nc_awaiting p.p_txn with
          | Some ids -> ids
          | None ->
              let ids = ref [] in
              Hashtbl.replace node.nc_awaiting p.p_txn ids;
              ids
        in
        ids := p.p_id :: !ids;
        (* Re-register the root itself so apply_decision handles it too. *)
        Hashtbl.replace node.pendings p.p_id p;
        apply_decision t node ~txn_id:p.p_txn ~commit;
        List.iter
          (fun n ->
            if n <> node.id then
              send t ~src:node.id ~dst:n (Decision { txn_id = p.p_txn; commit }))
          p.p_nodes;
        if tracing t then
          trl t node.name (fun () ->
              Printf.sprintf "nc tx %s decision: %s" p.p_label
                (if commit then "commit" else "abort"));
        cstat t (if commit then "txn.committed" else "txn.aborted");
        let outcome =
          if commit then Result.Committed
          else
            Result.Aborted
              (match p.p_vote with
              | Vote_abort reason -> reason
              | Vote_commit -> "unknown")
        in
        Ivar.fill rs.rs_result
          {
            Result.txn_id = p.p_txn;
            outcome;
            version = p.p_version;
            served_by = node.id;
            reads = p.p_reads;
            submit_time = rs.rs_submit_time;
            root_commit_time = rs.rs_root_commit;
            complete_time = Sim.now t.sim;
          }
    | Spec.Commuting, Some rs
      when p.p_vote <> Vote_commit && not rs.rs_compensated ->
        (* §3.2: some subtransaction of this commuting tree aborted. The
           whole tree's effects are undone by one compensation wave of
           ordinary subtransactions: the root applies its own inverse and
           sends the inverse of each child subtree. Guarded by
           [rs_compensated] so the wave runs at most once (the paper's
           footnote: never more than one compensating subtransaction per
           node). Counters account the wave like any other subtransactions,
           so termination detection keeps working. *)
        rs.rs_compensated <- true;
        p.p_outstanding <- p.p_outstanding + 1 (* hold the root open *);
        let tree = rs.rs_spec.Spec.root in
        Sim.spawn t.sim ~daemon:false
          ~namef:(fun () -> Printf.sprintf "%s/%s-compensation" node.name p.p_label)
          (fun () ->
            let inverse = invert_tree tree in
            Semaphore.with_permit t.sim node.local_cc (fun () ->
                if t.cfg.think_time > 0. then Sim.sleep t.sim t.cfg.think_time;
                run_ops_commuting t node p inverse.Spec.ops);
            if tracing t then
              tr t node.name "tx %s compensates (wave starts)" p.p_label;
            spawn_children t node p inverse.Spec.children ~compensating:true;
            p.p_outstanding <- p.p_outstanding - 1;
            maybe_finish t node p)
    | (Spec.Read_only | Spec.Commuting), _ ->
        Hashtbl.remove node.pendings p.p_id;
        bump_c t node ~version:p.p_version ~src:p.p_source;
        (match p.p_parent with
        | Some (parent_node, parent_pid) ->
            if tracing t then begin
              let cv =
                Counters.c node.cnt ~version:p.p_version
                  ~src:(cnt_ix t node p.p_source)
              in
              trl t node.name (fun () ->
                  Printf.sprintf "subtx %s terminates; C%d[%s->%s]=%d"
                    p.p_label p.p_version (node_name t p.p_source) node.name
                    cv)
            end;
            send t ~src:node.id ~dst:parent_node
              (Completion
                 {
                   pending_id = parent_pid;
                   child_label = p.p_label;
                   reads = p.p_reads;
                   vote = p.p_vote;
                   nodes = p.p_nodes;
                 })
        | None ->
            let rs = match p.p_root with Some rs -> rs | None -> assert false in
            if tracing t then begin
              let cv =
                Counters.c node.cnt ~version:p.p_version
                  ~src:(cnt_ix t node p.p_source)
              in
              trl t node.name (fun () ->
                  Printf.sprintf "tx %s is complete; C%d[%s->%s]=%d" p.p_label
                    p.p_version node.name node.name cv)
            end;
            (* Asynchronous clean-up of commute locks (§5). *)
            if t.cfg.nc_mode && p.p_kind = Spec.Commuting then
              List.iter
                (fun n ->
                  send t ~src:node.id ~dst:n (Cleanup { txn_id = p.p_txn }))
                p.p_nodes;
            let outcome =
              if rs.rs_compensated then Result.Aborted "compensated"
              else Result.Committed
            in
            cstat t
              (if rs.rs_compensated then "txn.compensated" else "txn.committed");
            Ivar.fill rs.rs_result
              {
                Result.txn_id = p.p_txn;
                outcome;
                version = p.p_version;
                served_by = node.id;
                reads = p.p_reads;
                submit_time = rs.rs_submit_time;
                root_commit_time = rs.rs_root_commit;
                complete_time = Sim.now t.sim;
              })
  end

and handle_completion t node ~pending_id ~child_label ~reads ~vote ~nodes =
  match Hashtbl.find_opt node.pendings pending_id with
  | None ->
      invalid_arg
        (Printf.sprintf "Engine: completion for unknown pending %d at node %d"
           pending_id node.id)
  | Some p ->
      if tracing t then
        trl t node.name (fun () ->
            Printf.sprintf "completion notice for subtx %s arrives" child_label);
      p.p_reads <- p.p_reads @ reads;
      p.p_vote <- combine_vote p.p_vote vote;
      p.p_nodes <- merge_nodes p.p_nodes nodes;
      p.p_outstanding <- p.p_outstanding - 1;
      maybe_finish t node p

let exec_subtxn t node p (tree : Spec.subtxn) ~compensating =
  (* Application-level lateness (e.g. a charge being finalized) happens
     before any locks or local serialization. *)
  if tree.Spec.think > 0. then Sim.sleep t.sim tree.Spec.think;
  (* NC3V admission wait applies to non-commuting roots only. *)
  (if p.p_kind = Spec.Non_commuting && p.p_parent = None then begin
     if p.p_version <> node.vr + 1 && tracing t then
       tr t node.name "nc tx %s waits for vu = vr + 1" p.p_label;
     wait_nc_admission t node p.p_version
   end);
  (* Lock acquisition happens outside the local critical section so a
     blocked transaction never stalls the whole node. *)
  let lock_failure = ref None in
  if t.cfg.nc_mode && p.p_kind <> Spec.Read_only then begin
    let timeout =
      if p.p_kind = Spec.Non_commuting then t.cfg.deadlock_timeout else infinity
    in
    List.iter
      (fun (key, mode) ->
        if !lock_failure = None then
          match
            Lockmgr.acquire node.locks ~timeout ~owner:p.p_txn ~key ~mode ()
          with
          | Lockmgr.Granted -> ()
          | Lockmgr.Deadlock -> lock_failure := Some "deadlock"
          | Lockmgr.Timeout -> lock_failure := Some "lock-timeout"
          | Lockmgr.Cancelled -> lock_failure := Some "cancelled")
      (lock_plan ~kind:p.p_kind tree.Spec.ops)
  end;
  (match !lock_failure with
  | Some reason ->
      (* Only NC transactions can fail here (commuting waits are unbounded);
         vote abort without executing or spawning children. *)
      p.p_vote <- Vote_abort reason;
      cstat t "txn.lock_failure";
      if tracing t then
        tr t node.name "nc tx %s lock failure (%s); votes abort" p.p_label
          reason
  | None ->
      (* Local critical section: the node's local concurrency control
         serializes subtransaction bodies (paper §3.1 assumption). *)
      Semaphore.with_permit t.sim node.local_cc (fun () ->
          if t.cfg.think_time > 0. then Sim.sleep t.sim t.cfg.think_time;
          match p.p_kind with
          | Spec.Read_only | Spec.Commuting -> run_ops_commuting t node p tree.Spec.ops
          | Spec.Non_commuting -> ignore (run_ops_nc t node p tree.Spec.ops));
      cstat t "subtxn.executed";
      (* Fault injection for §3.2: any commuting subtransaction may abort at
         its commit point (its local effects already applied). The abort
         vote propagates to the root, which runs the single compensation
         wave. Compensating subtransactions themselves never re-abort. *)
      if
        p.p_kind = Spec.Commuting
        && (not compensating)
        && t.cfg.abort_probability > 0.
        && Random.State.float (Sim.rng t.sim) 1. < t.cfg.abort_probability
      then begin
        p.p_vote <- Vote_abort "application-abort";
        if tracing t then
          tr t node.name "subtx of %s aborts; compensation required" p.p_label
      end;
      if p.p_vote = Vote_commit || p.p_kind = Spec.Commuting then
        spawn_children t node p tree.Spec.children ~compensating);
  (match p.p_root with
  | Some rs -> rs.rs_root_commit <- Sim.now t.sim
  | None -> ());
  p.p_local_done <- true;
  maybe_finish t node p

(* ------------------------------------------------- message handling *)

let alloc_pending node =
  node.next_pending <- node.next_pending + 1;
  node.next_pending

(* A vectored read entry lands in this shard: its assigned version must
   still be materialized here. The read-vector service's pending tallies
   defer retiring that version until this arrival, so a floor violation is
   an accounting bug — fatal under debug checks. *)
let check_entry_floor t node ~version ~label =
  if t.cfg.debug_checks && version < Mvstore.gc_floor node.store then
    failwith
      (Printf.sprintf
         "torn read vector: tx %s entry arrived at %s with version %d below \
          the GC floor %d"
         label node.name version
         (Mvstore.gc_floor node.store))

(* Retire the entry's pending tally at the read-vector service. *)
let rvec_arrived t node ~version =
  match t.rvec with
  | Some rv -> Shard.Rvector.arrived rv ~shard:node.shard ~version
  | None -> ()

let handle_subtxn t node ~txn_id ~label ~kind ~version ~source ~parent ~tree
    ~root ~compensating ~vector =
  (* Steps 1-2 of §4.1: version assignment for roots; implicit advancement
     notification for higher-versioned arrivals. These counter/version
     accesses are atomic and outside local concurrency control. *)
  let entry_source = ref source in
  let version =
    match (parent, kind) with
    | None, Spec.Read_only when vector <> None ->
        (* Cross-shard read root: the submission-time vector fixes this
           shard's read version; the root is the vector's entry into its
           own shard. *)
        let v = match vector with Some vec -> vec.(node.shard) | None -> -1 in
        check_entry_floor t node ~version:v ~label;
        bump_r t node ~version:v ~dst:node.id;
        rvec_arrived t node ~version:v;
        if tracing t then begin
          let rv = Counters.r node.cnt ~version:v ~dst:(cnt_ix t node node.id) in
          trl t node.name (fun () ->
              Printf.sprintf
                "vectored read tx %s arrives; version %d; R%d[%s->%s]=%d"
                label v v node.name node.name rv)
        end;
        v
    | None, Spec.Read_only ->
        let v = node.vr in
        bump_r t node ~version:v ~dst:node.id;
        if tracing t then begin
          let rv = Counters.r node.cnt ~version:v ~dst:(cnt_ix t node node.id) in
          trl t node.name (fun () ->
              Printf.sprintf "read tx %s arrives; version %d; R%d[%s->%s]=%d"
                label v v node.name node.name rv)
        end;
        v
    | None, (Spec.Commuting | Spec.Non_commuting) ->
        let v = node.vu in
        bump_r t node ~version:v ~dst:node.id;
        if tracing t then begin
          let rv = Counters.r node.cnt ~version:v ~dst:(cnt_ix t node node.id) in
          trl t node.name (fun () ->
              Printf.sprintf "update tx %s arrives; version %d; R%d[%s->%s]=%d"
                label v v node.name node.name rv)
        end;
        v
    | Some _, _ when vector <> None && source / t.per_shard <> node.shard ->
        (* Cross-shard read entry: the parent bumped no R pair (its counter
           timeline is another shard's); open a self pair here instead so
           R = C balances within this shard's block, and retire the
           service's pending tally now that the entry is visible to
           quiescence polls. *)
        check_entry_floor t node ~version ~label;
        entry_source := node.id;
        bump_r t node ~version ~dst:node.id;
        rvec_arrived t node ~version;
        if tracing t then begin
          let rv = Counters.r node.cnt ~version ~dst:(cnt_ix t node node.id) in
          trl t node.name (fun () ->
              Printf.sprintf
                "entry subtx of %s arrives from %s; version %d; \
                 R%d[%s->%s]=%d"
                label (node_name t source) version version node.name node.name
                rv)
        end;
        version
    | Some _, _ ->
        if tracing t then
          trl t node.name (fun () ->
              Printf.sprintf "subtx of %s arrives from %s (version %d)" label
                (node_name t source) version);
        (* Version-codec precondition (paper §4's mod-3 reuse remark): every
           arriving version is within distance 1 of the receiver's anchor —
           [vr] on the read path, [vu] on the update path. *)
        if t.cfg.debug_checks then begin
          let anchor =
            match kind with Spec.Read_only -> node.vr | _ -> node.vu
          in
          if abs (version - anchor) > 1 then
            failwith
              (Printf.sprintf
                 "3V invariant violation: version %d arrived at %s with \
                  anchor %d — mod-3 version reuse would misdecode"
                 version node.name anchor)
        end;
        if version > node.vu then begin
          if tracing t then
            tr t node.name
              "implicit notification: advancing update version to %d" version;
          node.vu <- version;
          Counters.ensure_version node.cnt version
        end;
        (* Read-side late-node rule: a version-v read child was admitted at
           its root only after the coordinator made v consistent and
           readable (phase 3), so adopting v forward is safe. This is how a
           crash-restarted node catches its read version up from the first
           higher-versioned message it sees, without waiting for the
           coordinator's retransmitted Advance_read. Only active in the
           hardened (reliable-channel) configuration, so historical
           fault-free schedules stay byte-identical. *)
        if t.cfg.reliable_channel && kind = Spec.Read_only && version > node.vr
        then begin
          if tracing t then
            tr t node.name
              "implicit notification: advancing read version to %d" version;
          node.vr <- version;
          wake_vr_waiters node
        end;
        version
  in
  let p =
    {
      p_id = alloc_pending node;
      p_txn = txn_id;
      p_label = label;
      p_kind = kind;
      p_version = version;
      p_source = !entry_source;
      p_parent = parent;
      p_compensating = compensating;
      p_outstanding = 0;
      p_local_done = false;
      p_reads = [];
      p_vote = Vote_commit;
      p_nodes = [ node.id ];
      p_buffered = [];
      p_root = root;
      p_vector = vector;
    }
  in
  Hashtbl.replace node.pendings p.p_id p;
  (* [namef]: one subtransaction fiber per subtxn makes this the hottest
     spawn in the system — the name is only rendered on stall/failure. *)
  Sim.spawn t.sim ~daemon:false
    ~namef:(fun () -> Printf.sprintf "%s/%s#%d" node.name label p.p_id)
    (fun () -> exec_subtxn t node p tree ~compensating)

let handle_node_msg t node = function
  | Subtxn { txn_id; label; kind; version; source; parent; tree; root;
             compensating; vector } ->
      handle_subtxn t node ~txn_id ~label ~kind ~version ~source ~parent ~tree
        ~root ~compensating ~vector
  | Completion { pending_id; child_label; reads; vote; nodes } ->
      handle_completion t node ~pending_id ~child_label ~reads ~vote ~nodes
  | Cleanup { txn_id } -> Lockmgr.release_all node.locks ~owner:txn_id
  | Decision { txn_id; commit } -> apply_decision t node ~txn_id ~commit
  | Start_advancement { vu_new } ->
      if node.vu < vu_new then begin
        node.vu <- vu_new;
        Counters.ensure_version node.cnt vu_new;
        check_version_window_shard t ~shard:node.shard;
        if tracing t then
          tr t node.name "start-advancement arrives; update version now %d"
            vu_new
      end
      else if tracing t then
        tr t node.name
          "start-advancement arrives; update version already %d" node.vu;
      send t ~src:node.id ~dst:(coord_ep t node)
        (Adv_ack { from_node = node.id; vu = vu_new })
  | Advance_read { vr_new } ->
      if node.vr < vr_new then begin
        node.vr <- vr_new;
        if tracing t then tr t node.name "read version advanced to %d" vr_new;
        wake_vr_waiters node
      end;
      send t ~src:node.id ~dst:(coord_ep t node)
        (Read_ack { from_node = node.id; vr = vr_new })
  | Counter_query { version; round; epoch } ->
      send t ~src:node.id ~dst:(coord_ep t node)
        (Counter_reply
           {
             from_node = node.id;
             version;
             round;
             epoch;
             r_row = Counters.snapshot_r node.cnt ~version;
             c_col = Counters.snapshot_c node.cnt ~version;
           })
  | Mirror { txn_id; version; source; op } ->
      (* Replica mirror of a committed commuting write: apply it to the
         local store with the dual-write rule so a mirror landing after a
         version switch still repairs every later version. A mirror whose
         version has already been garbage-collected here (it retransmitted
         across ≥ 2 advancements while this replica was down) is applied
         from the GC floor upward — the surviving versions are exactly the
         ones that must absorb the delta — and its counter pair is dropped,
         matching the sender whose R row for that version is gone too. *)
      let floor = Mvstore.gc_floor node.store in
      ignore
        (Mvstore.write_upward node.store ~key:(Op.key op)
           ~version:(max version floor) ~init:Value.empty
           ~f:(Op.apply op ~txn:txn_id));
      if version >= floor then
        Counters.incr_c node.cnt ~version ~src:(cnt_ix t node source);
      cstat t "repl.mirror_applies";
      if tracing t then
        trl t node.name (fun () ->
            Printf.sprintf "mirror from %s applies %s at version %d (floor %d)"
              (node_name t source) (Op.key op) version floor)
  | Do_gc { keep } ->
      (* A GC notice implies every node acknowledged read version [keep] in
         phase 3, so adopting it is always safe. Normally a no-op (phase 3
         already set it); it repairs a crash-restarted node whose recovered
         read version lagged the phase-3 broadcast it slept through. *)
      if node.vr < keep then begin
        node.vr <- keep;
        if tracing t then
          tr t node.name "read version adopted from GC notice: %d" keep;
        wake_vr_waiters node
      end;
      (* Idempotent under re-delivery (a recovered coordinator re-drives
         phase 4): collect only if this notice actually raises the GC
         floor; always re-ack. *)
      if Mvstore.gc_floor node.store < keep then begin
        Mvstore.gc node.store ~new_read_version:keep;
        Counters.gc_below node.cnt keep;
        check_version_window_shard t ~shard:node.shard;
        if tracing t then
          tr t node.name "garbage-collects below version %d" keep
      end
      else if tracing t then
        tr t node.name
          "gc notice for version %d re-delivered; already collected" keep;
      send t ~src:node.id ~dst:(coord_ep t node) (Gc_ack { from_node = node.id; keep })
  | Adv_ack _ | Read_ack _ | Counter_reply _ | Gc_ack _ | Coord_wake ->
      invalid_arg "Engine: coordinator message delivered to a node"

(* ------------------------------------------------------- coordinator *)

(* The system's boot-time version pair: every node starts with update
   version [initial_vu] and read version [initial_vr], and recovery logic
   (node restart, coordinator WAL replay) seeds from these — never from
   magic literals that would silently diverge from [create]. *)
let initial_vu = 1
let initial_vr = 0

(* Broadcast to one shard's members — all nodes at [shards = 1]. *)
let broadcast t cs msg =
  for i = cs.cs_lo to cs.cs_lo + cs.cs_n - 1 do
    send t ~src:cs.cs_id ~dst:i msg
  done

(* Raised inside a coordinator fiber when it observes that a crash window
   hit it; [coordinator_loop] catches it, replays the WAL, and re-drives
   the in-flight advancement. *)
exception Coord_crashed

(* Notice a pending crash: if the crash hook fired since we last looked,
   sleep out the remainder of the down window (volatile state is already
   gone; the fiber must not act while "down") and raise. *)
let coord_check t cs =
  if cs.cs_crash_gen <> cs.cs_seen_gen then begin
    cs.cs_seen_gen <- cs.cs_crash_gen;
    let now = Sim.now t.sim in
    if now < cs.cs_down_until then Sim.sleep t.sim (cs.cs_down_until -. now);
    raise Coord_crashed
  end

(* Receive as a shard's coordinator, crash-aware. A message consumed by the
   very receive that notices the crash is discarded with it — safe, because
   the re-driven phase re-collects every reply it needs. *)
let coord_recv t cs =
  let msg = Reliable.recv t.ch ~node:cs.cs_id in
  coord_check t cs;
  msg

(* ---- stall watchdog ---- *)

let watch_begin t cs ~what ~resend =
  if t.cfg.phase_deadline < infinity then
    cs.cs_watch <-
      Some
        {
          w_what = what;
          w_deadline = Sim.now t.sim +. t.cfg.phase_deadline;
          w_interval = t.cfg.phase_deadline;
          w_resend = resend;
        }

let watch_end cs = cs.cs_watch <- None

(* Daemon (spawned only when [phase_deadline] is finite, one per shard):
   whenever an armed watch sits past its deadline, record the stall,
   re-broadcast the phase message to the nodes still owing a reply, and
   double the interval with a bound — self-healing for silent wedges such
   as a node crashed past the channel's retransmission window. *)
let watchdog_loop t cs () =
  let rec loop () =
    Sim.sleep t.sim (t.cfg.phase_deadline /. 4.);
    (match cs.cs_watch with
    | Some w when Sim.now t.sim >= w.w_deadline ->
        cstat t "proto.phase_stalled";
        if tracing t then
          tr t cs.cs_name "watchdog: %s stalled for %gs; re-broadcasting"
            w.w_what w.w_interval;
        w.w_resend ();
        w.w_interval <- Float.min (w.w_interval *. 2.) (8. *. t.cfg.phase_deadline);
        w.w_deadline <- Sim.now t.sim +. w.w_interval
    | _ -> ());
    loop ()
  in
  loop ()

(* Poll participation under replication: every live shard member is
   required, plus every member of a fully-dead group — quorum is lost
   there, and the coordinator must wait for one of those replicas to
   restart rather than excuse versions no surviving replica can vouch for.
   Indexed by shard-relative member position ([0 .. cs_n)); groups never
   straddle shards, so slicing the global requirement is exact. With
   [replicas = 1] every member is required, which is exactly the
   historical behavior (a crashed node blocks the wait until the channel's
   retransmissions reach its restart). *)
let poll_required t cs =
  if not (repl_on t) then Array.make cs.cs_n true
  else if t.cfg.shards = 1 then begin
    (* Single-shard: the historical global computation, preserved verbatim
       because {!node_live} reads through the failure detector, whose
       deadline refresh is stateful — the exact probe sequence is part of
       the replay-stable schedule. *)
    let live i = node_live t i in
    if not (Repl.Quorum.met t.repl ~live) then cstat t "repl.quorum_lost";
    Repl.Quorum.required t.repl ~live
  end
  else begin
    (* Sharded: probe each member once, then derive per-group death from
       the memo — groups are [replicas]-sized blocks fully inside the
       shard ([create] validates divisibility). *)
    let lv = Array.init cs.cs_n (fun i -> node_live t (cs.cs_lo + i)) in
    let req = Array.copy lv in
    let gsize = t.cfg.replicas in
    let lost = ref false in
    let g = ref 0 in
    while !g < cs.cs_n do
      let any = ref false in
      for m = !g to !g + gsize - 1 do
        if lv.(m) then any := true
      done;
      if not !any then begin
        lost := true;
        (* A fully-dead group has no live representative; the poll must
           wait for a restart rather than excuse versions no surviving
           replica can vouch for: every member stays required. *)
        for m = !g to !g + gsize - 1 do
          req.(m) <- true
        done
      end;
      g := !g + gsize
    done;
    if !lost then cstat t "repl.quorum_lost";
    req
  end

(* Watchdog-time suspicion excusal: under replication with the failure
   detector on, a node that fell under suspicion {e after} a coordinator
   wait began is excused at the next watchdog firing — provided its group
   still has an unsuspected member ({!poll_required} keeps every member of
   a fully-suspect group required, so quorum is never excused away).
   Excusing a false suspicion is safe: the node is alive, its late ack or
   counter reply arrives anyway and folds in idempotently, and any counter
   pairs it owes are quorum-scoped out of the comparison exactly as for a
   genuinely crashed replica. Excusal is monotone within one wait. If the
   requirement drops to zero the parked wait fiber is woken with the same
   zero-payload self-send a restarting coordinator uses. *)
let excuse_suspected t cs ~required ~answered ~needed =
  if repl_on t && t.fd <> None then begin
    let req_now = poll_required t cs in
    Array.iteri
      (fun i was ->
        if was && (not req_now.(i)) && not answered.(i) then begin
          required.(i) <- false;
          decr needed;
          cstat t "proto.suspicion_excused"
        end)
      required;
    if !needed <= 0 then send t ~src:cs.cs_id ~dst:cs.cs_id Coord_wake
  end

(* Await one acknowledgement from every required node. [matches] returns
   the sender for a matching ack; acks are counted per distinct node, so a
   duplicate (watchdog re-broadcast, raw-mode duplicate) can never complete
   a phase early — it is recorded under [proto.dup_acks]. Non-matching
   coordinator inbox traffic (stale counter replies, acks of a superseded
   phase) is counted under [proto.stale_msgs] instead of vanishing
   silently. [resend i] re-sends the phase message to node [i] (watchdog
   path). Acks from excused (crashed) replicas are still recorded if their
   retransmitted phase message lands mid-wait. [acked]/[required] are
   indexed by shard-relative member position; [matches] still returns
   absolute node ids off the wire. *)
let await_acks t cs ~what ~resend ~matches =
  let n = cs.cs_n in
  let required = poll_required t cs in
  let acked = Array.make n false in
  let needed = ref 0 in
  Array.iter (fun r -> if r then incr needed) required;
  watch_begin t cs ~what ~resend:(fun () ->
      excuse_suspected t cs ~required ~answered:acked ~needed;
      Array.iteri (fun i done_ -> if not done_ then resend (cs.cs_lo + i)) acked);
  while !needed > 0 do
    match coord_recv t cs with
    | Coord_wake -> ()
    | msg -> (
        match matches msg with
        | Some from
          when from >= cs.cs_lo
               && from < cs.cs_lo + n
               && not acked.(from - cs.cs_lo) ->
            acked.(from - cs.cs_lo) <- true;
            if required.(from - cs.cs_lo) then decr needed
        | Some _ -> cstat t "proto.dup_acks"
        | None -> cstat t "proto.stale_msgs")
  done;
  watch_end cs

(* One asynchronous poll of all R rows / C columns for [version]. Returns
   (r, c, got) with r.(p).(q) = R(version)pq, c.(p).(q) = C(version)pq and
   got.(i) marking the nodes whose reply was folded in. Replies are matched
   on (epoch, round, version) — the epoch namespaces rounds across
   coordinator restarts — and counted per distinct node. The wait completes
   once every {e required} node (see {!poll_required}) replied; a reply
   from an excused crashed replica that restarts mid-round is folded in
   anyway. *)
let poll_counters t cs ~version =
  cs.cs_poll_round <- cs.cs_poll_round + 1;
  cstat t "proto.polls";
  let round = cs.cs_poll_round and epoch = cs.cs_epoch in
  let query = Counter_query { version; round; epoch } in
  broadcast t cs query;
  let n = cs.cs_n and lo = cs.cs_lo in
  let required = poll_required t cs in
  let r, c = cs.cs_poll_bufs.(cs.cs_poll_round land 1) in
  let got = Array.make n false in
  let needed = ref 0 in
  Array.iter (fun req -> if req then incr needed) required;
  watch_begin t cs
    ~what:(Printf.sprintf "counter poll round %d (version %d)" round version)
    ~resend:(fun () ->
      excuse_suspected t cs ~required ~answered:got ~needed;
      Array.iteri
        (fun i done_ ->
          if not done_ then send t ~src:cs.cs_id ~dst:(lo + i) query)
        got);
  while !needed > 0 do
    match coord_recv t cs with
    | Counter_reply { from_node; version = v; round = rd; epoch = ep; r_row; c_col }
      when v = version && rd = round && ep = epoch && from_node >= lo
           && from_node < lo + n ->
        let fi = from_node - lo in
        if got.(fi) then cstat t "proto.dup_acks"
        else begin
          got.(fi) <- true;
          (* R(v)pq is stored at sender p; C(v)pq at executor q. Rows and
             columns are shard-local (see {!cnt_ix}): index [q] is the
             shard member at [lo + q], and cross-shard pairs do not exist
             (update trees never leave their shard; read entries open self
             pairs on arrival). *)
          for q = 0 to n - 1 do
            r.(fi).(q) <- r_row.(q)
          done;
          for p = 0 to n - 1 do
            c.(p).(fi) <- c_col.(p)
          done;
          if required.(fi) then decr needed
        end
    | Coord_wake -> ()
    (* lint: flow-ok — deliberately non-total: the coordinator inbox also
       carries acks of superseded phases and replies to stale poll rounds,
       and this arm is the designed sink that counts them under
       [proto.stale_msgs] instead of dropping them silently. Node-bound
       messages can never arrive here (the mailbox is the coordinator's
       own endpoint). *)
    | _ -> cstat t "proto.stale_msgs"
  done;
  watch_end cs;
  (r, c, got)

(* Phase 2 / phase 4 core: poll until two consecutive polls are identical
   and show R = C pairwise — the repeated-snapshot stable-property
   detection the paper cites [8, 12, 9]. Under replication the comparison
   is quorum-scoped: counter pairs involving an excused crashed replica are
   skipped, because the only traffic they can still owe is mirrors (which
   retransmit until the replica restarts, and the readable-after-recovery
   gate keeps it from serving reads before they land). Pairs of {e genuine}
   subtransactions stranded at a crashed replica are a different story —
   their roots have not committed, so retiring their version would let a
   read miss a writer that later completes. The live-subtransaction oracle
   detects exactly that case and defers the advancement until the replica
   restarts and drains them. *)
let await_quiescence t cs ?(vr_pending = false) ~version () =
  (* Cross-shard read entries assigned [version] by the read-vector
     service but not yet arrived here have opened no counter pair, so
     R = C cannot see them; consult the service and defer retirement
     while any are in flight (phase-3 waits only — update versions are
     never vector components). *)
  let service_pending () =
    match t.rvec with
    | Some rv when vr_pending ->
        Shard.Rvector.pending rv ~shard:cs.cs_shard ~version
    | _ -> 0
  in
  let rec go prev =
    let r, c, got = poll_counters t cs ~version in
    let settled = Repl.Quorum.matrices_agree ~considered:got r c in
    let stable =
      match prev with
      | Some (pr, pc, pg) ->
          let both = Array.mapi (fun i g -> g && got.(i)) pg in
          Repl.Quorum.matrices_agree ~considered:both pr r
          && Repl.Quorum.matrices_agree ~considered:both pc c
      | None -> false
    in
    let full = Array.for_all (fun g -> g) got in
    let quiet = settled && (stable || not t.cfg.two_wave_quiescence) in
    let defer_stranded =
      quiet && (not full) && Vwindow.get cs.cs_live version <> 0
    in
    let defer_service = quiet && service_pending () <> 0 in
    if defer_stranded then cstat t "repl.quorum_deferred";
    if defer_service then cstat t "shard.rvector_deferred";
    if quiet && (not defer_stranded) && not defer_service then begin
      let active = Vwindow.get cs.cs_live version in
      if active <> 0 then begin
        (* Full participation and still active work: the protocol is about
           to act on a false quiescence claim. With checks on this is
           fatal; the A1 ablation instead records it and lets the
           resulting corruption surface downstream. *)
        if t.cfg.debug_checks then
          failwith
            (Printf.sprintf
               "3V unsoundness: coordinator declared version %d quiescent \
                with %d live subtransactions"
               version active)
        else cstat t "proto.unsound_quiescence"
      end
    end
    else begin
      Sim.sleep t.sim t.cfg.poll_interval;
      coord_check t cs;
      go (Some (r, c, got))
    end
  in
  go None

(* The four-phase version advancement of §4.3, write-ahead logged: every
   phase entry is recorded in [t.clog] before its first message goes out,
   so a crash-restarted coordinator resumes the in-flight advancement at
   its last logged phase (node-side idempotence makes re-driving a
   partially — or fully — completed phase harmless).

   Phase 4 is the one asymmetry: its [Retire_read] record is logged only
   {e after} [vr_old] is confirmed quiescent, because a re-drive must not
   re-poll a version whose counters some nodes have already collected
   (a GC'd node reports zeros while an un-GC'd one still holds the frozen
   true counts, so R = C could never re-establish). A crash during the
   phase-4 quiescence wait therefore resumes from [Switch_read] — nothing
   has been collected yet, so re-polling is sound — while a crash after
   the record resumes straight at the GC re-broadcast. *)
let run_advancement t cs =
  coord_check t cs;
  let rc = Coord_log.recover cs.cs_clog ~init_vu:initial_vu ~init_vr:initial_vr in
  let adv, start_phase, vu_old, vr_old, resuming =
    match rc.Coord_log.in_flight with
    | Some f ->
        ( f.Coord_log.f_adv,
          Coord_log.phase_number f.Coord_log.f_phase,
          f.Coord_log.f_vu_old,
          f.Coord_log.f_vr_old,
          true )
    | None -> (rc.Coord_log.completed + 1, 1, cs.cs_vu, cs.cs_vr, false)
  in
  let vu_new = vu_old + 1 and vr_new = vr_old + 1 in
  (* Log a phase entry — except the phase we are resuming into, whose
     record is the one we just recovered from. *)
  let enter phase =
    if not (resuming && Coord_log.phase_number phase = start_phase) then
      Coord_log.append cs.cs_clog
        (Coord_log.Phase { adv; phase; vu_old; vr_old; time = Sim.now t.sim })
  in
  if tracing t then
    if resuming then
      tr t cs.cs_name "resuming advancement %d from phase %d (WAL)" adv
        start_phase
    else
      tr t cs.cs_name "version advancement begins (vu %d -> %d)" vu_old vu_new;
  (* Phase 1: switch to the new update version. *)
  if start_phase <= 1 then begin
    enter Coord_log.Switch_update;
    broadcast t cs (Start_advancement { vu_new });
    await_acks t cs ~what:"phase 1 (start-advancement acks)"
      ~resend:(fun i ->
        send t ~src:cs.cs_id ~dst:i (Start_advancement { vu_new }))
      ~matches:(function
        | Adv_ack { from_node; vu } when vu = vu_new -> Some from_node
        | _ -> None);
    if tracing t then
      tr t cs.cs_name "phase 1 complete: all nodes on update version %d" vu_new
  end;
  (* Phase 2: wait for version vu_old to become mutually consistent. *)
  if start_phase <= 2 then begin
    enter Coord_log.Quiesce_update;
    await_quiescence t cs ~version:vu_old ();
    if tracing t then
      tr t cs.cs_name "phase 2 complete: version %d consistent across nodes"
        vu_old
  end;
  (* Phase 3: switch queries to the freshly consistent version, then wait
     for the old read version's subtransactions to drain. The new read
     version is published to the read-vector service the moment every
     member acknowledged the switch — cross-shard reads assigned from
     here on see this shard at [vr_new] — and the [vr_old] quiescence
     wait additionally defers while the service still has assigned-but-
     unarrived entries against [vr_old]. *)
  if start_phase <= 3 then begin
    enter Coord_log.Switch_read;
    broadcast t cs (Advance_read { vr_new });
    await_acks t cs ~what:"phase 3 (advance-read acks)"
      ~resend:(fun i -> send t ~src:cs.cs_id ~dst:i (Advance_read { vr_new }))
      ~matches:(function
        | Read_ack { from_node; vr } when vr = vr_new -> Some from_node
        | _ -> None);
    if tracing t then
      tr t cs.cs_name "phase 3 complete: read version is %d" vr_new;
    (match t.rvec with
    | Some rv -> Shard.Rvector.publish rv ~shard:cs.cs_shard ~vr:vr_new
    | None -> ());
    await_quiescence t cs ~vr_pending:true ~version:vr_old ()
  end;
  (* Phase 4: old readers have drained; garbage-collect. The advancement
     instance only finishes once every node acknowledged collecting: letting
     the next advancement overlap an in-flight GC notice would transiently
     yield a fourth version, breaking the paper's ≤3 bound (§4.4, 2a). *)
  enter Coord_log.Retire_read;
  (* Advance the live-tally window with the shard's GC floor. Quiescence
     on [vr_old] means tallies below [vr_new] are back to zero (a crashed
     replica's excused subtransactions can leave a stale nonzero tally, but
     the tally is only ever consulted for the advancement's current
     versions, never below the floor). *)
  Vwindow.gc_below cs.cs_live vr_new;
  broadcast t cs (Do_gc { keep = vr_new });
  if t.cfg.await_gc_acks then
    await_acks t cs ~what:"phase 4 (gc acks)"
      ~resend:(fun i -> send t ~src:cs.cs_id ~dst:i (Do_gc { keep = vr_new }))
      ~matches:(function
        | Gc_ack { from_node; keep } when keep = vr_new -> Some from_node
        | _ -> None);
  if tracing t then
    tr t cs.cs_name "phase 4 complete: version %d garbage-collected" vr_old;
  Coord_log.append cs.cs_clog (Coord_log.Committed { adv; time = Sim.now t.sim });
  cs.cs_vu <- vu_new;
  cs.cs_vr <- vr_new;
  cs.cs_advancements <- cs.cs_advancements + 1

(* Coordinator restart: replay the WAL into fresh volatile state. The epoch
   bump namespaces the reset poll-round counter on the wire, so pre-crash
   counter replies can never satisfy a post-restart poll. *)
let coord_recover t cs =
  let rc = Coord_log.recover cs.cs_clog ~init_vu:initial_vu ~init_vr:initial_vr in
  cs.cs_epoch <- rc.Coord_log.next_epoch;
  Coord_log.append cs.cs_clog
    (Coord_log.Started { epoch = cs.cs_epoch; time = Sim.now t.sim });
  cs.cs_poll_round <- 0;
  cs.cs_watch <- None;
  cs.cs_vu <- rc.Coord_log.vu;
  cs.cs_vr <- rc.Coord_log.vr;
  cs.cs_advancements <- rc.Coord_log.completed;
  cstat t "proto.coord_recoveries";
  if tracing t then
    tr t cs.cs_name "recovers from WAL: epoch %d, %d advancements committed%s"
      cs.cs_epoch rc.Coord_log.completed
      (match rc.Coord_log.in_flight with
      | Some f ->
          Printf.sprintf ", advancement %d in flight (phase %d)"
            f.Coord_log.f_adv
            (Coord_log.phase_number f.Coord_log.f_phase)
      | None -> "")

let coordinator_loop t cs () =
  (* Run one advancement to completion, recovering from any number of
     crashes along the way: each recovery replays the WAL and re-enters
     [run_advancement], which resumes at the last logged phase. *)
  let rec drive () =
    try run_advancement t cs
    with Coord_crashed ->
      coord_recover t cs;
      drive ()
  in
  let rec loop () =
    let reply = Mailbox.recv t.sim cs.cs_trigger in
    (* A crash that hit while idle is noticed here. The trigger that woke
       us is client intent, not volatile coordinator state — it survives
       the restart and is served below. *)
    (try coord_check t cs with Coord_crashed -> coord_recover t cs);
    (* Coalesce triggers that queued up while a previous advancement ran: a
       single advancement satisfies all of them (an advancement beginning
       after a trigger arrived publishes data at least as fresh as the
       trigger demanded). *)
    let replies = ref [ reply ] in
    let rec drain () =
      match Mailbox.try_recv cs.cs_trigger with
      | Some r ->
          replies := r :: !replies;
          drain ()
      | None -> ()
    in
    drain ();
    drive ();
    List.iter
      (function Some ivar -> Ivar.fill ivar () | None -> ())
      !replies;
    loop ()
  in
  loop ()

(* -------------------------------------------------------- public API *)

(* Fail-stop crash recovery (the paper's late-node rule as restart logic):
   the store, counters and local transaction state are durable (§3.1 — local
   DBMS transactions); the version registers are volatile. Rebuild them
   conservatively — [vu] from the highest version with allocated counters
   (counters are updated atomically with request/termination, so this is the
   pre-crash value), [vr] from the store's GC floor, which was globally
   consistent before any GC notice went out. The implicit-notification rules
   and the coordinator's retransmitted phase messages then catch the node up
   to the cluster's current versions. *)
let restart_recover t node =
  (* Group-aware seeding: the recovery handshake reads the durable frontier
     of {e every} member of the node's replica group, not just this node —
     a quorum advancement may have moved the cluster on while this replica
     was down, and seeding from local state alone would re-enter with a
     stale version pair. With [replicas = 1] the group is the singleton
     {node} and both folds reduce to the historical single-home derivation,
     so unreplicated recovery schedules are byte-identical. *)
  let members =
    Repl.Placement.members t.repl (Repl.Placement.group_of_node t.repl node.id)
  in
  let vu =
    List.fold_left
      (fun acc m -> Counters.fold_versions t.nodes.(m).cnt max acc)
      initial_vu members
  in
  (* Adopt the group's GC floor before deriving the read version: a floor
     the group certified while this replica slept is safe here too (the
     floor version was globally readable before any GC notice went out),
     and collecting up to it immediately keeps the ≤ 3 live-version window
     intact even if the next advancement begins before the retransmitted
     GC notice lands. *)
  let floor_group =
    List.fold_left
      (fun acc m -> max acc (Mvstore.gc_floor t.nodes.(m).store))
      (Mvstore.gc_floor node.store) members
  in
  if floor_group > Mvstore.gc_floor node.store then begin
    Mvstore.gc node.store ~new_read_version:floor_group;
    Counters.gc_below node.cnt floor_group
  end;
  let vr = max initial_vr (min (Mvstore.gc_floor node.store) (vu - 1)) in
  node.vu <- vu;
  node.vr <- vr;
  Counters.ensure_version node.cnt vu;
  wake_vr_waiters node;
  (* Readable-after-recovery: this replica may have slept through mirrors
     of updates at (or below) the recovered update version. Arm the gate at
     [vu]: reads are served here again only once the read version reaches
     it — i.e. once a quiescence round certified the suspect version with
     this replica live — and the channel's catch-up backlog has drained. *)
  if repl_on t then begin
    Repl.Recovery.mark t.recovery ~node:node.id ~frontier:vu;
    cstat t "repl.recoveries"
  end;
  if tracing t then
    tr t node.name "restarts; recovers vu=%d vr=%d from durable state" vu vr

let create sim (cfg : config) ?trace ?node_names ?link_latency ?faults () =
  if cfg.nodes <= 0 then invalid_arg "Engine.create: nodes must be positive";
  if cfg.replicas < 1 then
    invalid_arg "Engine.create: replicas must be at least 1";
  if cfg.replicas > cfg.nodes then
    invalid_arg "Engine.create: replicas must be in 1..nodes";
  if cfg.shards < 1 then invalid_arg "Engine.create: shards must be at least 1";
  if cfg.shards > cfg.nodes then
    invalid_arg "Engine.create: shards must not exceed nodes";
  if cfg.nodes mod cfg.shards <> 0 then
    invalid_arg
      "Engine.create: shards must divide nodes evenly (contiguous equal \
       shard blocks)";
  if cfg.nodes / cfg.shards mod cfg.replicas <> 0 then
    invalid_arg
      "Engine.create: nodes-per-shard must be a multiple of replicas (a \
       replica group must not straddle a shard boundary)";
  if cfg.replicas > 1 && cfg.nc_mode then
    invalid_arg
      "Engine.create: replication requires nc_mode off (non-commuting \
       overwrites are primary-pinned, so a failed-over read could miss them)";
  if cfg.shards > 1 && cfg.nc_mode then
    invalid_arg
      "Engine.create: sharding requires nc_mode off (2PC admission waits \
       on a single global frontier)";
  if cfg.hb_period < 0. then
    invalid_arg "Engine.create: hb_period must be non-negative";
  if cfg.hb_timeout <= cfg.hb_period then
    invalid_arg "Engine.create: hb_timeout must exceed hb_period";
  if cfg.phase_deadline <= 0. then
    invalid_arg "Engine.create: phase_deadline must be positive";
  let per_shard = cfg.nodes / cfg.shards in
  let inbox_capacity = max cfg.expected_inbox_depth 1 in
  let net =
    match link_latency with
    | None ->
        Network.create sim ~size:(cfg.nodes + cfg.shards) ~latency:cfg.latency
          ~inbox_capacity ()
    | Some f ->
        Network.create sim ~size:(cfg.nodes + cfg.shards) ~latency:cfg.latency
          ~link_latency:f ~inbox_capacity ()
  in
  let ch =
    Reliable.create
      ~config:
        {
          Reliable.acks = cfg.reliable_channel;
          retransmit = cfg.retransmit;
          timeout = cfg.retransmit_timeout;
          backoff = cfg.retransmit_backoff;
          max_backoff = 1.0;
        }
      net
  in
  let faults =
    match faults with Some f -> f | None -> Injector.create sim Fault.Plan.none
  in
  Injector.install faults net;
  (* Failure-detector subsystem (opt-in): a dedicated heartbeat side
     network with the fault injector's heartbeat-class filter installed,
     plus the suspicion state machine the coordinator's monitor daemon
     feeds. Nothing here exists when [hb_period = 0]. *)
  let fd =
    if cfg.hb_period <= 0. then None
    else begin
      let hb =
        Heartbeat.create sim ~size:(cfg.nodes + 1) ~monitor:cfg.nodes
          ~period:cfg.hb_period ~latency:cfg.latency ()
      in
      Injector.install_hb faults (Heartbeat.network hb);
      let det =
        Detector.create
          ~config:
            {
              Detector.default_config with
              Detector.period = cfg.hb_period;
              timeout = cfg.hb_timeout;
              max_horizon =
                Float.max Detector.default_config.Detector.max_horizon
                  (8. *. cfg.hb_timeout);
            }
          ~nodes:cfg.nodes ~now:(Sim.now sim) ()
      in
      Some { hb; det }
    end
  in
  let name_of i =
    match node_names with
    | Some names when i < Array.length names -> names.(i)
    | _ -> Printf.sprintf "n%d" i
  in
  let nodes =
    Array.init cfg.nodes (fun i ->
        {
          id = i;
          name = name_of i;
          shard = i / per_shard;
          vu = 1;
          vr = 0;
          store = Mvstore.create ();
          cnt = Counters.create ~nodes:per_shard;
          locks = Lockmgr.create sim ~deadlock_timeout:cfg.deadlock_timeout ();
          local_cc = Semaphore.create 1;
          pendings = Hashtbl.create 64;
          next_pending = 0;
          vr_waiters = [];
          nc_awaiting = Hashtbl.create 16;
          paused_until = 0.;
        })
  in
  Array.iter (fun node -> Counters.ensure_version node.cnt initial_vu) nodes;
  let cs =
    Array.init cfg.shards (fun s ->
        let clog = Coord_log.create () in
        Coord_log.append clog
          (Coord_log.Started { epoch = 0; time = Sim.now sim });
        {
          cs_shard = s;
          cs_id = cfg.nodes + s;
          cs_lo = s * per_shard;
          cs_n = per_shard;
          cs_name =
            (if cfg.shards = 1 then "coord" else Printf.sprintf "coord%d" s);
          cs_trigger = Mailbox.create ();
          cs_clog = clog;
          cs_live = Vwindow.create ();
          cs_epoch = 0;
          cs_crash_gen = 0;
          cs_seen_gen = 0;
          cs_down_until = 0.;
          cs_watch = None;
          cs_vu = initial_vu;
          cs_vr = initial_vr;
          cs_poll_round = 0;
          cs_poll_bufs =
            Array.init 2 (fun _ ->
                ( Array.make_matrix per_shard per_shard 0,
                  Array.make_matrix per_shard per_shard 0 ));
          cs_advancements = 0;
          cs_updates_since_trigger = 0;
          cs_divergence_since_trigger = 0.;
        })
  in
  let t =
    {
      sim;
      cfg;
      net;
      ch;
      faults;
      nodes;
      per_shard;
      cs;
      rvec =
        (if cfg.shards > 1 then
           Some (Shard.Rvector.create ~shards:cfg.shards ~init_vr:initial_vr)
         else None);
      rvec_assigned = Hashtbl.create 64;
      repl = Repl.Placement.create ~nodes:cfg.nodes ~replicas:cfg.replicas;
      recovery = Repl.Recovery.create ();
      fd;
      trace;
      counters_live = Counter_set.create ();
    }
  in
  (* The injector owns fault timing; the engine supplies the node-level
     effects. Bad node ids in a hand-built plan are ignored rather than
     crashing the scheduler callback. *)
  Injector.set_node_hooks faults
    ~pause:(fun ~node ~duration ~until_ ->
      if node >= 0 && node < cfg.nodes then begin
        let nd = t.nodes.(node) in
        nd.paused_until <- Float.max nd.paused_until until_;
        if tracing t then tr t nd.name "pauses for %gs (fault injection)" duration
      end)
    ~crash:(fun ~node ->
      if node >= 0 && node < cfg.nodes && tracing t then
        tr t t.nodes.(node).name
          "crashes (fault injection; volatile state lost)")
    ~restart:(fun ~node ->
      if node >= 0 && node < cfg.nodes then restart_recover t t.nodes.(node))
    ();
  (* Coordinator crash effects: the crash hook wipes volatile progress (the
     generation bump makes the coordinator fiber notice at its next check;
     the armed watch is cleared so no stale re-broadcast fires during the
     outage); the restart hook wakes a fiber parked in [recv] with a
     zero-payload self-send — the window is [at, restart), so a send at
     exactly [restart] passes the filter. The injector addresses one
     coordinator endpoint; plan-level coordinator crashes hit shard 0's
     (the "coordinator of one shard" failure-matrix row — the other
     shards keep advancing through the outage). *)
  let c0 = t.cs.(0) in
  Injector.set_coord faults ~id:c0.cs_id
    ~crash:(fun ~until_ ->
      c0.cs_crash_gen <- c0.cs_crash_gen + 1;
      c0.cs_down_until <- Float.max c0.cs_down_until until_;
      c0.cs_watch <- None;
      if tracing t then
        tr t c0.cs_name "crashes (fault injection; volatile phase state lost)")
    ~restart:(fun () ->
      if tracing t then tr t c0.cs_name "restarts; write-ahead log intact";
      send t ~src:c0.cs_id ~dst:c0.cs_id Coord_wake)
    ();
  (* Node server loops. *)
  Array.iter
    (fun node ->
      Sim.spawn sim ~daemon:true ~name:(Printf.sprintf "node-%s" node.name)
        (fun () ->
          let rec loop () =
            let msg = Reliable.recv t.ch ~node:node.id in
            (* Injected outage: a frozen node buffers its inbox. Everything
               already running locally proceeds; no new message is handled
               until the pause elapses. *)
            if Sim.now sim < node.paused_until then
              Sim.sleep sim (node.paused_until -. Sim.now sim);
            handle_node_msg t node msg;
            loop ()
          in
          loop ()))
    nodes;
  (* Heartbeat daemons: one sender per node and the coordinator-side
     monitor. A crashed node's sender keeps firing into the heartbeat
     filter, which drops everything from inside a crash window — exactly a
     real process that stops being heard, without the engine telling the
     detector anything. Pauses intentionally do {e not} silence heartbeats:
     a frozen-but-alive node is the classic false-suspicion hazard only
     when its beats are lost, which fault plans express directly
     ({!Fault.Plan.heartbeat_loss}). *)
  (match fd with
  | None -> ()
  | Some fd ->
      Array.iter
        (fun node ->
          Sim.spawn sim ~daemon:true ~name:(Printf.sprintf "hb-%s" node.name)
            (fun () ->
              let rec loop () =
                Heartbeat.beat fd.hb ~node:node.id;
                Sim.sleep sim cfg.hb_period;
                loop ()
              in
              loop ()))
        nodes;
      Sim.spawn sim ~daemon:true ~name:"hb-monitor" (fun () ->
          let rec loop () =
            let src = Heartbeat.recv fd.hb in
            if src >= 0 && src < cfg.nodes then
              Detector.heartbeat fd.det ~node:src ~now:(Sim.now sim);
            loop ()
          in
          loop ()));
  (* Coordinators — one fiber per shard. At [shards = 1] the fiber name is
     the historical "coordinator" so the spawn schedule (and hence every
     golden digest) is byte-identical to the single-coordinator engine. *)
  Array.iter
    (fun cs ->
      let name =
        if cfg.shards = 1 then "coordinator"
        else Printf.sprintf "coordinator%d" cs.cs_shard
      in
      Sim.spawn sim ~daemon:true ~name (coordinator_loop t cs))
    t.cs;
  (* Stall watchdogs — only spawned when a finite deadline is configured, so
     the default configuration's event schedule is untouched. *)
  if cfg.phase_deadline < infinity then
    Array.iter
      (fun cs ->
        let name =
          if cfg.shards = 1 then "coord-watchdog"
          else Printf.sprintf "coord-watchdog%d" cs.cs_shard
        in
        Sim.spawn sim ~daemon:true ~name (watchdog_loop t cs))
      t.cs;
  (* Advancement policy driver: one daemon triggers every shard in shard
     order, keeping cross-shard advancement cadence aligned rather than
     staggered by S independent clocks. *)
  (match cfg.policy with
  | Policy.Manual | Policy.Every_n_updates _ | Policy.Divergence _ -> ()
  | Policy.Periodic d ->
      Sim.spawn sim ~daemon:true ~name:"policy-periodic" (fun () ->
          let rec loop () =
            Sim.sleep sim d;
            Array.iter (fun cs -> Mailbox.send cs.cs_trigger None) t.cs;
            loop ()
          in
          loop ()));
  t

let name _ = "3v"

let submit t (spec : Spec.t) =
  (* Reject malformed specs up front: a bad node id inside a running
     subtransaction would otherwise kill a node's server loop. *)
  List.iter
    (fun n ->
      if n < 0 || n >= t.cfg.nodes then
        invalid_arg
          (Printf.sprintf "Engine.submit: %s targets node %d outside 0..%d"
             spec.Spec.label n (t.cfg.nodes - 1)))
    (Spec.nodes spec);
  (* Replica routing happens once, at submission: the whole tree is pinned
     to the serving replicas chosen now, so compensation (which inverts
     [rs_spec]) undoes work exactly where it ran. Routing never crosses a
     shard boundary (groups do not straddle shards), so the shard checks
     below are valid on the routed tree. *)
  let spec = route_spec t spec in
  (* Shard admission. Update trees must stay within one shard: each shard
     advances its own version frontier, so an update stamped with shard A's
     vu has no meaning in shard B's counter matrices. Cross-shard reads are
     the supported (and interesting) case — they get a consistent vector of
     per-shard read versions assigned atomically here. *)
  let vector =
    match t.rvec with
    | None -> None
    | Some rv ->
        let shard_of n = n / t.per_shard in
        let span =
          List.fold_left
            (fun acc n ->
              if List.mem (shard_of n) acc then acc else shard_of n :: acc)
            []
            (Spec.nodes spec)
        in
        if List.length span <= 1 then None
        else begin
          (match spec.Spec.kind with
          | Spec.Read_only -> ()
          | Spec.Commuting | Spec.Non_commuting ->
              invalid_arg
                (Printf.sprintf
                   "Engine.submit: update %s spans %d shards (updates must \
                    stay within one shard; only read-only transactions may \
                    cross shards)"
                   spec.Spec.label (List.length span)));
          (* One pending entry per shard entry point: the root, plus every
             child spawned across a shard boundary. Each opens a counter
             pair only on arrival; [Rvector] defers retiring the assigned
             versions until all have landed. *)
          let entries = Array.make t.cfg.shards 0 in
          let rec count parent_shard (st : Spec.subtxn) =
            let s = shard_of st.Spec.node in
            if s <> parent_shard then entries.(s) <- entries.(s) + 1;
            List.iter (count s) st.Spec.children
          in
          entries.(shard_of spec.Spec.root.Spec.node) <-
            entries.(shard_of spec.Spec.root.Spec.node) + 1;
          List.iter
            (count (shard_of spec.Spec.root.Spec.node))
            spec.Spec.root.Spec.children;
          cstat t "shard.vectored_reads";
          let vec = Shard.Rvector.assign rv ~entries in
          Hashtbl.replace t.rvec_assigned spec.Spec.id vec;
          Some vec
        end
  in
  let result = Ivar.create () in
  let now = Sim.now t.sim in
  let rs =
    {
      rs_spec = spec;
      rs_submit_time = now;
      rs_result = result;
      rs_root_commit = now;
      rs_compensated = false;
    }
  in
  cstat t "txn.submitted";
  (match spec.Spec.kind with
  | Spec.Read_only -> cstat t "txn.read_only"
  | Spec.Commuting -> cstat t "txn.commuting"
  | Spec.Non_commuting -> cstat t "txn.non_commuting");
  let root_node = spec.Spec.root.Spec.node in
  send t ~src:root_node ~dst:root_node
    (Subtxn
       {
         txn_id = spec.Spec.id;
         label = spec.Spec.label;
         kind = spec.Spec.kind;
         version = -1;
         source = root_node;
         parent = None;
         tree = spec.Spec.root;
         root = Some rs;
         compensating = false;
         vector;
       });
  (* Count-based advancement policy: updates are single-shard, so the
     count accrues to (and triggers) the root's shard coordinator. *)
  (match (t.cfg.policy, spec.Spec.kind) with
  | Policy.Every_n_updates n, (Spec.Commuting | Spec.Non_commuting) ->
      let cs = t.cs.(root_node / t.per_shard) in
      cs.cs_updates_since_trigger <- cs.cs_updates_since_trigger + 1;
      if cs.cs_updates_since_trigger >= n then begin
        cs.cs_updates_since_trigger <- 0;
        Mailbox.send cs.cs_trigger None
      end
  | _ -> ());
  result

let stats t =
  let out = Counter_set.merge t.counters_live (Counter_set.create ()) in
  let copies =
    Array.fold_left (fun acc n -> acc + Mvstore.copies_created n.store) 0 t.nodes
  in
  let dual =
    Array.fold_left (fun acc n -> acc + Mvstore.dual_writes n.store) 0 t.nodes
  in
  Counter_set.incr out "store.copies_created" ~by:copies ();
  Counter_set.incr out "store.dual_writes_total" ~by:dual ();
  Counter_set.incr out "net.messages" ~by:(Network.messages_sent t.net) ();
  Counter_set.incr out "net.remote_messages"
    ~by:(Network.remote_messages_sent t.net) ();
  Counter_set.incr out "advancements"
    ~by:(Array.fold_left (fun acc cs -> acc + cs.cs_advancements) 0 t.cs)
    ();
  (* Channel-hardening and fault-injection accounting; all zero in a
     fault-free run with the channel off. *)
  Counter_set.incr out "net.retransmissions" ~by:(Reliable.retransmissions t.ch) ();
  Counter_set.incr out "net.chan_acks" ~by:(Reliable.acks_sent t.ch) ();
  Counter_set.incr out "net.dedup_dropped" ~by:(Reliable.dup_dropped t.ch) ();
  (* Failure-detector accounting; absent entirely when the detector is off. *)
  (match t.fd with
  | None -> ()
  | Some fd ->
      Counter_set.incr out "fd.heartbeats_sent" ~by:(Heartbeat.sent fd.hb) ();
      Counter_set.incr out "fd.heartbeats_received"
        ~by:(Heartbeat.received fd.hb) ();
      Counter_set.incr out "fd.heartbeats_dropped"
        ~by:(Heartbeat.dropped fd.hb) ();
      Counter_set.incr out "fd.suspicions" ~by:(Detector.suspicions fd.det) ();
      Counter_set.incr out "fd.confirmed"
        ~by:(Detector.confirmations fd.det) ();
      Counter_set.incr out "fd.recoveries" ~by:(Detector.recoveries fd.det) ());
  Counter_set.merge out (Injector.stats t.faults)

let packed t =
  Txn.Engine_intf.Packed
    ( (module struct
        type nonrec t = t

        let name = name
        let submit = submit
        let stats = stats
      end),
      t )

let advance t =
  let ivar = Ivar.create () in
  if t.cfg.shards = 1 then Mailbox.send t.cs.(0).cs_trigger (Some ivar)
  else begin
    (* Trigger every shard and fill the caller's ivar once all have
       completed a round; per-shard ivars are joined by a collector
       fiber so the caller still gets one completion signal. *)
    let parts =
      Array.map
        (fun cs ->
          let part = Ivar.create () in
          Mailbox.send cs.cs_trigger (Some part);
          part)
        t.cs
    in
    Sim.spawn t.sim ~name:"advance-join" (fun () ->
        Array.iter (fun part -> Ivar.read t.sim part) parts;
        Ivar.fill ivar ())
  end;
  ivar

let check_node t i ctx =
  if i < 0 || i >= t.cfg.nodes then
    invalid_arg (Printf.sprintf "Engine.%s: node %d out of range" ctx i)

let update_version t ~node =
  check_node t node "update_version";
  t.nodes.(node).vu

let read_version t ~node =
  check_node t node "read_version";
  t.nodes.(node).vr

let store t ~node =
  check_node t node "store";
  t.nodes.(node).store

let counters t ~node =
  check_node t node "counters";
  t.nodes.(node).cnt

let inject_pause t ~node ~at ~duration =
  check_node t node "inject_pause";
  Injector.pause t.faults ~node ~at ~duration

let inject_crash t ~node ~at ~restart =
  check_node t node "inject_crash";
  Injector.crash t.faults ~node ~at ~restart

let inject_coord_crash t ~at ~restart =
  Injector.coord_crash t.faults ~at ~restart

let coord_log t = t.cs.(0).cs_clog

let shard_count t = t.cfg.shards

let shard_of_node t ~node =
  check_node t node "shard_of_node";
  node / t.per_shard

let read_vector t =
  match t.rvec with
  | Some rv -> Shard.Rvector.vector rv
  | None -> [| t.cs.(0).cs_vr |]

let assigned_vector t ~txn =
  Option.map Array.copy (Hashtbl.find_opt t.rvec_assigned txn)

let injector t = t.faults

let placement t = t.repl

let node_readable t ~node =
  check_node t node "node_readable";
  replica_readable t node

let detector t = Option.map (fun fd -> fd.det) t.fd

let node_suspected t ~node =
  check_node t node "node_suspected";
  match t.fd with
  | Some fd -> Detector.suspected fd.det ~node ~now:(Sim.now t.sim)
  | None -> false

let advancements_completed t =
  Array.fold_left (fun acc cs -> acc + cs.cs_advancements) 0 t.cs
let messages_sent t = Network.messages_sent t.net
let remote_messages_sent t = Network.remote_messages_sent t.net
let delivered_seen_size t = Network.delivered_seen_size t.net

let max_versions_ever t =
  Array.fold_left (fun acc n -> max acc (Mvstore.max_versions_ever n.store)) 1
    t.nodes
