(** Windowed per-version int tally.

    A sliding-window map from version number to an int, laid out like
    {!Counters}: versions inside a {!window}-wide window starting at the
    GC floor live in flat slot arrays (tag compare + array store per
    update), versions outside it spill to a hashtable. Semantically
    equivalent to an [(int, int) Hashtbl.t] defaulting to 0 — the window
    is purely a representation choice for the engine's hottest tallies
    (live subtransactions per version, bumped twice per subtransaction). *)

type t

(** Dense window width (a power of two); matches {!Counters.window}. *)
val window : int

(** [create ()] is an all-zero tally with the window floor at 0. *)
val create : unit -> t

(** [get t v] is the tally for version [v] (0 if never touched). *)
val get : t -> int -> int

(** [add t v delta] adds [delta] to version [v]'s tally. *)
val add : t -> int -> int -> unit

(** [gc_below t v] forgets tallies for versions < [v] and advances the
    dense window to start at [v], adopting any spilled versions the
    window now covers. *)
val gc_below : t -> int -> unit
