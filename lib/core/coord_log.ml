type phase = Switch_update | Quiesce_update | Switch_read | Retire_read

let phase_number = function
  | Switch_update -> 1
  | Quiesce_update -> 2
  | Switch_read -> 3
  | Retire_read -> 4

let phase_of_number = function
  | 1 -> Switch_update
  | 2 -> Quiesce_update
  | 3 -> Switch_read
  | 4 -> Retire_read
  | n -> invalid_arg (Printf.sprintf "Coord_log.phase_of_number: %d" n)

let phase_name = function
  | Switch_update -> "switch-update"
  | Quiesce_update -> "quiesce-update"
  | Switch_read -> "switch-read"
  | Retire_read -> "retire-read"

type record =
  | Started of { epoch : int; time : float }
  | Phase of { adv : int; phase : phase; vu_old : int; vr_old : int; time : float }
  | Committed of { adv : int; time : float }

type t = { mutable records : record list (* newest first *); mutable count : int }

let create () = { records = []; count = 0 }

let append t r =
  t.records <- r :: t.records;
  t.count <- t.count + 1

let records t = List.rev t.records
let length t = t.count

type in_flight = { f_adv : int; f_phase : phase; f_vu_old : int; f_vr_old : int }

type recovery = {
  next_epoch : int;
  completed : int;
  vu : int;
  vr : int;
  in_flight : in_flight option;
}

let recover t ~init_vu ~init_vr =
  (* Fold oldest-first: a [Committed] for advancement [adv] supersedes any
     [Phase] record of the same advancement; the most recent unsuperseded
     [Phase] is the in-flight advancement to resume. *)
  let max_epoch = ref 0 and completed = ref 0 in
  let in_flight = ref None in
  List.iter
    (fun r ->
      match r with
      | Started { epoch; _ } -> if epoch > !max_epoch then max_epoch := epoch
      | Phase { adv; phase; vu_old; vr_old; _ } ->
          in_flight :=
            Some { f_adv = adv; f_phase = phase; f_vu_old = vu_old; f_vr_old = vr_old }
      | Committed { adv; _ } ->
          if adv > !completed then completed := adv;
          (match !in_flight with
          | Some f when f.f_adv = adv -> in_flight := None
          | _ -> ()))
    (records t);
  {
    next_epoch = !max_epoch + 1;
    completed = !completed;
    vu = init_vu + !completed;
    vr = init_vr + !completed;
    in_flight = !in_flight;
  }

let phase_times t =
  List.filter_map
    (function
      | Phase { adv; phase; time; _ } -> Some (adv, phase, time)
      | Started _ | Committed _ -> None)
    (records t)

let pp_record ppf = function
  | Started { epoch; time } ->
      Format.fprintf ppf "started epoch=%d t=%g" epoch time
  | Phase { adv; phase; vu_old; vr_old; time } ->
      Format.fprintf ppf "phase adv=%d %s vu_old=%d vr_old=%d t=%g" adv
        (phase_name phase) vu_old vr_old time
  | Committed { adv; time } -> Format.fprintf ppf "committed adv=%d t=%g" adv time

let pp ppf t =
  Format.fprintf ppf "@[<v>coord log (%d records)" t.count;
  List.iter (fun r -> Format.fprintf ppf "@,%a" pp_record r) (records t);
  Format.fprintf ppf "@]"
