type t = Manual | Periodic of float | Every_n_updates of int | Divergence of float

let pp ppf = function
  | Manual -> Format.pp_print_string ppf "manual"
  | Periodic d -> Format.fprintf ppf "periodic(%gs)" d
  | Every_n_updates n -> Format.fprintf ppf "every-%d-updates" n
  | Divergence x -> Format.fprintf ppf "divergence(%g)" x
