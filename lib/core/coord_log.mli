(** The coordinator's durable write-ahead log.

    Version advancement is a four-phase protocol driven by a single
    coordinator; a fail-stop crash mid-advancement would otherwise wedge
    the system at an ever-staler version pair. The coordinator therefore
    logs, {e before} acting on it, every phase transition of every
    advancement: [(advancement_no, phase, vu_old, vr_old)]. On restart,
    {!recover} replays the log and tells the coordinator which advancement
    (if any) is in flight and at which phase to resume it.

    The log models a durable store in the simulated world: it survives
    coordinator crash windows (only volatile phase progress is lost),
    exactly like a node's {!Mvstore} survives node crashes. Appends are
    pure in-memory operations, so logging never perturbs the simulation
    schedule.

    Recovery is sound because every phase is idempotent on the node side
    (re-received [Start_advancement]/[Advance_read]/[Do_gc] re-ack without
    side effects, counter polls are namespaced by epoch), so re-driving a
    phase that had partially — or even fully — completed is safe. *)

(** The four phases of one advancement, in protocol order. *)
type phase =
  | Switch_update  (** phase 1: nodes adopt the new update version *)
  | Quiesce_update  (** phase 2: wait for [vu_old] writers to drain *)
  | Switch_read  (** phase 3: nodes adopt the new read version *)
  | Retire_read  (** phase 4: wait for [vr_old] readers, then GC it *)

val phase_number : phase -> int  (** 1..4 *)

(** @raise Invalid_argument outside 1..4. *)
val phase_of_number : int -> phase

(** Short phase name for traces, e.g. "switch-update". *)
val phase_name : phase -> string

type record =
  | Started of { epoch : int; time : float }
      (** a coordinator (re)start: epoch 0 at boot, incremented on each
          recovery. Epochs namespace counter-poll rounds on the wire. *)
  | Phase of { adv : int; phase : phase; vu_old : int; vr_old : int; time : float }
      (** advancement [adv] is entering [phase], retiring the given old
          version pair. Logged before the phase's first message is sent. *)
  | Committed of { adv : int; time : float }
      (** advancement [adv] finished phase 4; its [Phase] records are now
          superseded. *)

type t

(** An empty log. *)
val create : unit -> t

(** [append t r] durably appends one record. O(1). *)
val append : t -> record -> unit

(** Oldest first. *)
val records : t -> record list

(** Number of records logged. *)
val length : t -> int

(** The advancement to resume, if recovery finds one in flight. *)
type in_flight = { f_adv : int; f_phase : phase; f_vu_old : int; f_vr_old : int }

type recovery = {
  next_epoch : int;  (** strictly greater than every logged epoch *)
  completed : int;  (** highest committed advancement number (0 if none) *)
  vu : int;  (** update version implied by [completed] advancements *)
  vr : int;  (** read version implied by [completed] advancements *)
  in_flight : in_flight option;
      (** the latest [Phase] record not superseded by a [Committed] *)
}

(** [recover t ~init_vu ~init_vr] replays the log. [init_vu]/[init_vr] are
    the system's boot-time version pair; each committed advancement bumps
    both by one. *)
val recover : t -> init_vu:int -> init_vr:int -> recovery

(** All [(adv, phase, entry_time)] transitions, oldest first — lets tests
    aim crash injections at specific phase interiors of a reference run. *)
val phase_times : t -> (int * phase * float) list

(** One line per record, oldest first. *)
val pp : Format.formatter -> t -> unit
