let codes = 3

let encode v =
  if v < 0 then invalid_arg "Version_codec.encode: negative version";
  v mod codes

let decode ~near code =
  if code < 0 || code >= codes then
    invalid_arg "Version_codec.decode: code out of range";
  (* Within {near-1, near, near+1} the three residues mod 3 are pairwise
     distinct, so at most one candidate matches. *)
  match
    List.find_opt
      (fun v -> v >= 0 && v mod codes = code)
      [ near - 1; near; near + 1 ]
  with
  | Some v -> v
  | None -> invalid_arg "Version_codec.decode: no candidate within distance 1"

let roundtrips ~near v = v >= 0 && abs (v - near) <= 1 && decode ~near (encode v) = v
