type row = { req : int array; comp : int array }
type t = { nodes : int; table : (int, row) Hashtbl.t }

let create ~nodes =
  if nodes <= 0 then invalid_arg "Counters.create: nodes must be positive";
  { nodes; table = Hashtbl.create 8 }

let ensure_version t v =
  if not (Hashtbl.mem t.table v) then
    Hashtbl.replace t.table v
      { req = Array.make t.nodes 0; comp = Array.make t.nodes 0 }

let get_row t v =
  ensure_version t v;
  Hashtbl.find t.table v

let incr_r t ~version ~dst =
  let row = get_row t version in
  row.req.(dst) <- row.req.(dst) + 1

let incr_c t ~version ~src =
  let row = get_row t version in
  row.comp.(src) <- row.comp.(src) + 1

let r t ~version ~dst =
  match Hashtbl.find_opt t.table version with
  | None -> 0
  | Some row -> row.req.(dst)

let c t ~version ~src =
  match Hashtbl.find_opt t.table version with
  | None -> 0
  | Some row -> row.comp.(src)

let snapshot_r t ~version =
  match Hashtbl.find_opt t.table version with
  | None -> Array.make t.nodes 0
  | Some row -> Array.copy row.req

let snapshot_c t ~version =
  match Hashtbl.find_opt t.table version with
  | None -> Array.make t.nodes 0
  | Some row -> Array.copy row.comp

let versions t =
  Hashtbl.fold (fun v _ acc -> v :: acc) t.table [] |> List.sort compare

(* lint: hash-order-ok — callers must fold with a commutative [f] (min/max
   over the version set); see the .mli contract. *)
let fold_versions t f init = Hashtbl.fold (fun v _ acc -> f v acc) t.table init

let gc_below t v =
  (* Collect-then-remove without sorting: removal order is irrelevant, and
     mutating a Hashtbl during fold is unspecified, so stage the dead keys. *)
  let dead = fold_versions t (fun v0 acc -> if v0 < v then v0 :: acc else acc) [] in
  List.iter (Hashtbl.remove t.table) dead
