(* Windowed flat layout. The engine's GC keeps at most 3 consecutive
   versions live anywhere (§4's "three distinct numbers suffice"), so the
   common case is a dense window of [window] consecutive versions starting
   at the GC floor [base]. Each in-window version owns one slot
   ([version mod window]); its R and C rows are contiguous [nodes]-wide
   slices of two flat int arrays, so an incr is a tag compare plus one
   array store — no hashing, no per-version boxes. Versions outside
   [base, base + window) — a late completion for a GC'd version, or a
   version opened before the floor caught up — fall back to a spill
   hashtable with the old boxed-row representation. [gc_below] advances
   [base], retires dead slots, and adopts spill rows the window now
   covers, so the slot invariant (slots hold in-window versions only)
   is re-established at every GC edge. *)

let window = 4

type row = { req : int array; comp : int array }

type t = {
  nodes : int;
  mutable base : int;  (* window covers versions in [base, base + window) *)
  slot_ver : int array;  (* slot -> version held there, or -1 when free *)
  req : int array;  (* window * nodes, slot-major: R rows for slot versions *)
  comp : int array;  (* window * nodes, slot-major: C rows for slot versions *)
  spill : (int, row) Hashtbl.t;  (* out-of-window versions only *)
  zero : int array;  (* shared all-zero row; never mutated, never written *)
}

let create ~nodes =
  if nodes <= 0 then invalid_arg "Counters.create: nodes must be positive";
  {
    nodes;
    base = 0;
    slot_ver = Array.make window (-1);
    req = Array.make (window * nodes) 0;
    comp = Array.make (window * nodes) 0;
    spill = Hashtbl.create 8;
    zero = Array.make nodes 0;
  }

let[@inline] in_window t v = v >= t.base && v - t.base < window
let[@inline] slot_of v = v land (window - 1)

(* Claim the slot for an in-window version. Two distinct versions inside a
   [window]-wide range cannot share a residue mod [window], and [gc_below]
   clears tags below [base] before advancing it, so the slot is either
   free or a stale dead tag — never another live in-window version. *)
let claim_slot t v =
  let s = slot_of v in
  Array.fill t.req (s * t.nodes) t.nodes 0;
  Array.fill t.comp (s * t.nodes) t.nodes 0;
  t.slot_ver.(s) <- v;
  s

let spill_row t v =
  match Hashtbl.find_opt t.spill v with
  | Some r -> r
  | None ->
      let r = { req = Array.make t.nodes 0; comp = Array.make t.nodes 0 } in
      Hashtbl.replace t.spill v r;
      r

let ensure_version t v =
  if in_window t v then begin
    if t.slot_ver.(slot_of v) <> v then ignore (claim_slot t v)
  end
  else ignore (spill_row t v)

let incr_r t ~version ~dst =
  if in_window t version then begin
    let s = slot_of version in
    let s = if t.slot_ver.(s) = version then s else claim_slot t version in
    let i = (s * t.nodes) + dst in
    t.req.(i) <- t.req.(i) + 1
  end
  else begin
    let r = spill_row t version in
    r.req.(dst) <- r.req.(dst) + 1
  end

let incr_c t ~version ~src =
  if in_window t version then begin
    let s = slot_of version in
    let s = if t.slot_ver.(s) = version then s else claim_slot t version in
    let i = (s * t.nodes) + src in
    t.comp.(i) <- t.comp.(i) + 1
  end
  else begin
    let r = spill_row t version in
    r.comp.(src) <- r.comp.(src) + 1
  end

(* Reads: a matching slot tag implies the version is in-window and
   allocated, so no range check is needed on the fast path. *)

let r t ~version ~dst =
  let s = slot_of version in
  if t.slot_ver.(s) = version then t.req.((s * t.nodes) + dst)
  else
    match Hashtbl.find_opt t.spill version with
    | None -> 0
    | Some row -> row.req.(dst)

let c t ~version ~src =
  let s = slot_of version in
  if t.slot_ver.(s) = version then t.comp.((s * t.nodes) + src)
  else
    match Hashtbl.find_opt t.spill version with
    | None -> 0
    | Some row -> row.comp.(src)

let snapshot_r t ~version =
  let s = slot_of version in
  if t.slot_ver.(s) = version then Array.sub t.req (s * t.nodes) t.nodes
  else
    match Hashtbl.find_opt t.spill version with
    | None -> t.zero
    | Some row -> Array.copy row.req

let snapshot_c t ~version =
  let s = slot_of version in
  if t.slot_ver.(s) = version then Array.sub t.comp (s * t.nodes) t.nodes
  else
    match Hashtbl.find_opt t.spill version with
    | None -> t.zero
    | Some row -> Array.copy row.comp

let versions t =
  (* Hash order is erased by the sort below. *)
  let acc = Hashtbl.fold (fun v _ acc -> v :: acc) t.spill [] in
  let acc =
    Array.fold_left (fun acc v -> if v >= 0 then v :: acc else acc) acc t.slot_ver
  in
  List.sort Int.compare acc

let fold_versions t f init =
  let acc =
    Array.fold_left (fun acc v -> if v >= 0 then f v acc else acc) init t.slot_ver
  in
  (* lint: hash-order-ok — callers must fold with a commutative [f] (min/max
     over the version set); see the .mli contract. *)
  Hashtbl.fold (fun v _ acc -> f v acc) t.spill acc

let gc_below t v =
  (* Drop spill rows below the floor. Collect-then-remove: removals are
     per-version independent, so staging order is irrelevant, and mutating
     a Hashtbl mid-fold is unspecified. *)
  if Hashtbl.length t.spill > 0 then begin
    let dead =
      (* lint: hash-order-ok — independent removals, commutative collection. *)
      Hashtbl.fold (fun w _ acc -> if w < v then w :: acc else acc) t.spill []
    in
    List.iter (Hashtbl.remove t.spill) dead
  end;
  if v > t.base then begin
    for s = 0 to window - 1 do
      let w = t.slot_ver.(s) in
      if w >= 0 && w < v then t.slot_ver.(s) <- -1
    done;
    t.base <- v;
    (* Adopt spill rows the advanced window now covers. Distinct in-window
       versions land in distinct slots, so adoption order is irrelevant. *)
    if Hashtbl.length t.spill > 0 then begin
      let adopt =
        (* lint: hash-order-ok — per-version independent slot moves. *)
        Hashtbl.fold
          (fun w (row : row) acc -> if in_window t w then (w, row) :: acc else acc)
          t.spill []
      in
      List.iter
        (fun (w, (row : row)) ->
          let s = slot_of w in
          Array.blit row.req 0 t.req (s * t.nodes) t.nodes;
          Array.blit row.comp 0 t.comp (s * t.nodes) t.nodes;
          t.slot_ver.(s) <- w;
          Hashtbl.remove t.spill w)
        adopt
    end
  end
