type event = { time : float; site : string; what : string }
type t = { mutable events : event list; mutable n : int }

let create () = { events = []; n = 0 }

let emit t ~time ~site what =
  t.events <- { time; site; what } :: t.events;
  t.n <- t.n + 1

let events t = List.rev t.events
let length t = t.n

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
    scan 0
  end

let find t pattern =
  List.filter (fun e -> contains_substring e.what pattern) (events t)

let render t ~sites =
  let buf = Buffer.create 1024 in
  let columns = sites in
  let width = 34 in
  let pad s =
    if String.length s >= width then String.sub s 0 width
    else s ^ String.make (width - String.length s) ' '
  in
  Buffer.add_string buf (pad "TIME");
  List.iter (fun s -> Buffer.add_string buf (pad ("SITE " ^ s))) columns;
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf (pad (Printf.sprintf "%.2f" e.time));
      let matched = ref false in
      List.iter
        (fun s ->
          if s = e.site && not !matched then begin
            matched := true;
            Buffer.add_string buf (pad e.what)
          end
          else Buffer.add_string buf (pad ""))
        columns;
      if not !matched then Buffer.add_string buf (e.site ^ ": " ^ e.what);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf
