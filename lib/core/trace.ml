type event = { time : float; site : string; what : string }

(* Bounded ring buffer. [buf] grows geometrically up to [cap]; once full,
   [emit] overwrites the oldest slot in O(1). [start] is the index of the
   oldest retained event, [len] the retained count, [total] every event ever
   emitted (retained or evicted). The dummy cell fills unused slots so they
   never pin evicted events against the GC.

   Cells hold the message as a [string Lazy.t]: a traced bench run emits
   orders of magnitude more events than the ring retains, so rendering at
   emission time would mostly format strings that are evicted unread.
   [emit_deferred] stores the closure and only the retained suffix ever
   pays the sprintf — readers force on access (memoised, so repeated reads
   render once). [emit] keeps strict semantics via [Lazy.from_val]. *)
type cell = { c_time : float; c_site : string; c_msg : string Lazy.t }

type t = {
  cap : int;
  sink : (event -> unit) option;
  mutable buf : cell array;
  mutable start : int;
  mutable len : int;
  mutable total : int;
}

let dummy_cell = { c_time = 0.; c_site = ""; c_msg = Lazy.from_val "" }
let default_capacity = 65_536

let create ?(capacity = default_capacity) ?sink () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { cap = capacity; sink; buf = [||]; start = 0; len = 0; total = 0 }

let capacity t = t.cap
let length t = t.len
let total t = t.total
let dropped t = t.total - t.len

(* Grow the backing array (oldest-first relayout), doubling up to [cap]. *)
let grow t =
  let old = Array.length t.buf in
  let ncap = if old = 0 then min t.cap 256 else min t.cap (old * 2) in
  let nbuf = Array.make ncap dummy_cell in
  for i = 0 to t.len - 1 do
    nbuf.(i) <- t.buf.((t.start + i) mod old)
  done;
  t.buf <- nbuf;
  t.start <- 0

let store t c =
  let size = Array.length t.buf in
  if t.len = size && size < t.cap then grow t;
  let size = Array.length t.buf in
  if t.len < size then begin
    t.buf.((t.start + t.len) mod size) <- c;
    t.len <- t.len + 1
  end
  else begin
    (* Full at capacity: overwrite the oldest slot. *)
    t.buf.(t.start) <- c;
    t.start <- (t.start + 1) mod size
  end;
  t.total <- t.total + 1

let emit t ~time ~site what =
  (match t.sink with Some f -> f { time; site; what } | None -> ());
  store t { c_time = time; c_site = site; c_msg = Lazy.from_val what }

let emit_deferred t ~time ~site msg =
  match t.sink with
  | Some _ ->
      (* A sink observes every event at emission time, evicted or not, so
         deferral buys nothing here: render now and keep the contract. *)
      emit t ~time ~site (msg ())
  | None -> store t { c_time = time; c_site = site; c_msg = Lazy.from_fun msg }

let[@inline] force_cell c =
  { time = c.c_time; site = c.c_site; what = Lazy.force c.c_msg }

let iter t f =
  let size = Array.length t.buf in
  for i = 0 to t.len - 1 do
    f (force_cell t.buf.((t.start + i) mod size))
  done

let events t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) dummy_cell;
  t.start <- 0;
  t.len <- 0;
  t.total <- 0

(* Allocation-free substring scan (no [String.sub] per position). *)
let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    (* lint: unsafe-ok — bounds proven: [scan] only calls [matches_at i 0]
       under [i + m <= n], and [matches_at] reads [s.(i + j)] with [j < m]
       and [sub.(j)] with [j < m]; a checked access here would bounds-test
       every byte of every retained trace line on [find]. *)
    let rec matches_at i j =
      j = m || (String.unsafe_get s (i + j) = String.unsafe_get sub j
                && matches_at i (j + 1))
    in
    let rec scan i = i + m <= n && (matches_at i 0 || scan (i + 1)) in
    scan 0
  end

let find t pattern =
  let acc = ref [] in
  iter t (fun e -> if contains_substring e.what pattern then acc := e :: !acc);
  List.rev !acc

let render t ~sites =
  let buf = Buffer.create 1024 in
  let columns = sites in
  let width = 34 in
  let pad s =
    if String.length s >= width then String.sub s 0 width
    else s ^ String.make (width - String.length s) ' '
  in
  Buffer.add_string buf (pad "TIME");
  List.iter (fun s -> Buffer.add_string buf (pad ("SITE " ^ s))) columns;
  Buffer.add_char buf '\n';
  iter t (fun e ->
      Buffer.add_string buf (pad (Printf.sprintf "%.2f" e.time));
      let matched = ref false in
      List.iter
        (fun s ->
          if s = e.site && not !matched then begin
            matched := true;
            Buffer.add_string buf (pad e.what)
          end
          else Buffer.add_string buf (pad ""))
        columns;
      if not !matched then Buffer.add_string buf (e.site ^ ": " ^ e.what);
      Buffer.add_char buf '\n')
  ;
  Buffer.contents buf
