(** Per-node request/completion counter tables (paper §2.2, §4).

    A node [p] keeps, for every active version [v]:

    - [R(v)pq] — requests: subtransactions (on version [v]) that node [p]
      sent to node [q]; located at the {e sender} [p];
    - [C(v)op] — completions: subtransactions (on version [v]) submitted
      from node [o] that {e terminated} at node [p]; located at the
      {e executor} [p].

    All transactions against version [v] have terminated exactly when
    [R(v)pq = C(v)pq] for all pairs — with [R(v)pq] read at [p] and
    [C(v)pq] read at [q]. Counters are monotone, which is what makes the
    coordinator's asynchronous polling sound.

    All operations are plain (non-suspending) OCaml: the paper's only
    concurrency assumption for counters is that individual reads and writes
    are atomic, which single-threaded simulation gives for free.

    Representation: the engine's GC keeps at most 3 consecutive versions
    live (§4), so rows for versions inside a {!window}-wide sliding window
    starting at the GC floor live in dense flat int arrays indexed by
    [(version mod window) * nodes + peer] — an incr is a tag compare plus
    one array store. Versions outside the window (late completions for
    GC'd versions, or versions opened ahead of the floor) spill to a
    hashtable with boxed rows; {!gc_below} advances the window and adopts
    spill rows it newly covers. Observable behaviour is identical to a
    plain per-version hash table (see test/test_counters_equiv.ml). *)

type t

(** Width of the dense version window (a power of two): 3 live versions
    plus one slot of slack for the version opened before the GC floor
    advances. *)
val window : int

(** [create ~nodes] is a counter table for a node in an [nodes]-node system,
    with no versions allocated yet. *)
val create : nodes:int -> t

(** [ensure_version t v] allocates zeroed R/C rows for version [v] if absent
    (paper §4.1 step 2 / §4.3 phase 1). *)
val ensure_version : t -> int -> unit

(** [incr_r t ~version ~dst] bumps [R(version) self→dst]. Allocates the
    version if needed. *)
val incr_r : t -> version:int -> dst:int -> unit

(** [incr_c t ~version ~src] bumps [C(version) src→self]. *)
val incr_c : t -> version:int -> src:int -> unit

(** [r t ~version ~dst] reads [R(version) self→dst]; 0 when the version
    was never allocated. *)
val r : t -> version:int -> dst:int -> int

(** [c t ~version ~src] reads [C(version) src→self]; 0 when the version
    was never allocated. *)
val c : t -> version:int -> src:int -> int

(** [snapshot_r t ~version] is the R row for this node: index [q] holds
    [R(version) self→q]. When the version was never allocated this is a
    {e shared} all-zero row — treat every snapshot as immutable (the poll
    path only ever reads them); allocated versions still return a fresh
    copy because the live row keeps mutating after the snapshot. *)
val snapshot_r : t -> version:int -> int array

(** [snapshot_c t ~version] is the C column for this node: index [o] holds
    [C(version) o→self]. Same sharing contract as {!snapshot_r}. *)
val snapshot_c : t -> version:int -> int array

(** Versions currently allocated, ascending ([Int.compare]). Allocates and
    sorts; prefer {!fold_versions} on hot paths. *)
val versions : t -> int list

(** [fold_versions t f init] folds [f] over the allocated versions in
    {e unspecified order}, without sorting or building a list. Determinism
    contract: [f] must be commutative over the version set (min, max, sum,
    set accumulation) — anything order-sensitive must use {!versions}
    instead. *)
val fold_versions : t -> (int -> 'a -> 'a) -> 'a -> 'a

(** [gc_below t v] drops counter storage for all versions < [v]
    (§4.3 phase 4). *)
val gc_below : t -> int -> unit
