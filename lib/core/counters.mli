(** Per-node request/completion counter tables (paper §2.2, §4).

    A node [p] keeps, for every active version [v]:

    - [R(v)pq] — requests: subtransactions (on version [v]) that node [p]
      sent to node [q]; located at the {e sender} [p];
    - [C(v)op] — completions: subtransactions (on version [v]) submitted
      from node [o] that {e terminated} at node [p]; located at the
      {e executor} [p].

    All transactions against version [v] have terminated exactly when
    [R(v)pq = C(v)pq] for all pairs — with [R(v)pq] read at [p] and
    [C(v)pq] read at [q]. Counters are monotone, which is what makes the
    coordinator's asynchronous polling sound.

    All operations are plain (non-suspending) OCaml: the paper's only
    concurrency assumption for counters is that individual reads and writes
    are atomic, which single-threaded simulation gives for free. *)

type t

(** [create ~nodes] is a counter table for a node in an [nodes]-node system,
    with no versions allocated yet. *)
val create : nodes:int -> t

(** [ensure_version t v] allocates zeroed R/C rows for version [v] if absent
    (paper §4.1 step 2 / §4.3 phase 1). *)
val ensure_version : t -> int -> unit

(** [incr_r t ~version ~dst] bumps [R(version) self→dst]. Allocates the
    version if needed. *)
val incr_r : t -> version:int -> dst:int -> unit

(** [incr_c t ~version ~src] bumps [C(version) src→self]. *)
val incr_c : t -> version:int -> src:int -> unit

(** [r t ~version ~dst] reads [R(version) self→dst]; 0 when the version
    was never allocated. *)
val r : t -> version:int -> dst:int -> int

(** [c t ~version ~src] reads [C(version) src→self]; 0 when the version
    was never allocated. *)
val c : t -> version:int -> src:int -> int

(** [snapshot_r t ~version] is the R row for this node: index [q] holds
    [R(version) self→q]. Zeroes when the version was never allocated. *)
val snapshot_r : t -> version:int -> int array

(** [snapshot_c t ~version] is the C column for this node: index [o] holds
    [C(version) o→self]. *)
val snapshot_c : t -> version:int -> int array

(** Versions currently allocated, ascending. Allocates and sorts; prefer
    {!fold_versions} on hot paths. *)
val versions : t -> int list

(** [fold_versions t f init] folds [f] over the allocated versions in
    {e unspecified order}, without sorting or building a list. Determinism
    contract: [f] must be commutative over the version set (min, max, sum,
    set accumulation) — anything order-sensitive must use {!versions}
    instead. *)
val fold_versions : t -> (int -> 'a -> 'a) -> 'a -> 'a

(** [gc_below t v] drops counter storage for all versions < [v]
    (§4.3 phase 4). *)
val gc_below : t -> int -> unit
