(* Same sliding-window trick as {!Counters}, for a single int per version
   instead of R/C rows: in-window versions live in a 4-slot tag/value pair
   of arrays, everything else spills to a hashtable. The engine uses this
   for its per-version live-subtransaction tallies, which are bumped twice
   per subtransaction — the hottest non-counter table in the kernel. *)

let window = 4

type t = {
  slot_ver : int array;  (* slot -> version held there, or -1 when free *)
  slot_val : int array;
  mutable base : int;  (* window covers versions in [base, base + window) *)
  spill : (int, int) Hashtbl.t;
}

let create () =
  {
    slot_ver = Array.make window (-1);
    slot_val = Array.make window 0;
    base = 0;
    spill = Hashtbl.create 8;
  }

let[@inline] slot_of v = v land (window - 1)
let[@inline] in_window t v = v >= t.base && v - t.base < window

let get t v =
  let s = slot_of v in
  if t.slot_ver.(s) = v then t.slot_val.(s)
  else match Hashtbl.find_opt t.spill v with Some n -> n | None -> 0

let add t v delta =
  if in_window t v then begin
    let s = slot_of v in
    if t.slot_ver.(s) = v then t.slot_val.(s) <- t.slot_val.(s) + delta
    else begin
      (* Free or dead-tag slot: claim it (see {!Counters.claim_slot} for
         why a live collision is impossible). *)
      t.slot_ver.(s) <- v;
      t.slot_val.(s) <- delta
    end
  end
  else begin
    let cur = match Hashtbl.find_opt t.spill v with Some n -> n | None -> 0 in
    Hashtbl.replace t.spill v (cur + delta)
  end

let gc_below t v =
  if Hashtbl.length t.spill > 0 then begin
    (* lint: hash-order-ok — independent removals, commutative collection. *)
    let dead =
      Hashtbl.fold (fun w _ acc -> if w < v then w :: acc else acc) t.spill []
    in
    List.iter (Hashtbl.remove t.spill) dead
  end;
  if v > t.base then begin
    for s = 0 to window - 1 do
      let w = t.slot_ver.(s) in
      if w >= 0 && w < v then t.slot_ver.(s) <- -1
    done;
    t.base <- v;
    if Hashtbl.length t.spill > 0 then begin
      (* lint: hash-order-ok — distinct versions land in distinct slots. *)
      let adopt =
        Hashtbl.fold
          (fun w n acc -> if in_window t w then (w, n) :: acc else acc)
          t.spill []
      in
      List.iter
        (fun (w, n) ->
          let s = slot_of w in
          t.slot_ver.(s) <- w;
          t.slot_val.(s) <- n;
          Hashtbl.remove t.spill w)
        adopt
    end
  end
