type ctl = {
  mutable forced : int list;  (** remaining forced prefix *)
  mutable trail : (int * int) list;  (** (chosen, arity) in reverse order *)
}

let choose ctl n =
  if n <= 0 then invalid_arg "Explorer.choose: need at least one option";
  let pick =
    match ctl.forced with
    | c :: rest ->
        ctl.forced <- rest;
        if c >= n then
          invalid_arg
            "Explorer.choose: forced choice out of range (nondeterministic \
             scenario changed shape)"
        else c
    | [] -> 0
  in
  ctl.trail <- (pick, n) :: ctl.trail;
  pick

let choose_among ctl options = List.nth options (choose ctl (List.length options))

type outcome = {
  runs : int;
  exhausted : bool;
  failure : (int list * exn) option;
}

let explore ?(max_runs = 100_000) scenario =
  (* Depth-first over prefixes. Each run returns its full trail; every
     position at or beyond the forced prefix length with untried options
     becomes a new branch. Branches are pushed deepest-first so exploration
     is a proper DFS and terminates on finite trees. *)
  let stack = ref [ [] ] in
  let runs = ref 0 in
  let failure = ref None in
  let exhausted = ref true in
  while !failure = None && !stack <> [] && !runs < max_runs do
    match !stack with
    | [] -> ()
    | prefix :: rest ->
        stack := rest;
        incr runs;
        let ctl = { forced = prefix; trail = [] } in
        (match scenario ctl with
        | () ->
            let trail = List.rev ctl.trail (* (chosen, arity) in order *) in
            let depth = List.length prefix in
            (* Spawn siblings for positions >= depth, deepest first. *)
            let rec spawn i acc_prefix_rev = function
              | [] -> ()
              | (chosen, arity) :: restpos ->
                  if i >= depth then
                    (* Every untried alternative at this position becomes a
                       branch; positions below [depth] were enumerated by
                       the run that created this prefix. *)
                    for alt = arity - 1 downto chosen + 1 do
                      stack := List.rev_append acc_prefix_rev [ alt ] :: !stack
                    done;
                  spawn (i + 1) (chosen :: acc_prefix_rev) restpos
            in
            (* Push shallower branches first so that deeper ones end up on
               top of the stack (DFS). *)
            spawn 0 [] trail
        | exception exn ->
            (* trail is in reverse order; rev_map restores choice order. *)
            failure := Some (List.rev_map fst ctl.trail, exn))
  done;
  if !stack <> [] && !failure = None then exhausted := false;
  { runs = !runs; exhausted = !exhausted && !failure = None; failure = !failure }

let replay scenario choices =
  let ctl = { forced = choices; trail = [] } in
  scenario ctl
