(** Bounded exhaustive exploration of nondeterministic scenarios —
    stateless model checking over the simulator.

    A scenario is a function that rebuilds its whole world (simulation,
    engine, transactions) from scratch and consults the controller at each
    nondeterministic point — typically "which latency does this message
    get?". The explorer enumerates {e every} sequence of choices
    depth-first: each run follows a forced prefix and defaults to option 0
    beyond it; after the run, each prefix position that still has untried
    options spawns a new branch. Choice trees may be {e dynamic} (the
    number and arity of later choices can depend on earlier ones), which is
    exactly what message-dependent protocols need.

    Used by the test suite to check the 3V protocol's invariants over all
    interleavings of small scenarios: every schedule of delivery delays for
    the first K messages of a Table-1-like run must commit the
    transactions, keep reads atomic, respect the ≤3-version bound, and
    terminate advancement. A scenario signals a violation by raising; the
    explorer reports the offending choice sequence. *)

type ctl

(** [choose ctl n] picks one of [n] options (returned as [0 .. n-1]) at
    this decision point, according to the exploration schedule.
    @raise Invalid_argument if [n <= 0]. *)
val choose : ctl -> int -> int

(** [choose_among ctl options] is [List.nth options (choose ctl (length options))]. *)
val choose_among : ctl -> 'a list -> 'a

type outcome = {
  runs : int;  (** scenarios executed *)
  exhausted : bool;  (** the whole choice tree was covered *)
  failure : (int list * exn) option;
      (** first failing run: its choice sequence and the exception *)
}

(** [explore ?max_runs scenario] enumerates choice sequences until the tree
    is exhausted, [max_runs] (default 100_000) is hit, or a run raises.
    The scenario must be self-contained: it is re-executed from scratch for
    every sequence. *)
val explore : ?max_runs:int -> (ctl -> unit) -> outcome

(** [replay scenario choices] re-runs one specific choice sequence (e.g. a
    reported failure) for debugging. *)
val replay : (ctl -> unit) -> int list -> unit
