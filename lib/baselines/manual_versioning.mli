(** Baseline 3 of paper §1: manual (calendar) versioning.

    Updates accumulate in a per-period batch version: a transaction
    submitted during period [π] (periods are [period] seconds long) writes
    version [π + 1] of the data. Reads use the latest {e closed} period that
    has also aged past the safety delay: period [σ] becomes readable at time
    [(σ+1) · period + safety_delay]. The safety delay stands in for the
    "conservatively high" administrative waiting the paper describes; if it
    is set too low, update subtransactions still in flight past the
    switchover produce exactly the partial-read incorrectness of §1 —
    measurably, via the atomic-visibility checker (experiment E8).

    There is no coordination between nodes and no version-advancement
    protocol; the trade-off is staleness of at least [safety_delay] and up
    to [period + safety_delay], plus the possibility of incorrectness. *)

type config = {
  nodes : int;
  latency : Netsim.Latency.t;
  think_time : float;
  period : float;  (** batch length in virtual seconds (the "month") *)
  safety_delay : float;  (** wait after period close before reads switch *)
}

(** Stock configuration: 5 ms constant latency, 0.1 ms think time,
    1 s period, 200 ms safety delay. *)
val default_config : nodes:int -> config

type t

(** [create sim cfg] builds the system and starts its node servers and the
    periodic version publisher. *)
val create : Simul.Sim.t -> config -> t

include Txn.Engine_intf.S with type t := t

(** The engine packed behind {!Txn.Engine_intf.S}. *)
val packed : t -> Txn.Engine_intf.packed

(** The version a read submitted at virtual time [now] uses. *)
val read_version_at : t -> now:float -> int

(** The multi-version store of a node (one version per period), for
    inspection. *)
val store : t -> node:int -> Txn.Value.t Store.Mvstore.t

(** Comparison shim for [Threev.Engine.inject_coord_crash]: the periodic
    version publisher is this scheme's coordinator analogue. During
    [[at, restart)) the publication clock is frozen at [at], so reads keep
    the last pre-crash version and staleness grows linearly for the whole
    outage; at [restart] publication catches up instantly (it is a pure
    function of time — the "recovery protocol" is the wall clock).
    @raise Invalid_argument if [restart <= at]. *)
val inject_coord_crash : t -> at:float -> restart:float -> unit

(** Network send attempts so far. *)
val messages_sent : t -> int
