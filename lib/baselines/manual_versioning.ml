module Sim = Simul.Sim
module Ivar = Simul.Ivar
module Semaphore = Simul.Semaphore
module Network = Netsim.Network
module Latency = Netsim.Latency
module Mvstore = Store.Mvstore
module Spec = Txn.Spec
module Op = Txn.Op
module Value = Txn.Value
module Result = Txn.Result
module Counter_set = Stats.Counter_set

type config = {
  nodes : int;
  latency : Latency.t;
  think_time : float;
  period : float;
  safety_delay : float;
}

let default_config ~nodes =
  {
    nodes;
    latency = Latency.Constant 0.005;
    think_time = 0.0001;
    period = 1.0;
    safety_delay = 0.2;
  }

type root_submit = {
  rs_submit_time : float;
  rs_result : Result.t Ivar.t;
  mutable rs_root_commit : float;
}

type msg =
  | Subtxn of {
      txn_id : int;
      label : string;
      version : int;  (** period-derived data version, stamped at the root *)
      is_read : bool;
      source : int;
      parent : (int * int) option;
      tree : Spec.subtxn;
      root : root_submit option;
    }
  | Completion of { pending_id : int; reads : (string * Value.t) list }

type pending = {
  p_id : int;
  p_txn : int;
  p_label : string;
  p_version : int;
  p_is_read : bool;
  p_parent : (int * int) option;
  mutable p_outstanding : int;
  mutable p_local_done : bool;
  mutable p_reads : (string * Value.t) list;
  p_root : root_submit option;
}

type node = {
  id : int;
  store : Value.t Mvstore.t;
  local_cc : Semaphore.t;
  pendings : (int, pending) Hashtbl.t;
  mutable next_pending : int;
}

type t = {
  sim : Sim.t;
  cfg : config;
  net : msg Network.t;
  nodes : node array;
  counters : Counter_set.t;
  mutable pub_outages : (float * float) list;
      (** (at, restart) windows during which the read-version publisher —
          this scheme's coordinator analogue — is down *)
}

(* Period of a submission time; updates of period π write version π + 1. *)
let update_version_at t ~now = int_of_float (Float.floor (now /. t.cfg.period)) + 1

(* During a publisher outage the read-version publication is frozen at the
   window's start: reads keep using the last version published before the
   crash, staleness grows linearly, and the restart catches up instantly
   (there is no re-drive — the publication is a pure function of time). *)
let publication_time t ~now =
  List.fold_left
    (fun eff (at, restart) ->
      if now >= at && now < restart then Float.min eff at else eff)
    now t.pub_outages

(* Latest period σ closed and aged past the safety delay; reads use σ + 1,
   or the initial version 0 when no period is readable yet. *)
let read_version_at t ~now =
  let now = publication_time t ~now in
  let sigma =
    int_of_float
      (Float.floor ((now -. t.cfg.safety_delay) /. t.cfg.period))
    - 1
  in
  if sigma < 0 then 0 else sigma + 1

let cstat t name = Counter_set.incr t.counters name ()
let send t ~src ~dst msg = Network.send t.net ~src ~dst msg

let maybe_finish t node p =
  if p.p_local_done && p.p_outstanding = 0 then begin
    Hashtbl.remove node.pendings p.p_id;
    match p.p_parent with
    | Some (parent_node, parent_pid) ->
        send t ~src:node.id ~dst:parent_node
          (Completion { pending_id = parent_pid; reads = p.p_reads })
    | None ->
        let rs = match p.p_root with Some rs -> rs | None -> assert false in
        cstat t "txn.committed";
        Ivar.fill rs.rs_result
          {
            Result.txn_id = p.p_txn;
            served_by = node.id;
            outcome = Result.Committed;
            version = p.p_version;
            reads = p.p_reads;
            submit_time = rs.rs_submit_time;
            root_commit_time = rs.rs_root_commit;
            complete_time = Sim.now t.sim;
          }
  end

let exec_subtxn t node p (tree : Spec.subtxn) =
  if tree.Spec.think > 0. then Sim.sleep t.sim tree.Spec.think;
  Semaphore.with_permit t.sim node.local_cc (fun () ->
      if t.cfg.think_time > 0. then Sim.sleep t.sim t.cfg.think_time;
      List.iter
        (fun op ->
          match op with
          | Op.Read key ->
              let value =
                match
                  Mvstore.read_visible node.store ~key ~version:p.p_version
                with
                | Some (_, v) -> v
                | None -> Value.empty
              in
              p.p_reads <- p.p_reads @ [ (key, value) ]
          | Op.Incr _ | Op.Append _ | Op.Overwrite _ ->
              ignore
                (Mvstore.write_upward node.store ~key:(Op.key op)
                   ~version:p.p_version ~init:Value.empty
                   ~f:(Op.apply op ~txn:p.p_txn)))
        tree.Spec.ops);
  cstat t "subtxn.executed";
  List.iter
    (fun (child : Spec.subtxn) ->
      p.p_outstanding <- p.p_outstanding + 1;
      send t ~src:node.id ~dst:child.Spec.node
        (Subtxn
           {
             txn_id = p.p_txn;
             label = p.p_label;
             version = p.p_version;
             is_read = p.p_is_read;
             source = node.id;
             parent = Some (node.id, p.p_id);
             tree = child;
             root = None;
           }))
    tree.Spec.children;
  (match p.p_root with
  | Some rs -> rs.rs_root_commit <- Sim.now t.sim
  | None -> ());
  p.p_local_done <- true;
  maybe_finish t node p

let handle_msg t node = function
  | Subtxn { txn_id; label; version; is_read; source = _; parent; tree; root }
    ->
      node.next_pending <- node.next_pending + 1;
      let p =
        {
          p_id = node.next_pending;
          p_txn = txn_id;
          p_label = label;
          p_version = version;
          p_is_read = is_read;
          p_parent = parent;
          p_outstanding = 0;
          p_local_done = false;
          p_reads = [];
          p_root = root;
        }
      in
      Hashtbl.replace node.pendings p.p_id p;
      Sim.spawn t.sim
        ~name:(Printf.sprintf "manual-n%d/%s#%d" node.id label p.p_id)
        (fun () -> exec_subtxn t node p tree)
  | Completion { pending_id; reads } -> (
      match Hashtbl.find_opt node.pendings pending_id with
      | None ->
          invalid_arg
            (Printf.sprintf
               "Manual_versioning: completion for unknown pending %d"
               pending_id)
      | Some p ->
          p.p_reads <- p.p_reads @ reads;
          p.p_outstanding <- p.p_outstanding - 1;
          maybe_finish t node p)

let create sim (cfg : config) =
  if cfg.nodes <= 0 then
    invalid_arg "Manual_versioning.create: nodes must be positive";
  if cfg.period <= 0. then
    invalid_arg "Manual_versioning.create: period must be positive";
  let net = Network.create sim ~size:cfg.nodes ~latency:cfg.latency () in
  let nodes =
    Array.init cfg.nodes (fun i ->
        {
          id = i;
          store = Mvstore.create ();
          local_cc = Semaphore.create 1;
          pendings = Hashtbl.create 64;
          next_pending = 0;
        })
  in
  let t =
    { sim; cfg; net; nodes; counters = Counter_set.create (); pub_outages = [] }
  in
  Array.iter
    (fun node ->
      Sim.spawn sim ~daemon:true
        ~name:(Printf.sprintf "manual-node-%d" node.id) (fun () ->
          let rec loop () =
            handle_msg t node (Network.recv t.net ~node:node.id);
            loop ()
          in
          loop ()))
    nodes;
  t

let name _ = "manual-versioning"

let submit t (spec : Spec.t) =
  let result = Ivar.create () in
  let now = Sim.now t.sim in
  let rs = { rs_submit_time = now; rs_result = result; rs_root_commit = now } in
  cstat t "txn.submitted";
  let is_read = spec.Spec.kind = Spec.Read_only in
  let version =
    if is_read then read_version_at t ~now else update_version_at t ~now
  in
  let root_node = spec.Spec.root.Spec.node in
  send t ~src:root_node ~dst:root_node
    (Subtxn
       {
         txn_id = spec.Spec.id;
         label = spec.Spec.label;
         version;
         is_read;
         source = root_node;
         parent = None;
         tree = spec.Spec.root;
         root = Some rs;
       });
  result

let stats t =
  let out = Counter_set.merge t.counters (Counter_set.create ()) in
  Counter_set.incr out "net.messages" ~by:(Network.messages_sent t.net) ();
  Counter_set.incr out "net.remote_messages"
    ~by:(Network.remote_messages_sent t.net) ();
  out

let packed t =
  Txn.Engine_intf.Packed
    ( (module struct
        type nonrec t = t

        let name = name
        let submit = submit
        let stats = stats
      end),
      t )

let store t ~node =
  if node < 0 || node >= t.cfg.nodes then
    invalid_arg "Manual_versioning.store: node out of range";
  t.nodes.(node).store

let inject_coord_crash t ~at ~restart =
  if restart <= at then
    invalid_arg
      "Manual_versioning.inject_coord_crash: restart must be after the crash \
       time";
  cstat t "fault.coord_crashes";
  t.pub_outages <- (at, restart) :: t.pub_outages

let messages_sent t = Network.messages_sent t.net
