(** Baseline 1 of paper §1: full global synchronization.

    Every global transaction — reads included — runs distributed strict
    two-phase locking with a two-phase commit: each subtransaction acquires
    shared/exclusive locks at its node, buffers its writes, spawns its
    children, and votes; the root collects votes, decides, and broadcasts
    the decision, upon which nodes apply writes and release locks.

    This guarantees global serializability but couples every node's latency
    to every other node's: a read blocks behind a remote writer's lock until
    that writer's 2PC completes. Deadlocks (local cycles or distributed
    timeouts) abort the transaction; the engine does not retry. *)

type config = {
  nodes : int;
  latency : Netsim.Latency.t;
  think_time : float;
  deadlock_timeout : float;
}

(** Stock configuration: 5 ms constant latency, 0.1 ms think time, 1 s
    deadlock timeout. *)
val default_config : nodes:int -> config

type t

(** [create ?faults sim cfg] builds the system. [faults] plugs a
    {!Fault.Injector} into the network and the pause hook; crash/restart
    hooks are deliberately left unset — Global-2PC has no recovery path,
    which is the asymmetry experiment E12 measures. *)
val create : ?faults:Fault.Injector.t -> Simul.Sim.t -> config -> t

include Txn.Engine_intf.S with type t := t

(** The engine packed behind {!Txn.Engine_intf.S}. *)
val packed : t -> Txn.Engine_intf.packed

(** The single-version store of a node (version 0 only), for inspection. *)
val store : t -> node:int -> Txn.Value.t Store.Mvstore.t

(** Network send attempts so far. *)
val messages_sent : t -> int

(** [inject_pause t ~node ~at ~duration] freezes message processing at
    [node] for [duration] seconds starting at virtual time [at] — the same
    fault injection as [Threev.Engine.inject_pause], for comparison. *)
val inject_pause : t -> node:int -> at:float -> duration:float -> unit

(** Comparison shim for [Threev.Engine.inject_coord_crash]: this baseline
    has no separate coordinator endpoint (each root node runs its own 2PC),
    so the closest fault is fail-stopping node 0, the conventional
    coordination site — with no write-ahead log and no recovery protocol,
    transactions rooted there during the window are simply lost.
    @raise Invalid_argument if [restart <= at]. *)
val inject_coord_crash : t -> at:float -> restart:float -> unit
