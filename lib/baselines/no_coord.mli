(** Baseline 2 of paper §1: no coordination at all.

    Subtransactions execute immediately and independently at each node —
    writes apply in place, reads see whatever state the node happens to be
    in. There is no blocking and no versioning, so performance is the upper
    bound, but global serializability is sacrificed: a read that overlaps a
    multi-node update can observe some of its writes and miss others (the
    "partial charges on the bill" anomaly of §1), which the atomic-visibility
    checker counts. *)

type config = { nodes : int; latency : Netsim.Latency.t; think_time : float }

val default_config : nodes:int -> config

type t

val create : Simul.Sim.t -> config -> t

include Txn.Engine_intf.S with type t := t

val packed : t -> Txn.Engine_intf.packed
val store : t -> node:int -> Txn.Value.t Store.Mvstore.t
val messages_sent : t -> int
