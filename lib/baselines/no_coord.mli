(** Baseline 2 of paper §1: no coordination at all.

    Subtransactions execute immediately and independently at each node —
    writes apply in place, reads see whatever state the node happens to be
    in. There is no blocking and no versioning, so performance is the upper
    bound, but global serializability is sacrificed: a read that overlaps a
    multi-node update can observe some of its writes and miss others (the
    "partial charges on the bill" anomaly of §1), which the atomic-visibility
    checker counts. *)

type config = { nodes : int; latency : Netsim.Latency.t; think_time : float }

(** Stock configuration: 5 ms constant latency, 0.1 ms think time. *)
val default_config : nodes:int -> config

type t

(** [create sim cfg] builds the system and starts its node servers. *)
val create : Simul.Sim.t -> config -> t

include Txn.Engine_intf.S with type t := t

(** The engine packed behind {!Txn.Engine_intf.S}. *)
val packed : t -> Txn.Engine_intf.packed

(** The single-version store of a node (version 0 only), for inspection. *)
val store : t -> node:int -> Txn.Value.t Store.Mvstore.t

(** Network send attempts so far. *)
val messages_sent : t -> int
