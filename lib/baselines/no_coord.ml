module Sim = Simul.Sim
module Ivar = Simul.Ivar
module Semaphore = Simul.Semaphore
module Network = Netsim.Network
module Latency = Netsim.Latency
module Mvstore = Store.Mvstore
module Spec = Txn.Spec
module Op = Txn.Op
module Value = Txn.Value
module Result = Txn.Result
module Counter_set = Stats.Counter_set

type config = { nodes : int; latency : Latency.t; think_time : float }

let default_config ~nodes =
  { nodes; latency = Latency.Constant 0.005; think_time = 0.0001 }

type root_submit = {
  rs_submit_time : float;
  rs_result : Result.t Ivar.t;
  mutable rs_root_commit : float;
}

type msg =
  | Subtxn of {
      txn_id : int;
      label : string;
      source : int;
      parent : (int * int) option;
      tree : Spec.subtxn;
      root : root_submit option;
    }
  | Completion of { pending_id : int; reads : (string * Value.t) list }

type pending = {
  p_id : int;
  p_txn : int;
  p_label : string;
  p_parent : (int * int) option;
  mutable p_outstanding : int;
  mutable p_local_done : bool;
  mutable p_reads : (string * Value.t) list;
  p_root : root_submit option;
}

type node = {
  id : int;
  store : Value.t Mvstore.t;
  local_cc : Semaphore.t;
  pendings : (int, pending) Hashtbl.t;
  mutable next_pending : int;
}

type t = {
  sim : Sim.t;
  cfg : config;
  net : msg Network.t;
  nodes : node array;
  counters : Counter_set.t;
}

let cstat t name = Counter_set.incr t.counters name ()
let send t ~src ~dst msg = Network.send t.net ~src ~dst msg

let maybe_finish t node p =
  if p.p_local_done && p.p_outstanding = 0 then begin
    Hashtbl.remove node.pendings p.p_id;
    match p.p_parent with
    | Some (parent_node, parent_pid) ->
        send t ~src:node.id ~dst:parent_node
          (Completion { pending_id = parent_pid; reads = p.p_reads })
    | None ->
        let rs = match p.p_root with Some rs -> rs | None -> assert false in
        cstat t "txn.committed";
        Ivar.fill rs.rs_result
          {
            Result.txn_id = p.p_txn;
            served_by = node.id;
            outcome = Result.Committed;
            version = 0;
            reads = p.p_reads;
            submit_time = rs.rs_submit_time;
            root_commit_time = rs.rs_root_commit;
            complete_time = Sim.now t.sim;
          }
  end

let exec_subtxn t node p (tree : Spec.subtxn) =
  if tree.Spec.think > 0. then Sim.sleep t.sim tree.Spec.think;
  Semaphore.with_permit t.sim node.local_cc (fun () ->
      if t.cfg.think_time > 0. then Sim.sleep t.sim t.cfg.think_time;
      List.iter
        (fun op ->
          match op with
          | Op.Read key ->
              let value =
                match Mvstore.read_visible node.store ~key ~version:0 with
                | Some (_, v) -> v
                | None -> Value.empty
              in
              p.p_reads <- p.p_reads @ [ (key, value) ]
          | Op.Incr _ | Op.Append _ | Op.Overwrite _ ->
              ignore
                (Mvstore.write_upward node.store ~key:(Op.key op) ~version:0
                   ~init:Value.empty ~f:(Op.apply op ~txn:p.p_txn)))
        tree.Spec.ops);
  cstat t "subtxn.executed";
  List.iter
    (fun (child : Spec.subtxn) ->
      p.p_outstanding <- p.p_outstanding + 1;
      send t ~src:node.id ~dst:child.Spec.node
        (Subtxn
           {
             txn_id = p.p_txn;
             label = p.p_label;
             source = node.id;
             parent = Some (node.id, p.p_id);
             tree = child;
             root = None;
           }))
    tree.Spec.children;
  (match p.p_root with
  | Some rs -> rs.rs_root_commit <- Sim.now t.sim
  | None -> ());
  p.p_local_done <- true;
  maybe_finish t node p

let handle_msg t node = function
  | Subtxn { txn_id; label; source = _; parent; tree; root } ->
      node.next_pending <- node.next_pending + 1;
      let p =
        {
          p_id = node.next_pending;
          p_txn = txn_id;
          p_label = label;
          p_parent = parent;
          p_outstanding = 0;
          p_local_done = false;
          p_reads = [];
          p_root = root;
        }
      in
      Hashtbl.replace node.pendings p.p_id p;
      Sim.spawn t.sim
        ~name:(Printf.sprintf "nocoord-n%d/%s#%d" node.id label p.p_id)
        (fun () -> exec_subtxn t node p tree)
  | Completion { pending_id; reads } -> (
      match Hashtbl.find_opt node.pendings pending_id with
      | None ->
          invalid_arg
            (Printf.sprintf "No_coord: completion for unknown pending %d"
               pending_id)
      | Some p ->
          p.p_reads <- p.p_reads @ reads;
          p.p_outstanding <- p.p_outstanding - 1;
          maybe_finish t node p)

let create sim (cfg : config) =
  if cfg.nodes <= 0 then invalid_arg "No_coord.create: nodes must be positive";
  let net = Network.create sim ~size:cfg.nodes ~latency:cfg.latency () in
  let nodes =
    Array.init cfg.nodes (fun i ->
        {
          id = i;
          store = Mvstore.create ();
          local_cc = Semaphore.create 1;
          pendings = Hashtbl.create 64;
          next_pending = 0;
        })
  in
  let t = { sim; cfg; net; nodes; counters = Counter_set.create () } in
  Array.iter
    (fun node ->
      Sim.spawn sim ~daemon:true
        ~name:(Printf.sprintf "nocoord-node-%d" node.id) (fun () ->
          let rec loop () =
            handle_msg t node (Network.recv t.net ~node:node.id);
            loop ()
          in
          loop ()))
    nodes;
  t

let name _ = "no-coordination"

let submit t (spec : Spec.t) =
  let result = Ivar.create () in
  let now = Sim.now t.sim in
  let rs = { rs_submit_time = now; rs_result = result; rs_root_commit = now } in
  cstat t "txn.submitted";
  let root_node = spec.Spec.root.Spec.node in
  send t ~src:root_node ~dst:root_node
    (Subtxn
       {
         txn_id = spec.Spec.id;
         label = spec.Spec.label;
         source = root_node;
         parent = None;
         tree = spec.Spec.root;
         root = Some rs;
       });
  result

let stats t =
  let out = Counter_set.merge t.counters (Counter_set.create ()) in
  Counter_set.incr out "net.messages" ~by:(Network.messages_sent t.net) ();
  Counter_set.incr out "net.remote_messages"
    ~by:(Network.remote_messages_sent t.net) ();
  out

let packed t =
  Txn.Engine_intf.Packed
    ( (module struct
        type nonrec t = t

        let name = name
        let submit = submit
        let stats = stats
      end),
      t )

let store t ~node =
  if node < 0 || node >= t.cfg.nodes then
    invalid_arg "No_coord.store: node out of range";
  t.nodes.(node).store

let messages_sent t = Network.messages_sent t.net
