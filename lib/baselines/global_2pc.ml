module Sim = Simul.Sim
module Ivar = Simul.Ivar
module Semaphore = Simul.Semaphore
module Network = Netsim.Network
module Latency = Netsim.Latency
module Mvstore = Store.Mvstore
module Spec = Txn.Spec
module Op = Txn.Op
module Value = Txn.Value
module Result = Txn.Result
module Lockmgr = Txn.Lockmgr
module Counter_set = Stats.Counter_set

type config = {
  nodes : int;
  latency : Latency.t;
  think_time : float;
  deadlock_timeout : float;
}

let default_config ~nodes =
  {
    nodes;
    latency = Latency.Constant 0.005;
    think_time = 0.0001;
    deadlock_timeout = 1.0;
  }

type vote = Vote_commit | Vote_abort of string

type root_submit = {
  rs_submit_time : float;
  rs_result : Result.t Ivar.t;
  mutable rs_root_commit : float;
}

type msg =
  | Subtxn of {
      txn_id : int;
      label : string;
      kind : Spec.kind;
      source : int;
      parent : (int * int) option;
      tree : Spec.subtxn;
      root : root_submit option;
    }
  | Vote of {
      pending_id : int;
      reads : (string * Value.t) list;
      vote : vote;
      nodes : int list;
    }
  | Decision of { txn_id : int; commit : bool }

type pending = {
  p_id : int;
  p_txn : int;
  p_label : string;
  p_source : int;
  p_parent : (int * int) option;
  mutable p_outstanding : int;
  mutable p_local_done : bool;
  mutable p_reads : (string * Value.t) list;
  mutable p_vote : vote;
  mutable p_nodes : int list;
  mutable p_buffered : (string * Op.t) list;  (* reversed *)
  p_root : root_submit option;
}

type node = {
  id : int;
  store : Value.t Mvstore.t;
  locks : Lockmgr.t;
  local_cc : Semaphore.t;
  pendings : (int, pending) Hashtbl.t;
  mutable next_pending : int;
  awaiting : (int, int list ref) Hashtbl.t;  (* txn -> pending ids *)
  mutable paused_until : float;  (* fault injection: inbox frozen until then *)
}

type t = {
  sim : Sim.t;
  cfg : config;
  net : msg Network.t;
  faults : Fault.Injector.t;
  nodes : node array;
  counters : Counter_set.t;
}

let cstat t name = Counter_set.incr t.counters name ()
let send t ~src ~dst msg = Network.send t.net ~src ~dst msg

let combine_vote a b =
  match (a, b) with Vote_abort r, _ -> Vote_abort r | _, v -> v

(* Apply the 2PC decision at a node: materialize or discard buffered writes
   and release all the transaction's locks. *)
let apply_decision t node ~txn_id ~commit =
  ignore t;
  match Hashtbl.find_opt node.awaiting txn_id with
  | None -> ()
  | Some ids ->
      Hashtbl.remove node.awaiting txn_id;
      List.iter
        (fun pid ->
          match Hashtbl.find_opt node.pendings pid with
          | None -> ()
          | Some p ->
              Hashtbl.remove node.pendings pid;
              if commit then
                List.iter
                  (fun (key, op) ->
                    ignore
                      (Mvstore.write_upward node.store ~key ~version:0
                         ~init:Value.empty ~f:(Op.apply op ~txn:p.p_txn)))
                  (List.rev p.p_buffered))
        (List.rev !ids);
      Lockmgr.release_all node.locks ~owner:txn_id

let register_awaiting node txn_id pid =
  let ids =
    match Hashtbl.find_opt node.awaiting txn_id with
    | Some ids -> ids
    | None ->
        let ids = ref [] in
        Hashtbl.replace node.awaiting txn_id ids;
        ids
  in
  ids := pid :: !ids

let maybe_finish t node p =
  if p.p_local_done && p.p_outstanding = 0 then begin
    match p.p_parent with
    | Some (parent_node, parent_pid) ->
        (* Participant: register for the decision and vote. *)
        register_awaiting node p.p_txn p.p_id;
        send t ~src:node.id ~dst:parent_node
          (Vote
             {
               pending_id = parent_pid;
               reads = p.p_reads;
               vote = p.p_vote;
               nodes = p.p_nodes;
             })
    | None ->
        (* Root: decide and broadcast phase 2. *)
        let rs = match p.p_root with Some rs -> rs | None -> assert false in
        let commit = p.p_vote = Vote_commit in
        register_awaiting node p.p_txn p.p_id;
        apply_decision t node ~txn_id:p.p_txn ~commit;
        List.iter
          (fun n ->
            if n <> node.id then
              send t ~src:node.id ~dst:n (Decision { txn_id = p.p_txn; commit }))
          p.p_nodes;
        cstat t (if commit then "txn.committed" else "txn.aborted");
        let outcome =
          if commit then Result.Committed
          else
            Result.Aborted
              (match p.p_vote with
              | Vote_abort r -> r
              | Vote_commit -> "unknown")
        in
        let now = Sim.now t.sim in
        rs.rs_root_commit <- now;
        Ivar.fill rs.rs_result
          {
            Result.txn_id = p.p_txn;
            served_by = node.id;
            outcome;
            version = 0;
            reads = p.p_reads;
            submit_time = rs.rs_submit_time;
            root_commit_time = now;
            complete_time = now;
          }
  end

(* Strongest S/X lock needed per key, sorted to avoid trivial local cycles. *)
let lock_plan ops =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun op ->
      let key = Op.key op in
      let mode = if Op.is_write op then Lockmgr.Exclusive else Lockmgr.Shared in
      Hashtbl.replace tbl key
        (match (Hashtbl.find_opt tbl key, mode) with
        | Some Lockmgr.Exclusive, _ | _, Lockmgr.Exclusive -> Lockmgr.Exclusive
        | _ -> Lockmgr.Shared))
    ops;
  Hashtbl.fold (fun k m acc -> (k, m) :: acc) tbl [] |> List.sort compare

let exec_subtxn t node p (tree : Spec.subtxn) =
  if tree.Spec.think > 0. then Sim.sleep t.sim tree.Spec.think;
  let failure = ref None in
  List.iter
    (fun (key, mode) ->
      if !failure = None then
        match Lockmgr.acquire node.locks ~owner:p.p_txn ~key ~mode () with
        | Lockmgr.Granted -> ()
        | Lockmgr.Deadlock -> failure := Some "deadlock"
        | Lockmgr.Timeout -> failure := Some "lock-timeout"
        | Lockmgr.Cancelled -> failure := Some "cancelled")
    (lock_plan tree.Spec.ops);
  (match !failure with
  | Some reason ->
      p.p_vote <- Vote_abort reason;
      cstat t "txn.lock_failure"
  | None ->
      Semaphore.with_permit t.sim node.local_cc (fun () ->
          if t.cfg.think_time > 0. then Sim.sleep t.sim t.cfg.think_time;
          List.iter
            (fun op ->
              match op with
              | Op.Read key ->
                  let value =
                    (* A buffered write by this same transaction must be
                       visible to its own later reads. *)
                    let base =
                      match
                        Mvstore.read_visible node.store ~key ~version:0
                      with
                      | Some (_, v) -> v
                      | None -> Value.empty
                    in
                    List.fold_left
                      (fun acc (k, op) ->
                        if k = key then Op.apply op ~txn:p.p_txn acc else acc)
                      base
                      (List.rev p.p_buffered)
                  in
                  p.p_reads <- p.p_reads @ [ (key, value) ]
              | Op.Incr _ | Op.Append _ | Op.Overwrite _ ->
                  p.p_buffered <- (Op.key op, op) :: p.p_buffered)
            tree.Spec.ops);
      cstat t "subtxn.executed";
      List.iter
        (fun (child : Spec.subtxn) ->
          p.p_outstanding <- p.p_outstanding + 1;
          send t ~src:node.id ~dst:child.Spec.node
            (Subtxn
               {
                 txn_id = p.p_txn;
                 label = p.p_label;
                 kind = Spec.Commuting;
                 source = node.id;
                 parent = Some (node.id, p.p_id);
                 tree = child;
                 root = None;
               }))
        tree.Spec.children);
  p.p_local_done <- true;
  maybe_finish t node p

let handle_msg t node = function
  | Subtxn { txn_id; label; source; parent; tree; root; kind = _ } ->
      node.next_pending <- node.next_pending + 1;
      let p =
        {
          p_id = node.next_pending;
          p_txn = txn_id;
          p_label = label;
          p_source = source;
          p_parent = parent;
          p_outstanding = 0;
          p_local_done = false;
          p_reads = [];
          p_vote = Vote_commit;
          p_nodes = [ node.id ];
          p_buffered = [];
          p_root = root;
        }
      in
      Hashtbl.replace node.pendings p.p_id p;
      Sim.spawn t.sim
        ~name:(Printf.sprintf "2pc-n%d/%s#%d" node.id label p.p_id)
        (fun () -> exec_subtxn t node p tree)
  | Vote { pending_id; reads; vote; nodes } -> (
      match Hashtbl.find_opt node.pendings pending_id with
      | None ->
          invalid_arg
            (Printf.sprintf "Global_2pc: vote for unknown pending %d"
               pending_id)
      | Some p ->
          p.p_reads <- p.p_reads @ reads;
          p.p_vote <- combine_vote p.p_vote vote;
          p.p_nodes <- List.sort_uniq compare (p.p_nodes @ nodes);
          p.p_outstanding <- p.p_outstanding - 1;
          maybe_finish t node p)
  | Decision { txn_id; commit } -> apply_decision t node ~txn_id ~commit

let create ?faults sim (cfg : config) =
  if cfg.nodes <= 0 then invalid_arg "Global_2pc.create: nodes must be positive";
  let net = Network.create sim ~size:cfg.nodes ~latency:cfg.latency () in
  let faults =
    match faults with
    | Some f -> f
    | None -> Fault.Injector.create sim Fault.Plan.none
  in
  Fault.Injector.install faults net;
  let nodes =
    Array.init cfg.nodes (fun i ->
        {
          id = i;
          store = Mvstore.create ();
          locks = Lockmgr.create sim ~deadlock_timeout:cfg.deadlock_timeout ();
          local_cc = Semaphore.create 1;
          pendings = Hashtbl.create 64;
          next_pending = 0;
          awaiting = Hashtbl.create 16;
          paused_until = 0.;
        })
  in
  let t = { sim; cfg; net; faults; nodes; counters = Counter_set.create () } in
  (* 2PC deliberately has no crash recovery: the crash/restart hooks stay
     no-ops, so a crashed node just loses its traffic — that asymmetry
     against 3V's late-node recovery is what experiment E12 measures. *)
  Fault.Injector.set_node_hooks faults
    ~pause:(fun ~node ~duration:_ ~until_ ->
      if node >= 0 && node < cfg.nodes then begin
        let nd = nodes.(node) in
        nd.paused_until <- Float.max nd.paused_until until_
      end)
    ();
  Array.iter
    (fun node ->
      Sim.spawn sim ~daemon:true ~name:(Printf.sprintf "2pc-node-%d" node.id)
        (fun () ->
          let rec loop () =
            let msg = Network.recv t.net ~node:node.id in
            if Sim.now sim < node.paused_until then
              Sim.sleep sim (node.paused_until -. Sim.now sim);
            handle_msg t node msg;
            loop ()
          in
          loop ()))
    nodes;
  t

let name _ = "global-2pc"

let submit t (spec : Spec.t) =
  let result = Ivar.create () in
  let now = Sim.now t.sim in
  let rs = { rs_submit_time = now; rs_result = result; rs_root_commit = now } in
  cstat t "txn.submitted";
  let root_node = spec.Spec.root.Spec.node in
  send t ~src:root_node ~dst:root_node
    (Subtxn
       {
         txn_id = spec.Spec.id;
         label = spec.Spec.label;
         kind = spec.Spec.kind;
         source = root_node;
         parent = None;
         tree = spec.Spec.root;
         root = Some rs;
       });
  result

let stats t =
  let out = Counter_set.merge t.counters (Counter_set.create ()) in
  Counter_set.incr out "net.messages" ~by:(Network.messages_sent t.net) ();
  Counter_set.incr out "net.remote_messages"
    ~by:(Network.remote_messages_sent t.net) ();
  Counter_set.merge out (Fault.Injector.stats t.faults)

let packed t =
  Txn.Engine_intf.Packed
    ( (module struct
        type nonrec t = t

        let name = name
        let submit = submit
        let stats = stats
      end),
      t )

let store t ~node =
  if node < 0 || node >= t.cfg.nodes then
    invalid_arg "Global_2pc.store: node out of range";
  t.nodes.(node).store

let inject_pause t ~node ~at ~duration =
  if node < 0 || node >= t.cfg.nodes then
    invalid_arg "Global_2pc.inject_pause: node out of range";
  Fault.Injector.pause t.faults ~node ~at ~duration

(* This baseline has no separate coordinator endpoint: every transaction's
   root node coordinates its own 2PC. The closest comparable fault is
   crashing node 0, the conventional coordination site — there is no WAL
   and no recovery protocol here, which is exactly the comparison point. *)
let inject_coord_crash t ~at ~restart =
  Fault.Injector.crash t.faults ~node:0 ~at ~restart

let messages_sent t = Network.messages_sent t.net
