(** Intra-procedural sequencing/dominance analysis over the parsetree.

    Two queries power the ordering rules (R4/R8/R9):

    - {!undominated} — "did a {e dominator} application definitely execute
      before this target, on every path from the enclosing top-level
      binding's entry?" Sequences and [let]s thread the state forward;
      [if]/[match] arms AND-join; a [try] body or loop body establishes
      nothing for the code after it. Closures are analyzed with the state
      at their definition point (sound: a dominator that ran before the
      closure was built ran before any call), and a call to a locally
      bound function whose body {e contains} a dominator application
      counts as a dominator event ("may" semantics — see DESIGN.md §7 for
      this and the other documented blind spots).

    - {!unguarded} — "is this target lexically inside a region controlled
      by a {e guard}?": the then-branch of an [if] whose condition
      satisfies the predicate, or a match case whose [when] clause does.

    Both queries are purely syntactic and per-top-level-binding. *)

(** One unsatisfied target: where, and the description the target
    predicate returned. *)
type finding = { loc : Location.t; what : string }

(** [Longident] rendered with ["."] separators, e.g. ["Coord_log.append"]
    — the spelling rule predicates match against. *)
val lid_str : Longident.t -> string

(** [undominated ~dom ~target str]: every application in [str] that
    [target] names (the predicate receives the whole [Pexp_apply]
    expression) but that no [dom]-satisfying application (the predicate
    receives the function position) dominates, in source order. *)
val undominated :
  dom:(Parsetree.expression -> bool) ->
  target:(Parsetree.expression -> string option) ->
  Parsetree.structure ->
  finding list

(** [unguarded ~guard ~target str]: every expression in [str] that
    [target] names but that sits in no region controlled by a
    [guard]-satisfying condition or [when] clause, in source order. *)
val unguarded :
  guard:(Parsetree.expression -> bool) ->
  target:(Parsetree.expression -> string option) ->
  Parsetree.structure ->
  finding list
