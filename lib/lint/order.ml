(* Intra-procedural sequencing analysis over the parsetree.

   Two queries share one walker skeleton:

   - {!undominated}: "has a dominator application definitely executed
     before this point, on every path from the binding's entry?" State is
     a single boolean threaded forward through sequences and lets, AND-
     joined across if/match arms. Closures are analyzed with the state at
     their definition point: a dominator that executed before the closure
     was built has executed before any call of it, so this is sound for
     the resend-closure idiom (build the retransmit thunk after the WAL
     append). Entering a closure never changes the outer state — defining
     a function runs nothing.

   - {!unguarded}: "is this point lexically inside a region controlled by
     a guard?" — the then-branch of an [if] whose condition satisfies the
     guard predicate, or a match case whose [when] clause does. This is
     the R4/R9 notion of protection: the dynamic check encloses the
     expression in the source, so the guarded code cannot run without the
     check having just passed.

   Known blind spots, by design (documented in DESIGN.md §7):

   - A call to a locally [let]-bound function whose body *contains* a
     dominator application counts as a dominator event even if the body
     only applies it conditionally ("may" semantics). The coordinator's
     [enter phase] helper skips its WAL append exactly when resuming into
     the phase whose record was just recovered — the invariant holds, but
     only a cross-call path analysis could prove it. Resolution is by
     name, transitively (a helper calling the helper also counts).
   - Dominators inside tuple/record/array components are not propagated
     (evaluation order there is unspecified); a dominator must appear in
     sequence, let, or application position to count.
   - [while]/[for] bodies may run zero times, and a [try] body may be cut
     anywhere, so neither establishes domination for the code after it.
   - Both queries are per-top-level-binding: ordering across bindings
     (e.g. module initialization effects) is out of scope. *)

type finding = { loc : Location.t; what : string }

let lid_str lid = String.concat "." (Longident.flatten lid)

(* ------------------------------------------- local dominator functions *)

(* Fixpoint over the structure: the set of simple value names bound to a
   function whose body contains an application of the dominator (or of a
   name already in the set). One pass collects the (name, body) pairs;
   iteration closes the set. *)

let local_fn_bindings (str : Parsetree.structure) =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          (match
             (vb.Parsetree.pvb_pat.Parsetree.ppat_desc, vb.Parsetree.pvb_expr)
           with
          | Parsetree.Ppat_var { txt; _ }, body -> (
              match body.Parsetree.pexp_desc with
              | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ ->
                  acc := (txt, body) :: !acc
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it str;
  !acc

let contains_application ~is_dom ~dom_names (e : Parsetree.expression) =
  let hit = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_apply (fn, _) -> (
              if is_dom fn then hit := true
              else
                match fn.Parsetree.pexp_desc with
                | Parsetree.Pexp_ident { txt = Longident.Lident n; _ } ->
                    if List.mem n dom_names then hit := true
                | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !hit

let dominator_names ~is_dom (str : Parsetree.structure) =
  let bindings = local_fn_bindings str in
  let rec close names =
    let names' =
      List.fold_left
        (fun acc (n, body) ->
          if List.mem n acc then acc
          else if contains_application ~is_dom ~dom_names:acc body then
            n :: acc
          else acc)
        names bindings
    in
    if List.length names' = List.length names then names else close names'
  in
  close []

(* ------------------------------------------------------------ dominance *)

let undominated ~dom ~target (str : Parsetree.structure) =
  let findings = ref [] in
  let dom_names = dominator_names ~is_dom:dom str in
  let is_dom_fn (fn : Parsetree.expression) =
    dom fn
    ||
    match fn.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt = Longident.Lident n; _ } ->
        List.mem n dom_names
    | _ -> false
  in
  (* [walk s e] analyzes [e] with dominator state [s] and returns the
     state after [e] completes normally. Recording happens at target
     sites; the fallback analyzes children with [s] and keeps [s]. *)
  let rec walk s (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_sequence (a, b) -> walk (walk s a) b
    | Parsetree.Pexp_let (_, vbs, body) ->
        let s' =
          List.fold_left
            (fun s vb -> walk s vb.Parsetree.pvb_expr)
            s vbs
        in
        walk s' body
    | Parsetree.Pexp_ifthenelse (cond, then_, else_) ->
        let sc = walk s cond in
        let st = walk sc then_ in
        let se = match else_ with Some e -> walk sc e | None -> sc in
        st && se
    | Parsetree.Pexp_match (scrut, cases) ->
        let s0 = walk s scrut in
        List.fold_left
          (fun acc (c : Parsetree.case) ->
            (match c.Parsetree.pc_guard with
            | Some g -> ignore (walk s0 g)
            | None -> ());
            let sc = walk s0 c.Parsetree.pc_rhs in
            acc && sc)
          true cases
    | Parsetree.Pexp_try (body, handlers) ->
        (* An exception can cut the body anywhere, so a handler starts
           from the entry state; the try as a whole dominates only if
           every way out does. *)
        let sb = walk s body in
        List.fold_left
          (fun acc (c : Parsetree.case) ->
            (match c.Parsetree.pc_guard with
            | Some g -> ignore (walk s g)
            | None -> ());
            acc && walk s c.Parsetree.pc_rhs)
          sb handlers
    | Parsetree.Pexp_fun (_, default, _, body) ->
        (* Closure: analyze with the definition-point state, report inside,
           but defining it runs nothing. *)
        Option.iter (fun d -> ignore (walk s d)) default;
        ignore (walk s body);
        s
    | Parsetree.Pexp_function cases ->
        List.iter
          (fun (c : Parsetree.case) ->
            (match c.Parsetree.pc_guard with
            | Some g -> ignore (walk s g)
            | None -> ());
            ignore (walk s c.Parsetree.pc_rhs))
          cases;
        s
    | Parsetree.Pexp_while (cond, body) ->
        let sc = walk s cond in
        ignore (walk sc body);
        sc
    | Parsetree.Pexp_for (_, lo, hi, _, body) ->
        let s' = walk (walk s lo) hi in
        ignore (walk s' body);
        s'
    | Parsetree.Pexp_apply (fn, args) ->
        let s' =
          List.fold_left (fun s (_, arg) -> walk s arg) (walk s fn) args
        in
        (match target e with
        | Some what when not s' ->
            findings := { loc = e.Parsetree.pexp_loc; what } :: !findings
        | _ -> ());
        if is_dom_fn fn then true else s'
    | Parsetree.Pexp_constraint (e', _) | Parsetree.Pexp_coerce (e', _, _) ->
        walk s e'
    | Parsetree.Pexp_open (_, e') | Parsetree.Pexp_letexception (_, e') ->
        walk s e'
    | Parsetree.Pexp_letmodule (_, _, e') -> walk s e'
    | _ ->
        (* Generic fallback: visit immediate subexpressions with [s]; any
           domination they establish stays local (conservative). *)
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ e' -> ignore (walk s e'));
          }
        in
        Ast_iterator.default_iterator.expr it e;
        s
  in
  let item (si : Parsetree.structure_item) =
    match si.Parsetree.pstr_desc with
    | Parsetree.Pstr_value (_, vbs) ->
        List.iter (fun vb -> ignore (walk false vb.Parsetree.pvb_expr)) vbs
    | Parsetree.Pstr_eval (e, _) -> ignore (walk false e)
    | _ ->
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ e -> ignore (walk false e));
          }
        in
        Ast_iterator.default_iterator.structure_item it si
  in
  List.iter item str;
  List.rev !findings

(* ------------------------------------------------------------- guarding *)

let unguarded ~guard ~target (str : Parsetree.structure) =
  let findings = ref [] in
  (* [g] is "some enclosing guard has tested true on this lexical path".
     Unlike domination it survives into closures unchanged: the guarded
     region lexically contains the closure body. *)
  let rec walk g (e : Parsetree.expression) =
    (match target e with
    | Some what when not g ->
        findings := { loc = e.Parsetree.pexp_loc; what } :: !findings
    | _ -> ());
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ifthenelse (cond, then_, else_) when guard cond ->
        walk g cond;
        walk true then_;
        Option.iter (walk g) else_
    | Parsetree.Pexp_match (scrut, cases) | Parsetree.Pexp_try (scrut, cases)
      ->
        walk g scrut;
        List.iter
          (fun (c : Parsetree.case) ->
            match c.Parsetree.pc_guard with
            | Some w when guard w ->
                walk g w;
                walk true c.Parsetree.pc_rhs
            | other ->
                Option.iter (walk g) other;
                walk g c.Parsetree.pc_rhs)
          cases
    | _ ->
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ e' -> walk g e');
          }
        in
        Ast_iterator.default_iterator.expr it e
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ e -> walk false e);
    }
  in
  it.structure it str;
  List.rev !findings
