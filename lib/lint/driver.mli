(** Walks the source tree, parses every [.ml]/[.mli] with compiler-libs,
    runs the {!Rules} catalog, and applies inline waivers plus the
    [lint.config] allowlist.

    Waiver syntax: an inline comment [(* lint: <tag> reason... *)] with
    [<tag>] one of [nondet-ok] (R1), [hash-order-ok] (R2), [compare-ok]
    (R3), [trace-ok] (R4), [doc-ok] (R5). A waiver suppresses findings of
    its rule from its own line through two lines past the comment's closing
    delimiter. *)

(** [(tag, rule-id)] for every recognized waiver tag. *)
val waiver_tags : (string * string) list

(** The directories scanned under the root, in order: [lib], [bin],
    [bench]. *)
val source_dirs : string list

(** [lint_source ~config ~filename source] lints one file's content
    ([filename] decides implementation vs interface and path-scoped rules)
    and returns [(kept_findings, waived, allowlisted)]. Unparseable input
    yields a single [syntax] finding. *)
val lint_source :
  ?config:Config.t ->
  filename:string ->
  string ->
  Report.finding list * int * int

(** {!lint_source} returning only the kept findings, sorted — the fixture
    entry point used by the tests. *)
val lint_string :
  ?config:Config.t -> filename:string -> string -> Report.finding list

(** Repo-relative paths of every [.ml]/[.mli] under {!source_dirs} of
    [root], sorted; [_build] and dot-directories are skipped. *)
val walk : string -> string list

(** Lint the whole tree under [root]. [config_path] (default
    ["lint.config"], resolved against [root] when relative) supplies the
    allowlist; [rule] restricts the report to one rule id. *)
val run : ?config_path:string -> ?rule:string -> root:string -> unit -> Report.t
