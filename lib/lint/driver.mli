(** Walks the source tree, parses every [.ml]/[.mli] with compiler-libs
    (once per file — the per-file rules and the cross-file {!Flowgraph}
    pass share the tree), runs the {!Rules} catalog, and applies inline
    waivers plus the [lint.config] allowlist.

    Waiver syntax: an inline comment [(* lint: <tag> reason... *)] with
    [<tag>] one of [nondet-ok] (R1), [hash-order-ok] (R2), [compare-ok]
    (R3), [trace-ok] (R4), [doc-ok] (R5), [oracle-ok] (R6), [flow-ok]
    (R7), [order-ok] (R8), [guard-ok] (R9), [unsafe-ok] (R10). A waiver
    suppresses findings of its rule from its own line through two lines
    past the comment's closing delimiter. Markers are recognized only
    inside comments — a ["lint:"] occurring in a string literal arms
    nothing. *)

(** [(tag, rule-id)] for every recognized waiver tag. *)
val waiver_tags : (string * string) list

(** The directories scanned under the root, in order: [lib], [bin],
    [bench]. *)
val source_dirs : string list

(** [lint_source ~config ~filename source] lints one file's content
    ([filename] decides implementation vs interface and path-scoped rules)
    and returns [(kept_findings, waived, allowlisted)]. Unparseable input
    yields a single [syntax] finding. The flowgraph pass sees only this
    one file. *)
val lint_source :
  ?config:Config.t ->
  filename:string ->
  string ->
  Report.finding list * int * int

(** {!lint_source} returning only the kept findings, sorted — the fixture
    entry point used by the tests. *)
val lint_string :
  ?config:Config.t -> filename:string -> string -> Report.finding list

(** Lint a set of in-memory files as one run — the cross-file R7 pass
    joins send and handler facts across all of them. No missing-[.mli]
    check (fixture sets are not full library trees). *)
val run_sources : ?config:Config.t -> (string * string) list -> Report.t

(** Repo-relative paths of every [.ml]/[.mli] under {!source_dirs} of
    [root], sorted; [_build] and dot-directories are skipped. *)
val walk : string -> string list

(** Lint the whole tree under [root]. [config_path] (default
    ["lint.config"], resolved against [root] when relative) supplies the
    allowlist; [rule] restricts the report to one rule id. *)
val run : ?config_path:string -> ?rule:string -> root:string -> unit -> Report.t
