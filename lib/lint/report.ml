type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

type t = {
  findings : finding list;
  files_scanned : int;
  waived : int;
  allowlisted : int;
}

let schema_version = "lint/v2"

let rule_ids =
  [ "R1"; "R2"; "R3"; "R4"; "R5"; "R6"; "R7"; "R8"; "R9"; "R10"; "syntax" ]

let compare_finding a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.msg b.msg

let make ~findings ~files_scanned ~waived ~allowlisted =
  { findings = List.sort compare_finding findings; files_scanned; waived;
    allowlisted }

let total t = List.length t.findings

let counts t =
  let count r = List.length (List.filter (fun f -> f.rule = r) t.findings) in
  let named = List.map (fun r -> (r, count r)) rule_ids in
  (* Any finding carrying a rule id outside the catalog still must be
     counted, or the per-rule counts would not sum to [total]. *)
  let extra =
    List.filter (fun f -> not (List.mem f.rule rule_ids)) t.findings
  in
  let extra_ids = List.sort_uniq String.compare (List.map (fun f -> f.rule) extra) in
  named @ List.map (fun r -> (r, count r)) extra_ids

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d %s %s" f.file f.line f.col f.rule f.msg

let render_human ppf t =
  List.iter (fun f -> Format.fprintf ppf "%a@." pp_finding f) t.findings;
  Format.fprintf ppf
    "lint: %d finding%s in %d files (%d waived, %d allowlisted)@." (total t)
    (if total t = 1 then "" else "s")
    t.files_scanned t.waived t.allowlisted

(* ----------------------------------------------------------------- JSON *)

(* Minimal JSON value type with a printer and a parser, covering exactly
   what the lint/v1 report needs (null/bool/int/string/list/object). The
   parser exists so tests can assert the report round-trips. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape_string s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec print_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          print_json buf v)
        l;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          print_json buf (String k);
          Buffer.add_char buf ':';
          print_json buf v)
        kvs;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 1024 in
  print_json buf j;
  Buffer.contents buf

exception Parse_error of string

let json_of_string s =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > len then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code = int_of_string ("0x" ^ hex) in
              (* Report strings only escape control chars, which fit a
                 single byte. *)
              Buffer.add_char buf (Char.chr (code land 0xff));
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec items acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          items []
    | Some ('-' | '0' .. '9') ->
        let start = !pos in
        if peek () = Some '-' then advance ();
        let rec digits () =
          match peek () with
          | Some '0' .. '9' ->
              advance ();
              digits ()
          | _ -> ()
        in
        digits ();
        Int (int_of_string (String.sub s start (!pos - start)))
    | Some c -> fail (Printf.sprintf "unexpected %c" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let to_json t =
  let finding_obj f =
    Obj
      [
        ("file", String f.file);
        ("line", Int f.line);
        ("col", Int f.col);
        ("rule", String f.rule);
        ("msg", String f.msg);
      ]
  in
  json_to_string
    (Obj
       [
         ("schema", String schema_version);
         ("files_scanned", Int t.files_scanned);
         ("total", Int (total t));
         ("waived", Int t.waived);
         ("allowlisted", Int t.allowlisted);
         ("counts", Obj (List.map (fun (r, n) -> (r, Int n)) (counts t)));
         ("findings", List (List.map finding_obj t.findings));
       ])

(* Reading a report back. Shape errors reuse [Parse_error] so callers have
   one failure mode for "this is not a lint report". The [total]/[counts]
   fields are derived data and are recomputed by [make], not trusted. *)

let field k = function
  | Obj kvs -> (
      match List.assoc_opt k kvs with
      | Some v -> v
      | None -> raise (Parse_error (Printf.sprintf "missing field %S" k)))
  | _ -> raise (Parse_error "expected an object")

let as_int k = function
  | Int i -> i
  | _ -> raise (Parse_error (Printf.sprintf "field %S: expected an int" k))

let as_string k = function
  | String s -> s
  | _ -> raise (Parse_error (Printf.sprintf "field %S: expected a string" k))

let finding_of_json j =
  {
    file = as_string "file" (field "file" j);
    line = as_int "line" (field "line" j);
    col = as_int "col" (field "col" j);
    rule = as_string "rule" (field "rule" j);
    msg = as_string "msg" (field "msg" j);
  }

let of_json s =
  let j = json_of_string s in
  (match field "schema" j with
  | String ("lint/v1" | "lint/v2") -> ()
  | String other ->
      raise (Parse_error (Printf.sprintf "unknown report schema %S" other))
  | _ -> raise (Parse_error "field \"schema\": expected a string"));
  let findings =
    match field "findings" j with
    | List l -> List.map finding_of_json l
    | _ -> raise (Parse_error "field \"findings\": expected a list")
  in
  make ~findings
    ~files_scanned:(as_int "files_scanned" (field "files_scanned" j))
    ~waived:(as_int "waived" (field "waived" j))
    ~allowlisted:(as_int "allowlisted" (field "allowlisted" j))

(* ------------------------------------------------------------- baseline *)

(* The ratchet: a finding is "new" when the baseline holds no unconsumed
   finding with the same (file, rule, msg). Lines are deliberately not part
   of the key — editing an unrelated part of a file shifts every finding
   below the edit, and the gate must not fire on pure line drift. Matching
   is per-occurrence (a multiset), so adding a second copy of a baselined
   finding still counts as new. *)
let diff ~baseline current =
  let key (f : finding) = (f.file, f.rule, f.msg) in
  let remaining = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let k = key f in
      let n = match Hashtbl.find_opt remaining k with Some n -> n | None -> 0 in
      Hashtbl.replace remaining k (n + 1))
    baseline;
  List.filter
    (fun f ->
      let k = key f in
      match Hashtbl.find_opt remaining k with
      | Some n when n > 0 ->
          Hashtbl.replace remaining k (n - 1);
          false
      | _ -> true)
    current
