(** The determinism & protocol-hygiene rule catalog (R1–R10).

    Rules are purely syntactic passes over the compiler-libs parsetree plus
    the raw source text — no typing. R3 in particular is an
    annotation-driven heuristic: it sees a denied type only where a type
    constraint in the argument names it.

    {ul
    {- R1 — banned nondeterminism sources: the global RNG, wall-clock
       reads, [Hashtbl.hash], [exit].}
    {- R2 — [Hashtbl.iter]/[Hashtbl.fold] with no dominating sort in the
       same top-level binding: the enumeration order is hash-layout
       dependent.}
    {- R3 — polymorphic [compare]/[=]/[min]/[max] applied at a deny-listed
       type (one containing functions or mutable state).}
    {- R4 — trace emission ([tr] / [Trace.emit]) on a [lib/core],
       [lib/net], [lib/repl] or [lib/shard] path with no controlling
       [tracing] guard (checked on the {!Order} guard-dominance engine).}
    {- R5 — interface hygiene: every [lib/**] module has an [.mli], every
       exported value a doc comment, and engine interfaces
       [include Engine_intf.S].}
    {- R6 — liveness-oracle hygiene: [Injector.down]/[coord_down] (the
       fault plan's ground truth) consulted from a [lib/core], [lib/repl]
       or [lib/shard] path; protocol code must decide liveness from the
       failure detector.}
    {- R7 — handler totality (the {!Flowgraph} pass, run by the driver
       across files): sent protocol constructors without a handler branch,
       and dispatch catch-alls swallowing protocol messages.}
    {- R8 — log-before-send: a send of a [phase-msg] constructor not
       dominated by a [Coord_log.append] on every path from its binding's
       entry.}
    {- R9 — guard dominance: [Mvstore.gc] on a [lib/**] path outside a
       region controlled by a [gc_floor] comparison.}
    {- R10 — unsafe-access confinement: [Array]/[String]/[Bytes]
       [unsafe_get]/[unsafe_set] and [Obj.magic] anywhere not allowlisted
       in [lint.config].}} *)

(** Mutable per-file rule state: findings accumulate as the walks run. *)
type ctx = {
  file : string;  (** repo-relative, '/'-separated — drives path scoping *)
  config : Config.t;
  mutable findings : Report.finding list;
}

(** Fresh context for one file; [config] defaults to {!Config.empty}. *)
val make_ctx : ?config:Config.t -> file:string -> unit -> ctx

(** [(id, one-line description)] for every rule, in catalog order. *)
val all : (string * string) list

(** Run the per-file implementation rules — R1–R4, R6, R8–R10 — over a
    parsetree. R7 is cross-file and lives in {!Flowgraph}, driven by
    {!Driver}. *)
val check_structure : ctx -> Parsetree.structure -> unit

(** Run R5's doc-comment and engine-interface checks over an interface's
    parsetree. *)
val check_interface : ctx -> Parsetree.signature -> unit

(** The R5 finding for a [lib/**] module with no [.mli] at all. *)
val missing_mli : file:string -> Report.finding
