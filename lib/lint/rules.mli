(** The determinism & protocol-hygiene rule catalog (R1–R6).

    Rules are purely syntactic passes over the compiler-libs parsetree plus
    the raw source text — no typing. R3 in particular is an
    annotation-driven heuristic: it sees a denied type only where a type
    constraint in the argument names it.

    {ul
    {- R1 — banned nondeterminism sources: the global RNG, wall-clock
       reads, [Hashtbl.hash], [exit].}
    {- R2 — [Hashtbl.iter]/[Hashtbl.fold] with no dominating sort in the
       same top-level binding: the enumeration order is hash-layout
       dependent.}
    {- R3 — polymorphic [compare]/[=]/[min]/[max] applied at a deny-listed
       type (one containing functions or mutable state).}
    {- R4 — trace emission ([tr] / [Trace.emit]) on a [lib/core] or
       [lib/net] path not guarded by [if tracing ...].}
    {- R5 — interface hygiene: every [lib/**] module has an [.mli], every
       exported value a doc comment, and engine interfaces
       [include Engine_intf.S].}
    {- R6 — liveness-oracle hygiene: [Injector.down]/[coord_down] (the
       fault plan's ground truth) consulted from a [lib/core] or
       [lib/repl] path; protocol code must decide liveness from the
       failure detector.}} *)

(** Mutable per-file rule state: findings accumulate as the walks run. *)
type ctx = {
  file : string;  (** repo-relative, '/'-separated — drives path scoping *)
  config : Config.t;
  mutable findings : Report.finding list;
}

(** Fresh context for one file; [config] defaults to {!Config.empty}. *)
val make_ctx : ?config:Config.t -> file:string -> unit -> ctx

(** [(id, one-line description)] for every rule, in catalog order. *)
val all : (string * string) list

(** Run R1–R4 and R6 over an implementation's parsetree. *)
val check_structure : ctx -> Parsetree.structure -> unit

(** Run R5's doc-comment and engine-interface checks over an interface's
    parsetree. *)
val check_interface : ctx -> Parsetree.signature -> unit

(** The R5 finding for a [lib/**] module with no [.mli] at all. *)
val missing_mli : file:string -> Report.finding
