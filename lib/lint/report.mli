(** Lint findings and the two report renderings (human and [lint/v1] JSON).

    A {!finding} is one diagnostic anchored at a source position; a {!t}
    aggregates the findings of a whole run together with the waiver and
    allowlist accounting. The JSON side ships its own minimal value type,
    printer and parser so tests can assert the report round-trips without
    external dependencies. *)

type finding = {
  file : string;  (** repo-relative path, ['/']-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as in compiler diagnostics *)
  rule : string;  (** rule id, e.g. ["R2"], or ["syntax"] *)
  msg : string;
}

type t = {
  findings : finding list;  (** sorted by (file, line, col, rule) *)
  files_scanned : int;
  waived : int;  (** findings suppressed by an inline [(* lint: ... *)] *)
  allowlisted : int;  (** findings suppressed by a [lint.config] allow *)
}

(** The rule ids every report carries counts for, in catalog order. *)
val rule_ids : string list

(** Total order on findings: file, then line, then column, then rule. *)
val compare_finding : finding -> finding -> int

(** Build a report; findings are sorted into the canonical order. *)
val make :
  findings:finding list ->
  files_scanned:int ->
  waived:int ->
  allowlisted:int ->
  t

(** Number of (non-suppressed) findings. *)
val total : t -> int

(** Per-rule finding counts. Every id in {!rule_ids} is present (possibly
    0), plus any id that appears in the findings; the counts sum to
    {!total}. *)
val counts : t -> (string * int) list

(** [file:line:col rule-id message] — one line, no trailing newline. *)
val pp_finding : Format.formatter -> finding -> unit

(** All findings, one per line, followed by a summary line. *)
val render_human : Format.formatter -> t -> unit

(** The [lint/v1] JSON document for [t]. *)
val to_json : t -> string

(** Minimal JSON values — exactly the subset the report emits. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of json list
  | Obj of (string * json) list

(** Serialize [json] (no insignificant whitespace). *)
val json_to_string : json -> string

exception Parse_error of string

(** Parse a JSON document produced by {!json_to_string} / {!to_json}.
    @raise Parse_error on malformed input. *)
val json_of_string : string -> json
