(** Lint findings and the two report renderings (human and [lint/v2] JSON).

    A {!finding} is one diagnostic anchored at a source position; a {!t}
    aggregates the findings of a whole run together with the waiver and
    allowlist accounting. The JSON side ships its own minimal value type,
    printer and parser so the report both round-trips ({!of_json}) and can
    serve as the ratchet baseline ({!diff}) without external
    dependencies. *)

type finding = {
  file : string;  (** repo-relative path, ['/']-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as in compiler diagnostics *)
  rule : string;  (** rule id, e.g. ["R2"], or ["syntax"] *)
  msg : string;
}

type t = {
  findings : finding list;  (** sorted by (file, line, col, rule, msg) *)
  files_scanned : int;
  waived : int;  (** findings suppressed by an inline [(* lint: ... *)] *)
  allowlisted : int;  (** findings suppressed by a [lint.config] allow *)
}

(** The schema tag {!to_json} stamps on every report: ["lint/v2"]. *)
val schema_version : string

(** The rule ids every report carries counts for, in catalog order. *)
val rule_ids : string list

(** Total order on findings: file, line, column, rule, then message. *)
val compare_finding : finding -> finding -> int

(** Build a report; findings are sorted into the canonical order. *)
val make :
  findings:finding list ->
  files_scanned:int ->
  waived:int ->
  allowlisted:int ->
  t

(** Number of (non-suppressed) findings. *)
val total : t -> int

(** Per-rule finding counts. Every id in {!rule_ids} is present (possibly
    0), plus any id that appears in the findings; the counts sum to
    {!total}. *)
val counts : t -> (string * int) list

(** [file:line:col rule-id message] — one line, no trailing newline. *)
val pp_finding : Format.formatter -> finding -> unit

(** All findings, one per line, followed by a summary line. *)
val render_human : Format.formatter -> t -> unit

(** The {!schema_version} JSON document for [t]. *)
val to_json : t -> string

(** Parse a report document back into a {!t}. Accepts the current
    ["lint/v2"] schema and the legacy ["lint/v1"] (same field layout);
    derived fields ([total], [counts]) are recomputed, not trusted.
    @raise Parse_error on malformed JSON or a report of the wrong shape. *)
val of_json : string -> t

(** [diff ~baseline current] is the ratchet: the findings of [current]
    with no unconsumed counterpart in [baseline], matching per occurrence
    on [(file, rule, msg)]. Lines are not part of the key, so pure line
    drift (an edit above an old finding) never makes it "new". *)
val diff : baseline:finding list -> finding list -> finding list

(** Minimal JSON values — exactly the subset the report emits. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of json list
  | Obj of (string * json) list

(** Serialize [json] (no insignificant whitespace). *)
val json_to_string : json -> string

exception Parse_error of string

(** Parse a JSON document produced by {!json_to_string} / {!to_json}.
    @raise Parse_error on malformed input. *)
val json_of_string : string -> json
