let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --------------------------------------------------------------- waivers *)

let waiver_tags =
  [
    ("nondet-ok", "R1");
    ("hash-order-ok", "R2");
    ("compare-ok", "R3");
    ("trace-ok", "R4");
    ("doc-ok", "R5");
    ("oracle-ok", "R6");
    ("flow-ok", "R7");
    ("order-ok", "R8");
    ("guard-ok", "R9");
    ("unsafe-ok", "R10");
  ]

(* Byte offsets at which each line starts; [line_of] is then a binary
   search instead of the per-marker O(n) rescan the first version did. *)
let line_starts source =
  let starts = ref [ 0 ] in
  String.iteri
    (fun i c -> if c = '\n' then starts := (i + 1) :: !starts)
    source;
  Array.of_list (List.rev !starts)

let line_of starts pos =
  let lo = ref 0 and hi = ref (Array.length starts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if starts.(mid) <= pos then lo := mid else hi := mid - 1
  done;
  !lo + 1

(* A waiver is a comment of the form [(* lint: <tag> reason... *)]. It
   suppresses findings of the tagged rule from the marker's line through
   two lines past the comment's closing delimiter, so it can sit at the
   end of the offending line, just above a multi-line expression, or carry
   a multi-line justification.

   The scan is a small lexer, not a substring search: markers are only
   recognized inside comments, so ["lint: trace-ok"] inside a string
   literal (e.g. a test fixture or a help text) arms nothing. It tracks
   nested [(* *)] comments, double-quoted strings with escapes (both in
   code and inside comments, where OCaml's lexer also skips them),
   [{id|...|id}] quoted strings, and enough of char-literal syntax to keep
   ['"'] from desynchronizing the string tracking. *)
let waivers source =
  let len = String.length source in
  let starts = line_starts source in
  let out = ref [] in
  (* Markers seen inside the currently open outermost comment. *)
  let pending = ref [] in
  let tag_at after =
    let rest = String.trim (String.sub source after (min 80 (len - after))) in
    match String.index_opt rest ' ' with
    | Some j -> String.sub rest 0 j
    | None -> (
        match String.index_opt rest '*' with
        | Some j -> String.trim (String.sub rest 0 j)
        | None -> rest)
  in
  let flush_pending close =
    List.iter
      (fun at ->
        match List.assoc_opt (tag_at (at + 5)) waiver_tags with
        | Some rule -> out := (rule, line_of starts at, line_of starts close + 2) :: !out
        | None -> ())
      !pending;
    pending := []
  in
  (* Skip a double-quoted string starting at [i] (at the opening quote);
     returns the offset just past the closing quote. *)
  let skip_string i =
    let j = ref (i + 1) in
    let fin = ref false in
    while (not !fin) && !j < len do
      (match source.[!j] with
      | '\\' -> incr j
      | '"' -> fin := true
      | _ -> ());
      incr j
    done;
    !j
  in
  (* Skip a quoted-string literal [{id|...|id}] if one starts at [i];
     returns [None] when [i] is a plain brace. *)
  let skip_quoted i =
    let j = ref (i + 1) in
    while
      !j < len
      && (match source.[!j] with 'a' .. 'z' | '_' -> true | _ -> false)
    do
      incr j
    done;
    if !j < len && source.[!j] = '|' then begin
      let id = String.sub source (i + 1) (!j - i - 1) in
      let closing = "|" ^ id ^ "}" in
      let clen = String.length closing in
      let k = ref (!j + 1) in
      let fin = ref None in
      while !fin = None && !k + clen <= len do
        if String.sub source !k clen = closing then fin := Some (!k + clen)
        else incr k
      done;
      match !fin with Some e -> Some e | None -> Some len
    end
    else None
  in
  let i = ref 0 in
  let depth = ref 0 in
  while !i < len do
    let c = source.[!i] in
    if !depth > 0 then begin
      (* Inside a comment: watch for nesting, closing, strings, markers. *)
      if c = '(' && !i + 1 < len && source.[!i + 1] = '*' then begin
        incr depth;
        i := !i + 2
      end
      else if c = '*' && !i + 1 < len && source.[!i + 1] = ')' then begin
        decr depth;
        if !depth = 0 then flush_pending !i;
        i := !i + 2
      end
      else if c = '"' then i := skip_string !i
      else if
        c = 'l'
        && !i + 5 <= len
        && String.sub source !i 5 = "lint:"
      then begin
        pending := !i :: !pending;
        i := !i + 5
      end
      else incr i
    end
    else if c = '(' && !i + 1 < len && source.[!i + 1] = '*' then begin
      depth := 1;
      i := !i + 2
    end
    else if c = '"' then i := skip_string !i
    else if c = '{' then
      match skip_quoted !i with Some e -> i := e | None -> incr i
    else if c = '\'' then begin
      (* ['x'], ['\n'], ['\123'] are char literals; anything else (a type
         variable, a prime in an identifier) is just an apostrophe. *)
      if !i + 1 < len && source.[!i + 1] = '\\' then begin
        let j = ref (!i + 2) in
        while !j < len && source.[!j] <> '\'' && !j - !i < 6 do
          incr j
        done;
        i := if !j < len && source.[!j] = '\'' then !j + 1 else !i + 1
      end
      else if !i + 2 < len && source.[!i + 2] = '\'' then i := !i + 3
      else incr i
    end
    else incr i
  done;
  (* An unterminated comment still waives through end-of-file. *)
  if !pending <> [] then flush_pending (len - 1);
  !out

let waived_by ws (f : Report.finding) =
  List.exists
    (fun (rule, first, last) ->
      rule = f.Report.rule && f.Report.line >= first && f.Report.line <= last)
    ws

(* --------------------------------------------------------------- parsing *)

(* One file, parsed once: the per-file rules and the cross-file flowgraph
   pass share the tree. *)
type parsed = {
  p_file : string;
  p_source : string;
  p_impl : Parsetree.structure option;
  p_intf : Parsetree.signature option;
  p_syntax : Report.finding option;
}

let parse_one ~filename source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf filename;
  let fail exn =
    let msg =
      match exn with
      | Syntaxerr.Error _ -> "syntax error"
      | exn -> Printexc.to_string exn
    in
    {
      p_file = filename;
      p_source = source;
      p_impl = None;
      p_intf = None;
      p_syntax =
        Some { Report.file = filename; line = 1; col = 0; rule = "syntax"; msg };
    }
  in
  if Filename.check_suffix filename ".mli" then
    try
      {
        p_file = filename;
        p_source = source;
        p_impl = None;
        p_intf = Some (Parse.interface lexbuf);
        p_syntax = None;
      }
    with exn -> fail exn
  else
    try
      {
        p_file = filename;
        p_source = source;
        p_impl = Some (Parse.implementation lexbuf);
        p_intf = None;
        p_syntax = None;
      }
    with exn -> fail exn

(* ---------------------------------------------------------- the pipeline *)

(* Lint a set of already-read files as one run: per-file rules, then the
   cross-file flowgraph join, then per-file waiver and allowlist
   suppression (a cross-file finding is waivable in the file it is
   attributed to). Returns (kept, waived, allowlisted). *)
let lint_files ~config sources =
  let parsed = List.map (fun (f, s) -> parse_one ~filename:f s) sources in
  let per_file p =
    match p.p_syntax with
    | Some f -> [ f ]
    | None ->
        let ctx = Rules.make_ctx ~config ~file:p.p_file () in
        (match p.p_impl with
        | Some str -> Rules.check_structure ctx str
        | None -> ());
        (match p.p_intf with
        | Some sg -> Rules.check_interface ctx sg
        | None -> ());
        ctx.Rules.findings
  in
  let rule_findings = List.concat_map per_file parsed in
  let facts =
    List.filter_map
      (fun p -> Option.map (Flowgraph.extract ~file:p.p_file) p.p_impl)
      parsed
  in
  let flow_findings = Flowgraph.check ~config facts in
  let wtbl = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace wtbl p.p_file (waivers p.p_source)) parsed;
  let is_waived (f : Report.finding) =
    match Hashtbl.find_opt wtbl f.Report.file with
    | Some ws -> waived_by ws f
    | None -> false
  in
  let waived, rest =
    List.partition is_waived (rule_findings @ flow_findings)
  in
  let allowlisted, kept =
    List.partition
      (fun (f : Report.finding) ->
        Config.allowed config ~rule:f.Report.rule ~file:f.Report.file)
      rest
  in
  (kept, List.length waived, List.length allowlisted)

let lint_source ?(config = Config.empty) ~filename source =
  lint_files ~config [ (filename, source) ]

let lint_string ?config ~filename source =
  let kept, _, _ = lint_source ?config ~filename source in
  List.sort Report.compare_finding kept

let run_sources ?(config = Config.empty) sources =
  let kept, waived, allowlisted = lint_files ~config sources in
  Report.make ~findings:kept ~files_scanned:(List.length sources) ~waived
    ~allowlisted

(* ------------------------------------------------------------- tree walk *)

let source_dirs = [ "lib"; "bin"; "bench" ]

let walk root =
  let files = ref [] in
  let rec go rel =
    let abs = Filename.concat root rel in
    if Sys.file_exists abs && Sys.is_directory abs then
      Array.iter
        (fun entry ->
          if String.length entry > 0 && entry.[0] <> '.' && entry <> "_build"
          then begin
            let rel' = if rel = "" then entry else rel ^ "/" ^ entry in
            let abs' = Filename.concat root rel' in
            if Sys.is_directory abs' then go rel'
            else if
              Filename.check_suffix entry ".ml"
              || Filename.check_suffix entry ".mli"
            then files := rel' :: !files
          end)
        (Sys.readdir abs)
  in
  List.iter go source_dirs;
  List.sort String.compare !files

let is_lib_ml file =
  Filename.check_suffix file ".ml"
  && String.length file > 4
  && String.sub file 0 4 = "lib/"

let run ?(config_path = "lint.config") ?rule ~root () =
  let config =
    Config.load
      (if Filename.is_relative config_path then
         Filename.concat root config_path
       else config_path)
  in
  let files = walk root in
  (* The runtest gate scans dune's copy of the tree, where executables
     grow an auto-generated empty [.mli]; skip those so a sandboxed run
     sees the same file set as a checkout run (the staleness leg compares
     the two). *)
  let dune_stub = "(* Auto-generated by Dune *)" in
  let sources =
    List.filter_map
      (fun f ->
        let s = read_file (Filename.concat root f) in
        if
          String.length s >= String.length dune_stub
          && String.sub s 0 (String.length dune_stub) = dune_stub
        then None
        else Some (f, s))
      files
  in
  let files = List.map fst sources in
  let kept, waived, allowlisted = lint_files ~config sources in
  let findings = ref kept in
  let waived = ref waived in
  let allowlisted = ref allowlisted in
  (* R5: every lib/** implementation needs a sibling interface. *)
  let file_set = List.sort_uniq String.compare files in
  List.iter
    (fun file ->
      if is_lib_ml file && not (List.mem (file ^ "i") file_set) then begin
        let f = Rules.missing_mli ~file in
        if Config.allowed config ~rule:"R5" ~file then incr allowlisted
        else findings := f :: !findings
      end)
    files;
  let findings =
    match rule with
    | None -> !findings
    | Some r -> List.filter (fun f -> f.Report.rule = r) !findings
  in
  Report.make ~findings ~files_scanned:(List.length files) ~waived:!waived
    ~allowlisted:!allowlisted
