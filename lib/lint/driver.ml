let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --------------------------------------------------------------- waivers *)

let waiver_tags =
  [
    ("nondet-ok", "R1");
    ("hash-order-ok", "R2");
    ("compare-ok", "R3");
    ("trace-ok", "R4");
    ("doc-ok", "R5");
    ("oracle-ok", "R6");
  ]

(* A waiver is an inline comment of the form "lint: <tag> reason...". It
   suppresses findings of the tagged rule from its own line through two
   lines past the comment's closing delimiter, so it can sit at the end of
   the offending line, just above a multi-line expression, or carry a
   multi-line justification. *)
let waivers source =
  let out = ref [] in
  let len = String.length source in
  let marker = "lint:" in
  let line_of pos =
    let n = ref 1 in
    for i = 0 to pos - 1 do
      if source.[i] = '\n' then incr n
    done;
    !n
  in
  let rec find_sub sub from =
    if from + String.length sub > len then None
    else if String.sub source from (String.length sub) = sub then Some from
    else find_sub sub (from + 1)
  in
  let rec go from =
    match find_sub marker from with
    | None -> ()
    | Some at ->
        let after = at + String.length marker in
        let rest =
          String.trim (String.sub source after (min 80 (len - after)))
        in
        let tag =
          match String.index_opt rest ' ' with
          | Some j -> String.sub rest 0 j
          | None -> (
              match String.index_opt rest '*' with
              | Some j -> String.trim (String.sub rest 0 j)
              | None -> rest)
        in
        (match List.assoc_opt tag waiver_tags with
        | Some rule ->
            let close =
              match find_sub "*)" after with Some c -> c | None -> len - 1
            in
            out := (rule, line_of at, line_of close + 2) :: !out
        | None -> ());
        go after
  in
  go 0;
  !out

let waived_by ws (f : Report.finding) =
  List.exists
    (fun (rule, first, last) ->
      rule = f.Report.rule && f.Report.line >= first && f.Report.line <= last)
    ws

(* --------------------------------------------------------------- parsing *)

let with_parse ~filename source k =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf filename;
  try k lexbuf
  with exn ->
    let msg =
      match exn with
      | Syntaxerr.Error _ -> "syntax error"
      | exn -> Printexc.to_string exn
    in
    [ { Report.file = filename; line = 1; col = 0; rule = "syntax"; msg } ]

(* One file's worth of linting: raw findings, then waiver and allowlist
   suppression. Returns (kept, waived, allowlisted). *)
let lint_source ?(config = Config.empty) ~filename source =
  let ctx = Rules.make_ctx ~config ~file:filename () in
  let raw =
    if Filename.check_suffix filename ".mli" then
      with_parse ~filename source (fun lexbuf ->
          Rules.check_interface ctx (Parse.interface lexbuf);
          ctx.Rules.findings)
    else
      with_parse ~filename source (fun lexbuf ->
          Rules.check_structure ctx (Parse.implementation lexbuf);
          ctx.Rules.findings)
  in
  let ws = waivers source in
  let waived, rest = List.partition (waived_by ws) raw in
  let allowlisted, kept =
    List.partition
      (fun (f : Report.finding) ->
        Config.allowed config ~rule:f.Report.rule ~file:f.Report.file)
      rest
  in
  (kept, List.length waived, List.length allowlisted)

let lint_string ?config ~filename source =
  let kept, _, _ = lint_source ?config ~filename source in
  List.sort Report.compare_finding kept

(* ------------------------------------------------------------- tree walk *)

let source_dirs = [ "lib"; "bin"; "bench" ]

let walk root =
  let files = ref [] in
  let rec go rel =
    let abs = Filename.concat root rel in
    if Sys.file_exists abs && Sys.is_directory abs then
      Array.iter
        (fun entry ->
          if String.length entry > 0 && entry.[0] <> '.' && entry <> "_build"
          then begin
            let rel' = if rel = "" then entry else rel ^ "/" ^ entry in
            let abs' = Filename.concat root rel' in
            if Sys.is_directory abs' then go rel'
            else if
              Filename.check_suffix entry ".ml"
              || Filename.check_suffix entry ".mli"
            then files := rel' :: !files
          end)
        (Sys.readdir abs)
  in
  List.iter go source_dirs;
  List.sort String.compare !files

let is_lib_ml file =
  Filename.check_suffix file ".ml"
  && String.length file > 4
  && String.sub file 0 4 = "lib/"

let run ?(config_path = "lint.config") ?rule ~root () =
  let config =
    Config.load
      (if Filename.is_relative config_path then
         Filename.concat root config_path
       else config_path)
  in
  let files = walk root in
  let findings = ref [] in
  let waived = ref 0 in
  let allowlisted = ref 0 in
  let file_set = List.sort_uniq String.compare files in
  List.iter
    (fun file ->
      let source = read_file (Filename.concat root file) in
      let kept, w, a = lint_source ~config ~filename:file source in
      findings := kept @ !findings;
      waived := !waived + w;
      allowlisted := !allowlisted + a;
      (* R5: every lib/** implementation needs a sibling interface. *)
      if is_lib_ml file && not (List.mem (file ^ "i") file_set) then begin
        let f = Rules.missing_mli ~file in
        if Config.allowed config ~rule:"R5" ~file then incr allowlisted
        else findings := f :: !findings
      end)
    files;
  let findings =
    match rule with
    | None -> !findings
    | Some r -> List.filter (fun f -> f.Report.rule = r) !findings
  in
  Report.make ~findings ~files_scanned:(List.length files) ~waived:!waived
    ~allowlisted:!allowlisted
