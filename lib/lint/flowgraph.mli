(** Cross-file message-flow pass: rule R7, handler totality.

    {!extract} runs once per implementation file and collects flow facts
    from its parsetree; {!check} joins the facts of a whole run against
    the [protocol <file> <type>] declarations in [lint.config] and
    reports:

    - a protocol constructor passed to a send-like function ([send] /
      [broadcast], qualified or not) but matched by no pattern anywhere in
      the scanned set — attributed to the send site;
    - a [match]/[function] in [lib/core]/[lib/repl] that names two or more
      of a protocol type's constructors but ends in a catch-all ([_] or a
      variable) while other constructors of that type exist — attributed
      to the catch-all, so a waiver comment sits next to the [_].

    Send extraction resolves one level of [let m = Ctor ... in ... send m]
    indirection; anything more indirect is invisible, which errs toward
    missing a send, never toward a false finding. *)

(** One candidate dispatch site: a case list with a catch-all and at least
    two distinct constructor heads. *)
type dispatch = {
  d_loc : Location.t;  (** the catch-all case's pattern *)
  d_ctors : string list;  (** distinct constructor heads, sorted *)
}

(** The flow facts of one implementation file. *)
type facts = {
  ff_file : string;  (** repo-relative path *)
  ff_types : (string * string list) list;
      (** variant declarations: type name -> constructor names *)
  ff_sends : (string * Location.t) list;
      (** constructors passed to a send-like function *)
  ff_handled : string list;  (** constructors matched by some pattern *)
  ff_dispatches : dispatch list;
}

(** Collect the flow facts of one file's parsetree. *)
val extract : file:string -> Parsetree.structure -> facts

(** Join a run's facts against [config]'s protocol declarations; returns
    R7 findings attributed to the owning files. *)
val check : config:Config.t -> facts list -> Report.finding list
