(* The determinism & protocol-hygiene rule catalog. Purely syntactic: each
   rule works on the parsetree (compiler-libs [Parse] output) plus the raw
   source text — no typing pass. Where a rule needs type knowledge (R3) it
   settles for a conservative, annotation-driven heuristic and says so. *)

type ctx = {
  file : string;  (** repo-relative, '/'-separated — drives path scoping *)
  config : Config.t;
  mutable findings : Report.finding list;
}

let make_ctx ?(config = Config.empty) ~file () = { file; config; findings = [] }

let add ctx (loc : Location.t) rule msg =
  let p = loc.Location.loc_start in
  ctx.findings <-
    {
      Report.file = ctx.file;
      line = p.Lexing.pos_lnum;
      col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
      rule;
      msg;
    }
    :: ctx.findings

let all =
  [
    ("R1", "banned nondeterminism sources (wall clock, global RNG, \
            Hashtbl.hash, exit)");
    ("R2", "Hashtbl.iter/fold without a dominating sort in the same \
            top-level binding");
    ("R3", "polymorphic compare/equality at a deny-listed type");
    ("R4", "unguarded trace emission on a lib/core / lib/net / lib/repl / \
            lib/shard path");
    ("R5", "missing .mli, undocumented export, or engine not implementing \
            Engine_intf");
    ("R6", "ground-truth liveness oracle (Injector.down / coord_down) \
            consulted from a lib/core / lib/repl / lib/shard path");
    ("R7", "handler totality: a sent protocol constructor with no handler \
            branch, or a dispatch catch-all swallowing protocol messages");
    ("R8", "log-before-send: a phase-message send not dominated by a \
            Coord_log.append on every path");
    ("R9", "guard dominance: Mvstore.gc outside a gc_floor comparison \
            (re-delivered GC notices must stay idempotent)");
    ("R10", "unsafe accesses (Array/String/Bytes.unsafe_*, Obj.magic) \
             outside the allowlisted flat-counter modules");
  ]

let lid_str lid = String.concat "." (Longident.flatten lid)

(* ------------------------------------------------------------------ R1 *)

(* The global (implicitly-seeded) RNG entry points; [Random.State.*] with an
   explicit seeded state is the sanctioned API and never matches because its
   flattened path carries the [State] segment. *)
let r1_banned =
  [
    ("Random.self_init", "seeds the global RNG from the environment");
    ("Random.init", "reseeds the global RNG; use Random.State.make");
    ("Random.int", "global RNG; use a seeded Random.State");
    ("Random.full_int", "global RNG; use a seeded Random.State");
    ("Random.float", "global RNG; use a seeded Random.State");
    ("Random.bool", "global RNG; use a seeded Random.State");
    ("Random.bits", "global RNG; use a seeded Random.State");
    ("Random.int32", "global RNG; use a seeded Random.State");
    ("Random.int64", "global RNG; use a seeded Random.State");
    ("Random.nativeint", "global RNG; use a seeded Random.State");
    ("Sys.time", "wall-clock read breaks replay determinism");
    ("Unix.gettimeofday", "wall-clock read breaks replay determinism");
    ("Unix.time", "wall-clock read breaks replay determinism");
    ("Unix.localtime", "wall-clock read breaks replay determinism");
    ("Unix.gmtime", "wall-clock read breaks replay determinism");
    ("Hashtbl.hash", "layout-dependent hash; write a structural digest");
    ("Hashtbl.seeded_hash", "layout-dependent hash; write a structural digest");
    ("Hashtbl.hash_param", "layout-dependent hash; write a structural digest");
    ("Stdlib.exit", "kills the whole simulation; return a status instead");
    ("exit", "kills the whole simulation; return a status instead");
  ]

let r1_check ctx lid loc =
  match List.assoc_opt (lid_str lid) r1_banned with
  | Some why -> add ctx loc "R1" (Printf.sprintf "%s: %s" (lid_str lid) why)
  | None -> ()

(* ------------------------------------------------------------------ R6 *)

(* Protocol code deciding anything from the injector's crash-window
   tables is consulting an oracle no deployable system has: the plan is
   script, not observation. Routing, quorum and watchdog decisions must
   come from the failure detector (observed heartbeats). The injector's
   own modules, the harness and tests are out of scope — they legitimately
   own or assert against the ground truth. *)
let r6_in_scope file =
  let pfx p =
    String.length file >= String.length p && String.sub file 0 (String.length p) = p
  in
  pfx "lib/core/" || pfx "lib/repl/" || pfx "lib/shard/"

let r6_check ctx lid loc =
  match List.rev (Longident.flatten lid) with
  | ("down" | "coord_down") :: "Injector" :: _ ->
      add ctx loc "R6"
        (Printf.sprintf
           "%s reads the fault plan's ground truth from protocol code; \
            decide liveness from the failure detector (Fd.Detector) or \
            waive a genuine debug assertion with (* lint: oracle-ok *)"
           (lid_str lid))
  | _ -> ()

(* ------------------------------------------------------------------ R2 *)

let r2_hash_enums = [ "Hashtbl.iter"; "Hashtbl.fold" ]

let r2_sorts =
  [ "List.sort"; "List.stable_sort"; "List.fast_sort"; "List.sort_uniq" ]

(* Collect, within one top-level binding, every Hashtbl enumeration and
   whether any sort call occurs. Nested modules are split back into their
   own items so a sort in one function cannot excuse a fold in another. *)
let rec r2_check_item ctx (item : Parsetree.structure_item) =
  match item.pstr_desc with
  | Parsetree.Pstr_module mb -> r2_check_module ctx mb.Parsetree.pmb_expr
  | Parsetree.Pstr_recmodule mbs ->
      List.iter (fun mb -> r2_check_module ctx mb.Parsetree.pmb_expr) mbs
  | _ ->
      let enums = ref [] in
      let sorted = ref false in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun self e ->
              (match e.Parsetree.pexp_desc with
              | Parsetree.Pexp_ident { txt; loc } ->
                  let s = lid_str txt in
                  if List.mem s r2_hash_enums then enums := (s, loc) :: !enums;
                  if List.mem s r2_sorts then sorted := true
              | _ -> ());
              Ast_iterator.default_iterator.expr self e);
        }
      in
      it.structure_item it item;
      if not !sorted then
        List.iter
          (fun (s, loc) ->
            add ctx loc "R2"
              (Printf.sprintf
                 "%s enumerates in hash order and no List.sort dominates it \
                  in this binding; sort the result or waive with (* lint: \
                  hash-order-ok *)"
                 s))
          (List.rev !enums)

and r2_check_module ctx (me : Parsetree.module_expr) =
  match me.Parsetree.pmod_desc with
  | Parsetree.Pmod_structure items -> List.iter (r2_check_item ctx) items
  | Parsetree.Pmod_functor (_, body) -> r2_check_module ctx body
  | Parsetree.Pmod_constraint (me, _) -> r2_check_module ctx me
  | _ -> ()

(* ------------------------------------------------------------------ R3 *)

let r3_poly_cmp = [ "="; "<>"; "compare"; "Stdlib.compare"; "Stdlib.min";
                    "Stdlib.max"; "min"; "max" ]

(* Deny markers are syntactic: an argument subtree names the denied type in
   an annotation — [(x : Ivar.t)], [(l : Mvstore.item list)]. The rule
   cannot see through unannotated bindings; it is a tripwire for the
   declared cases, not a type checker. *)
let r3_mentions_denied config (e : Parsetree.expression) =
  let deny_tys = config.Config.deny_types in
  let ty_hits s =
    List.exists
      (fun ty ->
        s = ty
        || String.length s > String.length ty
           && String.sub s (String.length s - String.length ty - 1)
                (String.length ty + 1)
              = "." ^ ty)
      deny_tys
  in
  let hit = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      typ =
        (fun self ty ->
          (match ty.Parsetree.ptyp_desc with
          | Parsetree.Ptyp_constr ({ txt; _ }, _) ->
              if ty_hits (lid_str txt) then hit := true
          | _ -> ());
          Ast_iterator.default_iterator.typ self ty);
    }
  in
  it.expr it e;
  !hit

let r3_check ctx fn args loc =
  match fn.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } when List.mem (lid_str txt) r3_poly_cmp ->
      if
        List.exists (fun (_, arg) -> r3_mentions_denied ctx.config arg) args
      then
        add ctx loc "R3"
          (Printf.sprintf
             "polymorphic %s applied to a deny-listed type (contains \
              functions or mutable state); write a dedicated comparison or \
              waive with (* lint: compare-ok *)"
             (lid_str txt))
  | _ -> ()

(* ------------------------------------------------------------------ R4 *)

let r4_in_scope file =
  let pfx p =
    String.length file >= String.length p && String.sub file 0 (String.length p) = p
  in
  pfx "lib/core/" || pfx "lib/net/" || pfx "lib/repl/" || pfx "lib/shard/"

let r4_is_emit (fn : Parsetree.expression) =
  match fn.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> (
      match lid_str txt with
      | "tr" | "trl" -> true
      | s ->
          let suffix sfx =
            let n = String.length sfx in
            String.length s >= n
            && String.sub s (String.length s - n) n = sfx
          in
          suffix "Trace.emit" || suffix "Trace.emit_deferred")
  | _ -> false

(* Does [e] mention, anywhere, an identifier whose last segment is [seg]?
   The guard predicates for R4 ([tracing]) and R9 ([gc_floor]) — compound
   conditions ([a && tracing t], [Mvstore.gc_floor s < keep]) count. *)
let mentions_last seg (e : Parsetree.expression) =
  let hit = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ } -> (
              match List.rev (Longident.flatten txt) with
              | last :: _ when last = seg -> hit := true
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !hit

let mentions_tracing = mentions_last "tracing"

(* ------------------------------------------------------------------ R10 *)

(* Bounds-unchecked accesses and [Obj.magic] are a deliberate, measured
   optimization in the flat counter matrices and nowhere else; lint.config
   [allow R10] lines name the modules where the proofs live. *)
let r10_banned =
  [
    "Array.unsafe_get"; "Array.unsafe_set"; "String.unsafe_get";
    "String.unsafe_set"; "Bytes.unsafe_get"; "Bytes.unsafe_set"; "Obj.magic";
  ]

let r10_check ctx lid loc =
  let s = lid_str lid in
  if List.mem s r10_banned then
    add ctx loc "R10"
      (Printf.sprintf
         "%s: bounds-unchecked access outside the allowlisted hot-path \
          modules; use the checked accessor, allowlist the module in \
          lint.config, or waive with (* lint: unsafe-ok *)"
         s)

(* ------------------------------------------------------------------ R8 *)

(* The crash-consistency invariant PR 2's WAL re-drive depends on: a
   coordinator phase message must not leave before the phase entry is on
   disk, or a crash between send and append re-drives a phase the nodes
   already saw under a different WAL state. Phase constructors come from
   lint.config [phase-msg] lines; the dominator is any application of
   [Coord_log.append] — including through a local helper whose body
   contains one (see Order's documented "may" semantics). *)

let lid_suffix sfx s =
  let n = String.length sfx in
  s = sfx
  || String.length s > n
     && String.sub s (String.length s - n - 1) (n + 1) = "." ^ sfx

let is_send_like (fn : Parsetree.expression) =
  match fn.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> (
      match List.rev (Longident.flatten txt) with
      | ("send" | "broadcast") :: _ -> true
      | _ -> false)
  | _ -> false

let r8_target phase_msgs (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_apply (fn, args) when is_send_like fn ->
      List.find_map
        (fun ((_, arg) : Asttypes.arg_label * Parsetree.expression) ->
          match arg.Parsetree.pexp_desc with
          | Parsetree.Pexp_construct ({ txt; _ }, _) -> (
              match List.rev (Longident.flatten txt) with
              | c :: _ when List.mem c phase_msgs -> Some c
              | _ -> None)
          | _ -> None)
        args
  | _ -> None

let r8_check ctx (str : Parsetree.structure) =
  match ctx.config.Config.phase_msgs with
  | [] -> ()
  | phase_msgs ->
      List.iter
        (fun (f : Order.finding) ->
          add ctx f.Order.loc "R8"
            (Printf.sprintf
               "phase message %s sent without a dominating Coord_log.append: \
                a coordinator crash between this send and the WAL write \
                re-drives an unlogged phase; append the phase entry first \
                or waive with (* lint: order-ok *)"
               f.Order.what))
        (Order.undominated
           ~dom:(fun fn ->
             match fn.Parsetree.pexp_desc with
             | Parsetree.Pexp_ident { txt; _ } ->
                 lid_suffix "Coord_log.append" (Order.lid_str txt)
             | _ -> false)
           ~target:(r8_target phase_msgs)
           str)

(* ------------------------------------------------------------------ R9 *)

(* GC idempotence: a re-delivered [Do_gc] notice (recovered coordinator
   re-driving phase 4) must not re-collect; every [Mvstore.gc] call sits
   inside a region controlled by a [gc_floor] comparison. *)
let r9_in_scope file =
  String.length file >= 4 && String.sub file 0 4 = "lib/"

let r9_check ctx (str : Parsetree.structure) =
  if r9_in_scope ctx.file then
    List.iter
      (fun (f : Order.finding) ->
        add ctx f.Order.loc "R9" f.Order.what)
      (Order.unguarded
         ~guard:(mentions_last "gc_floor")
         ~target:(fun e ->
           match e.Parsetree.pexp_desc with
           | Parsetree.Pexp_apply (fn, _) -> (
               match fn.Parsetree.pexp_desc with
               | Parsetree.Pexp_ident { txt; _ }
                 when lid_suffix "Mvstore.gc" (Order.lid_str txt) ->
                   Some
                     "Mvstore.gc outside a gc_floor comparison: a \
                      re-delivered GC notice would re-collect (phase-4 \
                      re-drives must be idempotent); guard on the floor or \
                      waive with (* lint: guard-ok *)"
               | _ -> None)
           | _ -> None)
         str)

(* ------------------------------------------------------- R4 (dominance) *)

(* R4 rides the same guard-dominance engine as R9: an emission is fine
   exactly when a [tracing]-mentioning condition (or [when] clause)
   controls its lexical region. Reported as R4 — the rule id predates the
   engine. *)
let r4_check ctx (str : Parsetree.structure) =
  if r4_in_scope ctx.file then
    List.iter
      (fun (f : Order.finding) ->
        add ctx f.Order.loc "R4" f.Order.what)
      (Order.unguarded ~guard:mentions_tracing
         ~target:(fun e ->
           match e.Parsetree.pexp_desc with
           | Parsetree.Pexp_apply (fn, _) when r4_is_emit fn ->
               Some
                 "trace emission not guarded by [if tracing ...]: format \
                  arguments are evaluated even in untraced runs; guard it \
                  or waive with (* lint: trace-ok *)"
           | _ -> None)
         str)

(* -------------------------------------------------------- entry points *)

(* R1, R3, R6 and R10 are per-expression and share one walk; R2 runs per
   top-level item; R4, R8 and R9 are ordering properties delegated to the
   {!Order} engine. *)
let check_structure ctx (str : Parsetree.structure) =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; loc } ->
              r1_check ctx txt loc;
              r10_check ctx txt loc;
              if r6_in_scope ctx.file then r6_check ctx txt loc
          | Parsetree.Pexp_apply (fn, args) ->
              r3_check ctx fn args e.Parsetree.pexp_loc
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str;
  List.iter (r2_check_item ctx) str;
  r4_check ctx str;
  r8_check ctx str;
  r9_check ctx str

(* ------------------------------------------------------------------ R5 *)

let has_doc (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) ->
      a.Parsetree.attr_name.Location.txt = "ocaml.doc")
    attrs

let rec mty_mentions_engine_intf (mty : Parsetree.module_type) =
  match mty.Parsetree.pmty_desc with
  | Parsetree.Pmty_ident { txt; _ } ->
      List.mem "Engine_intf" (Longident.flatten txt)
  | Parsetree.Pmty_with (mty, _) -> mty_mentions_engine_intf mty
  | _ -> false

let check_interface ctx (sg : Parsetree.signature) =
  List.iter
    (fun (item : Parsetree.signature_item) ->
      match item.Parsetree.psig_desc with
      | Parsetree.Psig_value vd ->
          if not (has_doc vd.Parsetree.pval_attributes) then
            add ctx item.Parsetree.psig_loc "R5"
              (Printf.sprintf "exported value '%s' has no doc comment"
                 vd.Parsetree.pval_name.Location.txt)
      | _ -> ())
    sg;
  if List.mem ctx.file ctx.config.Config.engines then begin
    let includes_intf =
      List.exists
        (fun (item : Parsetree.signature_item) ->
          match item.Parsetree.psig_desc with
          | Parsetree.Psig_include incl ->
              mty_mentions_engine_intf incl.Parsetree.pincl_mod
          | _ -> false)
        sg
    in
    if not includes_intf then
      add ctx Location.none "R5"
        "engine interface does not [include Engine_intf.S]"
  end

let missing_mli ~file =
  {
    Report.file;
    line = 1;
    col = 0;
    rule = "R5";
    msg = "module has no .mli interface";
  }
