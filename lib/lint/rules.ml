(* The determinism & protocol-hygiene rule catalog. Purely syntactic: each
   rule works on the parsetree (compiler-libs [Parse] output) plus the raw
   source text — no typing pass. Where a rule needs type knowledge (R3) it
   settles for a conservative, annotation-driven heuristic and says so. *)

type ctx = {
  file : string;  (** repo-relative, '/'-separated — drives path scoping *)
  config : Config.t;
  mutable findings : Report.finding list;
}

let make_ctx ?(config = Config.empty) ~file () = { file; config; findings = [] }

let add ctx (loc : Location.t) rule msg =
  let p = loc.Location.loc_start in
  ctx.findings <-
    {
      Report.file = ctx.file;
      line = p.Lexing.pos_lnum;
      col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
      rule;
      msg;
    }
    :: ctx.findings

let all =
  [
    ("R1", "banned nondeterminism sources (wall clock, global RNG, \
            Hashtbl.hash, exit)");
    ("R2", "Hashtbl.iter/fold without a dominating sort in the same \
            top-level binding");
    ("R3", "polymorphic compare/equality at a deny-listed type");
    ("R4", "unguarded trace emission on a lib/core / lib/net / lib/repl \
            path");
    ("R5", "missing .mli, undocumented export, or engine not implementing \
            Engine_intf");
    ("R6", "ground-truth liveness oracle (Injector.down / coord_down) \
            consulted from a lib/core / lib/repl path");
  ]

let lid_str lid = String.concat "." (Longident.flatten lid)

(* ------------------------------------------------------------------ R1 *)

(* The global (implicitly-seeded) RNG entry points; [Random.State.*] with an
   explicit seeded state is the sanctioned API and never matches because its
   flattened path carries the [State] segment. *)
let r1_banned =
  [
    ("Random.self_init", "seeds the global RNG from the environment");
    ("Random.init", "reseeds the global RNG; use Random.State.make");
    ("Random.int", "global RNG; use a seeded Random.State");
    ("Random.full_int", "global RNG; use a seeded Random.State");
    ("Random.float", "global RNG; use a seeded Random.State");
    ("Random.bool", "global RNG; use a seeded Random.State");
    ("Random.bits", "global RNG; use a seeded Random.State");
    ("Random.int32", "global RNG; use a seeded Random.State");
    ("Random.int64", "global RNG; use a seeded Random.State");
    ("Random.nativeint", "global RNG; use a seeded Random.State");
    ("Sys.time", "wall-clock read breaks replay determinism");
    ("Unix.gettimeofday", "wall-clock read breaks replay determinism");
    ("Unix.time", "wall-clock read breaks replay determinism");
    ("Unix.localtime", "wall-clock read breaks replay determinism");
    ("Unix.gmtime", "wall-clock read breaks replay determinism");
    ("Hashtbl.hash", "layout-dependent hash; write a structural digest");
    ("Hashtbl.seeded_hash", "layout-dependent hash; write a structural digest");
    ("Hashtbl.hash_param", "layout-dependent hash; write a structural digest");
    ("Stdlib.exit", "kills the whole simulation; return a status instead");
    ("exit", "kills the whole simulation; return a status instead");
  ]

let r1_check ctx lid loc =
  match List.assoc_opt (lid_str lid) r1_banned with
  | Some why -> add ctx loc "R1" (Printf.sprintf "%s: %s" (lid_str lid) why)
  | None -> ()

(* ------------------------------------------------------------------ R6 *)

(* Protocol code deciding anything from the injector's crash-window
   tables is consulting an oracle no deployable system has: the plan is
   script, not observation. Routing, quorum and watchdog decisions must
   come from the failure detector (observed heartbeats). The injector's
   own modules, the harness and tests are out of scope — they legitimately
   own or assert against the ground truth. *)
let r6_in_scope file =
  let pfx p =
    String.length file >= String.length p && String.sub file 0 (String.length p) = p
  in
  pfx "lib/core/" || pfx "lib/repl/" || pfx "lib/shard/"

let r6_check ctx lid loc =
  match List.rev (Longident.flatten lid) with
  | ("down" | "coord_down") :: "Injector" :: _ ->
      add ctx loc "R6"
        (Printf.sprintf
           "%s reads the fault plan's ground truth from protocol code; \
            decide liveness from the failure detector (Fd.Detector) or \
            waive a genuine debug assertion with (* lint: oracle-ok *)"
           (lid_str lid))
  | _ -> ()

(* ------------------------------------------------------------------ R2 *)

let r2_hash_enums = [ "Hashtbl.iter"; "Hashtbl.fold" ]

let r2_sorts =
  [ "List.sort"; "List.stable_sort"; "List.fast_sort"; "List.sort_uniq" ]

(* Collect, within one top-level binding, every Hashtbl enumeration and
   whether any sort call occurs. Nested modules are split back into their
   own items so a sort in one function cannot excuse a fold in another. *)
let rec r2_check_item ctx (item : Parsetree.structure_item) =
  match item.pstr_desc with
  | Parsetree.Pstr_module mb -> r2_check_module ctx mb.Parsetree.pmb_expr
  | Parsetree.Pstr_recmodule mbs ->
      List.iter (fun mb -> r2_check_module ctx mb.Parsetree.pmb_expr) mbs
  | _ ->
      let enums = ref [] in
      let sorted = ref false in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun self e ->
              (match e.Parsetree.pexp_desc with
              | Parsetree.Pexp_ident { txt; loc } ->
                  let s = lid_str txt in
                  if List.mem s r2_hash_enums then enums := (s, loc) :: !enums;
                  if List.mem s r2_sorts then sorted := true
              | _ -> ());
              Ast_iterator.default_iterator.expr self e);
        }
      in
      it.structure_item it item;
      if not !sorted then
        List.iter
          (fun (s, loc) ->
            add ctx loc "R2"
              (Printf.sprintf
                 "%s enumerates in hash order and no List.sort dominates it \
                  in this binding; sort the result or waive with (* lint: \
                  hash-order-ok *)"
                 s))
          (List.rev !enums)

and r2_check_module ctx (me : Parsetree.module_expr) =
  match me.Parsetree.pmod_desc with
  | Parsetree.Pmod_structure items -> List.iter (r2_check_item ctx) items
  | Parsetree.Pmod_functor (_, body) -> r2_check_module ctx body
  | Parsetree.Pmod_constraint (me, _) -> r2_check_module ctx me
  | _ -> ()

(* ------------------------------------------------------------------ R3 *)

let r3_poly_cmp = [ "="; "<>"; "compare"; "Stdlib.compare"; "Stdlib.min";
                    "Stdlib.max"; "min"; "max" ]

(* Deny markers are syntactic: an argument subtree names the denied type in
   an annotation — [(x : Ivar.t)], [(l : Mvstore.item list)]. The rule
   cannot see through unannotated bindings; it is a tripwire for the
   declared cases, not a type checker. *)
let r3_mentions_denied config (e : Parsetree.expression) =
  let deny_tys = config.Config.deny_types in
  let ty_hits s =
    List.exists
      (fun ty ->
        s = ty
        || String.length s > String.length ty
           && String.sub s (String.length s - String.length ty - 1)
                (String.length ty + 1)
              = "." ^ ty)
      deny_tys
  in
  let hit = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      typ =
        (fun self ty ->
          (match ty.Parsetree.ptyp_desc with
          | Parsetree.Ptyp_constr ({ txt; _ }, _) ->
              if ty_hits (lid_str txt) then hit := true
          | _ -> ());
          Ast_iterator.default_iterator.typ self ty);
    }
  in
  it.expr it e;
  !hit

let r3_check ctx fn args loc =
  match fn.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } when List.mem (lid_str txt) r3_poly_cmp ->
      if
        List.exists (fun (_, arg) -> r3_mentions_denied ctx.config arg) args
      then
        add ctx loc "R3"
          (Printf.sprintf
             "polymorphic %s applied to a deny-listed type (contains \
              functions or mutable state); write a dedicated comparison or \
              waive with (* lint: compare-ok *)"
             (lid_str txt))
  | _ -> ()

(* ------------------------------------------------------------------ R4 *)

let r4_in_scope file =
  let pfx p =
    String.length file >= String.length p && String.sub file 0 (String.length p) = p
  in
  pfx "lib/core/" || pfx "lib/net/" || pfx "lib/repl/" || pfx "lib/shard/"

let r4_is_emit (fn : Parsetree.expression) =
  match fn.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> (
      match lid_str txt with
      | "tr" | "trl" -> true
      | s ->
          let suffix sfx =
            let n = String.length sfx in
            String.length s >= n
            && String.sub s (String.length s - n) n = sfx
          in
          suffix "Trace.emit" || suffix "Trace.emit_deferred")
  | _ -> false

let mentions_tracing (e : Parsetree.expression) =
  let hit = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ } -> (
              match Longident.flatten txt with
              | [] -> ()
              | segs -> if List.nth segs (List.length segs - 1) = "tracing"
                then hit := true)
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !hit

(* -------------------------------------------------------- entry points *)

(* R1, R3 and R4 in one walk; R4 needs guard tracking, so the iterator
   carries a mutable "under [if tracing ...]" flag with save/restore. *)
let check_structure ctx (str : Parsetree.structure) =
  let guarded = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ifthenelse (cond, then_, else_)
            when mentions_tracing cond ->
              self.Ast_iterator.expr self cond;
              let saved = !guarded in
              guarded := true;
              self.Ast_iterator.expr self then_;
              guarded := saved;
              Option.iter (self.Ast_iterator.expr self) else_
          | _ ->
              (match e.Parsetree.pexp_desc with
              | Parsetree.Pexp_ident { txt; loc } ->
                  r1_check ctx txt loc;
                  if r6_in_scope ctx.file then r6_check ctx txt loc
              | Parsetree.Pexp_apply (fn, args) ->
                  r3_check ctx fn args e.Parsetree.pexp_loc;
                  if
                    r4_in_scope ctx.file && r4_is_emit fn && not !guarded
                  then
                    add ctx e.Parsetree.pexp_loc "R4"
                      "trace emission not guarded by [if tracing ...]: \
                       format arguments are evaluated even in untraced \
                       runs; guard it or waive with (* lint: trace-ok *)"
              | _ -> ());
              Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str;
  List.iter (r2_check_item ctx) str

(* ------------------------------------------------------------------ R5 *)

let has_doc (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) ->
      a.Parsetree.attr_name.Location.txt = "ocaml.doc")
    attrs

let rec mty_mentions_engine_intf (mty : Parsetree.module_type) =
  match mty.Parsetree.pmty_desc with
  | Parsetree.Pmty_ident { txt; _ } ->
      List.mem "Engine_intf" (Longident.flatten txt)
  | Parsetree.Pmty_with (mty, _) -> mty_mentions_engine_intf mty
  | _ -> false

let check_interface ctx (sg : Parsetree.signature) =
  List.iter
    (fun (item : Parsetree.signature_item) ->
      match item.Parsetree.psig_desc with
      | Parsetree.Psig_value vd ->
          if not (has_doc vd.Parsetree.pval_attributes) then
            add ctx item.Parsetree.psig_loc "R5"
              (Printf.sprintf "exported value '%s' has no doc comment"
                 vd.Parsetree.pval_name.Location.txt)
      | _ -> ())
    sg;
  if List.mem ctx.file ctx.config.Config.engines then begin
    let includes_intf =
      List.exists
        (fun (item : Parsetree.signature_item) ->
          match item.Parsetree.psig_desc with
          | Parsetree.Psig_include incl ->
              mty_mentions_engine_intf incl.Parsetree.pincl_mod
          | _ -> false)
        sg
    in
    if not includes_intf then
      add ctx Location.none "R5"
        "engine interface does not [include Engine_intf.S]"
  end

let missing_mli ~file =
  {
    Report.file;
    line = 1;
    col = 0;
    rule = "R5";
    msg = "module has no .mli interface";
  }
