(** The versioned lint configuration ([lint.config] at the repo root).

    Line-oriented, ['#'] comments. Five directives:

    - [allow <rule-id> <path-glob> [note]] — suppress a rule for matching
      files (e.g. wall-clock reads in the bench driver);
    - [deny-type <Module.type>] — a type whose values must not meet the
      polymorphic [compare]/[=] (rule R3);
    - [engine <path.mli>] — an interface that must [include Engine_intf.S]
      (rule R5);
    - [protocol <path.ml> <typename>] — a variant type whose constructors
      are protocol messages: the message-flow pass (rule R7) checks every
      sent constructor has a handler branch;
    - [phase-msg <Constructor>] — a protocol constructor whose send must be
      dominated by a [Coord_log.append] (rule R8). *)

type allow = { a_rule : string; a_glob : string; a_note : string }

type t = {
  allows : allow list;
  deny_types : string list;
  engines : string list;
  protocols : (string * string) list;
      (** [(file, typename)] pairs naming protocol-message types *)
  phase_msgs : string list;  (** constructors under R8 log-before-send *)
}

(** No allows, no deny-types, no engines. *)
val empty : t

(** [glob_match pattern path]: segment-wise matching where ["**"] spans any
    number of path segments and ['*'] matches within one segment. *)
val glob_match : string -> string -> bool

(** Parse configuration text.
    @raise Invalid_argument on an unknown directive. *)
val parse : string -> t

(** Parse the file at [path]; {!empty} if the file does not exist. *)
val load : string -> t

(** Is [rule] suppressed for [file] by some [allow] line? *)
val allowed : t -> rule:string -> file:string -> bool
