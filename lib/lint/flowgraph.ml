(* Cross-file message-flow pass (rule R7).

   Per file, [extract] collects four kinds of facts; [check] then joins
   them against the [protocol] declarations in lint.config:

   - variant declarations (type name -> constructor names), so a protocol
     type's constructor set comes from its defining file, not a hand-kept
     list;
   - sends: constructors passed to a send-like function — one whose name's
     last segment is [send] or [broadcast] ([Network.send],
     [Reliable.send], the engine's own [send]/[broadcast] wrappers). A
     message built as [let m = Ctor {...} in ... send ... m] is resolved
     through the local binding; anything more indirect (a parameter, a
     list element) is invisible, which errs toward missing a send, never
     toward a false finding;
   - handled constructors: every constructor appearing in any pattern —
     or-patterns, [when]-guarded cases and handler lambdas all count;
   - dispatch sites: a [match]/[function] whose cases name two or more
     constructors and end in a catch-all ([_] or a variable). One
     constructor plus a catch-all is the idiomatic single-message filter
     ([function Adv_ack ... -> Some ... | _ -> None]) and is not a
     dispatch.

   R7 then has two legs: a protocol constructor that is sent somewhere but
   matched by no pattern anywhere in the scanned set (attributed to the
   send site), and a dispatch site in [lib/core]/[lib/repl] whose
   catch-all swallows two or more protocol constructors (attributed to the
   catch-all case, so an inline waiver sits next to the [_]). *)

type dispatch = {
  d_loc : Location.t;  (** the catch-all case's pattern *)
  d_ctors : string list;  (** distinct constructor heads, sorted *)
}

type facts = {
  ff_file : string;
  ff_types : (string * string list) list;
  ff_sends : (string * Location.t) list;
  ff_handled : string list;
  ff_dispatches : dispatch list;
}

let last_segment lid =
  match List.rev (Longident.flatten lid) with [] -> "" | s :: _ -> s

let is_send_like (fn : Parsetree.expression) =
  match fn.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> (
      match last_segment txt with "send" | "broadcast" -> true | _ -> false)
  | _ -> false

(* ------------------------------------------------------------- extract *)

let constructor_head (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_construct ({ txt; _ }, _) -> Some (last_segment txt)
  | _ -> None

(* The distinct constructor heads a case list matches at the top level
   (descending through or-patterns and alias patterns only), plus the
   catch-all case's pattern location if one exists. *)
let case_heads (cases : Parsetree.case list) =
  let ctors = ref [] in
  let catch_all = ref None in
  let rec pat (p : Parsetree.pattern) =
    match p.Parsetree.ppat_desc with
    | Parsetree.Ppat_or (a, b) ->
        pat a;
        pat b
    | Parsetree.Ppat_alias (p', _) -> pat p'
    | Parsetree.Ppat_construct ({ txt; _ }, _) ->
        let c = last_segment txt in
        if not (List.mem c !ctors) then ctors := c :: !ctors
    | Parsetree.Ppat_any | Parsetree.Ppat_var _ ->
        if !catch_all = None then catch_all := Some p.Parsetree.ppat_loc
    | _ -> ()
  in
  List.iter (fun (c : Parsetree.case) -> pat c.Parsetree.pc_lhs) cases;
  (List.sort String.compare !ctors, !catch_all)

let extract ~file (str : Parsetree.structure) =
  let types = ref [] in
  let sends = ref [] in
  let handled = ref [] in
  let dispatches = ref [] in
  (* let-bound message values: [let m = Ctor {...}] anywhere in the file
     maps [m] to [Ctor] for send-argument resolution. *)
  let bound = ref [] in
  let note_handled c = if not (List.mem c !handled) then handled := c :: !handled in
  let note_cases cases =
    match case_heads cases with
    | ctors, Some loc when List.length ctors >= 2 ->
        dispatches := { d_loc = loc; d_ctors = ctors } :: !dispatches
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun self td ->
          (match td.Parsetree.ptype_kind with
          | Parsetree.Ptype_variant ctors ->
              types :=
                ( td.Parsetree.ptype_name.Location.txt,
                  List.map
                    (fun (c : Parsetree.constructor_declaration) ->
                      c.Parsetree.pcd_name.Location.txt)
                    ctors )
                :: !types
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration self td);
      value_binding =
        (fun self vb ->
          (match
             (vb.Parsetree.pvb_pat.Parsetree.ppat_desc,
              vb.Parsetree.pvb_expr.Parsetree.pexp_desc)
           with
          | ( Parsetree.Ppat_var { txt = v; _ },
              Parsetree.Pexp_construct ({ txt; _ }, _) ) ->
              bound := (v, last_segment txt) :: !bound
          | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
      pat =
        (fun self p ->
          (match constructor_head p with
          | Some c -> note_handled c
          | None -> ());
          Ast_iterator.default_iterator.pat self p);
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_apply (fn, args) when is_send_like fn ->
              List.iter
                (fun ((_, arg) : Asttypes.arg_label * Parsetree.expression) ->
                  match arg.Parsetree.pexp_desc with
                  | Parsetree.Pexp_construct ({ txt; _ }, _) ->
                      sends :=
                        (last_segment txt, arg.Parsetree.pexp_loc) :: !sends
                  | Parsetree.Pexp_ident { txt = Longident.Lident v; loc } -> (
                      match List.assoc_opt v !bound with
                      | Some c -> sends := (c, loc) :: !sends
                      | None -> ())
                  | _ -> ())
                args
          | Parsetree.Pexp_match (_, cases) -> note_cases cases
          | Parsetree.Pexp_function cases -> note_cases cases
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str;
  {
    ff_file = file;
    ff_types = !types;
    ff_sends = List.rev !sends;
    ff_handled = !handled;
    ff_dispatches = List.rev !dispatches;
  }

(* --------------------------------------------------------------- check *)

let finding ~file (loc : Location.t) msg =
  let p = loc.Location.loc_start in
  {
    Report.file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule = "R7";
    msg;
  }

let dispatch_in_scope file =
  let pfx p =
    String.length file >= String.length p
    && String.sub file 0 (String.length p) = p
  in
  pfx "lib/core/" || pfx "lib/repl/"

let check ~(config : Config.t) (facts : facts list) =
  (* One constructor set per [protocol <file> <type>] declaration, read
     from the named type's declaration in the named file. *)
  let protocol_sets =
    List.filter_map
      (fun (pfile, ptype) ->
        match List.find_opt (fun f -> f.ff_file = pfile) facts with
        | Some f -> (
            match List.assoc_opt ptype f.ff_types with
            | Some cs -> Some (ptype, cs)
            | None -> None)
        | None -> None)
      config.Config.protocols
  in
  let is_protocol c =
    List.exists (fun (_, cs) -> List.mem c cs) protocol_sets
  in
  let handled_anywhere c =
    List.exists (fun f -> List.mem c f.ff_handled) facts
  in
  let out = ref [] in
  List.iter
    (fun f ->
      (* Leg 1: sent protocol constructors with no handler branch. *)
      List.iter
        (fun (c, loc) ->
          if is_protocol c && not (handled_anywhere c) then
            out :=
              finding ~file:f.ff_file loc
                (Printf.sprintf
                   "protocol message %s is sent but matched by no handler \
                    branch in the scanned tree"
                   c)
              :: !out)
        f.ff_sends;
      (* Leg 2: a dispatch catch-all swallowing protocol messages. A site
         fires against a protocol type when it names at least two of its
         constructors explicitly (so it really is a dispatch over that
         type) while the catch-all still covers others of the same type
         (so messages can be eaten silently). *)
      if dispatch_in_scope f.ff_file then
        List.iter
          (fun d ->
            List.iter
              (fun (ptype, ctors) ->
                let matched = List.filter (fun c -> List.mem c ctors) d.d_ctors in
                let swallowed =
                  List.filter (fun c -> not (List.mem c d.d_ctors)) ctors
                in
                if List.length matched >= 2 && swallowed <> [] then
                  out :=
                    finding ~file:f.ff_file d.d_loc
                      (Printf.sprintf
                         "catch-all case in a dispatch over %s messages \
                          swallows %s silently; enumerate the constructors \
                          or waive with (* lint: flow-ok *)"
                         ptype
                         (String.concat ", " swallowed))
                    :: !out)
              protocol_sets)
          f.ff_dispatches)
    facts;
  List.rev !out
