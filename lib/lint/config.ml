type allow = { a_rule : string; a_glob : string; a_note : string }

type t = {
  allows : allow list;
  deny_types : string list;
  engines : string list;
  protocols : (string * string) list;
  phase_msgs : string list;
}

let empty =
  { allows = []; deny_types = []; engines = []; protocols = []; phase_msgs = [] }

(* ----------------------------------------------------------- globs *)

(* Segment-wise glob matching: '/' separates segments, "**" matches any
   number of whole segments (including zero), '*' matches within one
   segment. No character classes — lint.config does not need them. *)

let split_path s = String.split_on_char '/' s

let rec seg_match p pi s si =
  let plen = String.length p and slen = String.length s in
  if pi = plen then si = slen
  else if p.[pi] = '*' then
    (* Zero or more characters. *)
    seg_match p (pi + 1) s si || (si < slen && seg_match p pi s (si + 1))
  else si < slen && p.[pi] = s.[si] && seg_match p (pi + 1) s (si + 1)

let rec segs_match pat path =
  match (pat, path) with
  | [], [] -> true
  | "**" :: pat', _ ->
      segs_match pat' path
      || (match path with [] -> false | _ :: path' -> segs_match pat path')
  | p :: pat', s :: path' -> seg_match p 0 s 0 && segs_match pat' path'
  | _ :: _, [] | [], _ :: _ -> false

let glob_match pattern path = segs_match (split_path pattern) (split_path path)

(* ---------------------------------------------------------- parsing *)

(* Line-oriented format, '#' to end of line is a comment:

     allow <rule-id> <path-glob> [free-text note]
     deny-type <Module.type>
     engine <path/to/engine.mli>
     protocol <path/to/impl.ml> <typename>
     phase-msg <Constructor>                                           *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse content =
  let lines = String.split_on_char '\n' content in
  List.fold_left
    (fun acc line ->
      match tokens (strip_comment line) with
      | [] -> acc
      | "allow" :: rule :: glob :: note ->
          {
            acc with
            allows =
              acc.allows
              @ [ { a_rule = rule; a_glob = glob;
                    a_note = String.concat " " note } ];
          }
      | [ "deny-type"; ty ] -> { acc with deny_types = acc.deny_types @ [ ty ] }
      | [ "engine"; path ] -> { acc with engines = acc.engines @ [ path ] }
      | [ "protocol"; path; ty ] ->
          { acc with protocols = acc.protocols @ [ (path, ty) ] }
      | [ "phase-msg"; ctor ] ->
          { acc with phase_msgs = acc.phase_msgs @ [ ctor ] }
      | tok :: _ ->
          invalid_arg (Printf.sprintf "lint.config: unknown directive %S" tok))
    empty lines

let load path =
  if not (Sys.file_exists path) then empty
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    parse content
  end

let allowed t ~rule ~file =
  List.exists (fun a -> a.a_rule = rule && glob_match a.a_glob file) t.allows
