(** Readable-after-recovery gate for restarted replicas.

    A replica that crashes may miss mirrored updates for the update version
    that was open while it was down; the reliable channel retransmits them,
    but until they all land the replica's copy of that version is
    incomplete. On restart the engine records the recovered update version
    as the node's {e frontier}; the node may serve reads again only once its
    read version reaches the frontier — i.e. once a full quiescence round
    (which now requires this node's counters to balance) has certified the
    suspect version, which in turn implies every retransmitted mirror
    arrived. This is SNIPPETS.md Snippet 1's [readable_after_recovery]
    condition expressed in 3V terms. *)

type t

(** Empty gate set (every node readable). *)
val create : unit -> t

(** [mark t ~node ~frontier] arms the gate after a restart; repeated marks
    keep the highest frontier. *)
val mark : t -> node:int -> frontier:int -> unit

(** Currently armed frontier for [node], if any. *)
val frontier : t -> node:int -> int option

(** [readable t ~node ~vr] tests whether [node] with read version [vr] may
    serve reads; the gate auto-clears the first time it is satisfied. *)
val readable : t -> node:int -> vr:int -> bool

(** Total number of {!mark} calls (restarts observed), for reports. *)
val recoveries : t -> int
