(** Deterministic key-to-replica-group placement.

    The [nodes] data nodes are partitioned into groups of [replicas]
    consecutive nodes: group [g] owns nodes [g*k .. min((g+1)*k, n)-1]
    (the last group may be smaller when [k] does not divide [n]). Every
    commuting update addressed to a node is applied at every live member of
    that node's group; reads fail over along {!failover_order}. With
    [replicas = 1] every group is a singleton and the placement degenerates
    to the historical one-home-node-per-key layout. *)

type t

(** [create ~nodes ~replicas] validates [1 <= replicas <= nodes]. *)
val create : nodes:int -> replicas:int -> t

(** Number of data nodes the placement covers. *)
val nodes : t -> int

(** Replication factor [k]. *)
val replicas : t -> int

(** Number of replica groups, [ceil (nodes / k)]. *)
val group_count : t -> int

(** [group_of_node t i] is the group owning node [i]. *)
val group_of_node : t -> int -> int

(** [members t g] lists group [g]'s nodes in ascending order. *)
val members : t -> int -> int list

(** [peers t i] is [members] of [i]'s group without [i] itself. *)
val peers : t -> int -> int list

(** [failover_order t i] is [i]'s group rotated to start at [i]: the
    deterministic order in which a read addressed to [i] tries replicas. *)
val failover_order : t -> int -> int list

(** Deterministic FNV-1a hash of a key's bytes (stable across runs). *)
val key_hash : string -> int

(** [group_of_key t key] assigns [key] to a group by {!key_hash}. *)
val group_of_key : t -> string -> int

(** First member of [key]'s group — its home node under the placement. *)
val home_of_key : t -> string -> int

(** [serving_replica t ~live i] is the first node in [failover_order t i]
    for which [live] holds, or [None] when the whole group is down. *)
val serving_replica : t -> live:(int -> bool) -> int -> int option

(** Human-readable one-liner for reports. *)
val pp : Format.formatter -> t -> unit
