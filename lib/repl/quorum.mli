(** Quorum rules for group-aware counter polling.

    Version advancement tolerates up to [k-1] crashed replicas per group: a
    counter poll completes once every {e required} node replied, where a
    node is required iff it is live or its whole group is down (a fully-dead
    group blocks advancement — excusing it would declare versions consistent
    that no surviving replica can vouch for). Counter-matrix agreement is
    likewise restricted to pairs of considered nodes: an R bump at a live
    sender whose mirrored update is still in flight to a crashed replica is
    excused, because the reliable channel retransmits the mirror until the
    replica restarts and the readable-after-recovery rule keeps that replica
    from serving reads before its counters balance again. *)

(** [met placement ~live] holds when every group has ≥ 1 live member. *)
val met : Placement.t -> live:(int -> bool) -> bool

(** Groups with zero live members, ascending. *)
val dead_groups : Placement.t -> live:(int -> bool) -> int list

(** [required placement ~live] is the per-node poll-participation vector:
    [req.(i)] iff node [i]'s reply must be awaited (live, or member of a
    fully-dead group). *)
val required : Placement.t -> live:(int -> bool) -> bool array

(** [matrices_agree ~considered a b] compares [a.(p).(q) = b.(p).(q)] only
    over pairs with [considered.(p) && considered.(q)]. *)
val matrices_agree : considered:bool array -> int array array -> int array array -> bool
