let met placement ~live =
  let rec groups g =
    g >= Placement.group_count placement
    || List.exists live (Placement.members placement g)
       && groups (g + 1)
  in
  groups 0

let dead_groups placement ~live =
  List.filter
    (fun g -> not (List.exists live (Placement.members placement g)))
    (List.init (Placement.group_count placement) (fun g -> g))

let required placement ~live =
  let n = Placement.nodes placement in
  let req = Array.init n live in
  (* A fully-dead group has no live representative; the poll must then wait
     for one of its members to restart rather than excuse them all, so every
     member stays required. *)
  List.iter
    (fun g -> List.iter (fun m -> req.(m) <- true) (Placement.members placement g))
    (dead_groups placement ~live);
  req

let matrices_agree ~considered a b =
  let n = Array.length a in
  let ok = ref true in
  for p = 0 to n - 1 do
    for q = 0 to n - 1 do
      if considered.(p) && considered.(q) && a.(p).(q) <> b.(p).(q) then
        ok := false
    done
  done;
  !ok
