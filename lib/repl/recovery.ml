type t = { frontiers : (int, int) Hashtbl.t; mutable recoveries : int }

let create () = { frontiers = Hashtbl.create 8; recoveries = 0 }

let mark t ~node ~frontier =
  t.recoveries <- t.recoveries + 1;
  let cur =
    match Hashtbl.find_opt t.frontiers node with
    | Some f -> max f frontier
    | None -> frontier
  in
  Hashtbl.replace t.frontiers node cur

let frontier t ~node = Hashtbl.find_opt t.frontiers node

let readable t ~node ~vr =
  match Hashtbl.find_opt t.frontiers node with
  | None -> true
  | Some f ->
      if vr >= f then begin
        (* Caught up: the read version reached the frontier, which means a
           full quiescence round completed with this node live — every
           mirrored update it slept through has landed. The gate clears
           permanently (until the next crash re-arms it). *)
        Hashtbl.remove t.frontiers node;
        true
      end
      else false

let recoveries t = t.recoveries
