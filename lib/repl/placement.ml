type t = { nodes : int; k : int }

let create ~nodes ~replicas =
  if nodes <= 0 then invalid_arg "Placement.create: nodes must be positive";
  if replicas <= 0 then
    invalid_arg "Placement.create: replicas must be positive";
  if replicas > nodes then
    invalid_arg "Placement.create: replicas must not exceed nodes";
  { nodes; k = replicas }

let nodes t = t.nodes
let replicas t = t.k
let group_count t = (t.nodes + t.k - 1) / t.k
let group_of_node t node =
  if node < 0 || node >= t.nodes then
    invalid_arg (Printf.sprintf "Placement.group_of_node: node %d out of range" node);
  node / t.k

let members t group =
  if group < 0 || group >= group_count t then
    invalid_arg (Printf.sprintf "Placement.members: group %d out of range" group);
  let lo = group * t.k and hi = min ((group + 1) * t.k) t.nodes in
  List.init (hi - lo) (fun i -> lo + i)

let peers t node =
  List.filter (fun m -> m <> node) (members t (group_of_node t node))

let failover_order t node =
  (* Rotate the member list so it starts at [node]: every replica agrees on
     the same cyclic order, so two routers with the same liveness view pick
     the same serving replica. *)
  let ms = members t (group_of_node t node) in
  let after, before = List.partition (fun m -> m >= node) ms in
  after @ before

(* FNV-1a over the key bytes: deterministic across runs and OCaml versions
   (unlike [Hashtbl.hash], whose output is version-defined but which the
   project reserves for unordered-container internals). *)
let key_hash key =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun ch ->
      h := !h lxor Char.code ch;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    key;
  !h

let group_of_key t key = key_hash key mod group_count t

let home_of_key t key = group_of_key t key * t.k

let serving_replica t ~live node =
  let rec first = function
    | [] -> None
    | m :: rest -> if live m then Some m else first rest
  in
  first (failover_order t node)

let pp ppf t =
  Format.fprintf ppf "placement(n=%d k=%d groups=%d)" t.nodes t.k
    (group_count t)
