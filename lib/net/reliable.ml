module Sim = Simul.Sim

type 'm packet = Data of { src : int; seq : int; body : 'm } | Ack of { src : int; seq : int }

type config = {
  acks : bool;
  retransmit : bool;
  timeout : float;
  backoff : float;
  max_backoff : float;
}

let default_config =
  { acks = false; retransmit = true; timeout = 0.05; backoff = 2.0; max_backoff = 1.0 }

type 'm t = {
  net : 'm packet Network.t;
  cfg : config;
  next_seq : (int * int, int) Hashtbl.t;  (** (src, dst) -> last allocated *)
  pending : (int * int * int, 'm) Hashtbl.t;  (** (src, dst, seq) unacked *)
  seen : (int * int * int, unit) Hashtbl.t;  (** (receiver, src, seq) *)
  ack_floor : (int * int, int) Hashtbl.t;
      (** (src, dst) -> highest seq with every seq at or below it acked;
          the network's delivery-dedup records are pruned up to it *)
  acked_ahead : (int * int * int, unit) Hashtbl.t;
      (** (src, dst, seq) acked past a gap, waiting for the floor *)
  mutable retransmissions : int;
  mutable dup_dropped : int;
  mutable acks_sent : int;
}

let create ?(config = default_config) net =
  if config.acks && (config.timeout <= 0. || config.backoff < 1.) then
    invalid_arg "Reliable.create: timeout must be positive and backoff >= 1";
  (* Sequenced data packets are logical messages: however many times the
     channel retransmits one, the network reports at most one delivery per
     (src, seq, dst). Acks and raw-mode packets (seq = 0) keep per-copy
     accounting. *)
  Network.set_delivery_key net (function
    | Data { src; seq; body = _ } when seq > 0 -> Some (src, seq)
    | Data _ | Ack _ -> None);
  {
    net;
    cfg = config;
    next_seq = Hashtbl.create 64;
    pending = Hashtbl.create 256;
    seen = Hashtbl.create 1024;
    ack_floor = Hashtbl.create 64;
    acked_ahead = Hashtbl.create 64;
    retransmissions = 0;
    dup_dropped = 0;
    acks_sent = 0;
  }

let config t = t.cfg
let network t = t.net
let retransmissions t = t.retransmissions
let dup_dropped t = t.dup_dropped
let acks_sent t = t.acks_sent
let unacked t = Hashtbl.length t.pending

let ack_floor t ~src ~dst =
  match Hashtbl.find_opt t.ack_floor (src, dst) with Some f -> f | None -> 0

(* Advance the (src, dst) ack floor through newly-contiguous acks and prune
   the network's delivery-dedup records behind it. Acked sequences are
   contiguous from 1 save for reordering gaps, so the floor walk touches
   each sequence exactly once over a stream's lifetime — O(1) amortised. *)
let advance_ack_floor t ~src ~dst ~seq =
  let key = (src, dst) in
  let f = match Hashtbl.find_opt t.ack_floor key with Some f -> f | None -> 0 in
  if seq > f then
    if seq = f + 1 then begin
      Network.forget_delivered t.net ~src ~seq ~dst;
      let nf = ref seq in
      while Hashtbl.mem t.acked_ahead (src, dst, !nf + 1) do
        incr nf;
        Hashtbl.remove t.acked_ahead (src, dst, !nf);
        Network.forget_delivered t.net ~src ~seq:!nf ~dst
      done;
      Hashtbl.replace t.ack_floor key !nf
    end
    else Hashtbl.replace t.acked_ahead (src, dst, seq) ()

let unacked_to t ~dst =
  (* lint: hash-order-ok — a commutative integer count; the fold's result
     is independent of enumeration order. *)
  Hashtbl.fold
    (fun (_, d, _) _ acc -> if d = dst then acc + 1 else acc)
    t.pending 0

let rec arm_retransmit t ~src ~dst ~seq ~delay =
  Sim.schedule (Network.sim t.net) ~delay (fun () ->
      match Hashtbl.find_opt t.pending (src, dst, seq) with
      | None -> () (* acknowledged; the timer chain dies *)
      | Some body ->
          t.retransmissions <- t.retransmissions + 1;
          Network.send t.net ~src ~dst (Data { src; seq; body });
          arm_retransmit t ~src ~dst ~seq
            ~delay:(Float.min (delay *. t.cfg.backoff) t.cfg.max_backoff))

let send t ~src ~dst body =
  if not t.cfg.acks then
    (* Raw mode: one packet, no state, no timers — indistinguishable from
       using the network directly. *)
    Network.send t.net ~src ~dst (Data { src; seq = 0; body })
  else begin
    let key = (src, dst) in
    let seq =
      (match Hashtbl.find_opt t.next_seq key with Some n -> n | None -> 0) + 1
    in
    Hashtbl.replace t.next_seq key seq;
    Hashtbl.replace t.pending (src, dst, seq) body;
    Network.send t.net ~src ~dst (Data { src; seq; body });
    if t.cfg.retransmit then arm_retransmit t ~src ~dst ~seq ~delay:t.cfg.timeout
  end

let rec recv t ~node =
  match Network.recv t.net ~node with
  | Data { src; seq; body } ->
      if not t.cfg.acks then body
      else begin
        (* Ack every copy: the sender stops retransmitting as soon as any
           ack survives the network. *)
        t.acks_sent <- t.acks_sent + 1;
        Network.send t.net ~src:node ~dst:src (Ack { src = node; seq });
        if Hashtbl.mem t.seen (node, src, seq) then begin
          t.dup_dropped <- t.dup_dropped + 1;
          recv t ~node
        end
        else begin
          Hashtbl.replace t.seen (node, src, seq) ();
          body
        end
      end
  | Ack { src = acker; seq } ->
      (* We (node) sent (node, acker, seq); it arrived. *)
      Hashtbl.remove t.pending (node, acker, seq);
      advance_ack_floor t ~src:node ~dst:acker ~seq;
      recv t ~node
