module Sim = Simul.Sim
module Mailbox = Simul.Mailbox

type 'm t = {
  simulation : Sim.t;
  inboxes : 'm Mailbox.t array;
  latency : Latency.t;
  link_latency : src:int -> dst:int -> Latency.t option;
  links : (int * int, int) Hashtbl.t;
  mutable sent : int;
  mutable remote_sent : int;
}

let create simulation ~size ~latency ?(link_latency = fun ~src:_ ~dst:_ -> None)
    () =
  if size <= 0 then invalid_arg "Network.create: size must be positive";
  {
    simulation;
    inboxes = Array.init size (fun _ -> Mailbox.create ());
    latency;
    link_latency;
    links = Hashtbl.create 16;
    sent = 0;
    remote_sent = 0;
  }

let size t = Array.length t.inboxes
let sim t = t.simulation

let check_node t n ctx =
  if n < 0 || n >= size t then
    invalid_arg (Printf.sprintf "Network.%s: node %d out of range" ctx n)

let send t ~src ~dst msg =
  check_node t src "send";
  check_node t dst "send";
  t.sent <- t.sent + 1;
  if src <> dst then t.remote_sent <- t.remote_sent + 1;
  let cur =
    match Hashtbl.find_opt t.links (src, dst) with Some c -> c | None -> 0
  in
  Hashtbl.replace t.links (src, dst) (cur + 1);
  let delay =
    if src = dst then 0.
    else
      let model =
        match t.link_latency ~src ~dst with Some m -> m | None -> t.latency
      in
      Latency.sample model (Sim.rng t.simulation)
  in
  Sim.schedule t.simulation ~delay (fun () ->
      Mailbox.send t.inboxes.(dst) msg)

let recv t ~node =
  check_node t node "recv";
  Mailbox.recv t.simulation t.inboxes.(node)

let messages_sent t = t.sent
let remote_messages_sent t = t.remote_sent

let link_counts t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.links []
  |> List.sort compare
