module Sim = Simul.Sim
module Mailbox = Simul.Mailbox

type filter = src:int -> dst:int -> delay:float -> float list

type 'm t = {
  simulation : Sim.t;
  inboxes : 'm Mailbox.t array;
  latency : Latency.t;
  link_latency : src:int -> dst:int -> Latency.t option;
  links : (int * int, int) Hashtbl.t;
  mutable filter : filter option;
  mutable sent : int;
  mutable remote_sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable extra_copies : int;
}

let create simulation ~size ~latency ?(link_latency = fun ~src:_ ~dst:_ -> None)
    () =
  if size <= 0 then invalid_arg "Network.create: size must be positive";
  {
    simulation;
    inboxes = Array.init size (fun _ -> Mailbox.create ());
    latency;
    link_latency;
    links = Hashtbl.create 16;
    filter = None;
    sent = 0;
    remote_sent = 0;
    delivered = 0;
    dropped = 0;
    extra_copies = 0;
  }

let size t = Array.length t.inboxes
let sim t = t.simulation
let set_filter t f = t.filter <- Some f

let check_node t n ctx =
  if n < 0 || n >= size t then
    invalid_arg (Printf.sprintf "Network.%s: node %d out of range" ctx n)

let send t ~src ~dst msg =
  check_node t src "send";
  check_node t dst "send";
  t.sent <- t.sent + 1;
  if src <> dst then t.remote_sent <- t.remote_sent + 1;
  let cur =
    match Hashtbl.find_opt t.links (src, dst) with Some c -> c | None -> 0
  in
  Hashtbl.replace t.links (src, dst) (cur + 1);
  (* Self-sends have zero base latency (and sample nothing), but still pass
     through the filter so fault plans and delivery accounting see every
     message. *)
  let delay =
    if src = dst then 0.
    else
      let model =
        match t.link_latency ~src ~dst with Some m -> m | None -> t.latency
      in
      Latency.sample model (Sim.rng t.simulation)
  in
  let delays =
    match t.filter with None -> [ delay ] | Some f -> f ~src ~dst ~delay
  in
  (match delays with
  | [] -> t.dropped <- t.dropped + 1
  | _ :: extras ->
      t.delivered <- t.delivered + List.length delays;
      t.extra_copies <- t.extra_copies + List.length extras);
  List.iter
    (fun d ->
      Sim.schedule t.simulation ~delay:d (fun () ->
          Mailbox.send t.inboxes.(dst) msg))
    delays

let recv t ~node =
  check_node t node "recv";
  Mailbox.recv t.simulation t.inboxes.(node)

let messages_sent t = t.sent
let remote_messages_sent t = t.remote_sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let extra_copies t = t.extra_copies

let link_counts t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.links []
  |> List.sort compare
