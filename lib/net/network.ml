module Sim = Simul.Sim
module Mailbox = Simul.Mailbox

type filter = src:int -> dst:int -> delay:float -> float list

(* One scheduled drain event per (dst, deliver-at) burst: copies scheduled
   back-to-back for the same destination and instant append to the batch's
   pending list instead of each carrying their own heap event and closure. *)
type 'm batch = {
  b_at : float;
  b_dst : int;
  mutable b_seq : int;  (* sim sequence number of the batch's drain event *)
  mutable b_rev : 'm list;  (* pending copies, newest first *)
}

type 'm t = {
  simulation : Sim.t;
  inboxes : 'm Mailbox.t array;
  n : int;
  latency : Latency.t;
  link_latency : src:int -> dst:int -> Latency.t option;
  links : int array;  (** per-link send counts, keyed [src * n + dst] *)
  mutable filter : filter option;
  mutable delivery_key : ('m -> (int * int) option) option;
  delivered_seen : (int * int * int, unit) Hashtbl.t;
      (** (key-src, key-seq, dst) triples already counted in [delivered];
          pruned by {!forget_delivered} as the reliable channel's ack floor
          advances, so the table tracks the in-flight window, not the run *)
  mutable last_batch : 'm batch option;
  mutable sent : int;
  mutable remote_sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable extra_copies : int;
  mutable coalesced : int;
}

let create simulation ~size ~latency ?(link_latency = fun ~src:_ ~dst:_ -> None)
    ?(inbox_capacity = 16) () =
  if size <= 0 then invalid_arg "Network.create: size must be positive";
  {
    simulation;
    inboxes = Array.init size (fun _ -> Mailbox.create ~capacity:inbox_capacity ());
    n = size;
    latency;
    link_latency;
    links = Array.make (size * size) 0;
    filter = None;
    delivery_key = None;
    delivered_seen = Hashtbl.create 256;
    last_batch = None;
    sent = 0;
    remote_sent = 0;
    delivered = 0;
    dropped = 0;
    extra_copies = 0;
    coalesced = 0;
  }

let size t = t.n
let sim t = t.simulation
let set_filter t f = t.filter <- Some f
let set_delivery_key t f = t.delivery_key <- Some f

let check_node t n ctx =
  if n < 0 || n >= t.n then
    invalid_arg (Printf.sprintf "Network.%s: node %d out of range" ctx n)

(* [delivered] is bumped when the copy actually lands in the destination
   mailbox, so messages still in flight when a run ends are never reported
   as delivered. Messages carrying a delivery key are counted once per
   (key, dst): a retransmission landing after the original — routine under
   group-addressed sends, where a crashed replica's mirrors retransmit until
   it restarts — is the same logical delivery, not a second one. *)
let deliver t ~dst msg =
  (match t.delivery_key with
  | Some keyer -> (
      match keyer msg with
      | Some (ks, kq) ->
          if not (Hashtbl.mem t.delivered_seen (ks, kq, dst)) then begin
            Hashtbl.replace t.delivered_seen (ks, kq, dst) ();
            t.delivered <- t.delivered + 1
          end
      | None -> t.delivered <- t.delivered + 1)
  | None -> t.delivered <- t.delivered + 1);
  Mailbox.send t.inboxes.(dst) msg

let drain t b =
  let msgs = List.rev b.b_rev in
  b.b_rev <- [];
  (* A drain of [k] copies is [k] logical delivery events; report the
     [k - 1] that no longer carry their own heap event so event totals are
     identical with and without coalescing. *)
  (match msgs with
  | [] | [ _ ] -> ()
  | _ :: rest -> Sim.tally_coalesced t.simulation ~extra:(List.length rest));
  List.iter (fun m -> deliver t ~dst:b.b_dst m) msgs

(* Coalescing is sound only while the batch's drain event is still the
   newest scheduled event ([Sim.last_seq] unchanged): appending then
   behaves exactly like scheduling a fresh event immediately after it —
   same instant, adjacent sequence numbers, nothing scheduled in between —
   so the global event order (and hence every golden schedule) is
   byte-identical to the one-event-per-copy scheme. As soon as any other
   event is scheduled, the batch is sealed and the next copy opens a new
   one. *)
let schedule_delivery t ~dst ~delay msg =
  let sim = t.simulation in
  match t.last_batch with
  | Some b
    when b.b_dst = dst
         && b.b_at = Sim.now sim +. delay
         && Sim.last_seq sim = b.b_seq ->
      b.b_rev <- msg :: b.b_rev;
      t.coalesced <- t.coalesced + 1
  | _ ->
      let b = { b_at = Sim.now sim +. delay; b_dst = dst; b_seq = 0; b_rev = [ msg ] } in
      Sim.schedule sim ~delay (fun () -> drain t b);
      b.b_seq <- Sim.last_seq sim;
      t.last_batch <- Some b

let send t ~src ~dst msg =
  check_node t src "send";
  check_node t dst "send";
  t.sent <- t.sent + 1;
  if src <> dst then t.remote_sent <- t.remote_sent + 1;
  let link = (src * t.n) + dst in
  t.links.(link) <- t.links.(link) + 1;
  (* Self-sends have zero base latency (and sample nothing), but still pass
     through the filter so fault plans and delivery accounting see every
     message. *)
  let delay =
    if src = dst then 0.
    else
      let model =
        match t.link_latency ~src ~dst with Some m -> m | None -> t.latency
      in
      Latency.sample model (Sim.rng t.simulation)
  in
  match t.filter with
  | None -> schedule_delivery t ~dst ~delay msg
  | Some f -> (
      match f ~src ~dst ~delay with
      | [] -> t.dropped <- t.dropped + 1
      | d :: extras ->
          schedule_delivery t ~dst ~delay:d msg;
          List.iter
            (fun d ->
              t.extra_copies <- t.extra_copies + 1;
              schedule_delivery t ~dst ~delay:d msg)
            extras)

let recv t ~node =
  check_node t node "recv";
  Mailbox.recv t.simulation t.inboxes.(node)

let forget_delivered t ~src ~seq ~dst =
  Hashtbl.remove t.delivered_seen (src, seq, dst)

let delivered_seen_size t = Hashtbl.length t.delivered_seen
let messages_sent t = t.sent
let remote_messages_sent t = t.remote_sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let extra_copies t = t.extra_copies
let coalesced_deliveries t = t.coalesced

let link_counts t =
  (* Dense iteration is already in (src, dst) lexicographic order. *)
  let acc = ref [] in
  for src = t.n - 1 downto 0 do
    for dst = t.n - 1 downto 0 do
      let c = t.links.((src * t.n) + dst) in
      if c > 0 then acc := ((src, dst), c) :: !acc
    done
  done;
  !acc
