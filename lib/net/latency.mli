(** Message latency models for the simulated network.

    [Constant] preserves FIFO per link; the stochastic models can reorder
    messages, which is exactly what exercises the 3V protocol's tolerance to
    late version-advancement notices and in-flight subtransactions. *)

type t =
  | Constant of float  (** fixed delay in seconds *)
  | Uniform of float * float  (** uniform in [lo, hi] *)
  | Exponential of float  (** exponential with the given mean *)

(** [sample t rng] draws one delay, always ≥ 0. *)
val sample : t -> Random.State.t -> float

(** Mean of the model's distribution. *)
val mean : t -> float

(** Prints the model and its parameters, e.g. "uniform(0.01,0.05)". *)
val pp : Format.formatter -> t -> unit
