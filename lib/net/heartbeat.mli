(** Heartbeat transport: a dedicated side network carrying liveness beacons
    from every node to one monitor endpoint.

    Kept separate from the protocol network so (a) heartbeats never contend
    with — or wake — the coordinator's protocol inbox, and (b) fault plans
    can target the heartbeat class independently (a heartbeat-only loss storm
    provokes false suspicion without touching protocol traffic). The payload
    is just the sender id: the failure detector ({!Fd.Detector}) consumes
    arrival {e times}, not contents. *)

type t

(** [create sim ~size ~monitor ~period ~latency ()] builds the side network
    with [size] endpoints, delivering beats to [monitor]. [period] is the
    intended send cadence (recorded for introspection; the owner runs the
    send loops). *)
val create :
  Simul.Sim.t ->
  size:int ->
  monitor:int ->
  period:float ->
  latency:Latency.t ->
  unit ->
  t

(** The underlying network — exposed so a fault injector can install its
    heartbeat-class filter on it. *)
val network : t -> int Network.t

(** The monitor endpoint id beats are addressed to. *)
val monitor : t -> int

(** The intended send cadence. *)
val period : t -> float

(** [beat t ~node] sends one heartbeat from [node] to the monitor. *)
val beat : t -> node:int -> unit

(** [recv t] takes the next heartbeat at the monitor endpoint, suspending
    until one arrives; returns the sender id. *)
val recv : t -> int

(** Heartbeats sent so far (including ones the fault filter later drops). *)
val sent : t -> int

(** Heartbeats delivered to — and consumed by — the monitor so far. *)
val received : t -> int

(** Heartbeats whose every copy was suppressed by the installed filter. *)
val dropped : t -> int
