type t = Constant of float | Uniform of float * float | Exponential of float

let sample t rng =
  match t with
  | Constant d -> Float.max 0. d
  | Uniform (lo, hi) ->
      if hi <= lo then Float.max 0. lo
      else Float.max 0. (lo +. Random.State.float rng (hi -. lo))
  | Exponential mean ->
      if mean <= 0. then 0.
      else
        (* Inverse-CDF sampling; [1. -. float rng 1.] avoids log 0. *)
        -.mean *. log (1. -. Random.State.float rng 1.)

let mean = function
  | Constant d -> Float.max 0. d
  | Uniform (lo, hi) -> Float.max 0. ((lo +. hi) /. 2.)
  | Exponential m -> Float.max 0. m

let pp ppf = function
  | Constant d -> Format.fprintf ppf "constant(%g)" d
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform(%g,%g)" lo hi
  | Exponential m -> Format.fprintf ppf "exp(%g)" m
