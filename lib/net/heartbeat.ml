module Sim = Simul.Sim

(* A dedicated side network: heartbeats never share an inbox with protocol
   traffic (the coordinator's protocol endpoint has a single consumer that
   parks between advancements), and fault plans can target the heartbeat
   class separately from protocol messages. The payload is the sender id —
   real heartbeats carry no protocol state in this design; liveness is
   inferred from arrival times alone. *)
type t = {
  net : int Network.t;
  monitor : int;
  period : float;
  mutable sent : int;
  mutable received : int;
}

let create sim ~size ~monitor ~period ~latency () =
  if period <= 0. then
    invalid_arg "Heartbeat.create: period must be positive";
  if monitor < 0 || monitor >= size then
    invalid_arg "Heartbeat.create: monitor endpoint out of range";
  {
    net = Network.create sim ~size ~latency ();
    monitor;
    period;
    sent = 0;
    received = 0;
  }

let network t = t.net
let monitor t = t.monitor
let period t = t.period

let beat t ~node =
  t.sent <- t.sent + 1;
  Network.send t.net ~src:node ~dst:t.monitor node

let recv t =
  let src = Network.recv t.net ~node:t.monitor in
  t.received <- t.received + 1;
  src

let sent t = t.sent
let received t = t.received
let dropped t = Network.messages_dropped t.net
