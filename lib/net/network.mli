(** Asynchronous point-to-point messaging between simulated nodes.

    Each node owns one inbox. [send] never blocks the sender: delivery is
    scheduled after a sampled latency, so all inter-node communication in the
    engines is asynchronous by construction — matching the paper's model where
    "messages are sent asynchronously with respect to the execution of user
    transactions". Node ids are dense integers [0 .. size-1].

    Delivery is batched: copies scheduled back-to-back for the same
    destination and the same delivery instant share one heap event whose
    drain pushes them all, in order, into the inbox. Coalescing only
    happens while the batch's drain event is still the newest scheduled
    event, which makes it provably order-identical to scheduling one event
    per copy — golden schedules are byte-identical either way, and
    {!Simul.Sim.events_executed} still counts one event per delivered
    copy. *)

type 'm t

(** A pluggable per-delivery hook (see {!set_filter}): given the sampled
    base [delay] of a send, returns the delays at which copies of the
    message are actually delivered. [[]] drops the message; two or more
    entries duplicate it. The fault injector ({!Fault.Injector}) is the
    intended implementation. *)
type filter = src:int -> dst:int -> delay:float -> float list

(** [create sim ~size ~latency ()] builds a network of [size] nodes.
    [link_latency] optionally overrides the model per directed link.
    [inbox_capacity] (default 16) pre-sizes each inbox's ring buffer —
    pass the expected steady-state queue depth (e.g. derived from the
    configured arrival rate) so server inboxes never pay growth copies. *)
val create :
  Simul.Sim.t ->
  size:int ->
  latency:Latency.t ->
  ?link_latency:(src:int -> dst:int -> Latency.t option) ->
  ?inbox_capacity:int ->
  unit ->
  'm t

(** Number of nodes. *)
val size : 'm t -> int

(** The simulation the network schedules deliveries on. *)
val sim : 'm t -> Simul.Sim.t

(** [set_filter t f] installs [f] as the per-delivery filter. Every
    subsequent send — including self-sends — is routed through it. *)
val set_filter : 'm t -> filter -> unit

(** [set_delivery_key t keyer] teaches delivery accounting to recognise
    logical re-sends: a delivered message for which [keyer] returns
    [Some (src, seq)] bumps {!messages_delivered} only the first time that
    [(src, seq)] lands at a given destination. A reliable channel installs
    this so a retransmission arriving after the original is not counted as
    a second delivery. [None]-keyed messages count once per copy. *)
val set_delivery_key : 'm t -> ('m -> (int * int) option) -> unit

(** [send t ~src ~dst msg] schedules delivery of [msg] into [dst]'s inbox.
    Returns immediately (never suspends). Messages from a node to itself
    have zero base delay (no latency sample is drawn) but still pass
    through the installed filter and all accounting, so fault plans and
    counters see every message. *)
val send : 'm t -> src:int -> dst:int -> 'm -> unit

(** [recv t ~node] takes the next message for [node], suspending the calling
    process until one arrives. Intended for per-node server loops. *)
val recv : 'm t -> node:int -> 'm

(** Send attempts so far (including self-sends and filtered drops). *)
val messages_sent : 'm t -> int

(** Send attempts with [src <> dst]. *)
val remote_messages_sent : 'm t -> int

(** Copies actually placed into a destination mailbox so far (duplicates
    count once per copy). Counted at delivery time, not at send time:
    messages still in flight are {e not} included, so with no filter
    installed this equals {!messages_sent} only once every scheduled
    delivery has run. *)
val messages_delivered : 'm t -> int

(** Sends whose every copy was suppressed by the filter. *)
val messages_dropped : 'm t -> int

(** Extra copies beyond the first scheduled by the filter (duplications). *)
val extra_copies : 'm t -> int

(** Copies that joined an already-scheduled (dst, deliver-at) batch instead
    of carrying their own heap event. *)
val coalesced_deliveries : 'm t -> int

(** [forget_delivered t ~src ~seq ~dst] drops the delivery-dedup record for
    keyed message [(src, seq)] at [dst], if any. The reliable channel calls
    this as its ack floor advances: once a stream's sequence is fully
    acknowledged the sender stops retransmitting it, so the record's dedup
    work is done and keeping it would grow the table for the life of the
    run. (A straggler duplicate still in flight when its record is pruned
    would be double-counted in {!messages_delivered} — a bounded statistics
    skew, never protocol-visible, since receiver-side dedup lives in the
    reliable channel's own [seen] table.) *)
val forget_delivered : 'm t -> src:int -> seq:int -> dst:int -> unit

(** Current number of (src, seq, dst) delivery-dedup records retained.
    With ack-floor pruning this tracks the in-flight window and stays
    bounded on long runs; exposed so benches and tests can assert it. *)
val delivered_seen_size : 'm t -> int

(** Per-link counters as [((src, dst), count)] pairs, sorted. Counts send
    attempts, before any filtering. *)
val link_counts : 'm t -> ((int * int) * int) list
