(** Asynchronous point-to-point messaging between simulated nodes.

    Each node owns one inbox. [send] never blocks the sender: delivery is
    scheduled after a sampled latency, so all inter-node communication in the
    engines is asynchronous by construction — matching the paper's model where
    "messages are sent asynchronously with respect to the execution of user
    transactions". Node ids are dense integers [0 .. size-1]. *)

type 'm t

(** [create sim ~size ~latency ()] builds a network of [size] nodes. Messages
    from a node to itself are delivered with zero delay. [link_latency]
    optionally overrides the model per directed link. *)
val create :
  Simul.Sim.t ->
  size:int ->
  latency:Latency.t ->
  ?link_latency:(src:int -> dst:int -> Latency.t option) ->
  unit ->
  'm t

val size : 'm t -> int
val sim : 'm t -> Simul.Sim.t

(** [send t ~src ~dst msg] schedules delivery of [msg] into [dst]'s inbox.
    Returns immediately (never suspends). *)
val send : 'm t -> src:int -> dst:int -> 'm -> unit

(** [recv t ~node] takes the next message for [node], suspending the calling
    process until one arrives. Intended for per-node server loops. *)
val recv : 'm t -> node:int -> 'm

(** Messages sent so far (including self-sends). *)
val messages_sent : 'm t -> int

(** Messages sent with [src <> dst]. *)
val remote_messages_sent : 'm t -> int

(** Per-link counters as [((src, dst), count)] pairs, sorted. *)
val link_counts : 'm t -> ((int * int) * int) list
