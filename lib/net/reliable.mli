(** At-least-once + idempotent delivery on top of {!Network} — the classic
    reliable-channel construction: per-link sequence numbers, receiver-side
    dedup, acknowledgements, and timeout-driven retransmission with
    exponential backoff.

    A channel wraps a network whose message type is ['m packet]. With
    [config.acks = false] (the default) it degenerates to raw sends: one
    packet per send, no acks, no sequence allocation, no timers — byte-
    identical scheduling to using the network directly, which is what keeps
    existing deterministic tests and model-checking scenarios unperturbed.
    With [acks = true]:

    - every send allocates the next sequence number of its (src, dst) link
      and is acknowledged by the receiver on arrival;
    - the receiver drops packets whose (src, seq) it has already delivered
      (the durable-inbox idempotency pattern), so retransmissions and
      network-duplicated copies are invisible to the application;
    - with [retransmit = true] an unacknowledged packet is re-sent after
      [timeout], then [timeout * backoff], ... capped at [max_backoff].

    Retransmissions go through the network's fault filter like any other
    send, so a retransmitted copy can itself be dropped — delivery is
    guaranteed only if the link eventually passes a copy, which is exactly
    the at-least-once contract. *)

(** Wire format. [Ack {src; seq}] acknowledges the data packet [seq] sent
    {e to} [src] by the ack's receiver. *)
type 'm packet = Data of { src : int; seq : int; body : 'm } | Ack of { src : int; seq : int }

type config = {
  acks : bool;  (** enable sequence numbers, acks and dedup *)
  retransmit : bool;  (** re-send unacknowledged packets (requires [acks]) *)
  timeout : float;  (** first retransmission delay, virtual seconds *)
  backoff : float;  (** multiplier applied per retry (≥ 1) *)
  max_backoff : float;  (** retry-delay cap, virtual seconds *)
}

(** [{acks = false; retransmit = true; timeout = 0.05; backoff = 2.0;
    max_backoff = 1.0}] — raw sends until a caller opts in. *)
val default_config : config

type 'm t

(** [create ?config net] wraps [net]. The channel shares the network's
    simulation for its retransmission timers. *)
val create : ?config:config -> 'm packet Network.t -> 'm t

(** The configuration the channel was created with. *)
val config : 'm t -> config

(** The wrapped network. *)
val network : 'm t -> 'm packet Network.t

(** [send t ~src ~dst body] — never blocks. *)
val send : 'm t -> src:int -> dst:int -> 'm -> unit

(** [recv t ~node] suspends until the next {e new} application message for
    [node] arrives; acks and duplicate data packets are consumed
    internally. *)
val recv : 'm t -> node:int -> 'm

(** Retransmitted data packets so far. *)
val retransmissions : 'm t -> int

(** Duplicate data packets suppressed by receiver-side dedup. *)
val dup_dropped : 'm t -> int

(** Acknowledgement packets sent. *)
val acks_sent : 'm t -> int

(** Data packets currently sent but not yet acknowledged (0 when [acks] is
    off). *)
val unacked : 'm t -> int

(** Unacknowledged data packets addressed to [dst] — the catch-up backlog a
    crashed node is still owed. A recovering replica is fully caught up
    once this drains to 0 (every retransmitted message it slept through has
    landed and been acknowledged). *)
val unacked_to : 'm t -> dst:int -> int

(** [ack_floor t ~src ~dst] is the highest sequence on the [src → dst]
    stream with every sequence at or below it acknowledged (0 initially).
    As the floor advances, the channel prunes the network's per-(src, seq,
    dst) delivery-dedup records behind it ({!Network.forget_delivered}),
    which is what keeps that table bounded by the in-flight window on long
    retransmit-heavy runs. *)
val ack_floor : 'm t -> src:int -> dst:int -> int
