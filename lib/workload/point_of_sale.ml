module Spec = Txn.Spec
module Op = Txn.Op

type params = {
  stores : int;
  products : int;
  read_ratio : float;
  nc_ratio : float;
  price_fanout : int;
  arrival_rate : float;
  zipf_s : float;
}

let default ~nodes =
  {
    stores = nodes;
    products = 50;
    read_ratio = 0.2;
    nc_ratio = 0.;
    price_fanout = 2;
    arrival_rate = 300.;
    zipf_s = 0.9;
  }

let inventory_key ~product ~store = Printf.sprintf "inv:p%d@s%d" product store
let sold_key ~product = Printf.sprintf "sold:p%d@hq" product
let price_key ~product ~store = Printf.sprintf "price:p%d@s%d" product store

let sale p rng ~id ~product =
  let store = Random.State.int rng p.stores in
  let qty = 1. +. float_of_int (Random.State.int rng 3) in
  let store_ops =
    [
      Op.Incr (inventory_key ~product ~store, -.qty);
      Op.Append (inventory_key ~product ~store, Printf.sprintf "receipt-%d" id);
    ]
  in
  let hq_ops = [ Op.Incr (sold_key ~product, qty) ] in
  let tree =
    if store = 0 then Spec.subtxn 0 (store_ops @ hq_ops)
    else Spec.subtxn ~children:[ Spec.subtxn 0 hq_ops ] store store_ops
  in
  Spec.make ~id ~label:(Printf.sprintf "sale%d" id) tree

let price_change p rng ~id ~product =
  let stores = Generator.pick_distinct rng ~n:p.price_fanout ~among:p.stores in
  let new_price = 1. +. Random.State.float rng 99. in
  let ops_of store = [ Op.Overwrite (price_key ~product ~store, new_price) ] in
  Spec.make ~id
    ~label:(Printf.sprintf "reprice%d" id)
    (Generator.fanout_tree ~ops_of stores)

let stock_report p rng ~id ~product =
  ignore rng;
  let all = List.init p.stores Fun.id in
  let ops_of store =
    if store = 0 then
      [ Op.Read (inventory_key ~product ~store); Op.Read (sold_key ~product) ]
    else [ Op.Read (inventory_key ~product ~store) ]
  in
  Spec.make ~id
    ~label:(Printf.sprintf "report%d" id)
    (Generator.fanout_tree ~ops_of all)

let generator p =
  if p.stores <= 0 then invalid_arg "Point_of_sale: stores must be > 0";
  let popularity = Zipf.create ~n:p.products ~s:p.zipf_s in
  {
    Generator.gen_name = "point-of-sale";
    arrival_rate = p.arrival_rate;
    make =
      (fun rng ~id ->
        let product = Zipf.sample popularity rng in
        if Random.State.float rng 1. < p.read_ratio then
          stock_report p rng ~id ~product
        else if Random.State.float rng 1. < p.nc_ratio then
          price_change p rng ~id ~product
        else sale p rng ~id ~product);
  }
