module Spec = Txn.Spec

type t = {
  gen_name : string;
  arrival_rate : float;
  make : Random.State.t -> id:int -> Txn.Spec.t;
}

let name t = t.gen_name
let rate t = t.arrival_rate
let with_rate t arrival_rate = { t with arrival_rate }

let pick_distinct rng ~n ~among =
  let n = min n among in
  let rec go acc remaining =
    if remaining = 0 then List.rev acc
    else begin
      let candidate = Random.State.int rng among in
      if List.mem candidate acc then go acc remaining
      else go (candidate :: acc) (remaining - 1)
    end
  in
  go [] n

let fanout_tree ~ops_of = function
  | [] -> invalid_arg "Generator.fanout_tree: empty node list"
  | root_node :: rest ->
      let children = List.map (fun n -> Spec.subtxn n (ops_of n)) rest in
      Spec.subtxn ~children root_node (ops_of root_node)
