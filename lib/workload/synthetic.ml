module Spec = Txn.Spec
module Op = Txn.Op

type params = {
  nodes : int;
  shards : int;
  keys_per_node : int;
  fanout : int;
  read_ratio : float;
  nc_ratio : float;
  arrival_rate : float;
  zipf_s : float;
}

let default ~nodes =
  {
    nodes;
    shards = 1;
    keys_per_node = 50;
    fanout = 2;
    read_ratio = 0.25;
    nc_ratio = 0.;
    arrival_rate = 400.;
    zipf_s = 0.5;
  }

let key ~slot ~node = Printf.sprintf "k%d@n%d" slot node

let generator p =
  if p.nodes <= 0 then invalid_arg "Synthetic: nodes must be > 0";
  if p.fanout <= 0 then invalid_arg "Synthetic: fanout must be > 0";
  if p.shards < 1 || p.nodes mod p.shards <> 0 then
    invalid_arg "Synthetic: shards must divide nodes evenly";
  let popularity = Zipf.create ~n:p.keys_per_node ~s:p.zipf_s in
  (* The key space is finite and fixed, so render every key string once up
     front: [make] runs per generated transaction on the bench hot path,
     and a sprintf per op there is pure allocation churn. Same strings,
     same RNG draws — schedules are unchanged. *)
  let key_table =
    Array.init p.keys_per_node (fun slot ->
        Array.init p.nodes (fun node -> key ~slot ~node))
  in
  let key ~slot ~node = key_table.(slot).(node) in
  let make_legacy rng ~id =
    let slot = Zipf.sample popularity rng in
    let nodes = Generator.pick_distinct rng ~n:p.fanout ~among:p.nodes in
    let u = Random.State.float rng 1. in
    if u < p.read_ratio then begin
      let ops_of n = [ Op.Read (key ~slot ~node:n) ] in
      Spec.make ~id
        ~label:(Printf.sprintf "read%d" id)
        (Generator.fanout_tree ~ops_of nodes)
    end
    else if Random.State.float rng 1. < p.nc_ratio then begin
      let amount = Random.State.float rng 100. in
      let ops_of n = [ Op.Overwrite (key ~slot ~node:n, amount) ] in
      Spec.make ~id
        ~label:(Printf.sprintf "ncupd%d" id)
        (Generator.fanout_tree ~ops_of nodes)
    end
    else begin
      let ops_of n = [ Op.Incr (key ~slot ~node:n, 1.) ] in
      Spec.make ~id
        ~label:(Printf.sprintf "upd%d" id)
        (Generator.fanout_tree ~ops_of nodes)
    end
  in
  (* Shard-respecting variant: a sharded engine rejects update trees that
     cross shards (each shard has its own version frontier), so updates
     confine their fan-out to one uniformly-drawn shard's node block, while
     reads keep the unrestricted fan-out — exercising the cross-shard
     read-vector path. Only used with [shards > 1]; the legacy draw
     sequence (and hence every recorded schedule) is untouched at 1. *)
  let per = p.nodes / p.shards in
  let make_sharded rng ~id =
    let slot = Zipf.sample popularity rng in
    let u = Random.State.float rng 1. in
    if u < p.read_ratio then begin
      let nodes = Generator.pick_distinct rng ~n:p.fanout ~among:p.nodes in
      let ops_of n = [ Op.Read (key ~slot ~node:n) ] in
      Spec.make ~id
        ~label:(Printf.sprintf "read%d" id)
        (Generator.fanout_tree ~ops_of nodes)
    end
    else begin
      let shard = Random.State.int rng p.shards in
      let nodes =
        List.map
          (fun i -> (shard * per) + i)
          (Generator.pick_distinct rng ~n:p.fanout ~among:per)
      in
      if Random.State.float rng 1. < p.nc_ratio then begin
        let amount = Random.State.float rng 100. in
        let ops_of n = [ Op.Overwrite (key ~slot ~node:n, amount) ] in
        Spec.make ~id
          ~label:(Printf.sprintf "ncupd%d" id)
          (Generator.fanout_tree ~ops_of nodes)
      end
      else begin
        let ops_of n = [ Op.Incr (key ~slot ~node:n, 1.) ] in
        Spec.make ~id
          ~label:(Printf.sprintf "upd%d" id)
          (Generator.fanout_tree ~ops_of nodes)
      end
    end
  in
  {
    Generator.gen_name = "synthetic";
    arrival_rate = p.arrival_rate;
    make = (if p.shards <= 1 then make_legacy else make_sharded);
  }
