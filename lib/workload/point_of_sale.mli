(** Point-of-sale inventory workload (paper §1 and §6: "inventory
    management in a point-of-sale system").

    Stores are nodes; node 0 doubles as headquarters. A {e sale} decrements
    the store's inventory for a product, appends the receipt, and bumps the
    chain-wide sold-count summary at headquarters — all commuting. A
    {e stock report} reads one product's inventory across all stores plus
    the HQ summary. With [nc_ratio] > 0, that fraction of updates are
    {e price changes}: blind [Overwrite]s of a product's price at several
    stores, which do not commute and therefore exercise NC3V (paper §5). *)

type params = {
  stores : int;  (** = number of nodes; node 0 is also HQ *)
  products : int;
  read_ratio : float;
  nc_ratio : float;  (** fraction of updates that are price changes *)
  price_fanout : int;  (** stores touched by one price change *)
  arrival_rate : float;
  zipf_s : float;
}

(** [default ~nodes] is the stock parameter set for a chain of [nodes]
    stores (sales-heavy mix, occasional price changes). *)
val default : nodes:int -> params

(** [generator p] is the point-of-sale transaction stream for [p]. *)
val generator : params -> Generator.t

(** [inventory_key ~product ~store] names a product's inventory count at
    one store. *)
val inventory_key : product:int -> store:int -> string

(** [sold_key ~product] names the chain-wide sold-count summary at HQ. *)
val sold_key : product:int -> string

(** [price_key ~product ~store] names a product's price record at one
    store — the target of non-commuting price changes. *)
val price_key : product:int -> store:int -> string
