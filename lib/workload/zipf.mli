(** Zipf-distributed integer sampling, for skewed key popularity.

    [s = 0.] degenerates to the uniform distribution; larger [s]
    concentrates probability on low indices ("popular patients",
    "hot accounts"). Sampling is O(log n) via binary search on a
    precomputed CDF. *)

type t

(** [create ~n ~s] prepares a sampler over [0 .. n-1] with exponent [s].
    @raise Invalid_argument if [n <= 0] or [s < 0.]. *)
val create : n:int -> s:float -> t

(** [sample t rng] draws one index. *)
val sample : t -> Random.State.t -> int

(** [support t] is the [n] the sampler was created with. *)
val support : t -> int
