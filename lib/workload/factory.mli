(** Automated-factory operations monitoring (paper §6, example (a)).

    Production lines are nodes. Machines stream {e observations}: each
    recording appends a sensor reading to the machine's log, increments the
    machine's piece count, and bumps the line's shift total — the
    insert-detail-plus-update-summary shape of data recording systems. A
    {e shift report} reads every line's total plus a sampled machine;
    a {e counter reset} (maintenance) overwrites a machine's piece count —
    a non-commuting update exercising NC3V, controlled by [reset_ratio]. *)

type params = {
  lines : int;  (** = number of nodes *)
  machines_per_line : int;
  read_ratio : float;
  reset_ratio : float;  (** fraction of updates that are counter resets *)
  arrival_rate : float;
  zipf_s : float;  (** machine activity skew *)
}

val default : nodes:int -> params
val generator : params -> Generator.t

val machine_key : line:int -> machine:int -> string
val line_total_key : line:int -> string
