(** Automated-factory operations monitoring (paper §6, example (a)).

    Production lines are nodes. Machines stream {e observations}: each
    recording appends a sensor reading to the machine's log, increments the
    machine's piece count, and bumps the line's shift total — the
    insert-detail-plus-update-summary shape of data recording systems. A
    {e shift report} reads every line's total plus a sampled machine;
    a {e counter reset} (maintenance) overwrites a machine's piece count —
    a non-commuting update exercising NC3V, controlled by [reset_ratio]. *)

type params = {
  lines : int;  (** = number of nodes *)
  machines_per_line : int;
  read_ratio : float;
  reset_ratio : float;  (** fraction of updates that are counter resets *)
  arrival_rate : float;
  zipf_s : float;  (** machine activity skew *)
}

(** [default ~nodes] is the stock parameter set for [nodes] production
    lines (observation-heavy mix, occasional counter resets). *)
val default : nodes:int -> params

(** [generator p] is the factory-monitoring transaction stream for [p]. *)
val generator : params -> Generator.t

(** [machine_key ~line ~machine] names one machine's piece-count record. *)
val machine_key : line:int -> machine:int -> string

(** [line_total_key ~line] names a line's shift-total summary record. *)
val line_total_key : line:int -> string
