(** Workload generators: named streams of transaction specifications.

    A generator owns an arrival rate (for Poisson open-loop driving by the
    harness) and a [make] function producing the [id]-th transaction from
    the run's RNG. Domain-specific workloads ({!Hospital},
    {!Call_recording}, {!Point_of_sale}, {!Synthetic}) construct values of
    this type. *)

type t = {
  gen_name : string;
  arrival_rate : float;  (** transactions per virtual second *)
  make : Random.State.t -> id:int -> Txn.Spec.t;
}

(** [name t] is the generator's display name (e.g. "hospital"). *)
val name : t -> string

(** [rate t] is the open-loop arrival rate in transactions per virtual
    second. *)
val rate : t -> float

(** [with_rate t r] is [t] at a different arrival rate. *)
val with_rate : t -> float -> t

(** [pick_distinct rng ~n ~among] draws [min n among] distinct ints from
    [0 .. among-1] — helper for choosing fan-out node sets. *)
val pick_distinct : Random.State.t -> n:int -> among:int -> int list

(** [fanout_tree ~ops_of nodes] builds a root-plus-children subtransaction
    tree over the given node list: the first node hosts the root (with its
    ops), the rest become children. [nodes] must be non-empty. *)
val fanout_tree : ops_of:(int -> Txn.Op.t list) -> int list -> Txn.Spec.subtxn
