(** The paper's motivating hospital-billing workload (§1, Figure 1).

    Departments are database nodes; each patient has one balance record per
    department. A {e visit} transaction touches [visit_fanout] departments,
    incrementing the patient's balance and appending a procedure record at
    each — all commuting. An {e inquiry} transaction reads the patient's
    balance at every department it was ever charged in (we read all
    departments, which maximizes the checker's ability to observe partial
    charges). When [front_end] is set, transactions fan out from an
    empty root subtransaction, exactly like the front-end box of Figure 1. *)

type params = {
  departments : int;  (** = number of nodes *)
  patients : int;
  visit_fanout : int;  (** departments charged per visit (≥ 1) *)
  read_ratio : float;  (** fraction of inquiries in the mix *)
  arrival_rate : float;
  zipf_s : float;  (** patient popularity skew; 0 = uniform *)
  front_end : bool;
  charge : float;  (** amount charged per department visit *)
  post_delay : float;
      (** maximum extra local processing time before a department posts its
          charge (uniform in [0, post_delay]) — the paper's observation that
          "the final charge amount ... is typically not known" at visit time;
          larger values produce later stragglers *)
}

(** [default ~nodes] is the Figure-1 parameter set for [nodes]
    departments (visit-heavy mix, uniform patients, no front end). *)
val default : nodes:int -> params

(** [generator p] is the hospital-billing transaction stream for [p]. *)
val generator : params -> Generator.t

(** [balance_key ~patient ~department] is the patient's balance record key
    at one department. *)
val balance_key : patient:int -> department:int -> string
