module Spec = Txn.Spec
module Op = Txn.Op

type params = {
  regions : int;
  customers : int;
  read_ratio : float;
  audit_ratio : float;
  arrival_rate : float;
  zipf_s : float;
}

let default ~nodes =
  {
    regions = nodes;
    customers = 200;
    read_ratio = 0.2;
    audit_ratio = 0.3;
    arrival_rate = 500.;
    zipf_s = 0.6;
  }

let balance_key ~customer ~region = Printf.sprintf "cust%d@r%d" customer region
let region_total_key ~region = Printf.sprintf "total@r%d" region

let record_call p rng ~id ~customer =
  let caller_region = Random.State.int rng p.regions in
  let callee_region = Random.State.int rng p.regions in
  let minutes = 1. +. Random.State.float rng 30. in
  let caller_ops =
    [
      Op.Append
        ( balance_key ~customer ~region:caller_region,
          Printf.sprintf "call-%d-%.0fmin" id minutes );
      Op.Incr (balance_key ~customer ~region:caller_region, 0.1 *. minutes);
      Op.Incr (region_total_key ~region:caller_region, 0.1 *. minutes);
    ]
  in
  let callee_ops =
    [
      Op.Incr (region_total_key ~region:callee_region, 0.05 *. minutes);
      Op.Append
        ( region_total_key ~region:callee_region,
          Printf.sprintf "interconnect-%d" id );
    ]
  in
  let tree =
    if callee_region = caller_region then
      Spec.subtxn caller_region (caller_ops @ callee_ops)
    else
      Spec.subtxn
        ~children:[ Spec.subtxn callee_region callee_ops ]
        caller_region caller_ops
  in
  Spec.make ~id ~label:(Printf.sprintf "call%d" id) tree

let billing p rng ~id ~customer =
  (* Read the customer's balance in two regions (home + roaming). *)
  let regions = Generator.pick_distinct rng ~n:2 ~among:p.regions in
  let ops_of r = [ Op.Read (balance_key ~customer ~region:r) ] in
  Spec.make ~id
    ~label:(Printf.sprintf "bill%d" id)
    (Generator.fanout_tree ~ops_of regions)

let audit p rng ~id =
  let root = Random.State.int rng p.regions in
  let rest = List.filter (fun r -> r <> root) (List.init p.regions Fun.id) in
  let ops_of r = [ Op.Read (region_total_key ~region:r) ] in
  Spec.make ~id
    ~label:(Printf.sprintf "audit%d" id)
    (Generator.fanout_tree ~ops_of (root :: rest))

let generator p =
  if p.regions <= 0 then invalid_arg "Call_recording: regions must be > 0";
  let popularity = Zipf.create ~n:p.customers ~s:p.zipf_s in
  {
    Generator.gen_name = "call-recording";
    arrival_rate = p.arrival_rate;
    make =
      (fun rng ~id ->
        if Random.State.float rng 1. < p.read_ratio then begin
          if Random.State.float rng 1. < p.audit_ratio then audit p rng ~id
          else billing p rng ~id ~customer:(Zipf.sample popularity rng)
        end
        else record_call p rng ~id ~customer:(Zipf.sample popularity rng));
  }
