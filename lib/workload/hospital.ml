module Spec = Txn.Spec
module Op = Txn.Op

type params = {
  departments : int;
  patients : int;
  visit_fanout : int;
  read_ratio : float;
  arrival_rate : float;
  zipf_s : float;
  front_end : bool;
  charge : float;
  post_delay : float;
}

let default ~nodes =
  {
    departments = nodes;
    patients = 100;
    visit_fanout = 2;
    read_ratio = 0.25;
    arrival_rate = 200.;
    zipf_s = 0.8;
    front_end = false;
    charge = 10.;
    post_delay = 0.;
  }

let balance_key ~patient ~department =
  Printf.sprintf "patient%d@dept%d" patient department

let visit p rng ~id ~patient =
  let departments =
    Generator.pick_distinct rng ~n:p.visit_fanout ~among:p.departments
  in
  let posting_think () =
    if p.post_delay > 0. then Random.State.float rng p.post_delay else 0.
  in
  let ops_of dept =
    [
      Op.Incr (balance_key ~patient ~department:dept, p.charge);
      Op.Append
        ( balance_key ~patient ~department:dept,
          Printf.sprintf "procedure-by-visit-%d" id );
    ]
  in
  let tree =
    if p.front_end then begin
      (* Figure 1: an empty root at the front end fans out to departments. *)
      let front = Random.State.int rng p.departments in
      let children =
        List.map
          (fun d -> Spec.subtxn ~think:(posting_think ()) d (ops_of d))
          departments
      in
      Spec.subtxn ~children front []
    end
    else begin
      match departments with
      | [] -> assert false
      | root_dept :: rest ->
          let children =
            List.map
              (fun d -> Spec.subtxn ~think:(posting_think ()) d (ops_of d))
              rest
          in
          Spec.subtxn ~children root_dept (ops_of root_dept)
    end
  in
  Spec.make ~id ~label:(Printf.sprintf "visit%d" id) tree

let inquiry p rng ~id ~patient =
  let all = List.init p.departments (fun d -> d) in
  let ops_of dept = [ Op.Read (balance_key ~patient ~department:dept) ] in
  let tree =
    if p.front_end then begin
      let front = Random.State.int rng p.departments in
      let children = List.map (fun d -> Spec.subtxn d (ops_of d)) all in
      Spec.subtxn ~children front []
    end
    else Generator.fanout_tree ~ops_of all
  in
  Spec.make ~id ~label:(Printf.sprintf "inquiry%d" id) tree

let generator p =
  if p.departments <= 0 then invalid_arg "Hospital: departments must be > 0";
  if p.visit_fanout <= 0 then invalid_arg "Hospital: visit_fanout must be > 0";
  let popularity = Zipf.create ~n:p.patients ~s:p.zipf_s in
  {
    Generator.gen_name = "hospital";
    arrival_rate = p.arrival_rate;
    make =
      (fun rng ~id ->
        let patient = Zipf.sample popularity rng in
        if Random.State.float rng 1. < p.read_ratio then
          inquiry p rng ~id ~patient
        else visit p rng ~id ~patient);
  }
