(** Parameterized synthetic recording workload, for controlled sweeps.

    Every parameter the experiments sweep is explicit: node count, keys per
    node, update fan-out, read ratio, non-commuting ratio, key skew. Updates
    increment [fanout] keys on distinct nodes; reads read the same key
    shape; non-commuting updates overwrite instead of incrementing. *)

type params = {
  nodes : int;
  keys_per_node : int;
  fanout : int;  (** nodes touched per transaction *)
  read_ratio : float;
  nc_ratio : float;  (** fraction of updates that are non-commuting *)
  arrival_rate : float;
  zipf_s : float;
}

val default : nodes:int -> params
val generator : params -> Generator.t

val key : slot:int -> node:int -> string
