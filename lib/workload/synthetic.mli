(** Parameterized synthetic recording workload, for controlled sweeps.

    Every parameter the experiments sweep is explicit: node count, keys per
    node, update fan-out, read ratio, non-commuting ratio, key skew. Updates
    increment [fanout] keys on distinct nodes; reads read the same key
    shape; non-commuting updates overwrite instead of incrementing. *)

type params = {
  nodes : int;
  shards : int;
      (** when > 1, update fan-out is confined to one uniformly-drawn
          shard (contiguous block of [nodes / shards] nodes, matching the
          engine's shard map) while reads fan out across all nodes — the
          shape a sharded engine admits. Must divide [nodes]. The default
          1 keeps the legacy unrestricted draw sequence exactly. *)
  keys_per_node : int;
  fanout : int;  (** nodes touched per transaction *)
  read_ratio : float;
  nc_ratio : float;  (** fraction of updates that are non-commuting *)
  arrival_rate : float;
  zipf_s : float;
}

(** [default ~nodes] is a moderate baseline parameter set for [nodes]
    nodes (fanout 2, mostly commuting updates, light skew). *)
val default : nodes:int -> params

(** [generator p] is the synthetic transaction stream for [p]. *)
val generator : params -> Generator.t

(** [key ~slot ~node] names the [slot]-th counter record at [node]. *)
val key : slot:int -> node:int -> string
