(** Telephone call-recording workload (paper §6; "AT&T's call recording
    system records several million calls every hour").

    Regions are nodes. Recording a call appends a call-detail record and
    increments the caller's balance in the caller's region, increments the
    callee-side interconnect summary in the callee's region, and bumps each
    region's running total — the classic detail-plus-summary shape of data
    recording systems. Reads are either {e billing} queries (one customer's
    balance plus their detail records) or {e audit} queries (every region's
    running total — a full-fan-out read that is very sensitive to partial
    observation). *)

type params = {
  regions : int;  (** = number of nodes *)
  customers : int;
  read_ratio : float;
  audit_ratio : float;  (** fraction of reads that are audits *)
  arrival_rate : float;
  zipf_s : float;
}

(** [default ~nodes] is the stock parameter set for [nodes] regions
    (recording-heavy mix, a small share of audit reads). *)
val default : nodes:int -> params

(** [generator p] is the call-recording transaction stream for [p]. *)
val generator : params -> Generator.t

(** [balance_key ~customer ~region] names a customer's balance record in
    one region. *)
val balance_key : customer:int -> region:int -> string

(** [region_total_key ~region] names a region's running-total summary. *)
val region_total_key : region:int -> string
