module Spec = Txn.Spec
module Op = Txn.Op

type params = {
  lines : int;
  machines_per_line : int;
  read_ratio : float;
  reset_ratio : float;
  arrival_rate : float;
  zipf_s : float;
}

let default ~nodes =
  {
    lines = nodes;
    machines_per_line = 12;
    read_ratio = 0.15;
    reset_ratio = 0.;
    arrival_rate = 600.;
    zipf_s = 0.7;
  }

let machine_key ~line ~machine = Printf.sprintf "machine%d@line%d" machine line
let line_total_key ~line = Printf.sprintf "total@line%d" line

let observation p rng ~id ~machine =
  let line = Random.State.int rng p.lines in
  let pieces = 1. +. float_of_int (Random.State.int rng 4) in
  let local_ops =
    [
      Op.Append
        (machine_key ~line ~machine, Printf.sprintf "reading-%d" id);
      Op.Incr (machine_key ~line ~machine, pieces);
      Op.Incr (line_total_key ~line, pieces);
    ]
  in
  (* Some observations also feed a neighbouring line's aggregation stage
     (parts flowing between lines), making the transaction multi-node. *)
  let tree =
    if p.lines > 1 && Random.State.int rng 3 = 0 then begin
      let next_line = (line + 1) mod p.lines in
      Spec.subtxn
        ~children:
          [ Spec.subtxn next_line [ Op.Incr (line_total_key ~line:next_line, pieces) ] ]
        line local_ops
    end
    else Spec.subtxn line local_ops
  in
  Spec.make ~id ~label:(Printf.sprintf "obs%d" id) tree

let shift_report p rng ~id ~machine =
  let sample_line = Random.State.int rng p.lines in
  let ops_of line =
    if line = sample_line then
      [ Op.Read (line_total_key ~line); Op.Read (machine_key ~line ~machine) ]
    else [ Op.Read (line_total_key ~line) ]
  in
  Spec.make ~id
    ~label:(Printf.sprintf "report%d" id)
    (Generator.fanout_tree ~ops_of (List.init p.lines Fun.id))

let counter_reset p rng ~id ~machine =
  let line = Random.State.int rng p.lines in
  Spec.make ~id
    ~label:(Printf.sprintf "reset%d" id)
    (Spec.subtxn line [ Op.Overwrite (machine_key ~line ~machine, 0.) ])

let generator p =
  if p.lines <= 0 then invalid_arg "Factory: lines must be > 0";
  let popularity = Zipf.create ~n:p.machines_per_line ~s:p.zipf_s in
  {
    Generator.gen_name = "factory";
    arrival_rate = p.arrival_rate;
    make =
      (fun rng ~id ->
        let machine = Zipf.sample popularity rng in
        if Random.State.float rng 1. < p.read_ratio then
          shift_report p rng ~id ~machine
        else if Random.State.float rng 1. < p.reset_ratio then
          counter_reset p rng ~id ~machine
        else observation p rng ~id ~machine);
  }
