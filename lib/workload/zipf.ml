type t = { n : int; cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0. then invalid_arg "Zipf.create: s must be nonnegative";
  let weights =
    Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** s))
  in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.;
  { n; cdf }

let sample t rng =
  let u = Random.State.float rng 1. in
  (* Smallest i with cdf.(i) >= u. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (t.n - 1)

let support t = t.n
