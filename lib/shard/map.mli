(** Deterministic key / node → shard assignment.

    Nodes are partitioned into [shards] contiguous blocks of
    [nodes / shards] members each, aligned so a {!Repl.Placement} replica
    group never straddles a shard boundary (the engine validates
    divisibility at creation). Keys map to shards through the same FNV-1a
    digest {!Repl.Placement} uses for key homing, so the assignment is a
    pure function of the key bytes — identical across runs, processes and
    word sizes. *)

type t

(** [create ~nodes ~shards] builds the map.
    @raise Invalid_argument if [nodes <= 0], [shards < 1],
    [shards > nodes], or [shards] does not divide [nodes] evenly. *)
val create : nodes:int -> shards:int -> t

(** Total node count. *)
val nodes : t -> int

(** Shard count [S]. *)
val shards : t -> int

(** Nodes per shard ([nodes / shards]). *)
val nodes_per_shard : t -> int

(** [of_node t i] is the shard owning node [i] ([i / nodes_per_shard]).
    @raise Invalid_argument if [i] is out of range. *)
val of_node : t -> int -> int

(** Member node ids of shard [s], ascending.
    @raise Invalid_argument if [s] is out of range. *)
val members : t -> int -> int list

(** Lowest node id of shard [s].
    @raise Invalid_argument if [s] is out of range. *)
val first_node : t -> int -> int

(** 30-bit FNV-1a digest of the key bytes (word-size independent). *)
val key_hash : string -> int

(** [of_key t key] is the shard the key hashes to — deterministic and,
    for FNV-distributed keys, balanced to within sampling noise. *)
val of_key : t -> string -> int

(** [node_of_key t key] is the node the key hashes to (for workload
    generators that want shard-respecting placement without inverting
    the node-qualified key naming scheme). *)
val node_of_key : t -> string -> int
