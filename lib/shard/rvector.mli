(** The cross-shard read-vector service.

    With per-shard coordinators each shard advances its own (vu, vr)
    frontier, so a read transaction spanning shards needs one {e vector}
    of per-shard read versions assigned atomically at submission. Each
    shard coordinator {!publish}es its new read version the moment
    phase 3 completes (every shard member acknowledged the switch);
    {!assign} snapshots the whole published vector in one step. Because
    every component is monotone and the snapshot is atomic, any two
    assigned vectors are componentwise comparable — the no-torn-read
    guarantee that keeps cross-shard read histories one-copy
    serializable.

    The service also tracks, per (shard, version), how many assigned
    read entries have not yet {!arrived} at their target shard. An entry
    in that window has opened no counter pair, so the shard's R = C
    quiescence poll cannot see it; the coordinator consults {!pending}
    and defers retiring (and garbage-collecting) the old read version
    until the count drains. *)

type t

(** [create ~shards ~init_vr] starts every component at [init_vr].
    @raise Invalid_argument if [shards < 1]. *)
val create : shards:int -> init_vr:int -> t

(** Shard count the service was created with. *)
val shards : t -> int

(** [publish t ~shard ~vr] raises the shard's published read version
    (monotone: lower values are ignored).
    @raise Invalid_argument if [shard] is out of range. *)
val publish : t -> shard:int -> vr:int -> unit

(** Snapshot of the current published vector (fresh array). *)
val vector : t -> int array

(** [assign t ~entries] snapshots the published vector and registers
    [entries.(s)] in-flight read entries against shard [s]'s component.
    Returns the assigned vector (caller owns the array).
    @raise Invalid_argument if [entries] has the wrong length or a
    negative count. *)
val assign : t -> entries:int array -> int array

(** [arrived t ~shard ~version] retires one in-flight entry registered
    by {!assign}.
    @raise Invalid_argument on a shard/version with no pending entries
    (an accounting bug, not a runtime condition). *)
val arrived : t -> shard:int -> version:int -> unit

(** Outstanding unarrived entries for (shard, version); 0 when clear. *)
val pending : t -> shard:int -> version:int -> int

(** Total vectors handed out (accounting). *)
val assigned : t -> int
