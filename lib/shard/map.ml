type t = { nodes : int; shards : int; per : int }

let create ~nodes ~shards =
  if nodes <= 0 then invalid_arg "Shard.Map.create: nodes must be positive";
  if shards < 1 then invalid_arg "Shard.Map.create: shards must be >= 1";
  if shards > nodes then
    invalid_arg "Shard.Map.create: shards must not exceed nodes";
  if nodes mod shards <> 0 then
    invalid_arg "Shard.Map.create: shards must divide nodes evenly";
  { nodes; shards; per = nodes / shards }

let nodes t = t.nodes
let shards t = t.shards
let nodes_per_shard t = t.per
let of_node t i =
  if i < 0 || i >= t.nodes then
    invalid_arg (Printf.sprintf "Shard.Map.of_node: node %d out of range" i);
  i / t.per

let members t s =
  if s < 0 || s >= t.shards then
    invalid_arg (Printf.sprintf "Shard.Map.members: shard %d out of range" s);
  List.init t.per (fun i -> (s * t.per) + i)

let first_node t s =
  if s < 0 || s >= t.shards then
    invalid_arg (Printf.sprintf "Shard.Map.first_node: shard %d out of range" s);
  s * t.per

(* FNV-1a over the key bytes, masked to 30 bits so the result is identical
   on 32- and 64-bit builds — the same digest {!Repl.Placement} uses for
   key homing, so a key's shard and its home group live in the same
   arithmetic family and remain stable across runs and processes. *)
let key_hash key =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    key;
  !h

let node_of_key t key = key_hash key mod t.nodes

(* Derived from the key's node, not [hash mod shards] directly, so a key's
   shard is always the shard of the node it homes to. *)
let of_key t key = node_of_key t key / t.per
