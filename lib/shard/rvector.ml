(* Published vector + per-(shard, version) pending tallies. [published]
   only ever grows per component ([publish] takes a max), and [assign]
   copies it atomically — the simulation is cooperatively scheduled and
   nothing here yields — so any two assigned vectors are componentwise
   comparable. That total order is what kills cross-shard read-read MVSG
   cycles: a cycle would need two transactions each reading "newer" than
   the other in different shards, i.e. incomparable vectors.

   [pending] counts read entries assigned a version that have not yet
   arrived at their target shard and opened a counter pair there. Until
   arrival the entry is invisible to the shard's R/C quiescence poll, so
   the shard coordinator consults {!pending} and defers retiring the old
   read version while any assignment against it is still in flight —
   closing the assignment→arrival window the GC race would otherwise
   slip through. *)

type t = {
  shards : int;
  published : int array;
  pending : (int, int) Hashtbl.t array;  (* per shard: version -> count *)
  mutable assigned : int;  (* vectors handed out (accounting) *)
}

let create ~shards ~init_vr =
  if shards < 1 then invalid_arg "Shard.Rvector.create: shards must be >= 1";
  {
    shards;
    published = Array.make shards init_vr;
    pending = Array.init shards (fun _ -> Hashtbl.create 8);
    assigned = 0;
  }

let shards t = t.shards

let check_shard t s ctx =
  if s < 0 || s >= t.shards then
    invalid_arg (Printf.sprintf "Shard.Rvector.%s: shard %d out of range" ctx s)

let publish t ~shard ~vr =
  check_shard t shard "publish";
  if vr > t.published.(shard) then t.published.(shard) <- vr

let vector t = Array.copy t.published

let pending t ~shard ~version =
  check_shard t shard "pending";
  match Hashtbl.find_opt t.pending.(shard) version with
  | Some n -> n
  | None -> 0

let assign t ~entries =
  if Array.length entries <> t.shards then
    invalid_arg "Shard.Rvector.assign: entries length must equal shards";
  let vec = Array.copy t.published in
  Array.iteri
    (fun s count ->
      if count < 0 then invalid_arg "Shard.Rvector.assign: negative entry count";
      if count > 0 then begin
        let tbl = t.pending.(s) in
        let cur =
          match Hashtbl.find_opt tbl vec.(s) with Some n -> n | None -> 0
        in
        Hashtbl.replace tbl vec.(s) (cur + count)
      end)
    entries;
  t.assigned <- t.assigned + 1;
  vec

let arrived t ~shard ~version =
  check_shard t shard "arrived";
  let tbl = t.pending.(shard) in
  match Hashtbl.find_opt tbl version with
  | Some n when n > 1 -> Hashtbl.replace tbl version (n - 1)
  | Some _ -> Hashtbl.remove tbl version
  | None ->
      invalid_arg
        (Printf.sprintf
           "Shard.Rvector.arrived: no pending assignment for shard %d \
            version %d"
           shard version)

let assigned t = t.assigned
