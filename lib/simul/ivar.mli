(** Single-assignment synchronization variable ("future").

    An {!t} starts empty; {!fill} writes it exactly once and wakes every
    process blocked in {!read}. Used to hand transaction results back to
    their submitters without any polling. *)

type 'a t

(** A fresh empty IVar. *)
val create : unit -> 'a t

(** [fill v x] sets the value and wakes all readers.
    @raise Invalid_argument if [v] is already full. *)
val fill : 'a t -> 'a -> unit

(** [read sim v] returns the value, suspending the calling process until
    {!fill} happens. Returns immediately if already full. *)
val read : Sim.t -> 'a t -> 'a

(** [peek v] is the value if filled. *)
val peek : 'a t -> 'a option

(** [is_full v] is true once {!fill} has happened. *)
val is_full : 'a t -> bool
