open Effect
open Effect.Deep

type proc = {
  pid : int;
  pname : string Lazy.t;
      (* names are diagnostic-only (stall reports, failure attribution), so
         they are rendered lazily: spawning half a million subtransaction
         fibers must not pay a [sprintf] each for names nobody reads *)
  daemon : bool;
  mutable blocked : bool;
  mutable finished : bool;
}

type event = { at : float; seq : int; run : unit -> unit }

type t = {
  mutable clock : float;
  mutable seq : int;
  mutable next_pid : int;
  mutable executed : int;
  mutable current : proc option;
  mutable failure : (string * exn) option;
  queue : event Heap.t;
  procs : (int, proc) Hashtbl.t;
  random : Random.State.t;
}

type outcome = Completed | Stalled of string list | Hit_limit

exception Process_failure of string * exn

let leq_event a b = a.at < b.at || (a.at = b.at && a.seq <= b.seq)

(* Inert filler for vacated heap slots: captures nothing, so executed events
   (and the continuations their closures capture) are collectable as soon as
   they are popped. *)
let dummy_event = { at = neg_infinity; seq = 0; run = ignore }

let create ?(seed = 42) ?(queue_capacity = 16) () =
  {
    clock = 0.;
    seq = 0;
    next_pid = 0;
    executed = 0;
    current = None;
    failure = None;
    queue = Heap.create ~capacity:queue_capacity ~dummy:dummy_event ~leq:leq_event ();
    procs = Hashtbl.create 64;
    random = Random.State.make [| seed |];
  }

let now t = t.clock
let rng t = t.random
let events_executed t = t.executed
let last_seq t = t.seq
let tally_coalesced t ~extra = t.executed <- t.executed + extra

let push t ~at run =
  t.seq <- t.seq + 1;
  Heap.add t.queue { at; seq = t.seq; run }

let schedule t ?(delay = 0.) f =
  assert (delay >= 0.);
  push t ~at:(t.clock +. delay) f

(* A single effect suffices: suspend with a waker-registration function. *)
type _ Effect.t += Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let suspend _t register = perform (Suspend register)

let sleep t d =
  assert (d >= 0.);
  suspend t (fun waker -> push t ~at:(t.clock +. d) (fun () -> waker ()))

let yield t = suspend t (fun waker -> push t ~at:t.clock (fun () -> waker ()))

(* Run [body] as a coroutine attached to [proc]. Suspension registers a waker
   that re-enters the event loop; resumption restores [t.current] so nested
   suspensions keep the right process attribution. *)
let start_process t proc body =
  let fiber () =
    match_with body ()
      {
        (* Finished processes are dropped from [t.procs] immediately: the
           table only exists to report still-blocked processes at stall
           time, and keeping every completed fiber's record alive would
           grow the table (and its proc records) for the life of the run. *)
        retc =
          (fun () ->
            proc.finished <- true;
            Hashtbl.remove t.procs proc.pid);
        exnc =
          (fun exn ->
            proc.finished <- true;
            Hashtbl.remove t.procs proc.pid;
            if t.failure = None then
              t.failure <- Some (Lazy.force proc.pname, exn));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
                Some
                  (fun (k : (a, _) continuation) ->
                    proc.blocked <- true;
                    let fired = ref false in
                    let waker v =
                      if !fired then
                        invalid_arg
                          (Printf.sprintf "Sim: waker for process %S invoked twice"
                             (Lazy.force proc.pname));
                      fired := true;
                      push t ~at:t.clock (fun () ->
                          proc.blocked <- false;
                          let saved = t.current in
                          t.current <- Some proc;
                          continue k v;
                          t.current <- saved)
                    in
                    register waker)
            | _ -> None);
      }
  in
  let saved = t.current in
  t.current <- Some proc;
  fiber ();
  t.current <- saved

let spawn t ?(daemon = false) ?name ?namef body =
  t.next_pid <- t.next_pid + 1;
  let pid = t.next_pid in
  let pname =
    match (name, namef) with
    | Some n, _ -> Lazy.from_val n
    | None, Some f -> Lazy.from_fun f
    | None, None -> lazy (Printf.sprintf "proc-%d" pid)
  in
  let proc = { pid; pname; daemon; blocked = false; finished = false } in
  Hashtbl.replace t.procs pid proc;
  push t ~at:t.clock (fun () -> start_process t proc body)

let stalled_names t =
  Hashtbl.fold
    (fun _ p acc ->
      if p.blocked && (not p.finished) && not p.daemon then
        Lazy.force p.pname :: acc
      else acc)
    t.procs []
  |> List.sort String.compare

let run t ?until () =
  let horizon = match until with None -> infinity | Some u -> u in
  let rec loop () =
    match Heap.peek_min t.queue with
    | None -> (
        match stalled_names t with [] -> Completed | names -> Stalled names)
    | Some ev when ev.at > horizon -> Hit_limit
    | Some _ ->
        let ev = Heap.pop_min t.queue in
        if ev.at < t.clock then
          invalid_arg "Sim: event scheduled in the past";
        t.clock <- ev.at;
        t.executed <- t.executed + 1;
        ev.run ();
        (match t.failure with
        | Some (name, exn) -> raise (Process_failure (name, exn))
        | None -> ());
        loop ()
  in
  loop ()
