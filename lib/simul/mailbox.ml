type 'a t = { items : 'a Queue.t; waiters : ('a -> unit) Queue.t }

let create () = { items = Queue.create (); waiters = Queue.create () }

let send m x =
  match Queue.take_opt m.waiters with
  | Some waker -> waker x
  | None -> Queue.add x m.items

let recv sim m =
  match Queue.take_opt m.items with
  | Some x -> x
  | None -> Sim.suspend sim (fun waker -> Queue.add waker m.waiters)

let try_recv m = Queue.take_opt m.items
let length m = Queue.length m.items
