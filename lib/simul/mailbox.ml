(* Items live in a growable ring buffer rather than a linked [Queue.t]: a
   send on the steady-state path is two array stores (slot and tail bump)
   with no per-message cons cell, and pre-sizing from the expected inbox
   depth means no growth copies either. Waiters stay in a [Queue.t] — a
   mailbox rarely has more than one blocked receiver. *)

type 'a t = {
  mutable buf : 'a option array;
  mutable head : int;  (* next slot to read *)
  mutable count : int;
  waiters : ('a -> unit) Queue.t;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { buf = Array.make capacity None; head = 0; count = 0; waiters = Queue.create () }

let grow m =
  let cap = Array.length m.buf in
  let nbuf = Array.make (cap * 2) None in
  (* Unroll the ring to the base of the new buffer, preserving FIFO order. *)
  for i = 0 to m.count - 1 do
    nbuf.(i) <- m.buf.((m.head + i) mod cap)
  done;
  m.buf <- nbuf;
  m.head <- 0

let send m x =
  match Queue.take_opt m.waiters with
  | Some waker -> waker x
  | None ->
      let cap = Array.length m.buf in
      if m.count = cap then grow m;
      let cap = Array.length m.buf in
      m.buf.((m.head + m.count) mod cap) <- Some x;
      m.count <- m.count + 1

let take m =
  let x = m.buf.(m.head) in
  m.buf.(m.head) <- None;
  m.head <- (m.head + 1) mod Array.length m.buf;
  m.count <- m.count - 1;
  match x with Some v -> v | None -> assert false

let recv sim m =
  if m.count > 0 then take m
  else Sim.suspend sim (fun waker -> Queue.add waker m.waiters)

let try_recv m = if m.count > 0 then Some (take m) else None
let length m = m.count
