(** Array-backed binary min-heap.

    Used by the simulator's event queue. The ordering predicate [leq] is fixed
    at creation; ties are broken by the caller embedding a sequence number in
    the element, which keeps the whole simulation deterministic. *)

type 'a t

(** [create ~leq] is an empty heap ordered by [leq] (a total preorder:
    [leq a b] means [a] sorts before or equal to [b]). *)
val create : leq:('a -> 'a -> bool) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [add h x] inserts [x]. O(log n). *)
val add : 'a t -> 'a -> unit

(** [pop_min h] removes and returns the minimum element.
    @raise Not_found if the heap is empty. *)
val pop_min : 'a t -> 'a

(** [peek_min h] returns the minimum element without removing it. *)
val peek_min : 'a t -> 'a option

(** [clear h] removes every element. *)
val clear : 'a t -> unit

(** [to_list h] is all elements in unspecified order (snapshot). *)
val to_list : 'a t -> 'a list
