(** Array-backed binary min-heap.

    Used by the simulator's event queue. The ordering predicate [leq] is fixed
    at creation; ties are broken by the caller embedding a sequence number in
    the element, which keeps the whole simulation deterministic.

    The implementation is tuned for the event-loop hot path: sifting is
    hole-based (one ordering call and one array store per level), vacated
    slots are overwritten with [dummy] so popped elements — and the closures
    they capture — become collectable immediately, and {!clear} keeps the
    backing array so a drained-and-refilled heap does not re-grow. *)

type 'a t

(** [create ?capacity ~dummy ~leq ()] is an empty heap ordered by [leq] (a
    {e total} preorder: [leq a b] means [a] sorts before or equal to [b];
    totality — [leq a b || leq b a] for all elements — is required, and is
    what lets the heap use a single predicate call per comparison). [dummy]
    is an inert element used to fill empty slots; it is never returned.
    [capacity] (default 0) pre-sizes the backing array so a heap whose
    steady-state population is known up front never pays doubling copies. *)
val create : ?capacity:int -> dummy:'a -> leq:('a -> 'a -> bool) -> unit -> 'a t

(** Number of elements currently in the heap. *)
val length : 'a t -> int

(** [is_empty h] is [length h = 0]. *)
val is_empty : 'a t -> bool

(** [add h x] inserts [x]. O(log n). *)
val add : 'a t -> 'a -> unit

(** [pop_min h] removes and returns the minimum element. The vacated slot is
    reset to [dummy], so the heap keeps no reference to popped elements.
    @raise Not_found if the heap is empty. *)
val pop_min : 'a t -> 'a

(** [peek_min h] returns the minimum element without removing it. *)
val peek_min : 'a t -> 'a option

(** [clear h] removes every element. Capacity is retained; every slot is
    reset to [dummy]. *)
val clear : 'a t -> unit

(** [to_list h] is all elements in unspecified order (snapshot). *)
val to_list : 'a t -> 'a list
