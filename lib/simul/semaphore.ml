type t = { mutable permits : int; waiters : (unit -> unit) Queue.t }

let create n =
  assert (n >= 0);
  { permits = n; waiters = Queue.create () }

let acquire sim s =
  if s.permits > 0 then s.permits <- s.permits - 1
  else Sim.suspend sim (fun waker -> Queue.add (fun () -> waker ()) s.waiters)

let release s =
  match Queue.take_opt s.waiters with
  | Some waker -> waker ()
  | None -> s.permits <- s.permits + 1

let with_permit sim s f =
  acquire sim s;
  match f () with
  | x ->
      release s;
      x
  | exception exn ->
      release s;
      raise exn

let available s = s.permits
let waiting s = Queue.length s.waiters
