type 'a state = Empty of ('a -> unit) list | Full of 'a
type 'a t = { mutable state : 'a state }

let create () = { state = Empty [] }

let fill v x =
  match v.state with
  | Full _ -> invalid_arg "Ivar.fill: already full"
  | Empty waiters ->
      v.state <- Full x;
      (* Wake in registration order for determinism. *)
      List.iter (fun waker -> waker x) (List.rev waiters)

let read sim v =
  match v.state with
  | Full x -> x
  | Empty _ ->
      Sim.suspend sim (fun waker ->
          match v.state with
          | Full x -> waker x
          | Empty waiters -> v.state <- Empty (waker :: waiters))

let peek v = match v.state with Full x -> Some x | Empty _ -> None
let is_full v = match v.state with Full _ -> true | Empty _ -> false
