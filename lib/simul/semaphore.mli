(** Counting semaphore with FIFO wakeup, for simulated processes.

    Used to model local critical sections (e.g. a node's local serialization
    of subtransactions) without ever blocking on remote activity. *)

type t

(** [create n] is a semaphore with [n] initial permits. *)
val create : int -> t

(** [acquire sim s] takes one permit, suspending while none are available. *)
val acquire : Sim.t -> t -> unit

(** [release s] returns one permit, waking the oldest waiter if any. *)
val release : t -> unit

(** [with_permit sim s f] runs [f ()] holding a permit, releasing it even if
    [f] raises. *)
val with_permit : Sim.t -> t -> (unit -> 'a) -> 'a

(** Currently available permits. *)
val available : t -> int

(** Number of processes blocked in {!acquire}. *)
val waiting : t -> int
