(** Deterministic discrete-event simulation kernel.

    A simulation owns a virtual clock and an event queue. Green processes are
    OCaml 5 effect-handler coroutines: a process suspends by registering a
    {e waker}; invoking the waker schedules the continuation at the current
    virtual time. Events with equal timestamps are ordered by insertion
    sequence, so a run with a fixed seed is fully deterministic.

    All of the distributed machinery in this repository (nodes, messages,
    transactions, the version-advancement coordinator) runs as processes on
    this kernel. Virtual time is in abstract seconds. *)

type t

(** Result of {!run}. *)
type outcome =
  | Completed  (** Event queue drained; no non-daemon process is blocked. *)
  | Stalled of string list
      (** Event queue drained but the named non-daemon processes are still
          blocked — a deadlock or a lost wakeup in the model under test. *)
  | Hit_limit  (** Stopped because the [until] horizon was reached. *)

exception Process_failure of string * exn
(** Raised by {!run} when a process terminated with an uncaught exception:
    carries the process name and the original exception. *)

(** [create ?seed ?queue_capacity ()] is a fresh simulation whose RNG is
    seeded with [seed] (default 42). [queue_capacity] pre-sizes the event
    heap's backing array (default 16, grown by doubling): pass the expected
    steady-state number of in-flight events — e.g. derived from the
    configured arrival rate — to avoid growth copies during a run.
    Capacity never affects scheduling order. *)
val create : ?seed:int -> ?queue_capacity:int -> unit -> t

(** Current virtual time, in seconds. *)
val now : t -> float

(** The simulation's deterministic random state. *)
val rng : t -> Random.State.t

(** Number of simulated events executed so far. Counts heap pops plus any
    deliveries reported via {!tally_coalesced}, so a batched drain of [k]
    same-instant messages counts as [k] events — identical to scheduling
    them individually. *)
val events_executed : t -> int

(** Sequence number of the most recently scheduled event. Two equal-time
    events execute in sequence order; a scheduler that wants to coalesce
    work into an already-scheduled event may do so soundly only while that
    event is still the newest one (its sequence equals [last_seq]) — see
    [Network.schedule_delivery]. *)
val last_seq : t -> int

(** [tally_coalesced t ~extra] adds [extra] to {!events_executed}: a batch
    event that performs [k] logical deliveries reports [k - 1] here so
    event counts stay comparable (and golden event totals stay identical)
    whether or not batching kicked in. *)
val tally_coalesced : t -> extra:int -> unit

(** [spawn t ?daemon ?name ?namef body] creates a process running [body].
    Daemon processes (e.g. server loops) may remain blocked forever without
    the run being reported as {!Stalled}. Default [daemon] is [false].
    [namef] is a lazy alternative to [name] for hot spawn paths: it is only
    rendered if the name is actually reported (stall, failure, waker
    misuse); [name] wins when both are given. *)
val spawn :
  t -> ?daemon:bool -> ?name:string -> ?namef:(unit -> string) -> (unit -> unit) -> unit

(** [schedule t ?delay f] enqueues plain callback [f] to run at
    [now t +. delay] (default delay 0). The callback must not suspend. *)
val schedule : t -> ?delay:float -> (unit -> unit) -> unit

(** [suspend t register] suspends the calling process. [register] receives the
    waker; calling the waker with a value resumes the process with that value
    at the then-current virtual time. The waker must be invoked exactly
    once. Must be called from within a process. *)
val suspend : t -> (('a -> unit) -> unit) -> 'a

(** [sleep t d] suspends the calling process for [d] virtual seconds. *)
val sleep : t -> float -> unit

(** [yield t] reschedules the calling process behind already-pending events at
    the current time. *)
val yield : t -> unit

(** [run t ?until ()] executes events until the queue drains or virtual time
    would exceed [until]. Re-raises the first process failure as
    {!Process_failure}. Can be called again after [Hit_limit] to continue. *)
val run : t -> ?until:float -> unit -> outcome
