type 'a t = {
  leq : 'a -> 'a -> bool;
  dummy : 'a;
  mutable data : 'a array;
  mutable size : int;
}

(* For a total preorder, [leq x y && not (leq y x)] is equivalent to
   [not (leq y x)] (totality gives [leq x y || leq y x]), so a single
   predicate call per comparison suffices on the sift paths. *)
let create ?(capacity = 0) ~dummy ~leq () =
  let capacity = max capacity 0 in
  { leq; dummy; data = Array.make capacity dummy; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let grow h =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap h.dummy in
    Array.blit h.data 0 ndata 0 h.size;
    h.data <- ndata
  end

(* Hole-based sift-up: move parents down into the hole until [x]'s position
   is found, then write [x] once — half the array stores of swap-based
   sifting, one ordering call per level. *)
let add h x =
  grow h;
  let data = h.data in
  let i = ref h.size in
  h.size <- h.size + 1;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if not (h.leq data.(parent) x) then begin
      data.(!i) <- data.(parent);
      i := parent
    end
    else continue_ := false
  done;
  data.(!i) <- x

let pop_min h =
  if h.size = 0 then raise Not_found;
  let data = h.data in
  let min = data.(0) in
  h.size <- h.size - 1;
  let n = h.size in
  if n > 0 then begin
    let x = data.(n) in
    (* Clear the vacated slot: a stale reference there would pin the popped
       element (and any closures it captures) against the GC for the life
       of the heap. *)
    data.(n) <- h.dummy;
    (* Hole-based sift-down of [x] from the root. *)
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      let sv = ref x in
      if l < n && not (h.leq !sv data.(l)) then begin
        smallest := l;
        sv := data.(l)
      end;
      if r < n && not (h.leq !sv data.(r)) then begin
        smallest := r;
        sv := data.(r)
      end;
      if !smallest <> !i then begin
        data.(!i) <- !sv;
        i := !smallest
      end
      else continue_ := false
    done;
    data.(!i) <- x
  end
  else
    (* Emptied: clear the root slot too, so the last element popped does not
       stay reachable through the heap. *)
    data.(0) <- h.dummy;
  min

let peek_min h = if h.size = 0 then None else Some h.data.(0)

(* Keep the backing array (capacity reuse for the steady-state event loop),
   but clear every slot so cleared elements become collectable. *)
let clear h =
  Array.fill h.data 0 (Array.length h.data) h.dummy;
  h.size <- 0

let to_list h =
  let rec take i acc = if i < 0 then acc else take (i - 1) (h.data.(i) :: acc) in
  take (h.size - 1) []
