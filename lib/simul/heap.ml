type 'a t = {
  leq : 'a -> 'a -> bool;
  mutable data : 'a array;
  mutable size : int;
}

let create ~leq = { leq; data = [||]; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let grow h x =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    (* [x] is only a seed value for the fresh slots; real contents are
       blitted from the old array. *)
    let ndata = Array.make ncap x in
    Array.blit h.data 0 ndata 0 h.size;
    h.data <- ndata
  end

let add h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  (* Sift up. *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if h.leq h.data.(i) h.data.(parent) && not (h.leq h.data.(parent) h.data.(i))
      then begin
        let tmp = h.data.(i) in
        h.data.(i) <- h.data.(parent);
        h.data.(parent) <- tmp;
        up parent
      end
    end
  in
  up (h.size - 1)

let pop_min h =
  if h.size = 0 then raise Not_found;
  let min = h.data.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.data.(0) <- h.data.(h.size);
    (* Sift down. *)
    let rec down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let smallest = ref i in
      if l < h.size && not (h.leq h.data.(!smallest) h.data.(l)) then smallest := l;
      if r < h.size && not (h.leq h.data.(!smallest) h.data.(r)) then smallest := r;
      if !smallest <> i then begin
        let tmp = h.data.(i) in
        h.data.(i) <- h.data.(!smallest);
        h.data.(!smallest) <- tmp;
        down !smallest
      end
    in
    down 0
  end;
  min

let peek_min h = if h.size = 0 then None else Some h.data.(0)

let clear h =
  h.size <- 0;
  h.data <- [||]

let to_list h =
  let rec take i acc = if i < 0 then acc else take (i - 1) (h.data.(i) :: acc) in
  take (h.size - 1) []
