(** Unbounded FIFO channel between simulated processes.

    Senders never block; receivers suspend while the mailbox is empty.
    Messages are delivered in send order, and blocked receivers are woken in
    arrival order, keeping runs deterministic. Queued items are held in a
    growable ring buffer, so a steady-state send allocates nothing beyond
    its slot box and a pre-sized mailbox never copies its backing array. *)

type 'a t

(** [create ?capacity ()] is an empty mailbox. [capacity] (default 16)
    pre-sizes the ring buffer to the expected queue depth; the ring still
    grows by doubling if exceeded. Capacity never affects delivery order. *)
val create : ?capacity:int -> unit -> 'a t

(** [send m x] enqueues [x], waking the oldest blocked receiver if any. *)
val send : 'a t -> 'a -> unit

(** [recv sim m] dequeues the next message, suspending until one exists. *)
val recv : Sim.t -> 'a t -> 'a

(** [try_recv m] dequeues without blocking. *)
val try_recv : 'a t -> 'a option

(** Number of queued (undelivered) messages. *)
val length : 'a t -> int
