(** Unbounded FIFO channel between simulated processes.

    Senders never block; receivers suspend while the mailbox is empty.
    Messages are delivered in send order, and blocked receivers are woken in
    arrival order, keeping runs deterministic. *)

type 'a t

(** An empty mailbox. *)
val create : unit -> 'a t

(** [send m x] enqueues [x], waking the oldest blocked receiver if any. *)
val send : 'a t -> 'a -> unit

(** [recv sim m] dequeues the next message, suspending until one exists. *)
val recv : Sim.t -> 'a t -> 'a

(** [try_recv m] dequeues without blocking. *)
val try_recv : 'a t -> 'a option

(** Number of queued (undelivered) messages. *)
val length : 'a t -> int
