(** Interprets a {!Plan} against a running simulation.

    The injector plugs into a {!Netsim.Network} as its per-delivery filter
    (see {!Netsim.Network.set_filter}): for every send it maps the sampled
    base delay to the list of delivery delays after faults — [[]] for a
    dropped message, two entries for a duplicate. Crash windows drop all
    traffic from a crashed sender and all copies that would arrive while
    the destination is down.

    Node-level events (pause, crash, restart) are delivered through hooks
    the owning engine registers with {!set_node_hooks}: the injector owns
    the {e schedule} (when things happen), the engine owns the {e effect}
    (freezing its inbox, wiping volatile state, recovering). Both engines
    in this repository route their [inject_pause] through here.

    Determinism: probabilistic decisions come from a dedicated
    [Random.State] seeded by the plan, so the workload's RNG stream is
    untouched. The empty plan makes no RNG draws at all and passes every
    delivery through unchanged — installing it is a no-op.

    Coordinator crashes are a separate event class: the plan does not know
    the coordinator's network id, so the owning engine registers it with
    {!set_coord}; during a coordinator crash window all traffic to and from
    that id is dropped, and the [crash]/[restart] hooks let the engine wipe
    volatile phase state and re-drive the advancement from its write-ahead
    log.

    Accounting is surfaced as a {!Stats.Counter_set}: aggregate
    ["fault.drops"], ["fault.dups"], ["fault.delays"], ["fault.crash_drops"]
    plus per-link variants such as ["fault.drop[0->2]"], and event counts
    ["fault.pauses"] / ["fault.crashes"] / ["fault.restarts"] /
    ["fault.coord_crashes"] / ["fault.coord_restarts"]. *)

type t

(** [create sim plan] builds an injector and schedules the plan's pauses
    and crashes on [sim]. Register hooks before running the simulation. *)
val create : Simul.Sim.t -> Plan.t -> t

(** The plan the injector was created with. *)
val plan : t -> Plan.t

(** The per-delivery filter for protocol traffic (what {!install} plugs
    into the network). Skips heartbeat-only rules without consuming a
    random draw or an [nth] hit, so a purely heartbeat-scoped plan leaves
    protocol schedules byte-identical to the fault-free run. *)
val filter : t -> src:int -> dst:int -> delay:float -> float list

(** The per-delivery filter for the heartbeat class (what {!install_hb}
    plugs into the heartbeat side network): applies {e every} rule —
    heartbeat-only ones and general ones, so a partition cuts heartbeats
    too — plus the crash windows, with heartbeat-class [nth] hit counters
    of its own. Accounting lands under ["fault.hb_*"]. *)
val filter_hb : t -> src:int -> dst:int -> delay:float -> float list

(** [install t net] sets [t]'s protocol filter on [net]. *)
val install : t -> 'm Netsim.Network.t -> unit

(** [install_hb t net] sets [t]'s heartbeat-class filter on [net]
    (intended for {!Netsim.Heartbeat.network}). *)
val install_hb : t -> 'm Netsim.Network.t -> unit

(** Register the engine-side effects of node events. Hooks not provided
    keep their previous value (initially no-ops). [pause] receives the
    freeze horizon [until_] already computed at fire time; [crash] fires
    when the node goes down, [restart] when it comes back. *)
val set_node_hooks :
  t ->
  ?pause:(node:int -> duration:float -> until_:float -> unit) ->
  ?crash:(node:int -> unit) ->
  ?restart:(node:int -> unit) ->
  unit ->
  unit

(** [pause t ~node ~at ~duration] schedules a pause event (in addition to
    any in the plan). *)
val pause : t -> node:int -> at:float -> duration:float -> unit

(** [crash t ~node ~at ~restart] schedules a crash-restart (in addition to
    any in the plan).
    @raise Invalid_argument if [restart <= at]. *)
val crash : t -> node:int -> at:float -> restart:float -> unit

(** [set_coord t ~id ?crash ?restart ()] registers the coordinator's
    network id (so crash windows drop its traffic) and the engine-side
    effects of a coordinator crash: [crash ~until_] fires when it goes
    down (with the restart time), [restart] when it comes back. Hooks not
    provided keep their previous value (initially no-ops). *)
val set_coord :
  t ->
  id:int ->
  ?crash:(until_:float -> unit) ->
  ?restart:(unit -> unit) ->
  unit ->
  unit

(** [coord_crash t ~at ~restart] schedules a coordinator crash-restart (in
    addition to any in the plan).
    @raise Invalid_argument if [restart <= at]. *)
val coord_crash : t -> at:float -> restart:float -> unit

(** Is [node] inside a crash window at virtual time [at]? Includes
    coordinator windows when [node] is the registered coordinator id. *)
val down : t -> node:int -> at:float -> bool

(** Is the coordinator inside a crash window at virtual time [at]? *)
val coord_down : t -> at:float -> bool

(** Live accounting snapshot (shared, monotone — do not mutate). *)
val stats : t -> Stats.Counter_set.t
