type action = Drop | Duplicate of float | Delay of float

type rule = {
  r_src : int option;
  r_dst : int option;
  r_remote_only : bool;
  r_hb_only : bool;
  r_from : float;
  r_until : float;
  r_prob : float;
  r_nth : int option;
  r_action : action;
}

type pause = { pause_node : int; pause_at : float; pause_duration : float }
type crash = { crash_node : int; crash_at : float; crash_restart : float }
type coord_crash = { cc_at : float; cc_restart : float }

type t = {
  seed : int;
  rules : rule list;
  pauses : pause list;
  crashes : crash list;
  coord_crashes : coord_crash list;
}

let none =
  { seed = 0x5eed; rules = []; pauses = []; crashes = []; coord_crashes = [] }

let is_none t =
  t.rules = [] && t.pauses = [] && t.crashes = [] && t.coord_crashes = []

let check_rule r =
  if r.r_prob < 0. || r.r_prob > 1. then
    invalid_arg
      (Printf.sprintf "Fault.Plan: rule probability %g outside [0, 1]" r.r_prob);
  if r.r_until <= r.r_from then
    invalid_arg
      (Printf.sprintf "Fault.Plan: rule window [%g, %g) is empty" r.r_from
         r.r_until);
  (match r.r_nth with
  | Some n when n <= 0 ->
      invalid_arg "Fault.Plan: rule nth must be positive (1-based)"
  | _ -> ());
  match r.r_action with
  | Duplicate gap when gap < 0. ->
      invalid_arg "Fault.Plan: duplicate gap must be nonnegative"
  | Delay d when d < 0. -> invalid_arg "Fault.Plan: delay spike must be nonnegative"
  | _ -> ()

let check_pause p =
  if p.pause_duration <= 0. then
    invalid_arg "Fault.Plan: pause duration must be positive"

let check_crash c =
  if c.crash_restart <= c.crash_at then
    invalid_arg
      (Printf.sprintf "Fault.Plan: crash restart %g must be after crash at %g"
         c.crash_restart c.crash_at)

let check_coord_crash c =
  if c.cc_restart <= c.cc_at then
    invalid_arg
      (Printf.sprintf
         "Fault.Plan: coordinator restart %g must be after crash at %g"
         c.cc_restart c.cc_at)

let make ?(seed = 0x5eed) ?(rules = []) ?(pauses = []) ?(crashes = [])
    ?(coord_crashes = []) () =
  List.iter check_rule rules;
  List.iter check_pause pauses;
  List.iter check_crash crashes;
  List.iter check_coord_crash coord_crashes;
  { seed; rules; pauses; crashes; coord_crashes }

let rule ?src ?dst ?(remote_only = false) ?(hb_only = false) ?(from_ = 0.)
    ?(until_ = infinity) ?(prob = 1.) ?nth action =
  let r =
    {
      r_src = src;
      r_dst = dst;
      r_remote_only = remote_only;
      r_hb_only = hb_only;
      r_from = from_;
      r_until = until_;
      r_prob = prob;
      r_nth = nth;
      r_action = action;
    }
  in
  check_rule r;
  r

let uniform_loss ?(dup = 0.) ?(dup_gap = 0.002) ?(spike_prob = 0.)
    ?(spike = 0.05) ~drop () =
  let maybe prob action =
    if prob > 0. then [ rule ~remote_only:true ~prob action ] else []
  in
  maybe drop Drop @ maybe dup (Duplicate dup_gap) @ maybe spike_prob (Delay spike)

let partition ~src ~dst ~from_ ~until_ = rule ~src ~dst ~from_ ~until_ Drop

let heartbeat_loss ?src ?(prob = 1.) ~from_ ~until_ () =
  [ rule ?src ~hb_only:true ~prob ~from_ ~until_ Drop ]

let partition_set ~universe ~set ?(oneway = false) ~from_ ~until_ () =
  if set = [] then invalid_arg "Fault.Plan.partition_set: empty node set";
  List.iter
    (fun n ->
      if n < 0 || n >= universe then
        invalid_arg
          (Printf.sprintf
             "Fault.Plan.partition_set: node %d outside universe 0..%d" n
             (universe - 1)))
    set;
  let inside = Array.make universe false in
  List.iter (fun n -> inside.(n) <- true) set;
  let rest =
    List.filter (fun n -> not inside.(n)) (List.init universe (fun n -> n))
  in
  List.concat_map
    (fun s ->
      List.concat_map
        (fun d ->
          rule ~src:s ~dst:d ~from_ ~until_ Drop
          :: (if oneway then [] else [ rule ~src:d ~dst:s ~from_ ~until_ Drop ]))
        rest)
    set

let pause ~node ~at ~duration =
  let p = { pause_node = node; pause_at = at; pause_duration = duration } in
  check_pause p;
  p

let crash ~node ~at ~restart =
  let c = { crash_node = node; crash_at = at; crash_restart = restart } in
  check_crash c;
  c

let coord_crash ~at ~restart =
  let c = { cc_at = at; cc_restart = restart } in
  check_coord_crash c;
  c

let crash_replicas ~members ~keep ~at ~restart =
  if keep < 1 then invalid_arg "Fault.Plan.crash_replicas: keep must be >= 1";
  let n = List.length members in
  if keep >= n then []
  else
    List.filteri (fun i _ -> i < n - keep) members
    |> List.map (fun node -> crash ~node ~at ~restart)

let pp_action ppf = function
  | Drop -> Format.fprintf ppf "drop"
  | Duplicate gap -> Format.fprintf ppf "dup(+%gs)" gap
  | Delay d -> Format.fprintf ppf "delay(+%gs)" d

let pp_end ppf u =
  if u = infinity then Format.fprintf ppf "inf" else Format.fprintf ppf "%g" u

let pp ppf t =
  let pp_opt ppf = function
    | None -> Format.fprintf ppf "*"
    | Some n -> Format.fprintf ppf "%d" n
  in
  Format.fprintf ppf "@[<v>plan seed=%d" t.seed;
  List.iter
    (fun r ->
      Format.fprintf ppf "@,rule %a->%a%s%s [%g,%a) p=%g%s %a" pp_opt r.r_src
        pp_opt r.r_dst
        (if r.r_remote_only then " remote" else "")
        (if r.r_hb_only then " hb" else "")
        r.r_from pp_end r.r_until r.r_prob
        (match r.r_nth with Some n -> Printf.sprintf " nth=%d" n | None -> "")
        pp_action r.r_action)
    t.rules;
  List.iter
    (fun p ->
      Format.fprintf ppf "@,pause node %d at %g for %gs" p.pause_node p.pause_at
        p.pause_duration)
    t.pauses;
  List.iter
    (fun c ->
      Format.fprintf ppf "@,crash node %d at %g, restart %g" c.crash_node
        c.crash_at c.crash_restart)
    t.crashes;
  List.iter
    (fun c ->
      Format.fprintf ppf "@,crash coordinator at %g, restart %g" c.cc_at
        c.cc_restart)
    t.coord_crashes;
  Format.fprintf ppf "@]"
