module Sim = Simul.Sim
module Network = Netsim.Network
module Counter_set = Stats.Counter_set

type hooks = {
  mutable h_pause : node:int -> duration:float -> until_:float -> unit;
  mutable h_crash : node:int -> unit;
  mutable h_restart : node:int -> unit;
  mutable h_coord_crash : until_:float -> unit;
  mutable h_coord_restart : unit -> unit;
}

type t = {
  sim : Sim.t;
  plan : Plan.t;
  rng : Random.State.t;  (** dedicated: fault draws never touch [Sim.rng] *)
  rules : Plan.rule array;
  rule_hits : int array;  (** per-rule matching-delivery counts, for [nth] *)
  hb_rule_hits : int array;
      (** separate [nth] counters for the heartbeat class, so scripted
          protocol rules never consume hits on heartbeat deliveries (and
          vice versa) — protocol schedules are unchanged by enabling
          heartbeats *)
  mutable crash_windows : (int * float * float) list;  (** (node, at, restart) *)
  mutable coord_windows : (float * float) list;  (** (at, restart) *)
  mutable coord_id : int option;
      (** the coordinator's network id, registered by the owning engine so
          coordinator crash windows can drop its traffic *)
  hooks : hooks;
  counters : Counter_set.t;
}

let noop_pause ~node:_ ~duration:_ ~until_:_ = ()
let noop_node ~node:_ = ()
let noop_coord_crash ~until_:_ = ()
let noop_unit () = ()

let plan t = t.plan
let stats t = t.counters

let coord_down t ~at =
  List.exists (fun (from_, until_) -> at >= from_ && at < until_) t.coord_windows

let down t ~node ~at =
  List.exists
    (fun (n, from_, until_) -> n = node && at >= from_ && at < until_)
    t.crash_windows
  || (match t.coord_id with
     | Some c when c = node -> coord_down t ~at
     | _ -> false)

let count t name ~src ~dst =
  Counter_set.incr t.counters (name ^ "s") ();
  Counter_set.incr t.counters (Printf.sprintf "%s[%d->%d]" name src dst) ()

let pause t ~node ~at ~duration =
  if duration <= 0. then invalid_arg "Fault.Injector.pause: duration must be positive";
  Counter_set.incr t.counters "fault.pauses" ();
  Sim.schedule t.sim ~delay:(Float.max 0. (at -. Sim.now t.sim)) (fun () ->
      t.hooks.h_pause ~node ~duration ~until_:(Sim.now t.sim +. duration))

let crash t ~node ~at ~restart =
  if restart <= at then
    invalid_arg "Fault.Injector.crash: restart must be after the crash time";
  (* The window is recorded eagerly so the filter drops traffic for it even
     before the scheduled hook fires. *)
  t.crash_windows <- (node, at, restart) :: t.crash_windows;
  Counter_set.incr t.counters "fault.crashes" ();
  let now = Sim.now t.sim in
  Sim.schedule t.sim ~delay:(Float.max 0. (at -. now)) (fun () ->
      t.hooks.h_crash ~node);
  Sim.schedule t.sim ~delay:(Float.max 0. (restart -. now)) (fun () ->
      Counter_set.incr t.counters "fault.restarts" ();
      t.hooks.h_restart ~node)

let coord_crash t ~at ~restart =
  if restart <= at then
    invalid_arg
      "Fault.Injector.coord_crash: restart must be after the crash time";
  (* Same eager-window discipline as node crashes: traffic to and from the
     coordinator is dropped for the whole window even before the scheduled
     hook fires. *)
  t.coord_windows <- (at, restart) :: t.coord_windows;
  Counter_set.incr t.counters "fault.coord_crashes" ();
  let now = Sim.now t.sim in
  Sim.schedule t.sim ~delay:(Float.max 0. (at -. now)) (fun () ->
      t.hooks.h_coord_crash ~until_:restart);
  Sim.schedule t.sim ~delay:(Float.max 0. (restart -. now)) (fun () ->
      Counter_set.incr t.counters "fault.coord_restarts" ();
      t.hooks.h_coord_restart ())

let rule_matches (r : Plan.rule) ~src ~dst ~now =
  (match r.Plan.r_src with Some s -> s = src | None -> true)
  && (match r.Plan.r_dst with Some d -> d = dst | None -> true)
  && ((not r.Plan.r_remote_only) || src <> dst)
  && now >= r.Plan.r_from
  && now < r.Plan.r_until

(* The shared rule-application core. [hb] selects the message class: the
   protocol filter skips heartbeat-only rules without consuming a random
   draw or an [nth] hit, so a plan whose rules are all heartbeat-scoped
   leaves protocol schedules byte-identical to the fault-free run. The
   heartbeat filter applies every rule — a partition cuts heartbeats too —
   but keeps its own [nth] hit counters. Crash windows silence both
   classes: a crashed node neither sends protocol traffic nor beats. *)
let filter_class t ~hb ~src ~dst ~delay =
  if Array.length t.rules = 0 && t.crash_windows = [] && t.coord_windows = []
  then [ delay ]
  else begin
    let pfx = if hb then "fault.hb_" else "fault." in
    let now = Sim.now t.sim in
    if down t ~node:src ~at:now then begin
      count t (pfx ^ "crash_drop") ~src ~dst;
      []
    end
    else begin
      let delays = ref [ delay ] in
      Array.iteri
        (fun idx r ->
          if
            !delays <> []
            && (hb || not r.Plan.r_hb_only)
            && rule_matches r ~src ~dst ~now
          then begin
            let fire =
              match r.Plan.r_nth with
              | Some n ->
                  let hits = if hb then t.hb_rule_hits else t.rule_hits in
                  hits.(idx) <- hits.(idx) + 1;
                  hits.(idx) = n
              | None ->
                  r.Plan.r_prob >= 1.
                  || Random.State.float t.rng 1. < r.Plan.r_prob
            in
            if fire then
              match r.Plan.r_action with
              | Plan.Drop ->
                  count t (pfx ^ "drop") ~src ~dst;
                  delays := []
              | Plan.Delay d ->
                  count t (pfx ^ "delay") ~src ~dst;
                  delays := List.map (fun x -> x +. d) !delays
              | Plan.Duplicate gap ->
                  count t (pfx ^ "dup") ~src ~dst;
                  delays := !delays @ List.map (fun x -> x +. gap) !delays
          end)
        t.rules;
      (* Copies that would arrive while the destination is down are lost. *)
      List.filter
        (fun d ->
          let arrives = not (down t ~node:dst ~at:(now +. d)) in
          if not arrives then count t (pfx ^ "crash_drop") ~src ~dst;
          arrives)
        !delays
    end
  end

let filter t ~src ~dst ~delay = filter_class t ~hb:false ~src ~dst ~delay
let filter_hb t ~src ~dst ~delay = filter_class t ~hb:true ~src ~dst ~delay

let install t net =
  Network.set_filter net (fun ~src ~dst ~delay -> filter t ~src ~dst ~delay)

let install_hb t net =
  Network.set_filter net (fun ~src ~dst ~delay -> filter_hb t ~src ~dst ~delay)

let set_node_hooks t ?pause ?crash ?restart () =
  (match pause with Some f -> t.hooks.h_pause <- f | None -> ());
  (match crash with Some f -> t.hooks.h_crash <- f | None -> ());
  match restart with Some f -> t.hooks.h_restart <- f | None -> ()

let set_coord t ~id ?crash ?restart () =
  t.coord_id <- Some id;
  (match crash with Some f -> t.hooks.h_coord_crash <- f | None -> ());
  match restart with Some f -> t.hooks.h_coord_restart <- f | None -> ()

let create sim (plan : Plan.t) =
  let t =
    {
      sim;
      plan;
      rng = Random.State.make [| plan.Plan.seed; 0xfa017 |];
      rules = Array.of_list plan.Plan.rules;
      rule_hits = Array.make (List.length plan.Plan.rules) 0;
      hb_rule_hits = Array.make (List.length plan.Plan.rules) 0;
      crash_windows = [];
      coord_windows = [];
      coord_id = None;
      hooks =
        {
          h_pause = noop_pause;
          h_crash = noop_node;
          h_restart = noop_node;
          h_coord_crash = noop_coord_crash;
          h_coord_restart = noop_unit;
        };
      counters = Counter_set.create ();
    }
  in
  List.iter
    (fun (p : Plan.pause) ->
      pause t ~node:p.Plan.pause_node ~at:p.Plan.pause_at
        ~duration:p.Plan.pause_duration)
    plan.Plan.pauses;
  List.iter
    (fun (c : Plan.crash) ->
      crash t ~node:c.Plan.crash_node ~at:c.Plan.crash_at
        ~restart:c.Plan.crash_restart)
    plan.Plan.crashes;
  List.iter
    (fun (c : Plan.coord_crash) ->
      coord_crash t ~at:c.Plan.cc_at ~restart:c.Plan.cc_restart)
    plan.Plan.coord_crashes;
  t
