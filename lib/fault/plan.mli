(** Deterministic, seed-replayable fault plans.

    A plan is pure data: a set of per-link message rules (drop, duplicate,
    delay spike — probabilistic or scripted), plus scheduled node events
    (pause, crash-restart). It says nothing about {e how} faults are
    applied; {!Injector} interprets a plan against a running simulation.

    Determinism contract: a plan carries its own [seed]. All probabilistic
    decisions are drawn from a dedicated RNG seeded with it, never from the
    simulation's RNG — so adding or removing faults never perturbs workload
    arrival times or latency samples, and the same (simulation seed, plan)
    pair always replays the exact same execution. *)

(** What happens to a matched message delivery. *)
type action =
  | Drop  (** the message is lost *)
  | Duplicate of float
      (** a second copy is delivered this many virtual seconds after the
          first *)
  | Delay of float  (** a latency spike added to the sampled delay *)

(** One per-link message rule. [None] for [src]/[dst] is a wildcard;
    [remote_only] restricts a wildcard to [src <> dst] links (self-sends
    pass through untouched). [hb_only] restricts the rule to the heartbeat
    message class: the protocol-traffic filter skips it entirely, while the
    heartbeat-class filter ({!Injector.install_hb}) applies it — the knob
    that provokes {e false} suspicion without losing protocol messages.
    General rules (hb_only false) apply to both classes, so a partition cuts
    heartbeats too. The rule applies inside the half-open virtual
    time window [[from_, until_)). Either probabilistically — each matching
    delivery fires with probability [prob] — or scripted: [nth = Some k]
    fires on exactly the k-th (1-based) matching delivery, ignoring
    [prob]. *)
type rule = {
  r_src : int option;
  r_dst : int option;
  r_remote_only : bool;
  r_hb_only : bool;
  r_from : float;
  r_until : float;
  r_prob : float;
  r_nth : int option;
  r_action : action;
}

(** A scheduled node freeze: the node stops processing messages for
    [duration] seconds starting at [at] (its inbox buffers). *)
type pause = { pause_node : int; pause_at : float; pause_duration : float }

(** A fail-stop crash: from [at] until [restart] the node neither sends nor
    receives (all its traffic is dropped); at [restart] it comes back,
    having lost its volatile state but kept its durable store and
    counters. *)
type crash = { crash_node : int; crash_at : float; crash_restart : float }

(** A fail-stop crash of the {e coordinator} endpoint: from [cc_at] until
    [cc_restart] all traffic to and from the coordinator is dropped; at
    [cc_restart] it comes back, having lost its volatile state (current
    phase progress, poll round) but kept its write-ahead log
    ({!Threev.Coord_log}), from which it resumes the in-flight version
    advancement. The plan does not know the coordinator's network id —
    the owning engine registers it via {!Injector.set_coord}. *)
type coord_crash = { cc_at : float; cc_restart : float }

type t = {
  seed : int;  (** seeds the injector's dedicated fault RNG *)
  rules : rule list;
  pauses : pause list;
  crashes : crash list;
  coord_crashes : coord_crash list;
}

(** The empty plan: no rules, no events. Installing it is behaviorally
    identical to running without fault injection. *)
val none : t

(** [is_none p] is true iff [p] has no rules and no scheduled events. *)
val is_none : t -> bool

(** [make ()] validates and assembles a plan.
    @raise Invalid_argument on a probability outside [0, 1], an empty or
    negative time window, or a crash whose [restart] is not after [at]. *)
val make :
  ?seed:int -> ?rules:rule list -> ?pauses:pause list -> ?crashes:crash list ->
  ?coord_crashes:coord_crash list -> unit -> t

(** [rule action] builds one rule; defaults: wildcard link, all of virtual
    time, probability 1, not scripted, [remote_only] and [hb_only] false. *)
val rule :
  ?src:int -> ?dst:int -> ?remote_only:bool -> ?hb_only:bool -> ?from_:float ->
  ?until_:float -> ?prob:float -> ?nth:int -> action -> rule

(** [uniform_loss ~drop ()] — the standard lossy-network rule set: every
    remote delivery is dropped with probability [drop], duplicated with
    probability [dup] (default 0, second copy [dup_gap] later, default
    2 ms), and delayed by [spike] seconds with probability [spike_prob]
    (default 0). *)
val uniform_loss :
  ?dup:float -> ?dup_gap:float -> ?spike_prob:float -> ?spike:float ->
  drop:float -> unit -> rule list

(** [partition ~src ~dst ~from_ ~until_] drops every message on the
    directed link [src -> dst] during the window — a one-way partition that
    heals at [until_]. *)
val partition : src:int -> dst:int -> from_:float -> until_:float -> rule

(** [heartbeat_loss ~from_ ~until_ ()] drops heartbeats — and only
    heartbeats — during the window, from [src] when given (wildcard
    otherwise), each with probability [prob] (default 1). Protocol traffic
    is untouched: this is the canonical false-suspicion storm, because the
    monitored node is alive and doing work the whole time. *)
val heartbeat_loss :
  ?src:int -> ?prob:float -> from_:float -> until_:float -> unit -> rule list

(** [partition_set ~universe ~set ~from_ ~until_ ()] isolates the nodes of
    [set] from every other endpoint of [0 .. universe - 1] during the
    window: messages from the set to the rest are dropped, and — unless
    [oneway] is true — the reverse direction too. [oneway] gives the
    {e asymmetric} partition: the set's outbound traffic (heartbeats
    included) is lost while inbound still flows, so the rest of the cluster
    suspects the set even though it keeps receiving work. Applies to both
    message classes. Pass the engine's full endpoint count (data nodes + 1
    for the coordinator) as [universe] to cut coordinator links too. *)
val partition_set :
  universe:int -> set:int list -> ?oneway:bool -> from_:float ->
  until_:float -> unit -> rule list

(** [pause ~node ~at ~duration] builds a node-freeze event. *)
val pause : node:int -> at:float -> duration:float -> pause

(** [crash ~node ~at ~restart] builds a crash-restart event.
    @raise Invalid_argument if [restart <= at]. *)
val crash : node:int -> at:float -> restart:float -> crash

(** @raise Invalid_argument if [restart <= at]. *)
val coord_crash : at:float -> restart:float -> coord_crash

(** [crash_replicas ~members ~keep ~at ~restart] builds crash events for
    all but the last [keep] nodes of a replica group given as [members] (in
    placement order) — so the group's primary goes down first and reads
    must fail over. With [keep >= length members] no crash is built (a
    singleton group is never crashed). Used to exercise quorum advancement:
    with [keep = 1] the group loses [k - 1] replicas yet stays available.
    @raise Invalid_argument if [keep < 1] or [restart <= at]. *)
val crash_replicas :
  members:int list -> keep:int -> at:float -> restart:float -> crash list

(** Multi-line plan description: seed, each rule, each scheduled event. *)
val pp : Format.formatter -> t -> unit
