type 'v item = { mutable versions : (int * 'v) list (* descending by version *) }

type 'v t = {
  items : (string, 'v item) Hashtbl.t;
  mutable max_versions_ever : int;
  mutable copies_created : int;
  mutable dual_writes : int;
  mutable gc_floor : int;
}

type write_info = {
  created_copy : bool;
  versions_updated : int;
  created_item : bool;
}

let create () =
  {
    items = Hashtbl.create 256;
    max_versions_ever = 1;
    copies_created = 0;
    dual_writes = 0;
    gc_floor = 0;
  }

let find_item t key = Hashtbl.find_opt t.items key

let read_visible t ~key ~version =
  match find_item t key with
  | None -> None
  | Some item ->
      (* Versions are descending: first one ≤ [version] is the max. *)
      List.find_opt (fun (v, _) -> v <= version) item.versions

let read_exact t ~key ~version =
  match find_item t key with
  | None -> None
  | Some item -> List.assoc_opt version item.versions

let exists t ~key ~version = read_exact t ~key ~version <> None

let exists_above t ~key ~version =
  match find_item t key with
  | None -> false
  | Some item ->
      (* Descending order: the head is the largest version. *)
      (match item.versions with (v, _) :: _ -> v > version | [] -> false)

let note_version_count t item =
  let n = List.length item.versions in
  if n > t.max_versions_ever then t.max_versions_ever <- n

(* Insert (version, value) into a descending list, replacing any existing
   entry for the same version. *)
let rec insert_desc version value = function
  | [] -> [ (version, value) ]
  | (v, _) :: rest when v = version -> (version, value) :: rest
  | ((v, _) as hd) :: rest when v > version ->
      hd :: insert_desc version value rest
  | older -> (version, value) :: older

(* Ensure x(version) exists, per §4.1 step 4: copy from the max existing
   version ≤ version, or materialize [init] for a brand-new item. *)
let ensure_version t item key version init =
  ignore key;
  if List.mem_assoc version item.versions then (false, false)
  else begin
    let created_item = item.versions = [] in
    let seed =
      match List.find_opt (fun (v, _) -> v <= version) item.versions with
      | Some (_, value) -> value
      | None -> init
    in
    item.versions <- insert_desc version seed item.versions;
    if not created_item then t.copies_created <- t.copies_created + 1;
    note_version_count t item;
    (true, created_item)
  end

let get_or_add_item t key =
  match find_item t key with
  | Some item -> item
  | None ->
      let item = { versions = [] } in
      Hashtbl.replace t.items key item;
      item

let write_upward t ~key ~version ~init ~f =
  let item = get_or_add_item t key in
  let created, created_item = ensure_version t item key version init in
  let updated = ref 0 in
  item.versions <-
    List.map
      (fun (v, value) ->
        if v >= version then begin
          incr updated;
          (v, f value)
        end
        else (v, value))
      item.versions;
  if !updated >= 2 then t.dual_writes <- t.dual_writes + 1;
  {
    created_copy = created && not created_item;
    versions_updated = !updated;
    created_item;
  }

let write_exact t ~key ~version ~init ~f =
  let item = get_or_add_item t key in
  let created, created_item = ensure_version t item key version init in
  item.versions <-
    List.map
      (fun (v, value) -> if v = version then (v, f value) else (v, value))
      item.versions;
  { created_copy = created && not created_item; versions_updated = 1; created_item }

let gc t ~new_read_version =
  let vr = new_read_version in
  if vr > t.gc_floor then t.gc_floor <- vr;
  (* lint: hash-order-ok — each item is trimmed independently; no ordering
     escapes the table. *)
  Hashtbl.iter
    (fun _key item ->
      if List.mem_assoc vr item.versions then
        item.versions <- List.filter (fun (v, _) -> v >= vr) item.versions
      else begin
        (* Relabel the latest version below vr as vr; keep higher versions. *)
        match List.find_opt (fun (v, _) -> v < vr) item.versions with
        | None -> ()
        | Some (_, value) ->
            let higher = List.filter (fun (v, _) -> v > vr) item.versions in
            item.versions <- higher @ [ (vr, value) ]
      end)
    t.items

let versions_of t ~key =
  match find_item t key with None -> [] | Some item -> List.map fst item.versions

let keys t =
  Hashtbl.fold (fun k item acc -> if item.versions = [] then acc else k :: acc)
    t.items []
  |> List.sort String.compare

let fold t ~init ~f =
  List.fold_left
    (fun acc key ->
      match find_item t key with
      | None -> acc
      | Some item ->
          List.fold_left (fun acc (v, value) -> f acc key v value) acc
            item.versions)
    init (keys t)

let max_versions_ever t = t.max_versions_ever
let gc_floor t = t.gc_floor
let copies_created t = t.copies_created
let dual_writes t = t.dual_writes
