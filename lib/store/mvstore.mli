(** Per-node multi-version key-value store for the 3V protocol.

    Implements exactly the data-layer rules of the paper (§4.1, §4.3):

    - {e Reads} (step 3): a transaction with version [v] reads the maximum
      existing version of the item that does not exceed [v].
    - {e Writes} (step 4): if [x(v)] does not exist it is created by copying
      the maximum existing version ≤ [v] ("copy on update"); then {e all}
      versions ≥ [v] are updated — this is the dual write that keeps both the
      old and the new update version consistent when a straggler
      subtransaction arrives after a version switch (§2.3).
    - {e Garbage collection} (§4.3 phase 4): given the new read version [vr],
      if [x(vr)] exists all earlier versions are dropped; otherwise the
      latest earlier version is relabelled [vr].

    The store also instruments itself so the paper's ≤3-simultaneous-versions
    property (§4.4, property 2a) is checkable: {!max_versions_ever}. *)

type 'v t

(** Outcome of one {!write_upward}, for the engine's statistics. *)
type write_info = {
  created_copy : bool;  (** a new version was materialized by copying *)
  versions_updated : int;  (** ≥ 2 means a dual write happened *)
  created_item : bool;  (** the key did not exist in any version before *)
}

(** An empty store (no keys, no versions). *)
val create : unit -> 'v t

(** [read_visible t ~key ~version] is [Some (v0, value)] where [v0] is the
    maximum existing version of [key] with [v0 <= version], or [None] if the
    item has no version ≤ [version]. *)
val read_visible : 'v t -> key:string -> version:int -> (int * 'v) option

(** [read_exact t ~key ~version] is the value stored at exactly that version. *)
val read_exact : 'v t -> key:string -> version:int -> 'v option

(** [exists t ~key ~version] tests whether [key] exists at exactly [version]. *)
val exists : 'v t -> key:string -> version:int -> bool

(** [exists_above t ~key ~version] tests whether [key] exists in any version
    strictly greater than [version] — the NC3V abort condition (§5 step 4). *)
val exists_above : 'v t -> key:string -> version:int -> bool

(** [write_upward t ~key ~version ~init ~f] performs the paper's update step:
    ensure [x(version)] exists (copying from the max version ≤ [version], or
    materializing [init] when the key is entirely new), then replace every
    version ≥ [version] with [f old_value]. Atomic w.r.t. the simulation
    (plain OCaml code, no suspension point). *)
val write_upward :
  'v t -> key:string -> version:int -> init:'v -> f:('v -> 'v) -> write_info

(** [write_exact t ~key ~version ~init ~f] updates only [x(version)]
    (creating it as in {!write_upward} if needed) and never touches higher
    versions — the NC3V write rule (§5 step 4 updates only [x(V(K))]). *)
val write_exact :
  'v t -> key:string -> version:int -> init:'v -> f:('v -> 'v) -> write_info

(** [gc t ~new_read_version] applies phase-4 garbage collection (see above). *)
val gc : 'v t -> new_read_version:int -> unit

(** Highest [new_read_version] ever garbage-collected to (0 before any GC).
    The store is the node's durable state, so this survives a simulated
    crash: a restarted node recovers a safe read version from it — every
    version below the floor is gone, and the floor itself was declared
    globally consistent before the GC notice was sent. *)
val gc_floor : 'v t -> int

(** Versions currently materialized for [key], descending. *)
val versions_of : 'v t -> key:string -> int list

(** All keys with at least one version, sorted. *)
val keys : 'v t -> string list

(** [fold t ~init ~f] folds over [(key, version, value)] triples. *)
val fold : 'v t -> init:'a -> f:('a -> string -> int -> 'v -> 'a) -> 'a

(** Largest number of simultaneous versions any single item ever had. *)
val max_versions_ever : 'v t -> int

(** Number of copy-on-write materializations performed. *)
val copies_created : 'v t -> int

(** Number of writes that updated ≥ 2 versions (the §2.3 dual-write case). *)
val dual_writes : 'v t -> int
