module Sim = Simul.Sim
module Ivar = Simul.Ivar
module Spec = Txn.Spec
module Result = Txn.Result
module Engine_intf = Txn.Engine_intf
module Histogram = Stats.Histogram

type setup = { seed : int; duration : float; settle : float; max_txns : int }

let default_setup = { seed = 1; duration = 2.0; settle = 5.0; max_txns = 100_000 }

type outcome = {
  engine_name : string;
  history : (Spec.t * Result.t) list;
  submitted : int;
  committed : int;
  aborted : int;
  unfinished : int;
  duration : float;
  throughput : float;
  read_latency : Histogram.t;
  update_latency : Histogram.t;
  read_blocking : Histogram.t;
  update_blocking : Histogram.t;
  in_flight : Stats.Series.t;
  stats : Stats.Counter_set.t;
}

let drive sim engine gen (setup : setup) =
  let rng = Random.State.make [| setup.seed; 0x9e3779b9 |] in
  let rate = Workload.Generator.rate gen in
  if rate <= 0. then invalid_arg "Runner.drive: arrival rate must be positive";
  let inflight : (Spec.t * Result.t Ivar.t) list ref = ref [] in
  let submitted = ref 0 in
  let start = Sim.now sim in
  let in_flight_series = Stats.Series.create ~name:"in-flight" () in
  (* The sampler owns a pruned list of not-yet-resolved ivars: resolution is
     monotone, so once an ivar is observed full it can never count again and
     is dropped. Scanning all of [inflight] every tick instead would make the
     sampler O(total submitted) per 0.05s — quadratic over a long run. *)
  let unresolved : Result.t Ivar.t list ref = ref [] in
  Sim.spawn sim ~daemon:true ~name:"in-flight-sampler" (fun () ->
      let rec sample () =
        unresolved := List.filter (fun iv -> not (Ivar.is_full iv)) !unresolved;
        Stats.Series.add in_flight_series ~x:(Sim.now sim)
          ~y:(float_of_int (List.length !unresolved));
        Sim.sleep sim 0.05;
        sample ()
      in
      sample ());
  Sim.spawn sim ~name:"workload-client" (fun () ->
      let rec loop () =
        let gap = -.log (1. -. Random.State.float rng 1.) /. rate in
        Sim.sleep sim gap;
        if Sim.now sim -. start <= setup.duration && !submitted < setup.max_txns
        then begin
          incr submitted;
          let spec = gen.Workload.Generator.make rng ~id:!submitted in
          let ivar = Engine_intf.packed_submit engine spec in
          inflight := (spec, ivar) :: !inflight;
          unresolved := ivar :: !unresolved;
          loop ()
        end
      in
      loop ());
  (match Sim.run sim ~until:(start +. setup.duration +. setup.settle) () with
  | Sim.Completed | Sim.Hit_limit -> ()
  | Sim.Stalled names ->
      failwith
        (Printf.sprintf "Runner.drive: simulation stalled in [%s]"
           (String.concat "; " names)));
  let history = ref [] and unfinished = ref 0 in
  List.iter
    (fun (spec, ivar) ->
      match Ivar.peek ivar with
      | Some res -> history := (spec, res) :: !history
      | None -> incr unfinished)
    !inflight;
  let history = !history in
  let read_latency = Histogram.create ()
  and update_latency = Histogram.create ()
  and read_blocking = Histogram.create ()
  and update_blocking = Histogram.create () in
  let committed = ref 0 and aborted = ref 0 in
  List.iter
    (fun ((spec : Spec.t), (res : Result.t)) ->
      if Result.committed res then incr committed else incr aborted;
      match spec.Spec.kind with
      | Spec.Read_only ->
          Histogram.add read_latency (Result.latency res);
          Histogram.add read_blocking (Result.blocking_latency res)
      | Spec.Commuting | Spec.Non_commuting ->
          Histogram.add update_latency (Result.latency res);
          Histogram.add update_blocking (Result.blocking_latency res))
    history;
  {
    engine_name = Engine_intf.packed_name engine;
    history;
    submitted = !submitted;
    committed = !committed;
    aborted = !aborted;
    unfinished = !unfinished;
    duration = setup.duration;
    throughput = float_of_int !committed /. setup.duration;
    read_latency;
    update_latency;
    read_blocking;
    update_blocking;
    in_flight = in_flight_series;
    stats = Engine_intf.packed_stats engine;
  }

let atomicity outcome = Checker.Atomicity.check outcome.history
let staleness outcome = Checker.Staleness.measure outcome.history
