(** Deterministic schedule-fuzz harness.

    Sweeps seeds × workloads × fault plans × engines, runs every offline
    checker (serializability certifier, atomic visibility, exact version
    reads, commuting-sum replay, staleness) on each outcome, and classifies:

    - {e strict} engines (3V, NC3V, replicated 3V, replicated 3V with the
      heartbeat failure detector, sharded 3V with per-shard coordinators,
      global-2PC) must certify clean on every applicable checker — any
      violation is a [failure];
    - {e expected-anomaly} baselines (no-coordination, manual versioning)
      may be flagged; the cycle witness is recorded, demonstrating that the
      certifier has teeth on histories known to be broken.

    Cases are derived purely from [(fuzz_seed, index)] — the same pair
    always replays the same engine, workload, seed and fault plan, so
    [threev_sim fuzz --fuzz-seed S --only I] is an exact reproducer for
    case [I] of any sweep. On a strict failure under faults the harness
    additionally shrinks the fault plan greedily (dropping atoms whose
    removal keeps the case failing) and renders a standalone
    [threev_sim run ...] command line for the shrunk plan. *)

type engine_kind =
  | E3v
  | E3v_nc
  | E3v_repl
  | E3v_fd
  | E3v_shard
  | E2pc
  | E_nocoord
  | E_manual

(** Short engine label for reports and reproducer command lines
    (e.g. "3v", "2pc"). *)
val engine_label : engine_kind -> string

(** One fault-plan ingredient, kept atomic so a failing plan can be
    shrunk element-wise and rendered back to [threev_sim run] flags. *)
type atom =
  | Loss of float  (** uniform remote-message drop probability *)
  | Dup of float  (** uniform duplication probability *)
  | Partition of int * int * float * float  (** src, dst, from, until *)
  | Partition_set of int list * float * float * bool
      (** set, from, until, oneway: the set is cut off from the rest of the
          cluster for the window — only its outbound links when [oneway] *)
  | Crash of int * float * float  (** node, at, restart *)
  | Coord_crash of float * float  (** at, restart *)
  | Hb_loss of int * float * float * float
      (** node, from, until, prob: drop the node's outgoing heartbeats —
          false-suspicion provocation, protocol traffic untouched *)

(** Renders an atom as the [threev_sim run] flag that reproduces it. *)
val atom_flag : atom -> string

type workload_kind = W_synthetic | W_hospital | W_pos

type case = {
  index : int;
  engine : engine_kind;
  workload : workload_kind;
  nodes : int;
  replicas : int;
      (** replication factor; [> 1] only for [E3v_repl] cases (always at
          least one data-node crash atom) and [E3v_fd] cases (heartbeat
          failure detector on, always at least one heartbeat-loss atom) *)
  shards : int;
      (** shard count; [> 1] only for [E3v_shard] cases (four replicated
          shard blocks, per-shard coordinators, synthetic shard-confined
          workload, always at least one replica-crash atom) *)
  seed : int;  (** simulation + workload RNG seed *)
  fault_seed : int;
  rate : float;
  read_ratio : float;
  nc_ratio : float;
  duration : float;
  atoms : atom list;
}

(** Pure derivation: same [(fuzz_seed, index, quick)] → same case. Engines
    rotate with [index mod 8] so every 8 consecutive indices cover the full
    matrix. *)
val case_of_index : fuzz_seed:int -> quick:bool -> int -> case

type check = { check_name : string; ok : bool; detail : string }

type verdict =
  | Clean  (** every applicable checker passed *)
  | Anomaly of string list
      (** expected-anomaly baseline, flagged as hoped; payload includes the
          rendered cycle witness *)
  | Failure of check list  (** the failed checks only *)

type case_report = {
  case : case;
  verdict : verdict;
  committed : int;
  unfinished : int;
  shrunk : atom list option;
      (** minimal failing fault-atom subset, when shrinking applied *)
  reproducers : string list;  (** command lines, most precise first *)
}

(** Run one case end to end (drive, settle, check, shrink on failure). *)
val run_case : fuzz_seed:int -> quick:bool -> case -> case_report

type summary = {
  total : int;
  clean : int;
  anomalies_flagged : int;
  failed : int;
  reports : case_report list;  (** in index order *)
}

(** [sweep ()] runs cases [0 .. runs-1] (or exactly [only]). [log] receives
    one human-readable line per case as it completes, plus witness /
    reproducer blocks for interesting cases. *)
val sweep :
  ?runs:int ->
  ?fuzz_seed:int ->
  ?only:int ->
  ?quick:bool ->
  ?log:(string -> unit) ->
  unit ->
  summary

(** [ok s] — no strict-engine failures. *)
val ok : summary -> bool

(** Multi-line sweep summary: totals per verdict, then each failing case
    with its reproducer command lines. *)
val pp_summary : Format.formatter -> summary -> unit
